/**
 * @file
 * Ablation: the MDPT design parameters behind speculation/
 * synchronization — table size (the paper uses 4K, 2-way) and the
 * periodic flush interval (the paper flushes every 1M cycles to shed
 * stale synonyms). Reported over the miss-speculation-heavy workloads,
 * where the predictor actually has work to do.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "sim/table.hh"
#include "sweep/bench_cli.hh"

using namespace cwsim;
using namespace cwsim::harness;

namespace
{

const std::vector<std::string> hot_set = {
    "099.go",       "129.compress", "130.li",
    "104.hydro2d",  "134.perl",     "146.wave5",
};

const std::vector<unsigned> mdpt_sizes = {64, 256, 1024, 4096, 16384};
const std::vector<Cycles> flush_intervals = {2'000, 10'000, 50'000,
                                             1'000'000};

} // anonymous namespace

int
main(int argc, char **argv)
{
    sweep::BenchCli cli(argc, argv, benchScale() / 2);
    auto names = cli.names(hot_set);

    sweep::SweepPlan plan;
    for (const auto &name : names) {
        plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                  SpecPolicy::Naive));
    }
    for (unsigned entries : mdpt_sizes) {
        for (const auto &name : names) {
            SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                                       SpecPolicy::SpecSync);
            cfg.mdp.mdptEntries = entries;
            plan.add(name, cfg);
        }
    }
    for (Cycles interval : flush_intervals) {
        for (const auto &name : names) {
            SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                                       SpecPolicy::SpecSync);
            cfg.mdp.resetInterval = interval;
            plan.add(name, cfg);
        }
    }
    auto results = cli.run(plan);
    size_t next = 0;

    // ---- MDPT size sweep --------------------------------------------
    std::printf("Ablation A: MDPT size under NAS/SYNC (geomean over %zu "
                "miss-speculation-heavy workloads)\n\n",
                names.size());

    TextTable size_table;
    size_table.setHeader({"MDPT entries", "SYNC IPC", "misspec rate",
                          "vs NAV"});

    std::vector<double> nav;
    for (size_t i = 0; i < names.size(); ++i)
        nav.push_back(results[next++].ipc());
    double g_nav = geomean(nav);

    for (unsigned entries : mdpt_sizes) {
        std::vector<double> ipc;
        double worst_ms = 0;
        for (size_t i = 0; i < names.size(); ++i) {
            const RunResult &r = results[next++];
            ipc.push_back(r.ipc());
            worst_ms = std::max(worst_ms, r.misspecRate());
        }
        double g = geomean(ipc);
        size_table.addRow({
            strfmt("%u%s", entries,
                   entries == 4096 ? " (paper)" : ""),
            strfmt("%.2f", g),
            strfmt("<= %.3f%%", 100 * worst_ms),
            formatSpeedup(g / g_nav),
        });
    }
    std::printf("%s\n", size_table.toString().c_str());

    // ---- flush interval sweep ----------------------------------------
    std::printf("Ablation B: MDPT flush interval under NAS/SYNC\n");
    std::printf("(run lengths here are ~50K cycles, so intervals are "
                "scaled down from the paper's 1M)\n\n");

    TextTable flush_table;
    flush_table.setHeader({"Flush interval", "SYNC IPC", "vs NAV"});
    for (Cycles interval : flush_intervals) {
        std::vector<double> ipc;
        for (size_t i = 0; i < names.size(); ++i)
            ipc.push_back(results[next++].ipc());
        double g = geomean(ipc);
        flush_table.addRow({
            strfmt("%llu%s",
                   static_cast<unsigned long long>(interval),
                   interval == 1'000'000 ? " (paper)" : ""),
            strfmt("%.2f", g),
            formatSpeedup(g / g_nav),
        });
    }
    std::printf("%s", flush_table.toString().c_str());
    std::printf("\nFinding: SYNC is insensitive to both knobs on this "
                "suite — each kernel carries only\na handful of STATIC "
                "dependence pairs, so even a 64-entry MDPT holds the "
                "whole\nworking set and flushing costs one cheap "
                "re-learning miss-speculation per pair.\nThis is "
                "consistent with the paper's premise that modest "
                "predictors suffice; the\n4K table matters for "
                "programs with thousands of static pairs (e.g. real "
                "gcc),\nwhich synthetic kernels do not replicate.\n");
    return cli.finish();
}
