/**
 * @file
 * Ablation (paper extension): miss-speculation RECOVERY mechanism.
 * Section 2 notes two ways to reduce the miss-speculation penalty
 * beyond better prediction: minimize the work lost, or redo it faster —
 * and cites selective invalidation (re-executing only the instructions
 * that used erroneous data) as the former. The paper does not evaluate
 * it; this ablation does, comparing NAS/NAV under squash invalidation
 * vs. selective invalidation, with NAS/SYNC and NAS/ORACLE as the
 * prediction-based alternatives.
 *
 * Expected shape: selective invalidation recovers part of the naive
 * policy's penalty (it keeps unrelated work), narrowing — but not
 * closing — the gap that speculation/synchronization closes by
 * avoiding miss-speculation in the first place.
 */

#include <cstdio>
#include <map>

#include "sim/table.hh"
#include "sweep/bench_cli.hh"

using namespace cwsim;
using namespace cwsim::harness;

int
main(int argc, char **argv)
{
    sweep::BenchCli cli(argc, argv, benchScale() / 2);

    std::printf("Ablation: recovery mechanism under naive speculation "
                "(128-entry window)\n\n");

    auto ints = cli.names(workloads::intNames());
    auto fps = cli.names(workloads::fpNames());

    sweep::SweepPlan plan;
    auto enqueue = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::Naive));
            SimConfig sel_cfg = withPolicy(makeW128Config(),
                                           LsqModel::NAS,
                                           SpecPolicy::Naive);
            sel_cfg.mdp.recovery = RecoveryModel::Selective;
            plan.add(name, sel_cfg);
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::SpecSync));
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::Oracle));
        }
    };
    enqueue(ints);
    enqueue(fps);
    auto results = cli.run(plan);

    TextTable table;
    table.setHeader({"Program", "NAV+squash", "NAV+selective",
                     "selective gain", "SYNC", "ORACLE",
                     "slices/fallbacks"});

    std::map<std::string, double> squash, selective, sync, oracle;

    size_t next = 0;
    auto emit = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            const RunResult &r_squash = results[next++];
            const RunResult &r_sel = results[next++];
            const RunResult &r_sync = results[next++];
            const RunResult &r_or = results[next++];
            squash[name] = r_squash.ipc();
            selective[name] = r_sel.ipc();
            sync[name] = r_sync.ipc();
            oracle[name] = r_or.ipc();
            table.addRow({
                name,
                strfmt("%.2f", r_squash.ipc()),
                strfmt("%.2f", r_sel.ipc()),
                formatSpeedup(r_sel.ipc() / r_squash.ipc()),
                strfmt("%.2f", r_sync.ipc()),
                strfmt("%.2f", r_or.ipc()),
                strfmt("%llu/%llu",
                       static_cast<unsigned long long>(
                           r_sel.selectiveRecoveries),
                       static_cast<unsigned long long>(
                           r_sel.selectiveFallbacks)),
            });
        }
    };

    emit(ints);
    table.addSeparator();
    emit(fps);
    std::printf("%s", table.toString().c_str());

    std::printf("\nGeomean vs NAV+squash: selective %s int / %s fp; "
                "SYNC %s int / %s fp\n",
                formatSpeedup(meanSpeedup(selective, squash, ints))
                    .c_str(),
                formatSpeedup(meanSpeedup(selective, squash, fps))
                    .c_str(),
                formatSpeedup(meanSpeedup(sync, squash, ints)).c_str(),
                formatSpeedup(meanSpeedup(sync, squash, fps)).c_str());
    return cli.finish();
}
