/**
 * @file
 * Ablation (paper extension): miss-speculation RECOVERY mechanism.
 * Section 2 notes two ways to reduce the miss-speculation penalty
 * beyond better prediction: minimize the work lost, or redo it faster —
 * and cites selective invalidation (re-executing only the instructions
 * that used erroneous data) as the former. The paper does not evaluate
 * it; this ablation does, comparing NAS/NAV under squash invalidation
 * vs. selective invalidation, with NAS/SYNC and NAS/ORACLE as the
 * prediction-based alternatives.
 *
 * Expected shape: selective invalidation recovers part of the naive
 * policy's penalty (it keeps unrelated work), narrowing — but not
 * closing — the gap that speculation/synchronization closes by
 * avoiding miss-speculation in the first place.
 */

#include <cstdio>
#include <map>

#include "harness/harness.hh"
#include "sim/table.hh"

using namespace cwsim;
using namespace cwsim::harness;

int
main()
{
    Runner runner(benchScale() / 2);

    std::printf("Ablation: recovery mechanism under naive speculation "
                "(128-entry window)\n\n");

    TextTable table;
    table.setHeader({"Program", "NAV+squash", "NAV+selective",
                     "selective gain", "SYNC", "ORACLE",
                     "slices/fallbacks"});

    std::map<std::string, double> squash, selective, sync, oracle;

    auto sweep = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            RunResult r_squash = runner.run(
                name, withPolicy(makeW128Config(), LsqModel::NAS,
                                 SpecPolicy::Naive));
            SimConfig sel_cfg = withPolicy(makeW128Config(),
                                           LsqModel::NAS,
                                           SpecPolicy::Naive);
            sel_cfg.mdp.recovery = RecoveryModel::Selective;
            RunResult r_sel = runner.run(name, sel_cfg);
            RunResult r_sync = runner.run(
                name, withPolicy(makeW128Config(), LsqModel::NAS,
                                 SpecPolicy::SpecSync));
            RunResult r_or = runner.run(
                name, withPolicy(makeW128Config(), LsqModel::NAS,
                                 SpecPolicy::Oracle));
            squash[name] = r_squash.ipc();
            selective[name] = r_sel.ipc();
            sync[name] = r_sync.ipc();
            oracle[name] = r_or.ipc();
            table.addRow({
                name,
                strfmt("%.2f", r_squash.ipc()),
                strfmt("%.2f", r_sel.ipc()),
                formatSpeedup(r_sel.ipc() / r_squash.ipc()),
                strfmt("%.2f", r_sync.ipc()),
                strfmt("%.2f", r_or.ipc()),
                strfmt("%llu/%llu",
                       static_cast<unsigned long long>(
                           r_sel.selectiveRecoveries),
                       static_cast<unsigned long long>(
                           r_sel.selectiveFallbacks)),
            });
        }
    };

    sweep(workloads::intNames());
    table.addSeparator();
    sweep(workloads::fpNames());
    std::printf("%s", table.toString().c_str());

    std::printf("\nGeomean vs NAV+squash: selective %s int / %s fp; "
                "SYNC %s int / %s fp\n",
                formatSpeedup(meanSpeedup(selective, squash,
                                          workloads::intNames()))
                    .c_str(),
                formatSpeedup(meanSpeedup(selective, squash,
                                          workloads::fpNames()))
                    .c_str(),
                formatSpeedup(
                    meanSpeedup(sync, squash, workloads::intNames()))
                    .c_str(),
                formatSpeedup(
                    meanSpeedup(sync, squash, workloads::fpNames()))
                    .c_str());
    return reportFailures(runner) ? 1 : 0;
}
