/**
 * @file
 * Ablation: instruction-window size vs. the value of load/store
 * parallelism. Extends Figure 1's two points (64/128) to a sweep —
 * the paper's claim is that "the ability to extract load/store
 * parallelism becomes increasingly important relative to performance
 * as the instruction window increases", which should appear here as a
 * monotonically growing ORACLE/NO (and NAV/NO) gap.
 */

#include <cstdio>
#include <vector>

#include "harness/harness.hh"
#include "sim/table.hh"

using namespace cwsim;
using namespace cwsim::harness;

int
main()
{
    // A representative subset keeps this ablation quick.
    const std::vector<std::string> subset = {
        "126.gcc",     "129.compress", "147.vortex",
        "101.tomcatv", "104.hydro2d",  "145.fpppp",
    };
    const unsigned windows[] = {32, 64, 128, 256};

    Runner runner(benchScale() / 2);

    std::printf("Ablation: window size vs. load/store parallelism "
                "(geomean over %zu workloads)\n\n", subset.size());

    TextTable table;
    table.setHeader({"Window", "NAS/NO IPC", "NAS/NAV IPC",
                     "NAS/ORACLE IPC", "NAV/NO", "ORACLE/NO"});

    for (unsigned w : windows) {
        std::vector<double> no, nav, oracle;
        for (const auto &name : subset) {
            SimConfig base = makeWindowConfig(w);
            no.push_back(
                runner
                    .run(name, withPolicy(base, LsqModel::NAS,
                                          SpecPolicy::No))
                    .ipc());
            nav.push_back(
                runner
                    .run(name, withPolicy(base, LsqModel::NAS,
                                          SpecPolicy::Naive))
                    .ipc());
            oracle.push_back(
                runner
                    .run(name, withPolicy(base, LsqModel::NAS,
                                          SpecPolicy::Oracle))
                    .ipc());
        }
        double g_no = geomean(no);
        double g_nav = geomean(nav);
        double g_or = geomean(oracle);
        table.addRow({
            strfmt("%u", w),
            strfmt("%.2f", g_no),
            strfmt("%.2f", g_nav),
            strfmt("%.2f", g_or),
            formatSpeedup(g_nav / g_no),
            formatSpeedup(g_or / g_no),
        });
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\nShape check: NAS/NO saturates quickly while "
                "ORACLE/NAV keep scaling, so the\nspeedup columns grow "
                "with window size (Figure 1's trend, extended).\n");
    return reportFailures(runner) ? 1 : 0;
}
