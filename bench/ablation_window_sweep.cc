/**
 * @file
 * Ablation: instruction-window size vs. the value of load/store
 * parallelism. Extends Figure 1's two points (64/128) to a sweep —
 * the paper's claim is that "the ability to extract load/store
 * parallelism becomes increasingly important relative to performance
 * as the instruction window increases", which should appear here as a
 * monotonically growing ORACLE/NO (and NAV/NO) gap.
 */

#include <cstdio>
#include <vector>

#include "sim/table.hh"
#include "sweep/bench_cli.hh"

using namespace cwsim;
using namespace cwsim::harness;

int
main(int argc, char **argv)
{
    // A representative subset keeps this ablation quick.
    const std::vector<std::string> subset = {
        "126.gcc",     "129.compress", "147.vortex",
        "101.tomcatv", "104.hydro2d",  "145.fpppp",
    };
    const unsigned windows[] = {32, 64, 128, 256};

    sweep::BenchCli cli(argc, argv, benchScale() / 2);
    auto names = cli.names(subset);

    std::printf("Ablation: window size vs. load/store parallelism "
                "(geomean over %zu workloads)\n\n", names.size());

    sweep::SweepPlan plan;
    for (unsigned w : windows) {
        for (const auto &name : names) {
            SimConfig base = makeWindowConfig(w);
            plan.add(name, withPolicy(base, LsqModel::NAS,
                                      SpecPolicy::No));
            plan.add(name, withPolicy(base, LsqModel::NAS,
                                      SpecPolicy::Naive));
            plan.add(name, withPolicy(base, LsqModel::NAS,
                                      SpecPolicy::Oracle));
        }
    }
    auto results = cli.run(plan);

    TextTable table;
    table.setHeader({"Window", "NAS/NO IPC", "NAS/NAV IPC",
                     "NAS/ORACLE IPC", "NAV/NO", "ORACLE/NO"});

    size_t next = 0;
    for (unsigned w : windows) {
        std::vector<double> no, nav, oracle;
        for (size_t i = 0; i < names.size(); ++i) {
            no.push_back(results[next++].ipc());
            nav.push_back(results[next++].ipc());
            oracle.push_back(results[next++].ipc());
        }
        double g_no = geomean(no);
        double g_nav = geomean(nav);
        double g_or = geomean(oracle);
        table.addRow({
            strfmt("%u", w),
            strfmt("%.2f", g_no),
            strfmt("%.2f", g_nav),
            strfmt("%.2f", g_or),
            formatSpeedup(g_nav / g_no),
            formatSpeedup(g_or / g_no),
        });
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\nShape check: NAS/NO saturates quickly while "
                "ORACLE/NAV keep scaling, so the\nspeedup columns grow "
                "with window size (Figure 1's trend, extended).\n");
    return cli.finish();
}
