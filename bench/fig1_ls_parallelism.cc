/**
 * @file
 * Regenerates Figure 1: the performance potential of exploiting
 * load/store parallelism. IPC of NAS/NO (loads wait for all preceding
 * stores) vs NAS/ORACLE (perfect a-priori dependence knowledge) for
 * 64- and 128-entry instruction windows, with the ORACLE/NO speedup
 * printed per benchmark — the paper reports ~55% (int) and ~154% (fp)
 * averages for the 128-entry window, and sharply larger oracle gains
 * at 128 than at 64 entries.
 */

#include <cstdio>
#include <map>

#include "sim/table.hh"
#include "sweep/bench_cli.hh"

using namespace cwsim;
using namespace cwsim::harness;

int
main(int argc, char **argv)
{
    sweep::BenchCli cli(argc, argv);

    std::printf("Figure 1: IPC with and without exploiting load/store "
                "parallelism\n");
    std::printf("(bars: window size x {NAS/NO, NAS/ORACLE}; speedup = "
                "ORACLE/NO - 1)\n\n");

    auto ints = cli.names(workloads::intNames());
    auto fps = cli.names(workloads::fpNames());

    sweep::SweepPlan plan;
    auto enqueue = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            plan.add(name, withPolicy(makeW64Config(), LsqModel::NAS,
                                      SpecPolicy::No));
            plan.add(name, withPolicy(makeW64Config(), LsqModel::NAS,
                                      SpecPolicy::Oracle));
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::No));
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::Oracle));
        }
    };
    enqueue(ints);
    enqueue(fps);
    auto results = cli.run(plan);

    TextTable table;
    table.setHeader({"Program", "64 NO", "64 ORACLE", "64 spdup",
                     "128 NO", "128 ORACLE", "128 spdup"});

    std::map<std::string, double> no64, or64, no128, or128;

    size_t next = 0;
    auto emit = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            const RunResult &r_no64 = results[next++];
            const RunResult &r_or64 = results[next++];
            const RunResult &r_no128 = results[next++];
            const RunResult &r_or128 = results[next++];
            no64[name] = r_no64.ipc();
            or64[name] = r_or64.ipc();
            no128[name] = r_no128.ipc();
            or128[name] = r_or128.ipc();
            table.addRow({
                name,
                strfmt("%.2f", r_no64.ipc()),
                strfmt("%.2f", r_or64.ipc()),
                formatSpeedup(r_or64.ipc() / r_no64.ipc()),
                strfmt("%.2f", r_no128.ipc()),
                strfmt("%.2f", r_or128.ipc()),
                formatSpeedup(r_or128.ipc() / r_no128.ipc()),
            });
        }
    };

    emit(ints);
    table.addSeparator();
    emit(fps);
    std::printf("%s", table.toString().c_str());

    double int64 = meanSpeedup(or64, no64, ints);
    double fp64 = meanSpeedup(or64, no64, fps);
    double int128 = meanSpeedup(or128, no128, ints);
    double fp128 = meanSpeedup(or128, no128, fps);

    std::printf("\nORACLE over NO, geometric mean:\n");
    std::printf("  64-entry window:  int %s   fp %s\n",
                formatSpeedup(int64).c_str(),
                formatSpeedup(fp64).c_str());
    std::printf("  128-entry window: int %s   fp %s   "
                "(paper: ~+55%% int, ~+154%% fp)\n",
                formatSpeedup(int128).c_str(),
                formatSpeedup(fp128).c_str());
    std::printf("\nPaper shape check: the oracle's advantage should "
                "GROW with window size\n");
    std::printf("  int: %+.1f%% -> %+.1f%%   fp: %+.1f%% -> %+.1f%%\n",
                (int64 - 1) * 100, (int128 - 1) * 100, (fp64 - 1) * 100,
                (fp128 - 1) * 100);
    return cli.finish();
}
