/**
 * @file
 * Regenerates Figure 2: performance with naive memory dependence
 * speculation and no address-based scheduler. For the 128-entry
 * window: NAS/NO vs NAS/ORACLE vs NAS/NAV. The paper's findings: NAV
 * beats NO for all programs (+29% int / +113% fp on average), but a
 * significant gap to ORACLE remains — the net miss-speculation penalty.
 */

#include <cstdio>
#include <map>

#include "sim/table.hh"
#include "sweep/bench_cli.hh"

using namespace cwsim;
using namespace cwsim::harness;

int
main(int argc, char **argv)
{
    sweep::BenchCli cli(argc, argv);

    std::printf("Figure 2: naive memory dependence speculation, no "
                "address-based scheduler\n\n");

    auto ints = cli.names(workloads::intNames());
    auto fps = cli.names(workloads::fpNames());

    sweep::SweepPlan plan;
    auto enqueue = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::No));
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::Oracle));
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::Naive));
        }
    };
    enqueue(ints);
    enqueue(fps);
    auto results = cli.run(plan);

    TextTable table;
    table.setHeader({"Program", "NAS/NO", "NAS/ORACLE", "NAS/NAV",
                     "NAV/NO", "gap to ORACLE"});

    std::map<std::string, double> no_ipc, nav_ipc, oracle_ipc;

    size_t next = 0;
    auto emit = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            const RunResult &r_no = results[next++];
            const RunResult &r_or = results[next++];
            const RunResult &r_nav = results[next++];
            no_ipc[name] = r_no.ipc();
            oracle_ipc[name] = r_or.ipc();
            nav_ipc[name] = r_nav.ipc();
            table.addRow({
                name,
                strfmt("%.2f", r_no.ipc()),
                strfmt("%.2f", r_or.ipc()),
                strfmt("%.2f", r_nav.ipc()),
                formatSpeedup(r_nav.ipc() / r_no.ipc()),
                formatSpeedup(r_or.ipc() / r_nav.ipc()),
            });
        }
    };

    emit(ints);
    table.addSeparator();
    emit(fps);
    std::printf("%s", table.toString().c_str());

    std::printf("\nNAV over NO, geomean: int %s   fp %s   "
                "(paper: +29%% int, +113%% fp)\n",
                formatSpeedup(meanSpeedup(nav_ipc, no_ipc, ints))
                    .c_str(),
                formatSpeedup(meanSpeedup(nav_ipc, no_ipc, fps))
                    .c_str());
    std::printf("ORACLE over NAV, geomean: int %s   fp %s   "
                "(the net miss-speculation penalty)\n",
                formatSpeedup(meanSpeedup(oracle_ipc, nav_ipc, ints))
                    .c_str(),
                formatSpeedup(meanSpeedup(oracle_ipc, nav_ipc, fps))
                    .c_str());
    return cli.finish();
}
