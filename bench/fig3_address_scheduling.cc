/**
 * @file
 * Regenerates Figure 3: naive memory dependence speculation on top of
 * an ADDRESS-BASED scheduler. Part (a): relative performance of AS/NAV
 * over AS/NO for scheduler latencies of 0, 1 and 2 cycles (each bar
 * uses the AS/NO machine with the SAME latency as its base, as the
 * paper does). Part (b): absolute IPC of the AS/NO base machines.
 *
 * Paper findings: AS/NAV wins modestly (+4.6% int / +5.3% fp at 0
 * cycles), the win grows with scheduler latency, and 147.vortex /
 * 145.fpppp lose from speculative-load resource contention.
 */

#include <cstdio>
#include <map>

#include "sim/table.hh"
#include "sweep/bench_cli.hh"

using namespace cwsim;
using namespace cwsim::harness;

int
main(int argc, char **argv)
{
    sweep::BenchCli cli(argc, argv);

    std::printf("Figure 3: naive speculation with an address-based "
                "scheduler, by scheduler latency\n\n");

    auto ints = cli.names(workloads::intNames());
    auto fps = cli.names(workloads::fpNames());

    sweep::SweepPlan plan;
    auto enqueue = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            for (Cycles lat = 0; lat <= 2; ++lat) {
                plan.add(name, withPolicy(makeW128Config(),
                                          LsqModel::AS,
                                          SpecPolicy::No, lat));
                plan.add(name, withPolicy(makeW128Config(),
                                          LsqModel::AS,
                                          SpecPolicy::Naive, lat));
            }
        }
    };
    enqueue(ints);
    enqueue(fps);
    auto results = cli.run(plan);

    TextTable table;
    table.setHeader({"Program", "NAV/NO @0cy", "NAV/NO @1cy",
                     "NAV/NO @2cy", "AS/NO 0cy IPC", "AS/NO 1cy IPC",
                     "AS/NO 2cy IPC"});

    std::map<std::string, double> nav_ipc[3], no_ipc[3];

    size_t next = 0;
    auto emit = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            double rel[3];
            double base_ipc[3];
            for (Cycles lat = 0; lat <= 2; ++lat) {
                const RunResult &r_no = results[next++];
                const RunResult &r_nav = results[next++];
                rel[lat] = r_nav.ipc() / r_no.ipc();
                base_ipc[lat] = r_no.ipc();
                nav_ipc[lat][name] = r_nav.ipc();
                no_ipc[lat][name] = r_no.ipc();
            }
            table.addRow({
                name,
                formatSpeedup(rel[0]),
                formatSpeedup(rel[1]),
                formatSpeedup(rel[2]),
                strfmt("%.2f", base_ipc[0]),
                strfmt("%.2f", base_ipc[1]),
                strfmt("%.2f", base_ipc[2]),
            });
        }
    };

    emit(ints);
    table.addSeparator();
    emit(fps);
    std::printf("%s", table.toString().c_str());

    std::printf("\nAS/NAV over AS/NO geomeans (same-latency base, as "
                "in the paper):\n");
    for (Cycles lat = 0; lat <= 2; ++lat) {
        std::printf("  @%ucy: int %s   fp %s%s\n",
                    static_cast<unsigned>(lat),
                    formatSpeedup(meanSpeedup(nav_ipc[lat], no_ipc[lat],
                                              ints))
                        .c_str(),
                    formatSpeedup(meanSpeedup(nav_ipc[lat], no_ipc[lat],
                                              fps))
                        .c_str(),
                    lat == 0 ? "   (paper: +4.6% / +5.3%)" : "");
    }
    std::printf("\nShape check: speculation's advantage over waiting "
                "GROWS with scheduler latency,\nwhile absolute AS/NO "
                "IPC falls — latency makes pure address scheduling an\n"
                "under-performing option (Section 3.4).\n");
    return cli.finish();
}
