/**
 * @file
 * Regenerates Figure 4: oracle disambiguation vs address-based
 * scheduling plus naive speculation. All bars are relative to the
 * machine with a 0-cycle address-based scheduler and no speculation
 * (AS/NO @0cy). Bars: NAS/ORACLE, then AS/NAV with 0/1/2-cycle
 * scheduler latency.
 *
 * Paper findings: the 0-cycle AS/NAV and NAS/ORACLE perform about
 * equally well (AS/NAV occasionally a bit better, because the oracle's
 * stores wait for data before issuing); at 1-2 cycles of scheduler
 * latency AS/NAV degrades into an under-performing option.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "sim/table.hh"
#include "sweep/bench_cli.hh"

using namespace cwsim;
using namespace cwsim::harness;

int
main(int argc, char **argv)
{
    sweep::BenchCli cli(argc, argv);

    std::printf("Figure 4: NAS/ORACLE and AS/NAV(0/1/2cy), relative to "
                "AS/NO @0cy\n\n");

    auto ints = cli.names(workloads::intNames());
    auto fps = cli.names(workloads::fpNames());

    sweep::SweepPlan plan;
    auto enqueue = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            plan.add(name, withPolicy(makeW128Config(), LsqModel::AS,
                                      SpecPolicy::No, 0));
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::Oracle));
            for (Cycles lat = 0; lat <= 2; ++lat) {
                plan.add(name, withPolicy(makeW128Config(),
                                          LsqModel::AS,
                                          SpecPolicy::Naive, lat));
            }
        }
    };
    enqueue(ints);
    enqueue(fps);
    auto results = cli.run(plan);

    TextTable table;
    table.setHeader({"Program", "NAS/ORACLE", "AS/NAV 0cy",
                     "AS/NAV 1cy", "AS/NAV 2cy"});

    std::map<std::string, double> oracle_rel, nav0_rel, nav2_rel;

    size_t next = 0;
    auto emit = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            double base = results[next++].ipc();
            double oracle = results[next++].ipc();
            double nav[3];
            for (Cycles lat = 0; lat <= 2; ++lat)
                nav[lat] = results[next++].ipc();
            oracle_rel[name] = oracle / base;
            nav0_rel[name] = nav[0] / base;
            nav2_rel[name] = nav[2] / base;
            table.addRow({
                name,
                formatSpeedup(oracle / base),
                formatSpeedup(nav[0] / base),
                formatSpeedup(nav[1] / base),
                formatSpeedup(nav[2] / base),
            });
        }
    };

    emit(ints);
    table.addSeparator();
    emit(fps);
    std::printf("%s", table.toString().c_str());

    auto summary = [&](const std::vector<std::string> &keys,
                       const char *label) {
        std::vector<double> o, n0, n2;
        for (const auto &k : keys) {
            o.push_back(oracle_rel[k]);
            n0.push_back(nav0_rel[k]);
            n2.push_back(nav2_rel[k]);
        }
        std::printf("  %s: NAS/ORACLE %s  AS/NAV@0 %s  AS/NAV@2 %s\n",
                    label, formatSpeedup(geomean(o)).c_str(),
                    formatSpeedup(geomean(n0)).c_str(),
                    formatSpeedup(geomean(n2)).c_str());
    };
    std::printf("\nGeomean vs AS/NO @0cy:\n");
    summary(ints, "int");
    summary(fps, "fp ");
    std::printf("\nShape check: NAS/ORACLE tracks AS/NAV@0; scheduler "
                "latency drags AS/NAV below it.\n");
    return cli.finish();
}
