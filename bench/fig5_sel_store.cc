/**
 * @file
 * Regenerates Figure 5: selective speculation (NAS/SEL) and the store
 * barrier policy (NAS/STORE) as alternatives to address-based
 * scheduling, reported relative to naive speculation (NAS/NAV).
 *
 * Paper findings: neither technique is robust — each sometimes improves
 * on naive speculation and sometimes falls below it, and no significant
 * average improvement is observed; both fall well short of ORACLE.
 */

#include <cstdio>
#include <map>

#include "sim/table.hh"
#include "sweep/bench_cli.hh"

using namespace cwsim;
using namespace cwsim::harness;

int
main(int argc, char **argv)
{
    sweep::BenchCli cli(argc, argv);

    std::printf("Figure 5: selective (SEL) and store barrier (STORE) "
                "speculation, relative to NAS/NAV\n\n");

    auto ints = cli.names(workloads::intNames());
    auto fps = cli.names(workloads::fpNames());

    sweep::SweepPlan plan;
    auto enqueue = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::Naive));
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::Selective));
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::StoreBarrier));
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::Oracle));
        }
    };
    enqueue(ints);
    enqueue(fps);
    auto results = cli.run(plan);

    TextTable table;
    table.setHeader({"Program", "SEL/NAV", "STORE/NAV", "ORACLE/NAV",
                     "SEL ms%", "STORE ms%"});

    std::map<std::string, double> sel_ipc, store_ipc, nav_ipc;

    size_t next = 0;
    auto emit = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            const RunResult &r_nav = results[next++];
            const RunResult &r_sel = results[next++];
            const RunResult &r_store = results[next++];
            const RunResult &r_or = results[next++];
            nav_ipc[name] = r_nav.ipc();
            sel_ipc[name] = r_sel.ipc();
            store_ipc[name] = r_store.ipc();
            table.addRow({
                name,
                formatSpeedup(r_sel.ipc() / r_nav.ipc()),
                formatSpeedup(r_store.ipc() / r_nav.ipc()),
                formatSpeedup(r_or.ipc() / r_nav.ipc()),
                formatPct(r_sel.misspecRate(), 2),
                formatPct(r_store.misspecRate(), 2),
            });
        }
    };

    emit(ints);
    table.addSeparator();
    emit(fps);
    std::printf("%s", table.toString().c_str());

    std::printf("\nGeomean over NAV: SEL int %s fp %s | STORE int %s "
                "fp %s\n",
                formatSpeedup(meanSpeedup(sel_ipc, nav_ipc, ints))
                    .c_str(),
                formatSpeedup(meanSpeedup(sel_ipc, nav_ipc, fps))
                    .c_str(),
                formatSpeedup(meanSpeedup(store_ipc, nav_ipc, ints))
                    .c_str(),
                formatSpeedup(meanSpeedup(store_ipc, nav_ipc, fps))
                    .c_str());
    std::printf("\nShape check: no significant average gain over naive "
                "speculation; per-program results\nswing both ways — "
                "neither policy is robust (paper Section 3.5).\n");
    return cli.finish();
}
