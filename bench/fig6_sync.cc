/**
 * @file
 * Regenerates Figure 6: speculation/synchronization (NAS/SYNC) relative
 * to naive speculation (NAS/NAV), with NAS/ORACLE as the ceiling.
 *
 * Paper findings: SYNC captures most of the oracle's advantage —
 * +19.7% (int) and +19.1% (fp) over NAV on average, against the
 * oracle's +20.9% / +20.4% — while keeping miss-speculations virtually
 * non-existent (Table 4), all WITHOUT an address-based scheduler.
 */

#include <cstdio>
#include <map>

#include "harness/harness.hh"
#include "sim/table.hh"

using namespace cwsim;
using namespace cwsim::harness;

int
main()
{
    Runner runner(benchScale());

    std::printf("Figure 6: speculation/synchronization vs naive "
                "speculation (base: NAS/NAV)\n\n");

    TextTable table;
    table.setHeader({"Program", "SYNC/NAV", "ORACLE/NAV",
                     "SYNC of ORACLE gain"});

    std::map<std::string, double> nav_ipc, sync_ipc, oracle_ipc;

    auto sweep = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            RunResult r_nav = runner.run(
                name, withPolicy(makeW128Config(), LsqModel::NAS,
                                 SpecPolicy::Naive));
            RunResult r_sync = runner.run(
                name, withPolicy(makeW128Config(), LsqModel::NAS,
                                 SpecPolicy::SpecSync));
            RunResult r_or = runner.run(
                name, withPolicy(makeW128Config(), LsqModel::NAS,
                                 SpecPolicy::Oracle));
            nav_ipc[name] = r_nav.ipc();
            sync_ipc[name] = r_sync.ipc();
            oracle_ipc[name] = r_or.ipc();
            double oracle_gain = r_or.ipc() - r_nav.ipc();
            double sync_gain = r_sync.ipc() - r_nav.ipc();
            std::string captured =
                oracle_gain > 1e-6
                    ? strfmt("%.0f%%", 100.0 * sync_gain / oracle_gain)
                    : "n/a";
            table.addRow({
                name,
                formatSpeedup(r_sync.ipc() / r_nav.ipc()),
                formatSpeedup(r_or.ipc() / r_nav.ipc()),
                captured,
            });
        }
    };

    sweep(workloads::intNames());
    table.addSeparator();
    sweep(workloads::fpNames());
    std::printf("%s", table.toString().c_str());

    std::printf("\nGeomean over NAV:\n");
    std::printf("  SYNC:   int %s   fp %s   (paper: +19.7%% / +19.1%%)\n",
                formatSpeedup(meanSpeedup(sync_ipc, nav_ipc,
                                          workloads::intNames()))
                    .c_str(),
                formatSpeedup(meanSpeedup(sync_ipc, nav_ipc,
                                          workloads::fpNames()))
                    .c_str());
    std::printf("  ORACLE: int %s   fp %s   (paper: +20.9%% / +20.4%%)\n",
                formatSpeedup(meanSpeedup(oracle_ipc, nav_ipc,
                                          workloads::intNames()))
                    .c_str(),
                formatSpeedup(meanSpeedup(oracle_ipc, nav_ipc,
                                          workloads::fpNames()))
                    .c_str());
    std::printf("\nShape check: SYNC lands within a whisker of the "
                "oracle without any address-based scheduler.\n");
    return reportFailures(runner) ? 1 : 0;
}
