/**
 * @file
 * Regenerates Figure 6: speculation/synchronization (NAS/SYNC) relative
 * to naive speculation (NAS/NAV), with NAS/ORACLE as the ceiling.
 *
 * Paper findings: SYNC captures most of the oracle's advantage —
 * +19.7% (int) and +19.1% (fp) over NAV on average, against the
 * oracle's +20.9% / +20.4% — while keeping miss-speculations virtually
 * non-existent (Table 4), all WITHOUT an address-based scheduler.
 */

#include <cstdio>
#include <map>

#include "sim/table.hh"
#include "sweep/bench_cli.hh"

using namespace cwsim;
using namespace cwsim::harness;

int
main(int argc, char **argv)
{
    sweep::BenchCli cli(argc, argv);

    std::printf("Figure 6: speculation/synchronization vs naive "
                "speculation (base: NAS/NAV)\n\n");

    auto ints = cli.names(workloads::intNames());
    auto fps = cli.names(workloads::fpNames());

    sweep::SweepPlan plan;
    auto enqueue = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::Naive));
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::SpecSync));
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::Oracle));
        }
    };
    enqueue(ints);
    enqueue(fps);
    auto results = cli.run(plan);

    TextTable table;
    table.setHeader({"Program", "SYNC/NAV", "ORACLE/NAV",
                     "SYNC of ORACLE gain"});

    std::map<std::string, double> nav_ipc, sync_ipc, oracle_ipc;

    size_t next = 0;
    auto emit = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            const RunResult &r_nav = results[next++];
            const RunResult &r_sync = results[next++];
            const RunResult &r_or = results[next++];
            nav_ipc[name] = r_nav.ipc();
            sync_ipc[name] = r_sync.ipc();
            oracle_ipc[name] = r_or.ipc();
            double oracle_gain = r_or.ipc() - r_nav.ipc();
            double sync_gain = r_sync.ipc() - r_nav.ipc();
            std::string captured =
                oracle_gain > 1e-6
                    ? strfmt("%.0f%%", 100.0 * sync_gain / oracle_gain)
                    : "n/a";
            table.addRow({
                name,
                formatSpeedup(r_sync.ipc() / r_nav.ipc()),
                formatSpeedup(r_or.ipc() / r_nav.ipc()),
                captured,
            });
        }
    };

    emit(ints);
    table.addSeparator();
    emit(fps);
    std::printf("%s", table.toString().c_str());

    std::printf("\nGeomean over NAV:\n");
    std::printf("  SYNC:   int %s   fp %s   (paper: +19.7%% / +19.1%%)\n",
                formatSpeedup(meanSpeedup(sync_ipc, nav_ipc, ints))
                    .c_str(),
                formatSpeedup(meanSpeedup(sync_ipc, nav_ipc, fps))
                    .c_str());
    std::printf("  ORACLE: int %s   fp %s   (paper: +20.9%% / +20.4%%)\n",
                formatSpeedup(meanSpeedup(oracle_ipc, nav_ipc, ints))
                    .c_str(),
                formatSpeedup(meanSpeedup(oracle_ipc, nav_ipc, fps))
                    .c_str());
    std::printf("\nShape check: SYNC lands within a whisker of the "
                "oracle without any address-based scheduler.\n");
    return cli.finish();
}
