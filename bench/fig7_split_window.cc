/**
 * @file
 * Regenerates Figure 7 / Section 3.7: the interaction of window type
 * and memory dependence speculation. Under the continuous window, a
 * 0-cycle address-based scheduler with naive speculation eliminates
 * virtually all miss-speculations; under a distributed split window —
 * where units fetch their trace chunks independently, so a later unit's
 * load can beat an earlier unit's store to the address stage — the same
 * mechanism keeps miss-speculating.
 *
 * The split-window model runs outside the Runner (it is not a timing
 * Processor), so this bench parallelizes its per-workload loop with
 * sweep::parallelFor instead of a SweepPlan; each index owns its output
 * slot, and rows are rendered in workload order afterwards.
 */

#include <cstdio>
#include <vector>

#include "harness/harness.hh"
#include "isa/builder.hh"
#include "sim/table.hh"
#include "split/split_window.hh"
#include "sweep/bench_cli.hh"

using namespace cwsim;
using namespace cwsim::harness;

namespace
{

/** The Figure 7(a) loop: a recurrence carried through memory. */
Program
figure7Loop(int n)
{
    ProgramBuilder b;
    Addr a = b.dataAlloc(4 * (n + 2));
    Addr side = b.dataAlloc(4 * (2 * n + 2));
    b.dataW32(a, 3);
    b.la(ir(1), a);
    b.la(ir(10), side);
    for (int i = 0; i < n; ++i) {
        int32_t off = 4 * i;
        b.lw(ir(3), ir(1), off);     // load a[i-1]
        b.mul(ir(4), ir(3), ir(3));
        b.andi(ir(4), ir(4), 1023);
        b.sw(ir(4), ir(1), off + 4); // store a[i]
        b.lw(ir(5), ir(10), off);
        b.lw(ir(6), ir(10), off + 4);
        b.add(ir(7), ir(5), ir(6));
    }
    b.halt();
    return b.build();
}

struct ModelResult
{
    uint64_t violations = 0;
    double misspecPct = 0;
    double ipc = 0;
    /** Commit-slot accounting, indexed by obs::CpiCause. */
    std::array<uint64_t, obs::num_cpi_causes> cpi{};
};

ModelResult
runModel(const std::vector<TraceEntry> &trace, bool split,
         SpecPolicy policy = SpecPolicy::Naive)
{
    SplitConfig cfg;
    if (!split)
        cfg = SplitConfig::continuous();
    cfg.lsqModel = LsqModel::AS;
    cfg.policy = policy;
    cfg.asLatency = 0;
    SplitWindowSim sim(cfg, trace);
    sim.run();
    ModelResult r;
    r.violations = sim.violations();
    r.misspecPct = 100.0 * sim.misspecRate();
    r.ipc = sim.ipc();
    for (size_t i = 0; i < obs::num_cpi_causes; ++i)
        r.cpi[i] = sim.cpiStack().slot(obs::CpiCause(i));
    return r;
}

/** One CPI-stack table row: percent of total slots per cause. */
std::vector<std::string>
cpiRow(const std::string &label, const ModelResult &r)
{
    uint64_t total = 0;
    for (uint64_t s : r.cpi)
        total += s;
    std::vector<std::string> row = {label};
    for (uint64_t s : r.cpi) {
        row.push_back(total ? formatPct(static_cast<double>(s) / total)
                            : "n/a");
    }
    return row;
}

/** Rolled variant (8x unrolled body): shared static dependence PCs. */
Program
rolledLoop(int outer)
{
    constexpr int unroll = 8;
    ProgramBuilder b;
    Addr a = b.dataAlloc(4 * (outer * unroll + 2));
    Addr side = b.dataAlloc(4 * (2 * unroll + 2));
    b.dataW32(a, 3);
    b.la(ir(1), a);
    b.la(ir(10), side);
    b.li32(ir(2), static_cast<uint32_t>(outer));
    auto loop = b.hereLabel();
    b.addi(ir(1), ir(1), 4 * unroll);
    for (int u = 0; u < unroll; ++u) {
        int32_t off = 4 * (u - unroll);
        b.lw(ir(3), ir(1), off);
        b.mul(ir(4), ir(3), ir(3));
        b.andi(ir(4), ir(4), 1023);
        b.sw(ir(4), ir(1), off + 4);
        b.lw(ir(5), ir(10), 4 * u);
        b.add(ir(7), ir(5), ir(4));
    }
    b.addi(ir(2), ir(2), -1);
    b.bne(ir(2), reg_zero, loop);
    b.halt();
    return b.build();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sweep::BenchCli cli(argc, argv, benchScale() / 2);

    std::printf("Figure 7 / Section 3.7: AS/NAV (0-cycle scheduler) "
                "under continuous vs split windows\n");
    std::printf("(split = 4 units x 32-entry sub-windows fetching "
                "independently)\n\n");

    TextTable table;
    table.setHeader({"Workload", "cont. misspec", "split misspec",
                     "cont. IPC", "split IPC"});

    // The paper's illustrative loop first.
    {
        PrepassOptions opts;
        opts.recordTrace = true;
        PrepassResult pre = runPrepass(figure7Loop(2000), opts);
        ModelResult cont = runModel(pre.trace, false);
        ModelResult split = runModel(pre.trace, true);
        table.addRow({
            "fig7 loop",
            strfmt("%.3f%% (%llu)", cont.misspecPct,
                   static_cast<unsigned long long>(cont.violations)),
            strfmt("%.3f%% (%llu)", split.misspecPct,
                   static_cast<unsigned long long>(split.violations)),
            strfmt("%.2f", cont.ipc),
            strfmt("%.2f", split.ipc),
        });
        table.addSeparator();
    }

    // The full workload suite on the same two models. Each index owns
    // its slot; rows are emitted in name order after the join.
    auto names = cli.names(workloads::allNames());
    struct SuiteRow
    {
        ModelResult cont;
        ModelResult split;
    };
    std::vector<SuiteRow> rows(names.size());
    sweep::parallelFor(
        names.size(), cli.engine().workers(), [&](size_t i) {
            Workload w = workloads::build(names[i], cli.scale());
            PrepassOptions opts;
            opts.recordTrace = true;
            PrepassResult pre = runPrepass(w.program, opts);
            rows[i] = {runModel(pre.trace, false),
                       runModel(pre.trace, true)};
        });

    uint64_t cont_total = 0, split_total = 0;
    for (size_t i = 0; i < names.size(); ++i) {
        const SuiteRow &r = rows[i];
        cont_total += r.cont.violations;
        split_total += r.split.violations;
        table.addRow({
            names[i],
            strfmt("%.3f%% (%llu)", r.cont.misspecPct,
                   static_cast<unsigned long long>(r.cont.violations)),
            strfmt("%.3f%% (%llu)", r.split.misspecPct,
                   static_cast<unsigned long long>(r.split.violations)),
            strfmt("%.2f", r.cont.ipc),
            strfmt("%.2f", r.split.ipc),
        });
    }
    std::printf("%s", table.toString().c_str());

    if (cli.cpiStackEnabled()) {
        // The split model keeps its own CPI stack (it is not a timing
        // Processor, so the shared BenchCli table never sees it).
        std::printf("\nCPI stack (%% of commit slots = cycles x "
                    "width):\n");
        TextTable cpi_table;
        std::vector<std::string> header = {"workload / window"};
        for (size_t i = 0; i < obs::num_cpi_causes; ++i)
            header.push_back(obs::toString(obs::CpiCause(i)));
        cpi_table.setHeader(header);
        for (size_t i = 0; i < names.size(); ++i) {
            cpi_table.addRow(cpiRow(names[i] + " cont.",
                                    rows[i].cont));
            cpi_table.addRow(cpiRow(names[i] + " split",
                                    rows[i].split));
        }
        std::printf("%s", cpi_table.toString().c_str());
    }

    std::printf("\nTotal miss-speculations: continuous %llu, split "
                "%llu.\n",
                static_cast<unsigned long long>(cont_total),
                static_cast<unsigned long long>(split_total));
    std::printf("Shape check: the continuous window avoids virtually "
                "all miss-speculations;\nthe split window cannot, even "
                "with a 0-cycle address-based scheduler (Section 3.7).\n");

    // What DOES save the split window: speculation/synchronization
    // (the paper's prior work [19], reproduced on the rolled loop
    // whose static dependence pairs repeat).
    {
        PrepassOptions opts;
        opts.recordTrace = true;
        PrepassResult pre = runPrepass(rolledLoop(400), opts);
        SplitConfig nav_cfg;
        nav_cfg.chunkSize = 51;
        nav_cfg.policy = SpecPolicy::Naive;
        SplitWindowSim nav(nav_cfg, pre.trace);
        nav.run();
        SplitConfig sync_cfg = nav_cfg;
        sync_cfg.policy = SpecPolicy::SpecSync;
        SplitWindowSim sync(sync_cfg, pre.trace);
        sync.run();
        std::printf("\nRescuing the split window (rolled loop, one "
                    "body per unit):\n");
        std::printf("  split NAV:  %llu miss-speculations, IPC %.2f\n",
                    static_cast<unsigned long long>(nav.violations()),
                    nav.ipc());
        std::printf("  split SYNC: %llu miss-speculations, IPC %.2f "
                    "— advanced dependence prediction is what a split "
                    "window needs.\n",
                    static_cast<unsigned long long>(sync.violations()),
                    sync.ipc());
    }
    return cli.finish();
}
