/**
 * @file
 * google-benchmark microbenchmarks for the simulator's hot structures:
 * MDPT lookup/training, branch predictor lookups, cache accesses, the
 * event queue, functional memory, and instruction decode. These guard
 * the simulator's own performance (host-side), not the modelled
 * machine.
 */

#include <benchmark/benchmark.h>

#include "base/random.hh"
#include "bpred/bpred.hh"
#include "isa/builder.hh"
#include "isa/static_inst.hh"
#include "mdp/mdp_table.hh"
#include "mem/functional_memory.hh"
#include "mem/timing_cache.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"

using namespace cwsim;

namespace
{

void
BM_MdptLookup(benchmark::State &state)
{
    MdpTable table{MdpConfig{}};
    // Pre-train a working set of static PCs.
    for (unsigned i = 0; i < 256; ++i)
        table.pair(0x1000 + 8 * i, 0x9000 + 8 * i);
    Random rng(1);
    for (auto _ : state) {
        Addr pc = 0x1000 + 8 * (rng.next() & 255);
        benchmark::DoNotOptimize(table.synonymOf(pc));
    }
}
BENCHMARK(BM_MdptLookup);

void
BM_MdptTrain(benchmark::State &state)
{
    MdpTable table{MdpConfig{}};
    Random rng(2);
    for (auto _ : state) {
        Addr load_pc = 0x1000 + 8 * (rng.next() & 1023);
        Addr store_pc = 0x9000 + 8 * (rng.next() & 1023);
        benchmark::DoNotOptimize(table.pair(load_pc, store_pc));
    }
}
BENCHMARK(BM_MdptTrain);

void
BM_BpredPredictUpdate(benchmark::State &state)
{
    BranchPredictor bp{BPredConfig{}};
    StaticInst br(Opcode::BNE, reg_invalid, ir(1), ir(2), -4);
    Random rng(3);
    for (auto _ : state) {
        Addr pc = 0x2000 + 4 * (rng.next() & 4095);
        auto pred = bp.predict(br, pc);
        bool taken = rng.chance(0.6);
        bp.update(br, pc, taken, branchTarget(br, pc),
                  pred.checkpoint.globalHist);
        if (pred.taken != taken)
            bp.repairAndResolve(pred.checkpoint, taken);
    }
}
BENCHMARK(BM_BpredPredictUpdate);

void
BM_CacheHit(benchmark::State &state)
{
    EventQueue eq;
    MemConfig mem_cfg;
    MainMemory mem(mem_cfg, eq);
    TimingCache cache(mem_cfg.dcache, 0, eq, mem);
    // Warm a small working set.
    for (Addr a = 0; a < 8 * 1024; a += 32)
        cache.probeWarm(a, false);
    Random rng(4);
    uint64_t sink = 0;
    for (auto _ : state) {
        Addr addr = (rng.next() % (8 * 1024)) & ~Addr(7);
        cache.access(addr, 8, false, [&sink] { ++sink; });
        eq.runUntil(eq.curTick() + 1);
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_CacheHit);

void
BM_EventQueueScheduleFire(benchmark::State &state)
{
    EventQueue eq;
    uint64_t sink = 0;
    for (auto _ : state) {
        eq.scheduleIn(3, [&sink] { ++sink; });
        eq.runUntil(eq.curTick() + 1);
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleFire);

void
BM_FunctionalMemoryReadWrite(benchmark::State &state)
{
    FunctionalMemory mem;
    Random rng(5);
    for (auto _ : state) {
        Addr addr = rng.next() % (1 << 20);
        mem.write(addr, 8, addr);
        benchmark::DoNotOptimize(mem.read(addr, 8));
    }
}
BENCHMARK(BM_FunctionalMemoryReadWrite);

void
BM_DecodeInstruction(benchmark::State &state)
{
    StaticInst lw(Opcode::LW, ir(5), ir(3), reg_invalid, 16);
    uint32_t word = lw.encode();
    for (auto _ : state)
        benchmark::DoNotOptimize(StaticInst::decode(word));
}
BENCHMARK(BM_DecodeInstruction);

} // anonymous namespace

BENCHMARK_MAIN();
