/**
 * @file
 * Regenerates Table 1 of the paper: benchmark execution
 * characteristics — dynamic instruction count and the dynamic load /
 * store fractions — for the 18 cwsim kernels standing in for SPEC'95.
 *
 * Paper values are printed alongside for comparison. Instruction counts
 * differ by construction (the kernels are scaled down so the full
 * evaluation fits in minutes); the load/store FRACTIONS are the
 * properties the kernels are tuned to match.
 */

#include <cstdio>

#include "harness/harness.hh"
#include "sim/table.hh"

using namespace cwsim;

int
main()
{
    harness::Runner runner;

    std::printf("Table 1: Benchmark execution characteristics\n");
    std::printf("(IC in thousands here vs millions in the paper; "
                "SR = paper's timing:functional sampling ratio)\n\n");

    TextTable table;
    table.setHeader({"Program", "IC(K)", "Loads", "Stores",
                     "Loads(paper)", "Stores(paper)", "SR(paper)"});

    auto emit = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            const Workload &w = runner.workload(name);
            const PrepassResult &pre = runner.prepass(name);
            double loads = 100.0 * static_cast<double>(pre.loadCount) /
                           static_cast<double>(pre.instCount);
            double stores = 100.0 *
                            static_cast<double>(pre.storeCount) /
                            static_cast<double>(pre.instCount);
            table.addRow({
                w.name,
                strfmt("%.1f", pre.instCount / 1000.0),
                strfmt("%.1f%%", loads),
                strfmt("%.1f%%", stores),
                strfmt("%.1f%%", w.paperLoadPct),
                strfmt("%.1f%%", w.paperStorePct),
                w.paperSamplingRatio,
            });
        }
    };

    emit(workloads::intNames());
    table.addSeparator();
    emit(workloads::fpNames());

    std::printf("%s\n", table.toString().c_str());
    return harness::reportFailures(runner) ? 1 : 0;
}
