/**
 * @file
 * Regenerates Table 1 of the paper: benchmark execution
 * characteristics — dynamic instruction count and the dynamic load /
 * store fractions — for the 18 cwsim kernels standing in for SPEC'95.
 *
 * Paper values are printed alongside for comparison. Instruction counts
 * differ by construction (the kernels are scaled down so the full
 * evaluation fits in minutes); the load/store FRACTIONS are the
 * properties the kernels are tuned to match.
 *
 * No timing simulations here — only the functional pre-pass — so the
 * bench warms the Runner's once-latched pre-pass cache in parallel and
 * then reads rows out serially in name order.
 */

#include <cstdio>

#include "sim/table.hh"
#include "sweep/bench_cli.hh"

using namespace cwsim;

int
main(int argc, char **argv)
{
    sweep::BenchCli cli(argc, argv);
    harness::Runner &runner = cli.runner();

    std::printf("Table 1: Benchmark execution characteristics\n");
    std::printf("(IC in thousands here vs millions in the paper; "
                "SR = paper's timing:functional sampling ratio)\n\n");

    auto ints = cli.names(workloads::intNames());
    auto fps = cli.names(workloads::fpNames());

    // Warm every pre-pass concurrently; the once-latch in the Runner
    // makes this both safe and idempotent.
    std::vector<std::string> all = ints;
    all.insert(all.end(), fps.begin(), fps.end());
    sweep::parallelFor(all.size(), cli.engine().workers(),
                       [&](size_t i) { runner.prepass(all[i]); });

    TextTable table;
    table.setHeader({"Program", "IC(K)", "Loads", "Stores",
                     "Loads(paper)", "Stores(paper)", "SR(paper)"});

    auto emit = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            const Workload &w = runner.workload(name);
            const PrepassResult &pre = runner.prepass(name);
            double loads = 100.0 * static_cast<double>(pre.loadCount) /
                           static_cast<double>(pre.instCount);
            double stores = 100.0 *
                            static_cast<double>(pre.storeCount) /
                            static_cast<double>(pre.instCount);
            table.addRow({
                w.name,
                strfmt("%.1f", pre.instCount / 1000.0),
                strfmt("%.1f%%", loads),
                strfmt("%.1f%%", stores),
                strfmt("%.1f%%", w.paperLoadPct),
                strfmt("%.1f%%", w.paperStorePct),
                w.paperSamplingRatio,
            });
        }
    };

    emit(ints);
    table.addSeparator();
    emit(fps);

    std::printf("%s\n", table.toString().c_str());
    return cli.finish();
}
