/**
 * @file
 * Regenerates Table 3: the fraction of committed loads delayed by FALSE
 * dependences under NAS/NO on the 128-entry window ("FD"), and the mean
 * false-dependence resolution latency in cycles ("RL"). A load counts
 * as false-dependence-delayed when it was ready to access memory but
 * had to wait for preceding stores with which (per the oracle pre-pass)
 * it has no true dependence.
 */

#include <cstdio>

#include "sim/table.hh"
#include "sweep/bench_cli.hh"

using namespace cwsim;
using namespace cwsim::harness;

namespace
{

struct PaperRow
{
    const char *name;
    double fd;
    double rl;
};

// Table 3 of the paper.
const PaperRow paper_rows[] = {
    {"099.go", 26.4, 13.7},      {"124.m88ksim", 59.9, 14.8},
    {"126.gcc", 39.0, 47.3},     {"129.compress", 70.3, 18.5},
    {"130.li", 44.2, 39.1},      {"132.ijpeg", 70.3, 22.9},
    {"134.perl", 59.8, 39.1},    {"147.vortex", 67.2, 54.5},
    {"101.tomcatv", 61.2, 36.3}, {"102.swim", 91.0, 5.4},
    {"103.su2cor", 79.6, 91.2},  {"104.hydro2d", 85.2, 9.7},
    {"107.mgrid", 45.4, 26.6},   {"110.applu", 45.4, 26.6},
    {"125.turb3d", 77.0, 55.6},  {"141.apsi", 77.5, 78.7},
    {"145.fpppp", 88.7, 51.4},   {"146.wave5", 83.6, 9.7},
};

const PaperRow &
paperRow(const std::string &name)
{
    for (const PaperRow &row : paper_rows) {
        if (name == row.name)
            return row;
    }
    return paper_rows[0];
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sweep::BenchCli cli(argc, argv);

    std::printf("Table 3: loads delayed by false dependences under "
                "NAS/NO (128-entry window)\n");
    std::printf("FD = fraction of committed loads with only-false "
                "dependences; RL = mean resolution latency\n\n");

    auto ints = cli.names(workloads::intNames());
    auto fps = cli.names(workloads::fpNames());

    sweep::SweepPlan plan;
    auto enqueue = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::No));
        }
    };
    enqueue(ints);
    enqueue(fps);
    auto results = cli.run(plan);

    TextTable table;
    table.setHeader({"Program", "FD", "RL", "FD(paper)", "RL(paper)"});

    size_t next = 0;
    auto emit = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            const RunResult &r = results[next++];
            const PaperRow &paper = paperRow(name);
            table.addRow({
                name,
                formatPct(r.falseDepFraction()),
                strfmt("%.1f", r.falseDepLatency),
                strfmt("%.1f%%", paper.fd),
                strfmt("%.1f", paper.rl),
            });
        }
    };

    emit(ints);
    table.addSeparator();
    emit(fps);
    std::printf("%s", table.toString().c_str());

    std::printf("\nShape check: many (often most) loads are delayed by "
                "false dependences,\nwith fp codes skewing higher than "
                "int codes, and multi-cycle resolution latencies.\n");
    return cli.finish();
}
