/**
 * @file
 * Regenerates Table 3: the fraction of committed loads delayed by FALSE
 * dependences under NAS/NO on the 128-entry window ("FD"), and the mean
 * false-dependence resolution latency in cycles ("RL"). A load counts
 * as false-dependence-delayed when it was ready to access memory but
 * had to wait for preceding stores with which (per the oracle pre-pass)
 * it has no true dependence.
 */

#include <cstdio>

#include "harness/harness.hh"
#include "sim/table.hh"

using namespace cwsim;
using namespace cwsim::harness;

namespace
{

struct PaperRow
{
    const char *name;
    double fd;
    double rl;
};

// Table 3 of the paper.
const PaperRow paper_rows[] = {
    {"099.go", 26.4, 13.7},      {"124.m88ksim", 59.9, 14.8},
    {"126.gcc", 39.0, 47.3},     {"129.compress", 70.3, 18.5},
    {"130.li", 44.2, 39.1},      {"132.ijpeg", 70.3, 22.9},
    {"134.perl", 59.8, 39.1},    {"147.vortex", 67.2, 54.5},
    {"101.tomcatv", 61.2, 36.3}, {"102.swim", 91.0, 5.4},
    {"103.su2cor", 79.6, 91.2},  {"104.hydro2d", 85.2, 9.7},
    {"107.mgrid", 45.4, 26.6},   {"110.applu", 45.4, 26.6},
    {"125.turb3d", 77.0, 55.6},  {"141.apsi", 77.5, 78.7},
    {"145.fpppp", 88.7, 51.4},   {"146.wave5", 83.6, 9.7},
};

const PaperRow &
paperRow(const std::string &name)
{
    for (const PaperRow &row : paper_rows) {
        if (name == row.name)
            return row;
    }
    return paper_rows[0];
}

} // anonymous namespace

int
main()
{
    Runner runner(benchScale());

    std::printf("Table 3: loads delayed by false dependences under "
                "NAS/NO (128-entry window)\n");
    std::printf("FD = fraction of committed loads with only-false "
                "dependences; RL = mean resolution latency\n\n");

    TextTable table;
    table.setHeader({"Program", "FD", "RL", "FD(paper)", "RL(paper)"});

    auto sweep = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            RunResult r = runner.run(
                name, withPolicy(makeW128Config(), LsqModel::NAS,
                                 SpecPolicy::No));
            const PaperRow &paper = paperRow(name);
            table.addRow({
                name,
                formatPct(r.falseDepFraction()),
                strfmt("%.1f", r.falseDepLatency),
                strfmt("%.1f%%", paper.fd),
                strfmt("%.1f", paper.rl),
            });
        }
    };

    sweep(workloads::intNames());
    table.addSeparator();
    sweep(workloads::fpNames());
    std::printf("%s", table.toString().c_str());

    std::printf("\nShape check: many (often most) loads are delayed by "
                "false dependences,\nwith fp codes skewing higher than "
                "int codes, and multi-cycle resolution latencies.\n");
    return reportFailures(runner) ? 1 : 0;
}
