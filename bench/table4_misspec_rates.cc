/**
 * @file
 * Regenerates Table 4: memory dependence miss-speculation rates (over
 * all committed loads) under naive speculation ("NAV") and under the
 * speculation/synchronization mechanism ("SYNC"). The paper's shape:
 * NAV rates of 0.1%-7.8%, SYNC rates of 0.0001%-0.07% — synchronization
 * makes miss-speculations virtually non-existent.
 */

#include <cstdio>

#include "sim/table.hh"
#include "sweep/bench_cli.hh"

using namespace cwsim;
using namespace cwsim::harness;

namespace
{

struct PaperRow
{
    const char *name;
    double nav;
    double sync;
};

// Table 4 of the paper (percent of committed loads).
const PaperRow paper_rows[] = {
    {"099.go", 2.5, 0.0301},      {"124.m88ksim", 1.0, 0.0030},
    {"126.gcc", 1.3, 0.0028},     {"129.compress", 7.8, 0.0034},
    {"130.li", 3.2, 0.0035},      {"132.ijpeg", 0.8, 0.0090},
    {"134.perl", 2.9, 0.0029},    {"147.vortex", 3.2, 0.0286},
    {"101.tomcatv", 1.0, 0.0001}, {"102.swim", 0.9, 0.0017},
    {"103.su2cor", 2.4, 0.0741},  {"104.hydro2d", 5.5, 0.0740},
    {"107.mgrid", 0.1, 0.0019},   {"110.applu", 1.4, 0.0039},
    {"125.turb3d", 0.7, 0.0009},  {"141.apsi", 2.1, 0.0148},
    {"145.fpppp", 1.4, 0.0096},   {"146.wave5", 2.0, 0.0034},
};

const PaperRow &
paperRow(const std::string &name)
{
    for (const PaperRow &row : paper_rows) {
        if (name == row.name)
            return row;
    }
    return paper_rows[0];
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sweep::BenchCli cli(argc, argv);

    std::printf("Table 4: miss-speculation rate per committed load — "
                "NAV vs SYNC (128-entry window)\n\n");

    auto ints = cli.names(workloads::intNames());
    auto fps = cli.names(workloads::fpNames());

    sweep::SweepPlan plan;
    auto enqueue = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::Naive));
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::SpecSync));
        }
    };
    enqueue(ints);
    enqueue(fps);
    auto results = cli.run(plan);

    TextTable table;
    table.setHeader({"Program", "NAV", "SYNC", "NAV(paper)",
                     "SYNC(paper)"});

    size_t next = 0;
    auto emit = [&](const std::vector<std::string> &names) {
        for (const auto &name : names) {
            const RunResult &r_nav = results[next++];
            const RunResult &r_sync = results[next++];
            const PaperRow &paper = paperRow(name);
            table.addRow({
                name,
                formatPct(r_nav.misspecRate(), 2),
                formatPct(r_sync.misspecRate(), 4),
                strfmt("%.1f%%", paper.nav),
                strfmt("%.4f%%", paper.sync),
            });
        }
    };

    emit(ints);
    table.addSeparator();
    emit(fps);
    std::printf("%s", table.toString().c_str());

    std::printf("\nShape check: SYNC reduces miss-speculation by 2-4 "
                "orders of magnitude,\nleaving rates that are "
                "virtually zero.\n");
    return cli.finish();
}
