file(REMOVE_RECURSE
  "CMakeFiles/ablation_mdpt.dir/ablation_mdpt.cc.o"
  "CMakeFiles/ablation_mdpt.dir/ablation_mdpt.cc.o.d"
  "ablation_mdpt"
  "ablation_mdpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mdpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
