# Empty dependencies file for ablation_mdpt.
# This may be replaced when dependencies are built.
