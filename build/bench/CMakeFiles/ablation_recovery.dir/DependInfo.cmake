
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_recovery.cc" "bench/CMakeFiles/ablation_recovery.dir/ablation_recovery.cc.o" "gcc" "bench/CMakeFiles/ablation_recovery.dir/ablation_recovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/cwsim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/split/CMakeFiles/cwsim_split.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cwsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/cwsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mdp/CMakeFiles/cwsim_mdp.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/cwsim_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cwsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cwsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cwsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cwsim_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
