file(REMOVE_RECURSE
  "CMakeFiles/ablation_window_sweep.dir/ablation_window_sweep.cc.o"
  "CMakeFiles/ablation_window_sweep.dir/ablation_window_sweep.cc.o.d"
  "ablation_window_sweep"
  "ablation_window_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_window_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
