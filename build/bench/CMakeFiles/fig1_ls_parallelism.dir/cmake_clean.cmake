file(REMOVE_RECURSE
  "CMakeFiles/fig1_ls_parallelism.dir/fig1_ls_parallelism.cc.o"
  "CMakeFiles/fig1_ls_parallelism.dir/fig1_ls_parallelism.cc.o.d"
  "fig1_ls_parallelism"
  "fig1_ls_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_ls_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
