# Empty dependencies file for fig1_ls_parallelism.
# This may be replaced when dependencies are built.
