file(REMOVE_RECURSE
  "CMakeFiles/fig2_naive_speculation.dir/fig2_naive_speculation.cc.o"
  "CMakeFiles/fig2_naive_speculation.dir/fig2_naive_speculation.cc.o.d"
  "fig2_naive_speculation"
  "fig2_naive_speculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_naive_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
