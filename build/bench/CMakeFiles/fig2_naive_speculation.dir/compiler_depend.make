# Empty compiler generated dependencies file for fig2_naive_speculation.
# This may be replaced when dependencies are built.
