file(REMOVE_RECURSE
  "CMakeFiles/fig3_address_scheduling.dir/fig3_address_scheduling.cc.o"
  "CMakeFiles/fig3_address_scheduling.dir/fig3_address_scheduling.cc.o.d"
  "fig3_address_scheduling"
  "fig3_address_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_address_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
