file(REMOVE_RECURSE
  "CMakeFiles/fig4_oracle_vs_as.dir/fig4_oracle_vs_as.cc.o"
  "CMakeFiles/fig4_oracle_vs_as.dir/fig4_oracle_vs_as.cc.o.d"
  "fig4_oracle_vs_as"
  "fig4_oracle_vs_as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_oracle_vs_as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
