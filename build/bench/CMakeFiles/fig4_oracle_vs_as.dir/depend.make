# Empty dependencies file for fig4_oracle_vs_as.
# This may be replaced when dependencies are built.
