file(REMOVE_RECURSE
  "CMakeFiles/fig5_sel_store.dir/fig5_sel_store.cc.o"
  "CMakeFiles/fig5_sel_store.dir/fig5_sel_store.cc.o.d"
  "fig5_sel_store"
  "fig5_sel_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sel_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
