# Empty compiler generated dependencies file for fig5_sel_store.
# This may be replaced when dependencies are built.
