# Empty compiler generated dependencies file for fig6_sync.
# This may be replaced when dependencies are built.
