file(REMOVE_RECURSE
  "CMakeFiles/fig7_split_window.dir/fig7_split_window.cc.o"
  "CMakeFiles/fig7_split_window.dir/fig7_split_window.cc.o.d"
  "fig7_split_window"
  "fig7_split_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_split_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
