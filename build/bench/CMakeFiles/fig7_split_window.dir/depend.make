# Empty dependencies file for fig7_split_window.
# This may be replaced when dependencies are built.
