file(REMOVE_RECURSE
  "CMakeFiles/table3_false_deps.dir/table3_false_deps.cc.o"
  "CMakeFiles/table3_false_deps.dir/table3_false_deps.cc.o.d"
  "table3_false_deps"
  "table3_false_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_false_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
