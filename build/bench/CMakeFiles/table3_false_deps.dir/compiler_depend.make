# Empty compiler generated dependencies file for table3_false_deps.
# This may be replaced when dependencies are built.
