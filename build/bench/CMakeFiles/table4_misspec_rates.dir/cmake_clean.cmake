file(REMOVE_RECURSE
  "CMakeFiles/table4_misspec_rates.dir/table4_misspec_rates.cc.o"
  "CMakeFiles/table4_misspec_rates.dir/table4_misspec_rates.cc.o.d"
  "table4_misspec_rates"
  "table4_misspec_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_misspec_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
