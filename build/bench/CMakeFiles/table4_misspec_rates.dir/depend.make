# Empty dependencies file for table4_misspec_rates.
# This may be replaced when dependencies are built.
