# Empty compiler generated dependencies file for assembler_demo.
# This may be replaced when dependencies are built.
