file(REMOVE_RECURSE
  "CMakeFiles/sampled_simulation.dir/sampled_simulation.cpp.o"
  "CMakeFiles/sampled_simulation.dir/sampled_simulation.cpp.o.d"
  "sampled_simulation"
  "sampled_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampled_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
