# Empty compiler generated dependencies file for sampled_simulation.
# This may be replaced when dependencies are built.
