file(REMOVE_RECURSE
  "CMakeFiles/cwsim_base.dir/logging.cc.o"
  "CMakeFiles/cwsim_base.dir/logging.cc.o.d"
  "CMakeFiles/cwsim_base.dir/str.cc.o"
  "CMakeFiles/cwsim_base.dir/str.cc.o.d"
  "libcwsim_base.a"
  "libcwsim_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsim_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
