file(REMOVE_RECURSE
  "libcwsim_base.a"
)
