# Empty compiler generated dependencies file for cwsim_base.
# This may be replaced when dependencies are built.
