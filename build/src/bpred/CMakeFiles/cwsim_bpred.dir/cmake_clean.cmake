file(REMOVE_RECURSE
  "CMakeFiles/cwsim_bpred.dir/bpred.cc.o"
  "CMakeFiles/cwsim_bpred.dir/bpred.cc.o.d"
  "libcwsim_bpred.a"
  "libcwsim_bpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsim_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
