file(REMOVE_RECURSE
  "libcwsim_bpred.a"
)
