# Empty dependencies file for cwsim_bpred.
# This may be replaced when dependencies are built.
