file(REMOVE_RECURSE
  "CMakeFiles/cwsim_cpu.dir/processor.cc.o"
  "CMakeFiles/cwsim_cpu.dir/processor.cc.o.d"
  "CMakeFiles/cwsim_cpu.dir/processor_issue.cc.o"
  "CMakeFiles/cwsim_cpu.dir/processor_issue.cc.o.d"
  "libcwsim_cpu.a"
  "libcwsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
