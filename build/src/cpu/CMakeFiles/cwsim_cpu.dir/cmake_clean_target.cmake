file(REMOVE_RECURSE
  "libcwsim_cpu.a"
)
