# Empty compiler generated dependencies file for cwsim_cpu.
# This may be replaced when dependencies are built.
