file(REMOVE_RECURSE
  "CMakeFiles/cwsim_harness.dir/harness.cc.o"
  "CMakeFiles/cwsim_harness.dir/harness.cc.o.d"
  "libcwsim_harness.a"
  "libcwsim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
