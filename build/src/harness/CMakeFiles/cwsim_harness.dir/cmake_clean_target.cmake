file(REMOVE_RECURSE
  "libcwsim_harness.a"
)
