# Empty dependencies file for cwsim_harness.
# This may be replaced when dependencies are built.
