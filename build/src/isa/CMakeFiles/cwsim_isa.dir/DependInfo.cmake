
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/asm_parser.cc" "src/isa/CMakeFiles/cwsim_isa.dir/asm_parser.cc.o" "gcc" "src/isa/CMakeFiles/cwsim_isa.dir/asm_parser.cc.o.d"
  "/root/repo/src/isa/builder.cc" "src/isa/CMakeFiles/cwsim_isa.dir/builder.cc.o" "gcc" "src/isa/CMakeFiles/cwsim_isa.dir/builder.cc.o.d"
  "/root/repo/src/isa/exec_fn.cc" "src/isa/CMakeFiles/cwsim_isa.dir/exec_fn.cc.o" "gcc" "src/isa/CMakeFiles/cwsim_isa.dir/exec_fn.cc.o.d"
  "/root/repo/src/isa/executor.cc" "src/isa/CMakeFiles/cwsim_isa.dir/executor.cc.o" "gcc" "src/isa/CMakeFiles/cwsim_isa.dir/executor.cc.o.d"
  "/root/repo/src/isa/opcodes.cc" "src/isa/CMakeFiles/cwsim_isa.dir/opcodes.cc.o" "gcc" "src/isa/CMakeFiles/cwsim_isa.dir/opcodes.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/isa/CMakeFiles/cwsim_isa.dir/program.cc.o" "gcc" "src/isa/CMakeFiles/cwsim_isa.dir/program.cc.o.d"
  "/root/repo/src/isa/static_inst.cc" "src/isa/CMakeFiles/cwsim_isa.dir/static_inst.cc.o" "gcc" "src/isa/CMakeFiles/cwsim_isa.dir/static_inst.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cwsim_base.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cwsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cwsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
