file(REMOVE_RECURSE
  "CMakeFiles/cwsim_isa.dir/asm_parser.cc.o"
  "CMakeFiles/cwsim_isa.dir/asm_parser.cc.o.d"
  "CMakeFiles/cwsim_isa.dir/builder.cc.o"
  "CMakeFiles/cwsim_isa.dir/builder.cc.o.d"
  "CMakeFiles/cwsim_isa.dir/exec_fn.cc.o"
  "CMakeFiles/cwsim_isa.dir/exec_fn.cc.o.d"
  "CMakeFiles/cwsim_isa.dir/executor.cc.o"
  "CMakeFiles/cwsim_isa.dir/executor.cc.o.d"
  "CMakeFiles/cwsim_isa.dir/opcodes.cc.o"
  "CMakeFiles/cwsim_isa.dir/opcodes.cc.o.d"
  "CMakeFiles/cwsim_isa.dir/program.cc.o"
  "CMakeFiles/cwsim_isa.dir/program.cc.o.d"
  "CMakeFiles/cwsim_isa.dir/static_inst.cc.o"
  "CMakeFiles/cwsim_isa.dir/static_inst.cc.o.d"
  "libcwsim_isa.a"
  "libcwsim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
