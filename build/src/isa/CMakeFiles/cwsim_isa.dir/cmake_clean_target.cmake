file(REMOVE_RECURSE
  "libcwsim_isa.a"
)
