# Empty dependencies file for cwsim_isa.
# This may be replaced when dependencies are built.
