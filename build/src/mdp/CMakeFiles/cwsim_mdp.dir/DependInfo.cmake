
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mdp/mdp_table.cc" "src/mdp/CMakeFiles/cwsim_mdp.dir/mdp_table.cc.o" "gcc" "src/mdp/CMakeFiles/cwsim_mdp.dir/mdp_table.cc.o.d"
  "/root/repo/src/mdp/oracle.cc" "src/mdp/CMakeFiles/cwsim_mdp.dir/oracle.cc.o" "gcc" "src/mdp/CMakeFiles/cwsim_mdp.dir/oracle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cwsim_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cwsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cwsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cwsim_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
