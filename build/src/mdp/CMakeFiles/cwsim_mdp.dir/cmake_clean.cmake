file(REMOVE_RECURSE
  "CMakeFiles/cwsim_mdp.dir/mdp_table.cc.o"
  "CMakeFiles/cwsim_mdp.dir/mdp_table.cc.o.d"
  "CMakeFiles/cwsim_mdp.dir/oracle.cc.o"
  "CMakeFiles/cwsim_mdp.dir/oracle.cc.o.d"
  "libcwsim_mdp.a"
  "libcwsim_mdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsim_mdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
