file(REMOVE_RECURSE
  "libcwsim_mdp.a"
)
