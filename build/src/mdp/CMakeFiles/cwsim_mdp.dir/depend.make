# Empty dependencies file for cwsim_mdp.
# This may be replaced when dependencies are built.
