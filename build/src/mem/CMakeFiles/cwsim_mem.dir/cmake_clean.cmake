file(REMOVE_RECURSE
  "CMakeFiles/cwsim_mem.dir/functional_memory.cc.o"
  "CMakeFiles/cwsim_mem.dir/functional_memory.cc.o.d"
  "CMakeFiles/cwsim_mem.dir/timing_cache.cc.o"
  "CMakeFiles/cwsim_mem.dir/timing_cache.cc.o.d"
  "libcwsim_mem.a"
  "libcwsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
