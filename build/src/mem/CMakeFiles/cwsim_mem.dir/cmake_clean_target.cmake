file(REMOVE_RECURSE
  "libcwsim_mem.a"
)
