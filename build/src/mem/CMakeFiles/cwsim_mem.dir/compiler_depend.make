# Empty compiler generated dependencies file for cwsim_mem.
# This may be replaced when dependencies are built.
