
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/cwsim_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/cwsim_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/config_parse.cc" "src/sim/CMakeFiles/cwsim_sim.dir/config_parse.cc.o" "gcc" "src/sim/CMakeFiles/cwsim_sim.dir/config_parse.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/cwsim_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/cwsim_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/sim/CMakeFiles/cwsim_sim.dir/stats.cc.o" "gcc" "src/sim/CMakeFiles/cwsim_sim.dir/stats.cc.o.d"
  "/root/repo/src/sim/table.cc" "src/sim/CMakeFiles/cwsim_sim.dir/table.cc.o" "gcc" "src/sim/CMakeFiles/cwsim_sim.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cwsim_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
