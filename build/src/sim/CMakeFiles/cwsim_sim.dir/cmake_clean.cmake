file(REMOVE_RECURSE
  "CMakeFiles/cwsim_sim.dir/config.cc.o"
  "CMakeFiles/cwsim_sim.dir/config.cc.o.d"
  "CMakeFiles/cwsim_sim.dir/config_parse.cc.o"
  "CMakeFiles/cwsim_sim.dir/config_parse.cc.o.d"
  "CMakeFiles/cwsim_sim.dir/event_queue.cc.o"
  "CMakeFiles/cwsim_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/cwsim_sim.dir/stats.cc.o"
  "CMakeFiles/cwsim_sim.dir/stats.cc.o.d"
  "CMakeFiles/cwsim_sim.dir/table.cc.o"
  "CMakeFiles/cwsim_sim.dir/table.cc.o.d"
  "libcwsim_sim.a"
  "libcwsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
