file(REMOVE_RECURSE
  "libcwsim_sim.a"
)
