# Empty dependencies file for cwsim_sim.
# This may be replaced when dependencies are built.
