file(REMOVE_RECURSE
  "CMakeFiles/cwsim_split.dir/split_window.cc.o"
  "CMakeFiles/cwsim_split.dir/split_window.cc.o.d"
  "libcwsim_split.a"
  "libcwsim_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsim_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
