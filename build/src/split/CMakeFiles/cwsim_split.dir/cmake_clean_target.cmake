file(REMOVE_RECURSE
  "libcwsim_split.a"
)
