# Empty compiler generated dependencies file for cwsim_split.
# This may be replaced when dependencies are built.
