file(REMOVE_RECURSE
  "CMakeFiles/cwsim_workloads.dir/fp_kernels.cc.o"
  "CMakeFiles/cwsim_workloads.dir/fp_kernels.cc.o.d"
  "CMakeFiles/cwsim_workloads.dir/int_kernels.cc.o"
  "CMakeFiles/cwsim_workloads.dir/int_kernels.cc.o.d"
  "CMakeFiles/cwsim_workloads.dir/workload.cc.o"
  "CMakeFiles/cwsim_workloads.dir/workload.cc.o.d"
  "libcwsim_workloads.a"
  "libcwsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
