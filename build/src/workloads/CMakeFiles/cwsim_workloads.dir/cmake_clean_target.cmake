file(REMOVE_RECURSE
  "libcwsim_workloads.a"
)
