# Empty compiler generated dependencies file for cwsim_workloads.
# This may be replaced when dependencies are built.
