# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_bpred[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_split[1]_include.cmake")
include("/root/repo/build/tests/test_asm[1]_include.cmake")
include("/root/repo/build/tests/test_mdp[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
