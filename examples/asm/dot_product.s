# Dot product of two 64-element vectors, written for the cwsim ISA.
# Run with: ./build/examples/assembler_demo examples/asm/dot_product.s
    .data
vec_a:  .double 1.5 2.25 0.5 3.0 1.0 2.0 0.25 4.0
        .space 448
vec_b:  .double 2.0 1.0 4.0 0.5 3.0 1.5 8.0 0.25
        .space 448
result: .double 0.0

    .text
        la   r1, vec_a
        la   r2, vec_b
        la   r3, result
        addi r4, r0, 64       # element count
        fsub.d f2, f2, f2     # acc = 0
loop:
        ld.f f0, 0(r1)
        ld.f f1, 0(r2)
        fmul.d f0, f0, f1
        fadd.d f2, f2, f0
        addi r1, r1, 8
        addi r2, r2, 8
        addi r4, r4, -1
        bne  r4, r0, loop
        sd.f f2, 0(r3)
        halt
