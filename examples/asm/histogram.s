# Byte histogram with read-modify-write bucket updates: the classic
# memory dependence race (probe address early, update data late).
# Run with: ./build/examples/assembler_demo examples/asm/histogram.s
    .data
input:  .byte 3 1 4 1 5 9 2 6 5 3 5 8 9 7 9 3
        .space 240
counts: .space 64             # 16 buckets of 4 bytes

    .text
        la   r1, input
        la   r2, counts
        addi r3, r0, 256      # bytes to scan
loop:
        lbu  r4, 0(r1)        # next input byte
        andi r4, r4, 15       # bucket index
        slli r4, r4, 2
        add  r4, r2, r4
        lw   r5, 0(r4)        # bucket RMW: load...
        addi r5, r5, 1
        sw   r5, 0(r4)        # ...store
        addi r1, r1, 1
        addi r3, r3, -1
        bne  r3, r0, loop
        halt
