/**
 * @file
 * Assembler demo: write a kernel as assembly text (or load a .s file),
 * assemble it, and simulate it under the paper's policies. The kernel
 * below is the Figure 7 recurrence written by hand.
 *
 *   ./build/examples/assembler_demo            # built-in kernel
 *   ./build/examples/assembler_demo foo.s      # your own file
 */

#include <cstdio>

#include "cpu/processor.hh"
#include "isa/asm_parser.hh"
#include "mdp/oracle.hh"
#include "sim/config.hh"

using namespace cwsim;

namespace
{

const char *demo_source = R"(
    # Figure 7 of the paper: a loop with a recurrence through memory
    # (store a[i] -> load a[i-1] of the next iteration), plus
    # independent side loads an aggressive scheduler can hoist.
    .data
a:      .word 3
        .space 2048
side:   .word 5 6 7 8
        .space 2048

    .text
        la   r1, a
        la   r10, side
        li   r2, 300          # iterations
loop:
        lw   r3, 0(r1)        # load a[i-1]
        mul  r4, r3, r3       # slow data for the store
        andi r4, r4, 1023
        addi r4, r4, 1
        sw   r4, 4(r1)        # store a[i]
        lw   r5, 0(r10)       # independent loads
        lw   r6, 4(r10)
        add  r7, r5, r6
        addi r1, r1, 4
        addi r10, r10, 4
        addi r2, r2, -1
        bne  r2, r0, loop
        halt
)";

} // anonymous namespace

int
main(int argc, char **argv)
{
    Program prog = argc > 1 ? assembleFile(argv[1])
                            : assembleText(demo_source);
    std::printf("assembled %zu static instructions\n",
                prog.staticInstCount());

    PrepassResult golden = runPrepass(prog, {5'000'000, false});
    if (!golden.halted) {
        std::printf("program did not halt within the budget\n");
        return 1;
    }
    std::printf("functional run: %llu dynamic instructions "
                "(%.1f%% loads, %.1f%% stores)\n\n",
                static_cast<unsigned long long>(golden.instCount),
                100.0 * golden.loadCount / golden.instCount,
                100.0 * golden.storeCount / golden.instCount);

    const std::tuple<const char *, LsqModel, SpecPolicy> configs[] = {
        {"NAS/NO", LsqModel::NAS, SpecPolicy::No},
        {"NAS/NAV", LsqModel::NAS, SpecPolicy::Naive},
        {"NAS/SYNC", LsqModel::NAS, SpecPolicy::SpecSync},
        {"AS/NAV", LsqModel::AS, SpecPolicy::Naive},
        {"NAS/ORACLE", LsqModel::NAS, SpecPolicy::Oracle},
    };
    for (auto [label, model, policy] : configs) {
        SimConfig cfg = withPolicy(makeW128Config(), model, policy);
        Processor proc(cfg, prog, &golden.deps);
        proc.run();
        if (!proc.halted()) {
            std::printf("%-12s did not halt\n", label);
            continue;
        }
        std::printf("%-12s IPC %.2f  misspeculations %llu\n", label,
                    proc.procStats().ipc(),
                    static_cast<unsigned long long>(
                        proc.procStats().memOrderViolations.value()));
        if (proc.memory().fingerprint() != golden.memFingerprint) {
            std::printf("architectural mismatch!\n");
            return 1;
        }
    }
    return 0;
}
