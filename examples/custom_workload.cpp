/**
 * @file
 * Custom workload walkthrough: write your own kernel against the cwsim
 * ISA (here, open-addressing hash-table inserts — a memory dependence
 * stress), then watch the memory dependence predictor learn it.
 *
 * Demonstrates the full public API surface: ProgramBuilder, the
 * functional pre-pass (oracle + golden results), Processor
 * configuration, and per-policy statistics including the MDPT.
 *
 *   ./build/examples/custom_workload
 */

#include <cstdio>

#include "cpu/processor.hh"
#include "isa/builder.hh"
#include "mdp/oracle.hh"
#include "sim/config.hh"
#include "sim/table.hh"

using namespace cwsim;

namespace
{

/** Open-addressing hash inserts: probe, maybe collide, write back. */
Program
hashInsertKernel(int inserts)
{
    ProgramBuilder b;
    constexpr unsigned buckets = 256;
    Addr table = b.dataAlloc(4 * buckets);
    Addr fill_count = b.dataAlloc(4);

    const RegId p_tab = ir(1), p_n = ir(2), key = ir(3), hash = ir(4),
                slot = ir(5), val = ir(6), iters = ir(7), tmp = ir(8),
                state = ir(9);

    b.la(p_tab, table);
    b.la(p_n, fill_count);
    b.li32(state, 0xbeef);
    b.li32(iters, static_cast<uint32_t>(inserts));

    auto loop = b.hereLabel();
    auto occupied = b.newLabel();
    auto done_insert = b.newLabel();

    // key = next pseudo-random value
    b.slli(tmp, state, 13);
    b.xor_(state, state, tmp);
    b.srli(tmp, state, 17);
    b.xor_(state, state, tmp);
    b.andi(key, state, 4095);
    // probe slot = hash(key)
    b.andi(hash, key, buckets - 1);
    b.slli(slot, hash, 2);
    b.add(slot, p_tab, slot);
    b.lw(val, slot, 0);               // probe (load)
    b.bne(val, reg_zero, occupied);
    // empty: insert, bump the fill count (hot RMW cell)
    b.sw(key, slot, 0);               // insert (store)
    b.lw(tmp, p_n, 0);
    b.addi(tmp, tmp, 1);
    b.sw(tmp, p_n, 0);
    b.j(done_insert);
    b.bind(occupied);
    // linear reprobe once, then overwrite
    b.addi(hash, hash, 1);
    b.andi(hash, hash, buckets - 1);
    b.slli(slot, hash, 2);
    b.add(slot, p_tab, slot);
    b.mul(key, key, val);             // slow replacement value
    b.andi(key, key, 4095);
    b.sw(key, slot, 0);
    b.bind(done_insert);
    b.addi(iters, iters, -1);
    b.bne(iters, reg_zero, loop);
    b.halt();
    return b.build();
}

} // anonymous namespace

int
main()
{
    Program prog = hashInsertKernel(4000);
    PrepassResult golden = runPrepass(prog);
    std::printf("kernel: %llu dynamic instructions (%.1f%% loads, "
                "%.1f%% stores)\n\n",
                static_cast<unsigned long long>(golden.instCount),
                100.0 * golden.loadCount / golden.instCount,
                100.0 * golden.storeCount / golden.instCount);

    TextTable table;
    table.setHeader({"Config", "IPC", "misspec rate", "MDPT pairings",
                     "sync'd loads"});

    const std::pair<LsqModel, SpecPolicy> configs[] = {
        {LsqModel::NAS, SpecPolicy::No},
        {LsqModel::NAS, SpecPolicy::Naive},
        {LsqModel::NAS, SpecPolicy::Selective},
        {LsqModel::NAS, SpecPolicy::StoreBarrier},
        {LsqModel::NAS, SpecPolicy::SpecSync},
        {LsqModel::NAS, SpecPolicy::Oracle},
    };

    for (auto [model, policy] : configs) {
        SimConfig cfg = withPolicy(makeW128Config(), model, policy);
        Processor proc(cfg, prog, &golden.deps);
        proc.run();
        const ProcStats &s = proc.procStats();
        table.addRow({
            cfg.name(),
            strfmt("%.2f", s.ipc()),
            strfmt("%.3f%%", 100.0 * s.misspecRate()),
            strfmt("%llu", static_cast<unsigned long long>(
                               proc.mdpt().pairings.value())),
            strfmt("%llu", static_cast<unsigned long long>(
                               s.syncWaits.value())),
        });

        if (proc.memory().fingerprint() != golden.memFingerprint) {
            std::printf("architectural mismatch under %s!\n",
                        cfg.name().c_str());
            return 1;
        }
    }
    std::printf("%s", table.toString().c_str());

    std::printf("\nReading the table: naive speculation miss-"
                "speculates on the fill-count cell;\nSYNC pairs the "
                "offending (store, load) PCs through the MDPT and "
                "synchronizes\nthem, recovering close to oracle "
                "performance.\n");
    return 0;
}
