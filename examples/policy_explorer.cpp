/**
 * @file
 * Policy explorer: run any of the 18 SPEC'95-like workloads under any
 * (scheduler model, speculation policy) combination of the paper and
 * dump the full statistics group.
 *
 *   ./build/examples/policy_explorer [workload] [MODEL/POLICY] [scale] \
 *       [key=value ...] [@config-file]
 *   ./build/examples/policy_explorer 129.compress NAS/SYNC 50000
 *   ./build/examples/policy_explorer 147.vortex NAS/NAV 50000 \
 *       core.windowSize=256 mdp.recovery=selective
 *
 * Run with no arguments for a matrix over one workload. Trailing
 * key=value arguments (see sim/config_parse.hh for the key list) and
 * @file config files override the Table 2 defaults.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "base/sim_error.hh"
#include "harness/harness.hh"
#include "sweep/report.hh"
#include "sim/config_parse.hh"
#include "sim/table.hh"

using namespace cwsim;

namespace
{

bool
parseConfig(const std::string &text, LsqModel &model, SpecPolicy &policy)
{
    auto slash = text.find('/');
    if (slash == std::string::npos)
        return false;
    std::string m = text.substr(0, slash);
    std::string p = text.substr(slash + 1);
    if (m == "NAS") {
        model = LsqModel::NAS;
    } else if (m == "AS") {
        model = LsqModel::AS;
    } else {
        return false;
    }
    if (p == "NO") {
        policy = SpecPolicy::No;
    } else if (p == "NAV") {
        policy = SpecPolicy::Naive;
    } else if (p == "SEL") {
        policy = SpecPolicy::Selective;
    } else if (p == "STORE") {
        policy = SpecPolicy::StoreBarrier;
    } else if (p == "SYNC") {
        policy = SpecPolicy::SpecSync;
    } else if (p == "ORACLE") {
        policy = SpecPolicy::Oracle;
    } else {
        return false;
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "129.compress";
    uint64_t scale = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                              : 60'000;
    harness::Runner runner(scale);

    if (argc > 2) {
        // Single configuration: dump everything.
        LsqModel model;
        SpecPolicy policy;
        if (!parseConfig(argv[2], model, policy)) {
            std::fprintf(stderr,
                         "bad config '%s' (want e.g. NAS/SYNC)\n",
                         argv[2]);
            return 1;
        }
        const Workload &w = runner.workload(workload);
        const PrepassResult &pre = runner.prepass(workload);
        SimConfig cfg = withPolicy(makeW128Config(), model, policy);
        // Trailing key=value overrides and @file configs.
        for (int i = 4; i < argc; ++i) {
            if (argv[i][0] == '@')
                cfg = parseConfigFile(argv[i] + 1, cfg);
            else
                applyConfigOption(cfg, argv[i]);
        }
        try {
            // Fail-soft: watchdog trips, invariant failures, and
            // library panics surface as a diagnostic, not an abort.
            ScopedErrorTrap trap;
            Processor proc(cfg, w.program, &pre.deps);
            proc.run();
            std::printf("%s under %s (scale %llu)\n\n", w.name.c_str(),
                        cfg.name().c_str(),
                        static_cast<unsigned long long>(scale));
            proc.statsGroup().dump(std::cout);
            std::printf("\nIPC: %.3f\n", proc.procStats().ipc());
        } catch (const SimError &e) {
            std::fprintf(stderr, "%s under %s failed:\n%s\n",
                         w.name.c_str(), cfg.name().c_str(),
                         e.summary().c_str());
            if (!e.diagnostic().empty())
                std::fprintf(stderr, "%s\n", e.diagnostic().c_str());
            return 1;
        }
        return 0;
    }

    // No config given: sweep the whole paper matrix for this workload.
    std::printf("%s across the paper's configuration matrix\n\n",
                workload.c_str());
    TextTable table;
    table.setHeader({"Config", "IPC", "cycles", "misspec", "replays",
                     "squashed insts"});
    const std::pair<LsqModel, SpecPolicy> matrix[] = {
        {LsqModel::NAS, SpecPolicy::No},
        {LsqModel::NAS, SpecPolicy::Naive},
        {LsqModel::NAS, SpecPolicy::Selective},
        {LsqModel::NAS, SpecPolicy::StoreBarrier},
        {LsqModel::NAS, SpecPolicy::SpecSync},
        {LsqModel::NAS, SpecPolicy::Oracle},
        {LsqModel::AS, SpecPolicy::No},
        {LsqModel::AS, SpecPolicy::Naive},
    };
    for (auto [model, policy] : matrix) {
        harness::RunResult r = runner.run(
            workload, withPolicy(makeW128Config(), model, policy));
        table.addRow({
            r.config,
            strfmt("%.2f", r.ipc()),
            strfmt("%llu", static_cast<unsigned long long>(r.cycles)),
            harness::formatPct(r.misspecRate(), 2),
            strfmt("%llu", static_cast<unsigned long long>(r.replays)),
            strfmt("%llu",
                   static_cast<unsigned long long>(r.squashedInsts)),
        });
    }
    std::printf("%s", table.toString().c_str());
    return sweep::reportFailures(runner) ? 1 : 0;
}
