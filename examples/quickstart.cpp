/**
 * @file
 * Quickstart: assemble a tiny program with ProgramBuilder, simulate it
 * on the paper's 128-entry-window machine under two load/store
 * scheduling policies, and read the results.
 *
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "cpu/processor.hh"
#include "isa/builder.hh"
#include "mdp/oracle.hh"
#include "sim/config.hh"

using namespace cwsim;

int
main()
{
    // 1. Write a program: sum an array while a recurrence runs through
    //    memory (a store feeding a later load).
    ProgramBuilder b;
    Addr array = b.dataAlloc(4 * 256);
    Addr cell = b.dataAlloc(4);
    for (int i = 0; i < 256; ++i)
        b.dataW32(array + 4 * i, i * 7 + 1);

    b.la(ir(1), array);
    b.la(ir(2), cell);
    b.addi(ir(3), reg_zero, 256); // loop counter
    b.addi(ir(4), reg_zero, 0);   // sum
    auto loop = b.hereLabel();
    b.lw(ir(5), ir(1), 0);        // independent array load
    b.add(ir(4), ir(4), ir(5));
    b.mul(ir(6), ir(5), ir(4));   // slow value...
    b.sw(ir(6), ir(2), 0);        // ...stored to the cell
    b.lw(ir(7), ir(2), 0);        // and immediately reloaded
    b.add(ir(4), ir(4), ir(7));
    b.addi(ir(1), ir(1), 4);
    b.addi(ir(3), ir(3), -1);
    b.bne(ir(3), reg_zero, loop);
    b.halt();
    Program prog = b.build();

    // 2. A functional pre-pass provides golden results and the oracle's
    //    dependence knowledge.
    PrepassResult golden = runPrepass(prog);
    std::printf("functional execution: %llu instructions, sum=%lld\n\n",
                static_cast<unsigned long long>(golden.instCount),
                static_cast<long long>(
                    static_cast<int64_t>(golden.finalState.regs[4])));

    // 3. Simulate under three policies of the paper's design space.
    struct Config
    {
        const char *label;
        LsqModel model;
        SpecPolicy policy;
    };
    const Config configs[] = {
        {"NAS/NO  (no speculation)", LsqModel::NAS, SpecPolicy::No},
        {"NAS/NAV (naive speculation)", LsqModel::NAS,
         SpecPolicy::Naive},
        {"NAS/SYNC (speculation/synchronization)", LsqModel::NAS,
         SpecPolicy::SpecSync},
    };

    for (const Config &c : configs) {
        SimConfig cfg = withPolicy(makeW128Config(), c.model, c.policy);
        Processor proc(cfg, prog, &golden.deps);
        proc.run();

        const ProcStats &s = proc.procStats();
        std::printf("%-40s IPC %.2f  cycles %6llu  misspeculations "
                    "%llu\n",
                    c.label, s.ipc(),
                    static_cast<unsigned long long>(s.cycles.value()),
                    static_cast<unsigned long long>(
                        s.memOrderViolations.value()));

        // Speculation never changes architectural results:
        if (proc.memory().fingerprint() != golden.memFingerprint) {
            std::printf("ARCHITECTURAL MISMATCH!\n");
            return 1;
        }
    }

    std::printf("\nAll configurations committed identical "
                "architectural results.\n");
    std::printf(
        "\nWhat you are seeing (the paper's central tradeoff):\n"
        "  - NAS/NO waits for every older store: safe but slow.\n"
        "  - NAS/NAV speculates and miss-speculates on the recurrence "
        "every iteration;\n    the squash penalty can make it LOSE to "
        "not speculating at all.\n"
        "  - NAS/SYNC learns the (store, load) pair after a few "
        "squashes and synchronizes\n    exactly those two instructions "
        "— fastest of the three.\n");
    return 0;
}
