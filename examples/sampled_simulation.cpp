/**
 * @file
 * Sampled simulation: the paper's methodology (Section 3.1) alternates
 * detailed timing simulation with functional fast-forwarding at a
 * per-benchmark "timing:functional" ratio, keeping caches and the
 * branch predictor warm throughout. This example runs one workload
 * both ways and compares accuracy against the simulation-time saving.
 *
 *   ./build/examples/sampled_simulation [workload] [ratio]
 *   ./build/examples/sampled_simulation 104.hydro2d 3
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cpu/processor.hh"
#include "mdp/oracle.hh"
#include "sim/config.hh"
#include "workloads/workload.hh"

using namespace cwsim;

namespace
{

double
wallSeconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "101.tomcatv";
    unsigned ratio = argc > 2
        ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10))
        : 2; // 1:2 timing:functional, as Table 1 uses for tomcatv

    Workload w = workloads::build(name, 200'000);
    PrepassResult pre = runPrepass(w.program);
    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::Naive);

    // Full detailed simulation.
    auto t0 = std::chrono::steady_clock::now();
    Processor full(cfg, w.program, &pre.deps);
    full.run();
    double full_secs = wallSeconds(t0);
    double full_ipc = full.procStats().ipc();

    // Sampled: observation windows of 50000 instructions (the paper's
    // observation size), alternating timing and functional phases.
    const uint64_t observation = 50'000 / (1 + ratio);
    t0 = std::chrono::steady_clock::now();
    Processor sampled(cfg, w.program, &pre.deps);
    while (!sampled.halted()) {
        sampled.runTiming(observation);
        if (sampled.halted())
            break;
        if (sampled.fastForward(observation * ratio) == 0)
            break;
    }
    double sampled_secs = wallSeconds(t0);
    double sampled_ipc = sampled.procStats().ipc();

    std::printf("%s, timing:functional = 1:%u\n\n", w.name.c_str(),
                ratio);
    std::printf("  full timing:    IPC %.3f  (%llu insts, %.2fs "
                "host)\n",
                full_ipc,
                static_cast<unsigned long long>(
                    full.procStats().commits.value()),
                full_secs);
    std::printf("  sampled timing: IPC %.3f  (%llu timed insts, %.2fs "
                "host)\n",
                sampled_ipc,
                static_cast<unsigned long long>(
                    sampled.procStats().commits.value()),
                sampled_secs);
    std::printf("\n  IPC error: %.2f%%   (paper: sampling changed "
                "results by <1.5%%, 3%% worst case)\n",
                100.0 * (sampled_ipc - full_ipc) / full_ipc);

    // The architectural results must be unaffected by sampling.
    if (sampled.memory().fingerprint() != full.memory().fingerprint()) {
        std::printf("  architectural mismatch!\n");
        return 1;
    }
    std::printf("  architectural state: identical under both "
                "methodologies.\n");
    return 0;
}
