/**
 * @file
 * Overflow-safe address-interval arithmetic shared by the store
 * buffer, the violation checkers and the split-window model.
 *
 * An access is the end-exclusive byte interval [addr, addr + size).
 * The naive overlap test `a < b + bs && b < a + as` computes `addr +
 * size` in Addr arithmetic, which wraps at the top of the address
 * space and produces both false negatives and false positives for
 * accesses within `size` bytes of ~0. These helpers evaluate the same
 * predicates as if in unbounded integers.
 */

#ifndef CWSIM_BASE_ADDR_RANGE_HH
#define CWSIM_BASE_ADDR_RANGE_HH

#include "base/types.hh"

namespace cwsim
{

/** Does [a, a+as) intersect [b, b+bs)? Overflow-safe, end-exclusive. */
inline bool
rangesOverlap(Addr a, unsigned as, Addr b, unsigned bs)
{
    // Evaluated in unbounded integers: when a <= b the intervals meet
    // iff b lands strictly inside [a, a+as); symmetrically otherwise.
    // The subtraction cannot wrap in the branch taken.
    return a <= b ? (b - a < as) : (a - b < bs);
}

/** Is @p byte_addr within [addr, addr + size)? Overflow-safe. */
inline bool
rangeCoversByte(Addr addr, unsigned size, Addr byte_addr)
{
    // byte_addr < addr wraps the subtraction to a huge value, which a
    // sane (< 2^32) size can never exceed.
    return byte_addr - addr < size;
}

} // namespace cwsim

#endif // CWSIM_BASE_ADDR_RANGE_HH
