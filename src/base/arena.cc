#include "base/arena.hh"

namespace cwsim
{

Arena &
runArena()
{
    // One arena per thread: sweep workers are threads, and a run is
    // pinned to the worker that executes it, so runs never contend for
    // or observe each other's arena.
    thread_local Arena arena;
    return arena;
}

} // namespace cwsim
