/**
 * @file
 * A bump-pointer arena for per-run heap churn, plus an STL allocator
 * adaptor so node-based containers (std::set, std::unordered_map) and
 * small vectors can draw from it.
 *
 * The simulator's hot allocations are all transient per-instruction
 * bookkeeping: unissued-store/barrier tracking sets, store-buffer
 * synonym lists, byte-index lists. They are created and destroyed
 * millions of times per run but none outlive the Processor that owns
 * them. An arena turns each of those malloc/free pairs into a pointer
 * bump and a no-op: memory is reclaimed wholesale by reset() between
 * runs, when no arena-backed object is alive.
 *
 * Lifetime rules (see DESIGN.md §15):
 *  - runArena() returns this thread's arena; sweep workers are
 *    threads, so runs never share one.
 *  - Everything allocated from the arena must be destroyed before
 *    reset(). The harness resets only after the Processor for a run
 *    has been destructed.
 *  - reset() keeps the chunks, so the second run onward allocates out
 *    of warm, already-faulted memory.
 */

#ifndef CWSIM_BASE_ARENA_HH
#define CWSIM_BASE_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <set>
#include <unordered_map>
#include <vector>

namespace cwsim
{

class Arena
{
  public:
    explicit Arena(size_t chunk_bytes = 1u << 18) : chunkBytes(chunk_bytes) {}

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    void *
    allocate(size_t bytes, size_t align)
    {
        uintptr_t p = (cur + (align - 1)) & ~(uintptr_t(align) - 1);
        if (p + bytes > chunkEnd) [[unlikely]]
            return allocateSlow(bytes, align);
        cur = p + bytes;
        return reinterpret_cast<void *>(p);
    }

    /** Individual frees are no-ops; reset() reclaims everything. */
    void deallocate(void *, size_t) {}

    /**
     * Rewind to empty, keeping every chunk for reuse. Must not be
     * called while any arena-backed object is alive.
     */
    void
    reset()
    {
        active = 0;
        if (!chunks.empty()) {
            cur = reinterpret_cast<uintptr_t>(chunks[0].mem.get());
            chunkEnd = cur + chunks[0].bytes;
        } else {
            cur = 0;
            chunkEnd = 0;
        }
    }

    /** Total bytes reserved across all chunks (growth diagnostic). */
    size_t
    reservedBytes() const
    {
        size_t n = 0;
        for (const Chunk &c : chunks)
            n += c.bytes;
        return n;
    }

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> mem;
        size_t bytes;
    };

    void *
    allocateSlow(size_t bytes, size_t align)
    {
        // Advance through already-reserved chunks first (post-reset
        // reuse); only reserve a new one when all are exhausted. An
        // oversized request gets a dedicated chunk so chunkBytes need
        // not anticipate the largest vector the window ever grows.
        size_t need = bytes + align;
        while (active + 1 < chunks.size()) {
            ++active;
            if (chunks[active].bytes >= need) {
                cur = reinterpret_cast<uintptr_t>(chunks[active].mem.get());
                chunkEnd = cur + chunks[active].bytes;
                return allocate(bytes, align);
            }
        }
        size_t sz = need > chunkBytes ? need : chunkBytes;
        chunks.push_back(Chunk{std::make_unique<std::byte[]>(sz), sz});
        active = chunks.size() - 1;
        cur = reinterpret_cast<uintptr_t>(chunks.back().mem.get());
        chunkEnd = cur + sz;
        return allocate(bytes, align);
    }

    size_t chunkBytes;
    std::vector<Chunk> chunks;
    size_t active = 0;
    uintptr_t cur = 0;
    uintptr_t chunkEnd = 0;
};

/**
 * This thread's per-run arena. The harness resets it between runs;
 * code that does not go through the harness simply never resets it,
 * which wastes memory but is always correct.
 */
Arena &runArena();

/**
 * STL allocator drawing from a fixed Arena. Default-constructs bound
 * to runArena(), so container members need no explicit plumbing.
 */
template <class T>
class ArenaAlloc
{
  public:
    using value_type = T;

    ArenaAlloc() : arena(&runArena()) {}
    explicit ArenaAlloc(Arena &a) : arena(&a) {}
    template <class U>
    ArenaAlloc(const ArenaAlloc<U> &o) : arena(o.arena)
    {
    }

    T *
    allocate(size_t n)
    {
        return static_cast<T *>(
            arena->allocate(n * sizeof(T), alignof(T)));
    }

    void
    deallocate(T *p, size_t n)
    {
        arena->deallocate(p, n * sizeof(T));
    }

    template <class U>
    bool
    operator==(const ArenaAlloc<U> &o) const
    {
        return arena == o.arena;
    }
    template <class U>
    bool
    operator!=(const ArenaAlloc<U> &o) const
    {
        return arena != o.arena;
    }

    Arena *arena;
};

/** Containers bound to the current thread's run arena by default. */
template <class T>
using ArenaVec = std::vector<T, ArenaAlloc<T>>;

template <class T, class Cmp = std::less<T>>
using ArenaSet = std::set<T, Cmp, ArenaAlloc<T>>;

template <class K, class V, class Hash = std::hash<K>>
using ArenaMap = std::unordered_map<K, V, Hash, std::equal_to<K>,
                                    ArenaAlloc<std::pair<const K, V>>>;

} // namespace cwsim

#endif // CWSIM_BASE_ARENA_HH
