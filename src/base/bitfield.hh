/**
 * @file
 * Bit-manipulation helpers for instruction encodings and cache indexing.
 */

#ifndef CWSIM_BASE_BITFIELD_HH
#define CWSIM_BASE_BITFIELD_HH

#include <cstdint>

namespace cwsim
{

/** A mask of the low @p nbits bits. */
constexpr uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~uint64_t(0) : (uint64_t(1) << nbits) - 1;
}

/** Extract bits [@p last : @p first] (inclusive, last >= first). */
constexpr uint64_t
bits(uint64_t val, unsigned last, unsigned first)
{
    return (val >> first) & mask(last - first + 1);
}

/** Extract a single bit. */
constexpr uint64_t
bits(uint64_t val, unsigned bit)
{
    return bits(val, bit, bit);
}

/** Return @p val with bits [@p last : @p first] replaced by @p field. */
constexpr uint64_t
insertBits(uint64_t val, unsigned last, unsigned first, uint64_t field)
{
    uint64_t m = mask(last - first + 1) << first;
    return (val & ~m) | ((field << first) & m);
}

/** Sign-extend the low @p nbits bits of @p val to 64 bits. */
constexpr int64_t
sext(uint64_t val, unsigned nbits)
{
    uint64_t sign_bit = uint64_t(1) << (nbits - 1);
    uint64_t low = val & mask(nbits);
    return static_cast<int64_t>((low ^ sign_bit) - sign_bit);
}

} // namespace cwsim

#endif // CWSIM_BASE_BITFIELD_HH
