/**
 * @file
 * A byte-granular interval index mapping memory addresses to the
 * in-flight instructions that touch them, ordered by age. The store
 * buffer keeps one over executed store data (forwarding lookups: the
 * youngest older store writing a byte), and the processor keeps one
 * over issued loads (violation checks: the younger loads reading any
 * byte a store writes). Both replace per-access linear sweeps of the
 * whole structure with O(bytes) point lookups.
 *
 * Entries are (seq, slot) pairs where slot is the owner's stable
 * CircularQueue slot; stale slots are the caller's problem (verify seq
 * against the slot's current occupant). Per-byte lists are kept sorted
 * by seq; they are tiny in practice (few writers of one byte coexist
 * in a 128-entry window), so sorted-vector insertion beats any tree.
 */

#ifndef CWSIM_BASE_BYTE_INDEX_HH
#define CWSIM_BASE_BYTE_INDEX_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/arena.hh"
#include "base/logging.hh"
#include "base/types.hh"

namespace cwsim
{

class ByteSeqIndex
{
  public:
    struct Ref
    {
        InstSeqNum seq = 0;
        size_t slot = 0;
    };

    /** Register [addr, addr+size) as written/read by (@p seq, @p slot). */
    void
    add(Addr addr, unsigned size, InstSeqNum seq, size_t slot)
    {
        for (unsigned i = 0; i < size; ++i) {
            ArenaVec<Ref> &v = bytes[addr + i];
            // Mostly appended in age order; walk back over the few
            // younger entries when not.
            size_t pos = v.size();
            while (pos > 0 && v[pos - 1].seq > seq)
                --pos;
            v.insert(v.begin() + pos, Ref{seq, slot});
        }
        population += size;
    }

    /** Remove a registration made with the same (addr, size, seq). */
    void
    remove(Addr addr, unsigned size, InstSeqNum seq)
    {
        for (unsigned i = 0; i < size; ++i) {
            auto it = bytes.find(addr + i);
            panic_if(it == bytes.end(),
                     "ByteSeqIndex::remove of unindexed byte");
            ArenaVec<Ref> &v = it->second;
            size_t pos = v.size();
            while (pos > 0 && v[pos - 1].seq != seq)
                --pos;
            panic_if(pos == 0,
                     "ByteSeqIndex::remove of unindexed seq");
            v.erase(v.begin() + (pos - 1));
            // Deliberately keep the now-empty list: program locality
            // means the same byte is touched again almost immediately,
            // and erasing would churn a map node (hash + allocation)
            // per load per byte.
        }
        population -= size;
    }

    /**
     * The youngest entry with seq < @p before covering @p byte_addr.
     * @return true and fill @p out if one exists.
     */
    bool
    newestBefore(Addr byte_addr, InstSeqNum before, Ref &out) const
    {
        auto it = bytes.find(byte_addr);
        if (it == bytes.end())
            return false;
        const ArenaVec<Ref> &v = it->second;
        for (size_t pos = v.size(); pos-- > 0;) {
            if (v[pos].seq < before) {
                out = v[pos];
                return true;
            }
        }
        return false;
    }

    /**
     * Append every entry with seq > @p after touching any byte of
     * [addr, addr+size) to @p out. Entries touching several bytes
     * appear once per byte; callers sort/deduplicate.
     */
    void
    collectYoungerThan(Addr addr, unsigned size, InstSeqNum after,
                       std::vector<Ref> &out) const
    {
        for (unsigned i = 0; i < size; ++i) {
            auto it = bytes.find(addr + i);
            if (it == bytes.end())
                continue;
            const ArenaVec<Ref> &v = it->second;
            for (size_t pos = v.size(); pos-- > 0;) {
                if (v[pos].seq <= after)
                    break;
                out.push_back(v[pos]);
            }
        }
    }

    /** Total (byte, entry) registrations — for invariant checking. */
    size_t size() const { return population; }
    bool empty() const { return population == 0; }

    void
    clear()
    {
        bytes.clear();
        population = 0;
    }

    /**
     * Structural self-check: per-byte lists sorted by seq, population
     * consistent. @return "" when healthy.
     */
    std::string
    selfCheck() const
    {
        size_t n = 0;
        // Empty per-byte lists are legal: remove() keeps them so hot
        // bytes don't churn map nodes.
        for (const auto &[addr, v] : bytes) {
            for (size_t i = 1; i < v.size(); ++i) {
                if (v[i - 1].seq >= v[i].seq)
                    return "per-byte list out of order";
            }
            n += v.size();
        }
        if (n != population)
            return "population count drifted";
        return "";
    }

  private:
    /**
     * Arena-backed: both instances (processor loadBytes, store-buffer
     * dataBytes) live inside a per-run Processor, so every node comes
     * from and returns to the run arena wholesale.
     */
    ArenaMap<Addr, ArenaVec<Ref>> bytes;
    size_t population = 0;
};

} // namespace cwsim

#endif // CWSIM_BASE_BYTE_INDEX_HH
