/**
 * @file
 * A fixed-capacity circular FIFO used for the reorder buffer, load/store
 * queue, fetch queue and store buffer. Elements keep stable slot indices
 * while resident, and the structure supports truncation from the tail
 * (squash invalidation).
 */

#ifndef CWSIM_BASE_CIRCULAR_QUEUE_HH
#define CWSIM_BASE_CIRCULAR_QUEUE_HH

#include <cstddef>
#include <vector>

#include "base/logging.hh"

namespace cwsim
{

template <typename T>
class CircularQueue
{
  public:
    explicit CircularQueue(size_t capacity)
        : slots(capacity), headIdx(0), count(0)
    {
        panic_if(capacity == 0, "CircularQueue capacity must be > 0");
    }

    size_t capacity() const { return slots.size(); }
    size_t size() const { return count; }
    bool empty() const { return count == 0; }
    bool full() const { return count == slots.size(); }

    /** Append to the tail; returns the element's stable slot index. */
    size_t
    pushBack(T value)
    {
        panic_if(full(), "pushBack on full CircularQueue");
        size_t slot = physIndex(count);
        slots[slot] = std::move(value);
        ++count;
        return slot;
    }

    /** Remove the head element. */
    void
    popFront()
    {
        panic_if(empty(), "popFront on empty CircularQueue");
        ++headIdx;
        if (headIdx == slots.size())
            headIdx = 0;
        --count;
    }

    /** Drop the @p n youngest elements (tail truncation / squash). */
    void
    truncate(size_t n)
    {
        panic_if(n > count, "truncate(%zu) with only %zu elements", n,
                 count);
        count -= n;
    }

    T &front() { return slots[headIdx]; }
    const T &front() const { return slots[headIdx]; }

    T &back() { return at(count - 1); }
    const T &back() const { return at(count - 1); }

    /** Element @p pos positions from the head (0 == head). */
    T &
    at(size_t pos)
    {
        panic_if(pos >= count, "CircularQueue::at(%zu) size %zu", pos,
                 count);
        return slots[physIndex(pos)];
    }

    const T &
    at(size_t pos) const
    {
        panic_if(pos >= count, "CircularQueue::at(%zu) size %zu", pos,
                 count);
        return slots[physIndex(pos)];
    }

    /**
     * Stable slot index of logical position @p pos. Wrap by
     * subtraction rather than %: both operands are < size, and the
     * hardware divide sits in every window walk's inner loop.
     */
    size_t
    physIndex(size_t pos) const
    {
        size_t idx = headIdx + pos;
        if (idx >= slots.size())
            idx -= slots.size();
        return idx;
    }

    /** Direct access by stable slot index. */
    T &slot(size_t idx) { return slots[idx]; }
    const T &slot(size_t idx) const { return slots[idx]; }

    /**
     * Is @p idx the stable slot of a currently-resident element?
     * truncate() only shrinks the count, so tail slots keep their old
     * contents — a slot index recorded before a squash can name a dead
     * element whose fields still look plausible. Index structures that
     * hold slot references must check liveness before dereferencing.
     */
    bool
    slotLive(size_t idx) const
    {
        size_t pos = idx >= headIdx ? idx - headIdx
                                    : idx + slots.size() - headIdx;
        return pos < count;
    }

    /** Stable slot of @p elem, a reference into this queue's storage. */
    size_t
    slotOf(const T &elem) const
    {
        return static_cast<size_t>(&elem - slots.data());
    }

    void
    clear()
    {
        headIdx = 0;
        count = 0;
    }

  private:
    std::vector<T> slots;
    size_t headIdx;
    size_t count;
};

} // namespace cwsim

#endif // CWSIM_BASE_CIRCULAR_QUEUE_HH
