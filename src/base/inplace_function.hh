/**
 * @file
 * A fixed-capacity, never-allocating stand-in for std::function<void()>.
 *
 * Simulator events fire millions of times per run, and the common
 * completion captures (an object pointer plus a sequence number and an
 * epoch) just exceed libstdc++'s 16-byte small-object buffer, so
 * std::function pays a malloc/free round trip per scheduled event.
 * InplaceFunction stores the callable inline and rejects oversized
 * callables at compile time instead of spilling to the heap.
 */

#ifndef CWSIM_BASE_INPLACE_FUNCTION_HH
#define CWSIM_BASE_INPLACE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cwsim
{

class InplaceFunction
{
  public:
    /** Large enough for every event capture in the simulator. */
    static constexpr size_t buffer_size = 48;

    InplaceFunction() noexcept = default;
    InplaceFunction(std::nullptr_t) noexcept {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InplaceFunction>>>
    InplaceFunction(F &&f)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= buffer_size,
                      "callable too large for InplaceFunction; grow "
                      "buffer_size or shrink the capture");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "callable over-aligned for InplaceFunction");
        new (buf) Fn(std::forward<F>(f));
        vt = &vtable_for<Fn>;
    }

    InplaceFunction(const InplaceFunction &o) : vt(o.vt)
    {
        if (vt)
            vt->copy(buf, o.buf);
    }

    InplaceFunction(InplaceFunction &&o) noexcept : vt(o.vt)
    {
        if (vt) {
            vt->relocate(buf, o.buf);
            o.vt = nullptr;
        }
    }

    InplaceFunction &
    operator=(const InplaceFunction &o)
    {
        if (this != &o) {
            destroy();
            vt = o.vt;
            if (vt)
                vt->copy(buf, o.buf);
        }
        return *this;
    }

    InplaceFunction &
    operator=(InplaceFunction &&o) noexcept
    {
        if (this != &o) {
            destroy();
            vt = o.vt;
            if (vt) {
                vt->relocate(buf, o.buf);
                o.vt = nullptr;
            }
        }
        return *this;
    }

    ~InplaceFunction() { destroy(); }

    void operator()() { vt->invoke(buf); }

    explicit operator bool() const noexcept { return vt != nullptr; }

  private:
    struct VTable
    {
        void (*invoke)(void *);
        void (*copy)(void *dst, const void *src);
        /** Move-construct into @p dst and destroy @p src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr VTable vtable_for{
        [](void *p) { (*static_cast<Fn *>(p))(); },
        [](void *dst, const void *src) {
            new (dst) Fn(*static_cast<const Fn *>(src));
        },
        [](void *dst, void *src) {
            Fn *s = static_cast<Fn *>(src);
            new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) { static_cast<Fn *>(p)->~Fn(); },
    };

    void
    destroy()
    {
        if (vt) {
            vt->destroy(buf);
            vt = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf[buffer_size];
    const VTable *vt = nullptr;
};

} // namespace cwsim

#endif // CWSIM_BASE_INPLACE_FUNCTION_HH
