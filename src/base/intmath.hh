/**
 * @file
 * Small integer-math helpers (power-of-two arithmetic, logs, alignment).
 */

#ifndef CWSIM_BASE_INTMATH_HH
#define CWSIM_BASE_INTMATH_HH

#include <cstdint>

namespace cwsim
{

constexpr bool
isPowerOf2(uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** floor(log2(n)); n must be non-zero. */
constexpr unsigned
floorLog2(uint64_t n)
{
    unsigned lg = 0;
    while (n >>= 1)
        ++lg;
    return lg;
}

/** ceil(log2(n)); n must be non-zero. */
constexpr unsigned
ceilLog2(uint64_t n)
{
    return n == 1 ? 0 : floorLog2(n - 1) + 1;
}

constexpr uint64_t
divCeil(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p addr down to a multiple of the power-of-two @p align. */
constexpr uint64_t
alignDown(uint64_t addr, uint64_t align)
{
    return addr & ~(align - 1);
}

/** Round @p addr up to a multiple of the power-of-two @p align. */
constexpr uint64_t
alignUp(uint64_t addr, uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

} // namespace cwsim

#endif // CWSIM_BASE_INTMATH_HH
