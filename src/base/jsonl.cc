#include "base/jsonl.hh"

#include <cctype>

#include "base/str.hh"

namespace cwsim
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

JsonObject &
JsonObject::add(const std::string &key, const std::string &value)
{
    fields.push_back(strfmt("\"%s\":\"%s\"", jsonEscape(key).c_str(),
                            jsonEscape(value).c_str()));
    return *this;
}

JsonObject &
JsonObject::add(const std::string &key, const char *value)
{
    return add(key, std::string(value));
}

JsonObject &
JsonObject::add(const std::string &key, uint64_t value)
{
    fields.push_back(strfmt("\"%s\":%llu", jsonEscape(key).c_str(),
                            static_cast<unsigned long long>(value)));
    return *this;
}

JsonObject &
JsonObject::add(const std::string &key, double value)
{
    // %.17g round-trips doubles exactly; NaN/inf are not valid JSON,
    // so encode them as strings the reader can still recognize.
    if (value != value) {
        fields.push_back(strfmt("\"%s\":\"nan\"",
                                jsonEscape(key).c_str()));
    } else {
        fields.push_back(strfmt("\"%s\":%.17g",
                                jsonEscape(key).c_str(), value));
    }
    return *this;
}

JsonObject &
JsonObject::add(const std::string &key, bool value)
{
    fields.push_back(strfmt("\"%s\":%s", jsonEscape(key).c_str(),
                            value ? "true" : "false"));
    return *this;
}

std::string
JsonObject::str() const
{
    std::string out = "{";
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out += ',';
        out += fields[i];
    }
    out += '}';
    return out;
}

namespace
{

void
skipSpace(const std::string &s, size_t &pos)
{
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos]))) {
        ++pos;
    }
}

/** Parse a JSON string literal at @p pos (expects the opening '"'). */
bool
parseString(const std::string &s, size_t &pos, std::string &out)
{
    if (pos >= s.size() || s[pos] != '"')
        return false;
    ++pos;
    out.clear();
    while (pos < s.size()) {
        char c = s[pos];
        if (c == '"') {
            ++pos;
            return true;
        }
        if (c == '\\') {
            if (pos + 1 >= s.size())
                return false;
            char esc = s[pos + 1];
            pos += 2;
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                  if (pos + 4 > s.size())
                      return false;
                  unsigned v = 0;
                  for (int i = 0; i < 4; ++i) {
                      char h = s[pos + i];
                      v <<= 4;
                      if (h >= '0' && h <= '9')
                          v |= h - '0';
                      else if (h >= 'a' && h <= 'f')
                          v |= h - 'a' + 10;
                      else if (h >= 'A' && h <= 'F')
                          v |= h - 'A' + 10;
                      else
                          return false;
                  }
                  pos += 4;
                  // Cache lines only ever escape control characters
                  // this way; anything wider is out of our alphabet.
                  if (v > 0xff)
                      return false;
                  out += static_cast<char>(v);
                  break;
              }
              default:
                return false;
            }
            continue;
        }
        out += c;
        ++pos;
    }
    return false; // unterminated
}

/** Parse a bare scalar (number / true / false / null) as literal text. */
bool
parseScalar(const std::string &s, size_t &pos, std::string &out)
{
    size_t start = pos;
    while (pos < s.size() && s[pos] != ',' && s[pos] != '}' &&
           !std::isspace(static_cast<unsigned char>(s[pos]))) {
        char c = s[pos];
        // Nested structures mean this is not the flat line we wrote.
        if (c == '{' || c == '[' || c == '"')
            return false;
        ++pos;
    }
    out = s.substr(start, pos - start);
    return !out.empty();
}

} // anonymous namespace

bool
parseFlatJson(const std::string &line,
              std::map<std::string, std::string> &out)
{
    out.clear();
    size_t pos = 0;
    skipSpace(line, pos);
    if (pos >= line.size() || line[pos] != '{')
        return false;
    ++pos;
    skipSpace(line, pos);
    if (pos < line.size() && line[pos] == '}') {
        ++pos;
        skipSpace(line, pos);
        return pos == line.size();
    }
    while (true) {
        std::string key, value;
        skipSpace(line, pos);
        if (!parseString(line, pos, key))
            return false;
        skipSpace(line, pos);
        if (pos >= line.size() || line[pos] != ':')
            return false;
        ++pos;
        skipSpace(line, pos);
        if (pos < line.size() && line[pos] == '"') {
            if (!parseString(line, pos, value))
                return false;
        } else if (!parseScalar(line, pos, value)) {
            return false;
        }
        out[key] = value;
        skipSpace(line, pos);
        if (pos >= line.size())
            return false;
        if (line[pos] == ',') {
            ++pos;
            continue;
        }
        if (line[pos] == '}') {
            ++pos;
            skipSpace(line, pos);
            return pos == line.size();
        }
        return false;
    }
}

} // namespace cwsim
