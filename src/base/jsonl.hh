/**
 * @file
 * Minimal JSON-lines helpers: building one flat JSON object per line
 * (run-cache entries, exported results, dependence-profile records)
 * and parsing such lines back. This is deliberately not a general
 * JSON parser — objects are flat (no nesting, no arrays), which is
 * all the writers emit — but the parser is defensive: a malformed or
 * truncated line yields false rather than garbage, so a corrupted
 * file degrades to a miss/skip instead of an abort.
 *
 * Grew up as sweep/jsonl; hoisted into base/ once the dependence
 * profiler (obs/depprof, mdp/dep_profile) needed the same wire
 * format below the sweep layer. sweep/jsonl.hh forwards here.
 */

#ifndef CWSIM_BASE_JSONL_HH
#define CWSIM_BASE_JSONL_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cwsim
{

/** Escape @p s for use inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * Incrementally build one flat JSON object. Fields appear in insertion
 * order, so equal field sequences yield byte-identical lines —
 * required for the determinism guarantee on exported JSONL.
 */
class JsonObject
{
  public:
    JsonObject &add(const std::string &key, const std::string &value);
    JsonObject &add(const std::string &key, const char *value);
    JsonObject &add(const std::string &key, uint64_t value);
    JsonObject &add(const std::string &key, double value);
    JsonObject &add(const std::string &key, bool value);

    /** The finished single-line object, e.g. {"a":"x","n":3}. */
    std::string str() const;

  private:
    std::vector<std::string> fields;
};

/**
 * Parse one flat JSON object line into key -> raw value text. String
 * values are unescaped; numbers/booleans are returned as their
 * literal text ("123", "0.5", "true"). Returns false on malformed
 * input (including nested objects/arrays, which we never write).
 */
bool parseFlatJson(const std::string &line,
                   std::map<std::string, std::string> &out);

} // namespace cwsim

#endif // CWSIM_BASE_JSONL_HH
