#include "base/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "base/sim_error.hh"

namespace cwsim
{

namespace
{

/**
 * Serializes all log output. Sweep workers warn()/inform() and report
 * trap-escaping panics concurrently; one message per lock means lines
 * never interleave mid-line, and a fatal report is fully written
 * before the process dies.
 */
std::mutex log_mutex;

} // anonymous namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    if (errorTrapActive())
        throw SimError(SimErrorKind::Panic, msg, file, line);
    {
        std::lock_guard<std::mutex> lock(log_mutex);
        std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(),
                     file, line);
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (errorTrapActive())
        throw SimError(SimErrorKind::Fatal, msg, file, line);
    {
        std::lock_guard<std::mutex> lock(log_mutex);
        std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(),
                     file, line);
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(log_mutex);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(log_mutex);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace cwsim
