/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal simulator invariant was violated (a cwsim bug);
 *            aborts so a debugger or core dump can catch it.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, malformed workload); exits cleanly.
 *
 * Inside a ScopedErrorTrap (base/sim_error.hh) both are converted into
 * a thrown SimError so a harness can fail one run softly and continue.
 * warn()   — something is questionable but simulation continues.
 * inform() — purely informational status output.
 */

#ifndef CWSIM_BASE_LOGGING_HH
#define CWSIM_BASE_LOGGING_HH

#include <string>

#include "base/str.hh"

namespace cwsim
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace cwsim

#define panic(...) \
    ::cwsim::panicImpl(__FILE__, __LINE__, ::cwsim::strfmt(__VA_ARGS__))

#define fatal(...) \
    ::cwsim::fatalImpl(__FILE__, __LINE__, ::cwsim::strfmt(__VA_ARGS__))

#define warn(...) ::cwsim::warnImpl(::cwsim::strfmt(__VA_ARGS__))

#define inform(...) ::cwsim::informImpl(::cwsim::strfmt(__VA_ARGS__))

/** Assert a simulator invariant with a formatted explanation. */
#define panic_if(cond, ...)                                                \
    do {                                                                   \
        if (cond) {                                                       \
            ::cwsim::panicImpl(__FILE__, __LINE__,                         \
                               ::cwsim::strfmt(__VA_ARGS__));              \
        }                                                                  \
    } while (0)

/** Reject a user error with a formatted explanation. */
#define fatal_if(cond, ...)                                                \
    do {                                                                   \
        if (cond) {                                                       \
            ::cwsim::fatalImpl(__FILE__, __LINE__,                         \
                               ::cwsim::strfmt(__VA_ARGS__));              \
        }                                                                  \
    } while (0)

#endif // CWSIM_BASE_LOGGING_HH
