/**
 * @file
 * A tiny deterministic PRNG (xorshift64*) used by workload generators.
 *
 * The standard library engines are avoided so that workload data is
 * bit-identical across standard-library versions; determinism is what
 * makes the oracle pre-pass and the timing run line up.
 */

#ifndef CWSIM_BASE_RANDOM_HH
#define CWSIM_BASE_RANDOM_HH

#include <cstdint>

namespace cwsim
{

class Random
{
  public:
    explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return real() < p;
    }

  private:
    uint64_t state;
};

} // namespace cwsim

#endif // CWSIM_BASE_RANDOM_HH
