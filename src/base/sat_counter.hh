/**
 * @file
 * An n-bit saturating counter, the workhorse of every predictor in the
 * branch-prediction and memory-dependence-prediction subsystems.
 */

#ifndef CWSIM_BASE_SAT_COUNTER_HH
#define CWSIM_BASE_SAT_COUNTER_HH

#include <cstdint>

#include "base/logging.hh"

namespace cwsim
{

class SatCounter
{
  public:
    /**
     * @param num_bits Width of the counter (1..16).
     * @param initial Initial (and post-reset) count.
     */
    explicit SatCounter(unsigned num_bits = 2, unsigned initial = 0)
        : maxCount((1u << num_bits) - 1), initialCount(initial),
          count(initial)
    {
        panic_if(num_bits == 0 || num_bits > 16,
                 "SatCounter width %u out of range", num_bits);
        panic_if(initial > maxCount,
                 "SatCounter initial value %u exceeds max %u", initial,
                 maxCount);
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (count < maxCount)
            ++count;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (count > 0)
            --count;
    }

    void reset() { count = initialCount; }

    unsigned value() const { return count; }
    unsigned max() const { return maxCount; }
    bool saturated() const { return count == maxCount; }

    /** True when the counter is in its upper half (the "taken" side). */
    bool
    isSet() const
    {
        return count > maxCount / 2;
    }

  private:
    unsigned maxCount;
    unsigned initialCount;
    unsigned count;
};

} // namespace cwsim

#endif // CWSIM_BASE_SAT_COUNTER_HH
