#include "base/sim_error.hh"

#include "base/str.hh"

namespace cwsim
{

namespace
{

thread_local int trap_depth = 0;

} // anonymous namespace

const char *
toString(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::Panic:
        return "panic";
      case SimErrorKind::Fatal:
        return "fatal";
      case SimErrorKind::Watchdog:
        return "watchdog";
      case SimErrorKind::Invariant:
        return "invariant";
      case SimErrorKind::Equivalence:
        return "equivalence";
    }
    return "error";
}

std::string
SimError::summary() const
{
    std::string s = strfmt("%s: %s", toString(errKind), msg.c_str());
    if (!srcFile.empty())
        s += strfmt(" (%s:%d)", srcFile.c_str(), srcLine);
    return s;
}

ScopedErrorTrap::ScopedErrorTrap()
{
    ++trap_depth;
}

ScopedErrorTrap::~ScopedErrorTrap()
{
    --trap_depth;
}

bool
errorTrapActive()
{
    return trap_depth > 0;
}

} // namespace cwsim
