#include "base/sim_error.hh"

#include <cstdio>
#include <cstdlib>

#include "base/str.hh"

namespace cwsim
{

namespace
{

/**
 * Per-thread trap nesting depth. thread_local (not a process-wide
 * slot) is what keeps concurrent sweep workers independent: each
 * worker arms its own trap, and a panic on one thread can only ever
 * be converted to a SimError by that thread's own traps.
 */
thread_local int trap_depth = 0;

} // anonymous namespace

const char *
toString(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::Panic:
        return "panic";
      case SimErrorKind::Fatal:
        return "fatal";
      case SimErrorKind::Watchdog:
        return "watchdog";
      case SimErrorKind::Invariant:
        return "invariant";
      case SimErrorKind::Equivalence:
        return "equivalence";
    }
    return "error";
}

std::string
SimError::summary() const
{
    std::string s = strfmt("%s: %s", toString(errKind), msg.c_str());
    if (!srcFile.empty())
        s += strfmt(" (%s:%d)", srcFile.c_str(), srcLine);
    return s;
}

ScopedErrorTrap::ScopedErrorTrap()
{
    ++trap_depth;
}

ScopedErrorTrap::~ScopedErrorTrap()
{
    if (trap_depth <= 0) {
        // A trap died on a thread that never armed one: the RAII
        // discipline was broken (e.g. a trap handed across threads).
        // Can't panic() from a destructor, so report and abort.
        std::fprintf(stderr, "panic: ScopedErrorTrap underflow "
                     "(destroyed on a thread that never armed it)\n");
        std::abort();
    }
    --trap_depth;
}

bool
errorTrapActive()
{
    return trap_depth > 0;
}

int
errorTrapDepth()
{
    return trap_depth;
}

} // namespace cwsim
