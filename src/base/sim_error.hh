/**
 * @file
 * The typed simulation-error exception underpinning fail-soft sweeps.
 *
 * Library code reports unrecoverable conditions through panic()/fatal()
 * (base/logging.hh). By default those abort/exit so a debugger or shell
 * sees the failure immediately. Inside a ScopedErrorTrap, however, both
 * are converted into a thrown SimError carrying the error kind, source
 * location, and (for checked-simulation failures) a diagnostic dump —
 * the flight-recorder contents plus machine state. The harness wraps
 * every (workload, config) run in a trap so one poisoned run is
 * recorded in the results table instead of killing a whole bench sweep.
 */

#ifndef CWSIM_BASE_SIM_ERROR_HH
#define CWSIM_BASE_SIM_ERROR_HH

#include <stdexcept>
#include <string>

namespace cwsim
{

enum class SimErrorKind
{
    Panic,     ///< Internal simulator invariant violated (a cwsim bug).
    Fatal,     ///< User error: bad configuration or malformed workload.
    Watchdog,  ///< Forward-progress watchdog: commit stall / livelock.
    Invariant, ///< Checked-simulation invariant failed mid-run.
    Equivalence, ///< Post-run commit state diverged from the oracle.
};

const char *toString(SimErrorKind kind);

class SimError : public std::runtime_error
{
  public:
    SimError(SimErrorKind kind, std::string msg,
             std::string file = {}, int line = 0,
             std::string diagnostic = {})
        : std::runtime_error(msg), errKind(kind), msg(std::move(msg)),
          srcFile(std::move(file)), srcLine(line),
          diag(std::move(diagnostic))
    {}

    SimErrorKind kind() const { return errKind; }
    const std::string &message() const { return msg; }
    const std::string &file() const { return srcFile; }
    int line() const { return srcLine; }

    /** Flight-recorder dump + machine state (may be empty). */
    const std::string &diagnostic() const { return diag; }

    /** One-line "kind: message (file:line)" summary for tables/logs. */
    std::string summary() const;

  private:
    SimErrorKind errKind;
    std::string msg;
    std::string srcFile;
    int srcLine;
    std::string diag;
};

/**
 * While at least one trap is alive on this thread, panic()/fatal()
 * throw SimError instead of aborting/exiting. Traps nest, and the
 * arming state is strictly per-thread: a trap armed on a sweep worker
 * neither swallows another worker's abort nor leaks into threads that
 * never armed one, so parallel fail-soft runs stay independent.
 */
class ScopedErrorTrap
{
  public:
    ScopedErrorTrap();
    ~ScopedErrorTrap();

    ScopedErrorTrap(const ScopedErrorTrap &) = delete;
    ScopedErrorTrap &operator=(const ScopedErrorTrap &) = delete;
};

/** Is a ScopedErrorTrap active on the calling thread? */
bool errorTrapActive();

/** Number of ScopedErrorTraps alive on the calling thread. */
int errorTrapDepth();

} // namespace cwsim

#endif // CWSIM_BASE_SIM_ERROR_HH
