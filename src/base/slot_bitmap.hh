/**
 * @file
 * A fixed-capacity bitmap over the stable slot indices of a
 * CircularQueue, used to iterate sparse subsets (e.g. the not-yet-done
 * instructions of the window) in age order without scanning every
 * slot.
 *
 * Iteration walks set bits with one find-first-set per 64 slots, and
 * is safe against arbitrary concurrent set/clear of bits at positions
 * other than the one being advanced from: each step re-reads the words
 * from scratch.
 */

#ifndef CWSIM_BASE_SLOT_BITMAP_HH
#define CWSIM_BASE_SLOT_BITMAP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/logging.hh"

namespace cwsim
{

class SlotBitmap
{
  public:
    static constexpr size_t npos = ~size_t(0);

    explicit SlotBitmap(size_t capacity)
        : cap(capacity), words((capacity + 63) / 64, 0)
    {
        panic_if(capacity == 0, "SlotBitmap capacity must be > 0");
    }

    size_t capacity() const { return cap; }

    void
    set(size_t idx)
    {
        words[idx >> 6] |= uint64_t(1) << (idx & 63);
    }

    void
    clear(size_t idx)
    {
        words[idx >> 6] &= ~(uint64_t(1) << (idx & 63));
    }

    bool
    test(size_t idx) const
    {
        return (words[idx >> 6] >> (idx & 63)) & 1;
    }

    void
    reset()
    {
        for (uint64_t &w : words)
            w = 0;
    }

    bool
    none() const
    {
        for (uint64_t w : words) {
            if (w)
                return false;
        }
        return true;
    }

    size_t
    count() const
    {
        size_t n = 0;
        for (uint64_t w : words)
            n += static_cast<size_t>(__builtin_popcountll(w));
        return n;
    }

    /** The first set bit at index >= @p from, or npos. */
    size_t
    nextSet(size_t from) const
    {
        if (from >= cap)
            return npos;
        size_t wi = from >> 6;
        uint64_t w = words[wi] & (~uint64_t(0) << (from & 63));
        while (true) {
            if (w) {
                size_t idx =
                    (wi << 6) +
                    static_cast<size_t>(__builtin_ctzll(w));
                return idx < cap ? idx : npos;
            }
            if (++wi >= words.size())
                return npos;
            w = words[wi];
        }
    }

  private:
    size_t cap;
    std::vector<uint64_t> words;
};

} // namespace cwsim

#endif // CWSIM_BASE_SLOT_BITMAP_HH
