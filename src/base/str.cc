#include "base/str.hh"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "base/logging.hh"

namespace cwsim
{

std::string
strfmt(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);

    std::string out;
    if (len > 0) {
        out.resize(static_cast<size_t>(len));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> fields;
    size_t start = 0;
    while (true) {
        size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
            fields.push_back(s.substr(start));
            break;
        }
        fields.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return fields;
}

std::string
trim(const std::string &s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1]))) {
        --end;
    }
    return s.substr(begin, end - begin);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
lastLines(const std::string &s, size_t n)
{
    if (n == 0)
        return "";
    std::vector<std::string> kept;
    for (const std::string &line : split(s, '\n')) {
        if (trim(line).empty())
            continue;
        kept.push_back(line);
    }
    size_t begin = kept.size() > n ? kept.size() - n : 0;
    std::string out;
    for (size_t i = begin; i < kept.size(); ++i) {
        if (!out.empty())
            out += '\n';
        out += kept[i];
    }
    return out;
}

uint64_t
envUint64(const char *name, uint64_t min, uint64_t fallback)
{
    const char *env = std::getenv(name);
    if (!env)
        return fallback;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    // strtoull tolerates signs and wraps negatives; require a plain
    // digit string so "-4" is rejected instead of becoming 2^64-4.
    bool digits = std::isdigit(static_cast<unsigned char>(env[0]));
    if (!digits || end == env || *end != '\0' || errno == ERANGE) {
        warn("ignoring %s=%s (not an unsigned integer); using %llu",
             name, env, static_cast<unsigned long long>(fallback));
        return fallback;
    }
    if (v < min) {
        warn("ignoring %s=%s (must be >= %llu); using %llu", name, env,
             static_cast<unsigned long long>(min),
             static_cast<unsigned long long>(fallback));
        return fallback;
    }
    return v;
}

} // namespace cwsim
