/**
 * @file
 * Minimal printf-style string formatting used by logging and tables.
 */

#ifndef CWSIM_BASE_STR_HH
#define CWSIM_BASE_STR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cwsim
{

/**
 * Format a string printf-style into a std::string.
 *
 * @param fmt printf format string.
 * @return The formatted string.
 */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Split @p s on the separator character, keeping empty fields. */
std::vector<std::string> split(const std::string &s, char sep);

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &s);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/**
 * The last (up to) @p n non-empty lines of @p s, newline-joined, no
 * trailing newline. Used to attach the tail of a diagnostic dump
 * (flight-recorder events) to failure summaries.
 */
std::string lastLines(const std::string &s, size_t n);

/**
 * Read an unsigned integer from the environment, with validation.
 *
 * Returns @p fallback when @p name is unset. Malformed values (empty,
 * trailing junk, out of uint64_t range) and values below @p min are
 * rejected with a warn() and fall back too, so every knob read from
 * the environment (CWSIM_SCALE, CWSIM_JOBS, ...) reports bad input the
 * same way instead of silently truncating via strtoull.
 */
uint64_t envUint64(const char *name, uint64_t min, uint64_t fallback);

} // namespace cwsim

#endif // CWSIM_BASE_STR_HH
