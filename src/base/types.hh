/**
 * @file
 * Fundamental scalar types shared across every cwsim subsystem.
 */

#ifndef CWSIM_BASE_TYPES_HH
#define CWSIM_BASE_TYPES_HH

#include <cstdint>

namespace cwsim
{

/** A byte address in the simulated machine's address space. */
using Addr = uint64_t;

/** An absolute simulation time, in processor cycles. */
using Tick = uint64_t;

/** A relative number of cycles (latency). */
using Cycles = uint64_t;

/**
 * A dynamic-instruction sequence number. Sequence numbers increase
 * monotonically in fetch order and are never reused, so comparing two
 * sequence numbers establishes program order between in-flight
 * instructions.
 */
using InstSeqNum = uint64_t;

/**
 * The position of an instruction within the committed dynamic execution
 * trace. Unlike InstSeqNum, trace indices roll back on a squash so that a
 * committed-path instruction always carries the same index the functional
 * pre-pass assigned to it (this is what lets the oracle disambiguator and
 * the split-window model line up with the timing core).
 */
using TraceIndex = uint64_t;

/** Sentinel for "no address". */
constexpr Addr invalid_addr = ~Addr(0);

/** Sentinel for "no trace index". */
constexpr TraceIndex invalid_trace_index = ~TraceIndex(0);

} // namespace cwsim

#endif // CWSIM_BASE_TYPES_HH
