#include "bpred/bpred.hh"

#include "base/bitfield.hh"
#include "base/intmath.hh"
#include "base/logging.hh"

namespace cwsim
{

BranchPredictor::BranchPredictor(const BPredConfig &cfg)
    : tableEntries(cfg.predictorEntries),
      historyBits(cfg.gselectHistoryBits), globalHist(0),
      bimodal(cfg.predictorEntries, SatCounter(2, 1)),
      gselect(cfg.predictorEntries, SatCounter(2, 1)),
      selector(cfg.predictorEntries, SatCounter(2, 1)),
      btb(cfg.btbEntries), ras(cfg.rasEntries, 0), rasTop(0)
{
    fatal_if(!isPowerOf2(cfg.predictorEntries),
             "predictor entries must be a power of two");
    fatal_if(!isPowerOf2(cfg.btbEntries),
             "BTB entries must be a power of two");
}

unsigned
BranchPredictor::bimodalIndex(Addr pc) const
{
    return static_cast<unsigned>((pc >> 2) & (tableEntries - 1));
}

unsigned
BranchPredictor::gselectIndex(Addr pc, uint32_t hist) const
{
    return static_cast<unsigned>(
        (((pc >> 2) << historyBits) | hist) & (tableEntries - 1));
}

unsigned
BranchPredictor::selectorIndex(Addr pc) const
{
    return static_cast<unsigned>((pc >> 2) & (tableEntries - 1));
}

bool
BranchPredictor::directionLookup(Addr pc) const
{
    bool bimodal_taken = bimodal[bimodalIndex(pc)].isSet();
    bool gselect_taken = gselect[gselectIndex(pc, globalHist)].isSet();
    bool use_gselect = selector[selectorIndex(pc)].isSet();
    return use_gselect ? gselect_taken : bimodal_taken;
}

void
BranchPredictor::directionUpdate(Addr pc, bool taken, uint32_t hist)
{
    SatCounter &bi = bimodal[bimodalIndex(pc)];
    SatCounter &gs = gselect[gselectIndex(pc, hist)];
    bool bi_correct = bi.isSet() == taken;
    bool gs_correct = gs.isSet() == taken;

    // Train the selector only when the components disagree.
    if (bi_correct != gs_correct) {
        SatCounter &sel = selector[selectorIndex(pc)];
        if (gs_correct)
            sel.increment();
        else
            sel.decrement();
    }

    if (taken) {
        bi.increment();
        gs.increment();
    } else {
        bi.decrement();
        gs.decrement();
    }
}

void
BranchPredictor::pushRas(Addr return_pc)
{
    rasTop = (rasTop + 1) % ras.size();
    ras[rasTop] = return_pc;
}

Addr
BranchPredictor::popRas()
{
    Addr target = ras[rasTop];
    rasTop = (rasTop + ras.size() - 1) % ras.size();
    return target;
}

BranchPredictor::Prediction
BranchPredictor::predict(const StaticInst &inst, Addr pc)
{
    ++lookups;

    Prediction pred;
    pred.checkpoint.globalHist = globalHist;
    pred.checkpoint.rasTop = rasTop;
    pred.checkpoint.rasTopValue = ras[(rasTop + 1) % ras.size()];
    pred.checkpoint.rasValid = true;

    if (inst.isBranch()) {
        pred.taken = directionLookup(pc);
        pred.target = branchTarget(inst, pc);
        pred.targetKnown = true;
        globalHist = ((globalHist << 1) | (pred.taken ? 1 : 0)) &
                     static_cast<uint32_t>(mask(historyBits));
        return pred;
    }

    // Unconditional transfers are always taken.
    pred.taken = true;

    if (inst.isCall())
        pushRas(pc + 4);

    if (inst.isReturn()) {
        pred.target = popRas();
        pred.targetKnown = true;
        return pred;
    }

    if (!inst.isIndirect()) {
        // Direct jump: the target comes straight from the decoded
        // instruction (fetch decodes the block it reads).
        pred.target = branchTarget(inst, pc);
        pred.targetKnown = true;
        return pred;
    }

    // Indirect non-return: consult the BTB.
    const BtbEntry &entry = btb[(pc >> 2) & (btb.size() - 1)];
    if (entry.tag == pc) {
        pred.target = entry.target;
        pred.targetKnown = true;
    } else {
        ++btbMisses;
        pred.targetKnown = false;
    }
    return pred;
}

void
BranchPredictor::update(const StaticInst &inst, Addr pc, bool taken,
                        Addr target, uint32_t hist_at_predict)
{
    if (inst.isBranch()) {
        directionUpdate(pc, taken, hist_at_predict);
        return;
    }
    if (inst.isIndirect() && !inst.isReturn()) {
        BtbEntry &entry = btb[(pc >> 2) & (btb.size() - 1)];
        entry.tag = pc;
        entry.target = target;
    }
}

void
BranchPredictor::repair(const BPredCheckpoint &checkpoint)
{
    globalHist = checkpoint.globalHist;
    if (checkpoint.rasValid) {
        ras[(checkpoint.rasTop + 1) % ras.size()] =
            checkpoint.rasTopValue;
        rasTop = checkpoint.rasTop;
    }
}

void
BranchPredictor::repairAndResolve(const BPredCheckpoint &checkpoint,
                                  bool actual_taken)
{
    repair(checkpoint);
    globalHist = ((checkpoint.globalHist << 1) | (actual_taken ? 1 : 0)) &
                 static_cast<uint32_t>(mask(historyBits));
}

void
BranchPredictor::warmUpdate(const StaticInst &inst, Addr pc, bool taken,
                            Addr target)
{
    if (inst.isBranch()) {
        // Index gselect with the pre-update history, as predict would.
        directionUpdate(pc, taken, globalHist);
        globalHist = ((globalHist << 1) | (taken ? 1 : 0)) &
                     static_cast<uint32_t>(mask(historyBits));
        return;
    }
    if (inst.isCall())
        pushRas(pc + 4);
    if (inst.isReturn())
        popRas();
    update(inst, pc, taken, target, globalHist);
}

void
BranchPredictor::registerStats(stats::StatGroup &group)
{
    group.addScalar("bpred.lookups", &lookups);
    group.addScalar("bpred.mispredicted_directions",
                    &mispredictedDirections);
    group.addScalar("bpred.btb_misses", &btbMisses);
}

} // namespace cwsim
