/**
 * @file
 * The paper's branch predictor (Table 2): a McFarling-style combined
 * predictor — a 2-bit bimodal component and a gselect component with
 * 5-bit global history, arbitrated by a 2-bit selector — plus a 2K-entry
 * BTB and a 64-entry return-address stack.
 *
 * Global history and the RAS are updated speculatively at predict time;
 * each prediction returns a checkpoint the core uses to repair state on
 * a squash. Counters and the BTB are trained at resolve time.
 */

#ifndef CWSIM_BPRED_BPRED_HH
#define CWSIM_BPRED_BPRED_HH

#include <cstdint>
#include <vector>

#include "base/sat_counter.hh"
#include "base/types.hh"
#include "isa/static_inst.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace cwsim
{

/** Speculative-state checkpoint taken at each prediction. */
struct BPredCheckpoint
{
    uint32_t globalHist = 0;
    unsigned rasTop = 0;
    Addr rasTopValue = 0;
    bool rasValid = false;
};

class BranchPredictor
{
  public:
    explicit BranchPredictor(const BPredConfig &cfg);

    struct Prediction
    {
        bool taken = false;       ///< Predicted direction.
        Addr target = 0;          ///< Predicted target if taken.
        bool targetKnown = false; ///< Target available this cycle.
        BPredCheckpoint checkpoint;
    };

    /**
     * Predict a control-transfer instruction sitting at @p pc, updating
     * speculative history / RAS.
     */
    Prediction predict(const StaticInst &inst, Addr pc);

    /**
     * Train direction counters and the BTB with the resolved outcome.
     * Call once per executed control instruction (on the correct path).
     * @param hist_at_predict Global history value captured in the
     *        prediction's checkpoint, so gselect trains the entry it
     *        actually read.
     */
    void update(const StaticInst &inst, Addr pc, bool taken, Addr target,
                uint32_t hist_at_predict);

    /** Restore speculative state after a squash. */
    void repair(const BPredCheckpoint &checkpoint);

    /**
     * Repair after a mispredicted conditional branch: restore the
     * checkpoint, then shift the branch's actual outcome into the
     * global history (the squashed prediction shifted in the wrong
     * one).
     */
    void repairAndResolve(const BPredCheckpoint &checkpoint,
                          bool actual_taken);

    /**
     * Warm-up hook for the fast-forward phase of sampled runs: trains
     * counters, BTB and history as if the branch had been predicted and
     * immediately resolved.
     */
    void warmUpdate(const StaticInst &inst, Addr pc, bool taken,
                    Addr target);

    // Statistics.
    stats::Scalar lookups;
    stats::Scalar mispredictedDirections;
    stats::Scalar btbMisses;

    void registerStats(stats::StatGroup &group);

  private:
    unsigned bimodalIndex(Addr pc) const;
    unsigned gselectIndex(Addr pc, uint32_t hist) const;
    unsigned selectorIndex(Addr pc) const;
    bool directionLookup(Addr pc) const;
    void directionUpdate(Addr pc, bool taken, uint32_t hist);
    void pushRas(Addr return_pc);
    Addr popRas();

    struct BtbEntry
    {
        Addr tag = invalid_addr;
        Addr target = 0;
    };

    unsigned tableEntries;
    unsigned historyBits;
    uint32_t globalHist;

    std::vector<SatCounter> bimodal;
    std::vector<SatCounter> gselect;
    std::vector<SatCounter> selector;
    std::vector<BtbEntry> btb;
    std::vector<Addr> ras;
    unsigned rasTop;
};

} // namespace cwsim

#endif // CWSIM_BPRED_BPRED_HH
