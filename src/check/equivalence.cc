#include "check/equivalence.hh"

#include "base/str.hh"

namespace cwsim
{
namespace check
{

std::string
compareWithGolden(const ArchState &arch, uint64_t mem_fingerprint,
                  uint64_t commits, const PrepassResult &golden)
{
    std::string report;

    if (commits != golden.instCount) {
        report += strfmt("commit count %llu != functional %llu\n",
                         static_cast<unsigned long long>(commits),
                         static_cast<unsigned long long>(
                             golden.instCount));
    }
    if (mem_fingerprint != golden.memFingerprint) {
        report += strfmt("memory fingerprint 0x%llx != functional "
                         "0x%llx\n",
                         static_cast<unsigned long long>(
                             mem_fingerprint),
                         static_cast<unsigned long long>(
                             golden.memFingerprint));
    }
    for (unsigned r = 0; r < num_arch_regs; ++r) {
        if (arch.regs[r] != golden.finalState.regs[r]) {
            report += strfmt("reg %u = 0x%llx != functional 0x%llx\n",
                             r,
                             static_cast<unsigned long long>(
                                 arch.regs[r]),
                             static_cast<unsigned long long>(
                                 golden.finalState.regs[r]));
        }
    }
    return report;
}

} // namespace check
} // namespace cwsim
