/**
 * @file
 * Post-run commit-state equivalence against the functional Oracle
 * pre-pass: the strongest end-to-end invariant of the whole simulator.
 *
 * The ISA is deterministic, so whatever the timing core speculated,
 * squashed, replayed or selectively re-executed along the way, the
 * committed path must end in exactly the architectural state the
 * functional interpreter produced: same instruction count, same
 * register file, same memory image (compared by fingerprint), same
 * final PC. The harness runs this after every checked run; the
 * fault-injection tests lean on it to prove that recovery under
 * induced miss-speculation storms is value-correct.
 */

#ifndef CWSIM_CHECK_EQUIVALENCE_HH
#define CWSIM_CHECK_EQUIVALENCE_HH

#include <cstdint>
#include <string>

#include "isa/executor.hh"
#include "mdp/oracle.hh"

namespace cwsim
{
namespace check
{

/**
 * Compare a timing run's final committed state against the pre-pass
 * golden state. @return an empty string on equivalence, otherwise a
 * human-readable description of every divergence found.
 *
 * @param arch Committed register state after the run.
 * @param mem_fingerprint FunctionalMemory::fingerprint() after the run.
 * @param commits Instructions the timing run committed.
 * @param golden The functional pre-pass result for the same program.
 */
std::string compareWithGolden(const ArchState &arch,
                              uint64_t mem_fingerprint,
                              uint64_t commits,
                              const PrepassResult &golden);

} // namespace check
} // namespace cwsim

#endif // CWSIM_CHECK_EQUIVALENCE_HH
