/**
 * @file
 * Deterministic fault injection for the speculation recovery paths.
 *
 * Each injection point draws from a seeded xorshift PRNG
 * (base/random.hh), so a given (seed, rates, workload, config) tuple
 * reproduces the exact same fault storm run after run. The injectable
 * faults mirror the three classes of state the paper's mechanisms rely
 * on: the recovery machinery (spurious miss-speculations), the
 * address-based scheduler's view of store addresses (posting delays),
 * and the MDPT's contents (dropped / corrupted entries). All three must
 * be performance-only: the oracle commit-state equivalence check proves
 * that squash and selective recovery restore correct architectural
 * state no matter how hard they are stormed.
 */

#ifndef CWSIM_CHECK_FAULT_INJECTOR_HH
#define CWSIM_CHECK_FAULT_INJECTOR_HH

#include "base/random.hh"
#include "base/types.hh"
#include "sim/config.hh"

namespace cwsim
{
namespace check
{

/**
 * Host-level fault verdict for one cycle. Unlike the performance-only
 * faults, executing one of these kills or wedges the host process —
 * they exist so the --isolate sweep executor's containment (crash /
 * timeout / oom classification) can be tested deterministically.
 */
enum class HostFault
{
    None,
    Crash, ///< abort(): the child dies with SIGABRT.
    Hang,  ///< Infinite spin: only a wall-clock timeout ends it.
    Alloc, ///< Allocation storm: grows until RLIMIT_AS / OOM kills it.
};

class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &cfg)
        : cfg(cfg), rng(cfg.seed), armed(cfg.any() || cfg.hostAny())
    {}

    bool enabled() const { return armed; }

    /** Store executed: force a spurious violation against a load? */
    bool
    injectSpuriousViolation()
    {
        return armed && draw(cfg.spuriousViolationRate);
    }

    /** Store address posted: extra scheduler-visibility delay. */
    Cycles
    injectStoreAddrDelay()
    {
        if (!armed || !draw(cfg.storeAddrDelayRate))
            return 0;
        return cfg.storeAddrDelay;
    }

    /** Once per cycle: invalidate a random MDPT entry? */
    bool injectMdptDrop() { return armed && draw(cfg.mdptDropRate); }

    /** Once per cycle: scramble a random MDPT entry? */
    bool
    injectMdptCorrupt()
    {
        return armed && draw(cfg.mdptCorruptRate);
    }

    /**
     * Once per cycle: should a host-level fault fire, and which one?
     * Rates of 0 consume no PRNG state, so arming only host faults
     * leaves the performance-fault storm (and with no other rates set,
     * the simulation itself) bit-identical until the fault fires.
     */
    HostFault
    drawHostFault()
    {
        if (!armed)
            return HostFault::None;
        if (draw(cfg.hostCrashRate))
            return HostFault::Crash;
        if (draw(cfg.hostHangRate))
            return HostFault::Hang;
        if (draw(cfg.hostAllocRate))
            return HostFault::Alloc;
        return HostFault::None;
    }

    /** Raw PRNG for pickers (victim selection, scramble values). */
    Random &random() { return rng; }

  private:
    bool
    draw(double rate)
    {
        return rate > 0 && rng.chance(rate);
    }

    FaultConfig cfg;
    Random rng;
    bool armed;
};

} // namespace check
} // namespace cwsim

#endif // CWSIM_CHECK_FAULT_INJECTOR_HH
