/**
 * @file
 * Deterministic fault injection for the speculation recovery paths.
 *
 * Each injection point draws from a seeded xorshift PRNG
 * (base/random.hh), so a given (seed, rates, workload, config) tuple
 * reproduces the exact same fault storm run after run. The injectable
 * faults mirror the three classes of state the paper's mechanisms rely
 * on: the recovery machinery (spurious miss-speculations), the
 * address-based scheduler's view of store addresses (posting delays),
 * and the MDPT's contents (dropped / corrupted entries). All three must
 * be performance-only: the oracle commit-state equivalence check proves
 * that squash and selective recovery restore correct architectural
 * state no matter how hard they are stormed.
 */

#ifndef CWSIM_CHECK_FAULT_INJECTOR_HH
#define CWSIM_CHECK_FAULT_INJECTOR_HH

#include "base/random.hh"
#include "base/types.hh"
#include "sim/config.hh"

namespace cwsim
{
namespace check
{

class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &cfg)
        : cfg(cfg), rng(cfg.seed), armed(cfg.any())
    {}

    bool enabled() const { return armed; }

    /** Store executed: force a spurious violation against a load? */
    bool
    injectSpuriousViolation()
    {
        return armed && draw(cfg.spuriousViolationRate);
    }

    /** Store address posted: extra scheduler-visibility delay. */
    Cycles
    injectStoreAddrDelay()
    {
        if (!armed || !draw(cfg.storeAddrDelayRate))
            return 0;
        return cfg.storeAddrDelay;
    }

    /** Once per cycle: invalidate a random MDPT entry? */
    bool injectMdptDrop() { return armed && draw(cfg.mdptDropRate); }

    /** Once per cycle: scramble a random MDPT entry? */
    bool
    injectMdptCorrupt()
    {
        return armed && draw(cfg.mdptCorruptRate);
    }

    /** Raw PRNG for pickers (victim selection, scramble values). */
    Random &random() { return rng; }

  private:
    bool
    draw(double rate)
    {
        return rate > 0 && rng.chance(rate);
    }

    FaultConfig cfg;
    Random rng;
    bool armed;
};

} // namespace check
} // namespace cwsim

#endif // CWSIM_CHECK_FAULT_INJECTOR_HH
