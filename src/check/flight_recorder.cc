#include "check/flight_recorder.hh"

#include <sstream>

#include "base/str.hh"

namespace cwsim
{
namespace check
{

const char *
toString(EventKind kind)
{
    switch (kind) {
      case EventKind::Retire:
        return "retire";
      case EventKind::Squash:
        return "squash";
      case EventKind::Violation:
        return "violation";
      case EventKind::Replay:
        return "replay";
      case EventKind::SelectiveRecovery:
        return "selective-recovery";
      case EventKind::SelectiveFallback:
        return "selective-fallback";
      case EventKind::InjectedViolation:
        return "injected-violation";
      case EventKind::InjectedAddrDelay:
        return "injected-addr-delay";
      case EventKind::InjectedMdptFault:
        return "injected-mdpt-fault";
      case EventKind::WatchdogTrip:
        return "watchdog-trip";
    }
    return "unknown";
}

std::vector<Event>
FlightRecorder::events() const
{
    std::vector<Event> out;
    out.reserve(ring.size());
    for (size_t i = 0; i < ring.size(); ++i)
        out.push_back(ring[(head + i) % ring.size()]);
    return out;
}

void
FlightRecorder::dump(std::ostream &os) const
{
    os << strfmt("flight recorder: %llu events total, last %zu:\n",
                 static_cast<unsigned long long>(totalCount),
                 ring.size());
    for (const Event &e : events()) {
        os << strfmt("  cycle %-10llu %-20s seq %-8llu pc 0x%-8llx "
                     "arg %llu\n",
                     static_cast<unsigned long long>(e.cycle),
                     toString(e.kind),
                     static_cast<unsigned long long>(e.seq),
                     static_cast<unsigned long long>(e.pc),
                     static_cast<unsigned long long>(e.arg));
    }
}

std::string
FlightRecorder::dumpString() const
{
    std::ostringstream os;
    dump(os);
    return os.str();
}

} // namespace check
} // namespace cwsim
