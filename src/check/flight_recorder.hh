/**
 * @file
 * The flight recorder: a fixed-size ring buffer of the most recent
 * pipeline events of diagnostic interest (retires, squashes, dependence
 * violations, replays, selective recoveries, injected faults, watchdog
 * trips). Recording is O(1) and allocation-free after construction, so
 * it is cheap enough to leave on at check level >= 1; the buffer is
 * rendered into every checked-simulation SimError so a failure report
 * shows what the machine was doing just before it went wrong.
 */

#ifndef CWSIM_CHECK_FLIGHT_RECORDER_HH
#define CWSIM_CHECK_FLIGHT_RECORDER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "base/types.hh"

namespace cwsim
{
namespace check
{

enum class EventKind : uint8_t
{
    Retire,
    Squash,
    Violation,
    Replay,
    SelectiveRecovery,
    SelectiveFallback,
    InjectedViolation,
    InjectedAddrDelay,
    InjectedMdptFault,
    WatchdogTrip,
};

const char *toString(EventKind kind);

struct Event
{
    Tick cycle = 0;
    EventKind kind = EventKind::Retire;
    InstSeqNum seq = 0;
    Addr pc = 0;
    /** Kind-specific payload (e.g. squash count, delay cycles). */
    uint64_t arg = 0;
};

class FlightRecorder
{
  public:
    /** @param capacity Events retained; 0 disables recording. */
    explicit FlightRecorder(size_t capacity) : cap(capacity)
    {
        ring.reserve(cap);
    }

    bool enabled() const { return cap > 0; }

    void
    record(Tick cycle, EventKind kind, InstSeqNum seq = 0, Addr pc = 0,
           uint64_t arg = 0)
    {
        if (cap == 0)
            return;
        Event e{cycle, kind, seq, pc, arg};
        if (ring.size() < cap) {
            ring.push_back(e);
        } else {
            ring[head] = e;
            head = (head + 1) % cap;
        }
        ++totalCount;
    }

    /** Events recorded over the whole run (including overwritten). */
    uint64_t total() const { return totalCount; }

    /** Events currently held, oldest first. */
    std::vector<Event> events() const;

    /** Render the buffer, oldest first, one event per line. */
    void dump(std::ostream &os) const;
    std::string dumpString() const;

  private:
    size_t cap;
    std::vector<Event> ring;
    size_t head = 0; ///< Oldest element once the ring has wrapped.
    uint64_t totalCount = 0;
};

} // namespace check
} // namespace cwsim

#endif // CWSIM_CHECK_FLIGHT_RECORDER_HH
