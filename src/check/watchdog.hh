/**
 * @file
 * The forward-progress watchdog: detects commit stalls and livelock.
 *
 * A healthy continuous-window machine commits within a bounded number
 * of cycles of any stall (the longest legitimate stall chains a few
 * main-memory accesses, i.e. hundreds of cycles). A pipeline that has
 * not committed anything for `interval` cycles is wedged — a scheduling
 * deadlock, a lost completion event, or a recovery bug — and spinning
 * on to maxCycles (default 5e8) would just hang the whole bench sweep.
 * The owner polls expired() each cycle and raises a structured
 * SimError (with the flight-recorder dump) when it trips.
 */

#ifndef CWSIM_CHECK_WATCHDOG_HH
#define CWSIM_CHECK_WATCHDOG_HH

#include <cstdint>

#include "base/types.hh"

namespace cwsim
{
namespace check
{

class Watchdog
{
  public:
    /** @param interval Cycles without progress before tripping
     *                  (0 disables the watchdog). */
    explicit Watchdog(uint64_t interval) : interval(interval) {}

    /** Note forward progress (a commit) at @p now. */
    void progress(Tick now) { lastProgress = now; }

    /** Has the quiet period exceeded the trip threshold? */
    bool
    expired(Tick now) const
    {
        return interval != 0 && now - lastProgress > interval;
    }

    Tick lastProgressAt() const { return lastProgress; }
    uint64_t tripInterval() const { return interval; }

  private:
    uint64_t interval;
    Tick lastProgress = 0;
};

} // namespace check
} // namespace cwsim

#endif // CWSIM_CHECK_WATCHDOG_HH
