/**
 * @file
 * The in-flight (dynamic) instruction record occupying one window (RUU)
 * entry, including operand-capture state, memory state, and the
 * per-policy scheduling fields of the memory dependence speculation
 * engine.
 */

#ifndef CWSIM_CPU_DYN_INST_HH
#define CWSIM_CPU_DYN_INST_HH

#include <array>
#include <cstdint>

#include "base/types.hh"
#include "bpred/bpred.hh"
#include "isa/static_inst.hh"
#include "mdp/mdp_table.hh"

namespace cwsim
{

/**
 * Why loadMayIssue() most recently refused a load. Pure observability:
 * the commit-slot accounting (obs/cpi_stack.hh) reads the head's gate
 * cause to classify residual slots; no issue decision depends on it.
 */
enum class GateBlock : uint8_t
{
    None,        ///< Not gate-blocked (or not probed yet).
    StoreSet,    ///< NO/SEL hold: waiting for all older stores.
    Barrier,     ///< STORE: held behind an unissued store barrier.
    Sync,        ///< SYNC: waiting on a synonym-predicted store.
    OracleWait,  ///< ORACLE: a known producing store is in flight.
    AsTrueDep,   ///< AS: address scheduler sees a real older conflict.
    AsAmbiguous, ///< AS: conservative hold on an ambiguous older store.
};

struct DynInst
{
    // Identity -----------------------------------------------------------
    InstSeqNum seq = 0;
    TraceIndex traceIdx = 0;
    Addr pc = 0;
    StaticInst si;

    // Operand capture (RUU model) ------------------------------------
    struct Operand
    {
        RegId reg = reg_invalid;
        bool ready = true;
        uint64_t value = 0;
        InstSeqNum producer = 0;
        bool hasProducer = false;
    };
    Operand src1;
    Operand src2;

    /** Rename undo information for squash recovery. */
    bool renamedDest = false;
    bool prevDestBusy = false;
    InstSeqNum prevDestProducer = 0;

    // Execution status ------------------------------------------------
    bool issued = false;
    bool done = false;
    uint64_t result = 0;
    Tick issuedAt = 0;
    /**
     * Incremented on every (re)issue; completion events carry the epoch
     * they were scheduled under so a replayed load's stale completion
     * can be discarded.
     */
    uint32_t epoch = 0;

    // Control ----------------------------------------------------------
    bool predTaken = false;
    Addr predTarget = 0;
    bool predTargetKnown = false;
    bool hasCheckpoint = false;
    BPredCheckpoint checkpoint;
    bool actualTaken = false;
    Addr actualTarget = 0;

    // Memory -----------------------------------------------------------
    Addr effAddr = invalid_addr;
    unsigned memSize = 0;
    bool memIssued = false;
    bool memDone = false;
    uint64_t loadRaw = 0;          ///< Raw bytes read (pre-extension).
    InstSeqNum loadSourceSeq = 0;  ///< Youngest forwarding store (0=mem).
    /**
     * Per-byte forwarding source: the seq of the store each byte of
     * loadRaw came from (0 = architectural memory). A store older than
     * the load violates it iff some byte it writes has a source seq
     * below its own — the byte-wise test; the scalar loadSourceSeq
     * alone cannot distinguish which bytes a partial forward covered.
     */
    std::array<InstSeqNum, 8> loadByteSource{};
    /** This load is registered in the processor's loadBytes index. */
    bool bytesIndexed = false;
    int sbSlot = -1;               ///< Store-buffer slot for stores.
    /** Ambiguous older stores existed when this load issued. */
    bool speculativeLoad = false;
    /** Fault injection: NAS store may not execute before this cycle. */
    Tick storeExecNotBefore = 0;

    // Policy engine ----------------------------------------------------
    /** SEL: predicted dependence -> wait for all older stores. */
    bool waitAllStores = false;
    /** SYNC consumer state. */
    Synonym waitSynonym = invalid_synonym;
    bool hasSyncWait = false;
    InstSeqNum syncWaitStore = 0;
    /** SYNC producer state (stores). */
    bool syncProducer = false;
    /**
     * ORACLE: distinct producing stores' trace indices, oldest first.
     * Partial overlaps can give a load up to one producer per byte;
     * the oracle gate must wait for all of them.
     */
    std::array<TraceIndex, 8> oracleProducers{};
    uint8_t oracleProducerCount = 0;

    /** Last loadMayIssue() verdict; see GateBlock. */
    GateBlock gateBlock = GateBlock::None;

    // False-dependence probe (Table 3) ---------------------------------
    bool fdStallStarted = false;
    Tick fdStallStart = 0;
    bool fdEvaluated = false;
    bool fdIsFalse = false;
    Cycles fdLatency = 0;

    // Pipeline timeline (O3PipeView traces; see src/obs/pipeview.hh).
    // Maintained unconditionally — plain stores, cheaper than gating.
    Tick fetchedAt = 0;
    Tick dispatchedAt = 0;
    Tick completedAt = 0;
    /** Selective-recovery / AS re-executions of this instruction. */
    uint16_t timesReplayed = 0;
    /** The load waited on a SYNC-predicted producing store. */
    bool waitedSync = false;

    bool isLoad() const { return si.isLoad(); }
    bool isStore() const { return si.isStore(); }

    bool
    srcsReady() const
    {
        return src1.ready && src2.ready;
    }
};

} // namespace cwsim

#endif // CWSIM_CPU_DYN_INST_HH
