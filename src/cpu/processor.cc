/**
 * @file
 * Processor construction, run loops, and the fetch / dispatch / commit
 * / squash machinery. The issue phase and the memory dependence
 * speculation engine live in processor_issue.cc.
 */

#include "cpu/processor.hh"

#include "base/logging.hh"
#include "isa/exec_fn.hh"
#include "obs/trace.hh"

namespace cwsim
{

const char *
toString(SquashCause cause)
{
    switch (cause) {
      case SquashCause::None: return "none";
      case SquashCause::BranchMispredict: return "branch-mispredict";
      case SquashCause::MemOrderViolation: return "mem-order";
      case SquashCause::InjectedViolation: return "injected";
      case SquashCause::Drain: return "drain";
    }
    return "?";
}

void
ProcStats::registerIn(stats::StatGroup &group)
{
    group.addScalar("cycles", &cycles, "elapsed machine cycles");
    group.addScalar("commits", &commits, "committed instructions");
    group.addScalar("committed_loads", &committedLoads);
    group.addScalar("committed_stores", &committedStores);
    group.addScalar("fetched_insts", &fetchedInsts);
    group.addScalar("squashed_insts", &squashedInsts);
    group.addScalar("branch_mispredicts", &branchMispredicts);
    group.addScalar("mem_order_violations", &memOrderViolations,
                    "memory dependence miss-speculations (squashes)");
    group.addScalar("load_replays", &loadReplays,
                    "silent AS re-executions (no consumer had issued)");
    group.addScalar("selective_recoveries", &selectiveRecoveries,
                    "violations recovered by slice re-execution");
    group.addScalar("selective_fallbacks", &selectiveFallbacks,
                    "selective recoveries that fell back to a squash");
    group.addAverage("slice_size", &sliceSize,
                     "instructions re-executed per selective recovery");
    group.addScalar("false_dep_loads", &falseDepLoads,
                    "committed loads delayed only by false dependences");
    group.addScalar("true_dep_stalled_loads", &trueDepStalledLoads);
    group.addScalar("sync_waits", &syncWaits);
    group.addScalar("sel_holds", &selHolds);
    group.addScalar("barrier_holds", &barrierHolds);
    group.addScalar("loads_forwarded", &loadsForwarded,
                    "loads served entirely from the store buffer");
    group.addAverage("false_dep_latency", &falseDepLatency,
                     "mean false-dependence resolution latency");
    group.addAverage("load_issue_delay", &loadIssueDelay);
    group.addDistribution("window_occupancy", &windowOccupancy,
                          "ROB entries in use, sampled per cycle");
    group.addScalar("injected_violations", &injectedViolations,
                    "fault injection: forced spurious miss-speculations");
    group.addScalar("injected_addr_delays", &injectedAddrDelays,
                    "fault injection: delayed store-address postings");
    group.addScalar("injected_mdpt_faults", &injectedMdptFaults,
                    "fault injection: dropped/corrupted MDPT entries");
}

Processor::Processor(const SimConfig &cfg, const Program &program,
                     const OracleDeps *oracle)
    : cfg(cfg), lsqModel(cfg.mdp.lsqModel), policy(cfg.mdp.policy),
      usesMdpt(policy == SpecPolicy::Selective ||
               policy == SpecPolicy::StoreBarrier ||
               policy == SpecPolicy::SpecSync),
      checkLevel(cfg.check.level),
      frec(checkLevel > 0 ? cfg.check.flightRecorderSize : 0),
      wdog(checkLevel > 0 ? cfg.check.watchdogInterval : 0),
      faults(cfg.check.faults), lastCommitSeq(0),
      memSys(cfg.mem, eq), bpred(cfg.bpred),
      decoder(funcMem, /*tolerate_invalid=*/true), mdpTable(cfg.mdp),
      oracle(oracle), rob(cfg.core.windowSize),
      sb(cfg.core.storeBufferSize), lsqCount(0),
      pendingBits(cfg.core.windowSize),
      consumers(cfg.core.windowSize), fetchPc(0),
      fetchHalted(false), fetchStalledOnSeq(0), memPortsLeft(0),
      lsqInPortsLeft(0), cycle(0), nextSeq(1), nextFetchTraceIdx(0),
      commitCount(0), haltedFlag(false), lastMdptReset(0),
      refetchCause(SquashCause::None),
      statGroup("proc"), cpi(cfg.core.commitWidth),
      pipe(obs::TraceManager::instance().pipeView())
{
    fatal_if(policy == SpecPolicy::Oracle && !oracle,
             "NAS/ORACLE requires pre-pass dependence information");
    fuUsed.fill(0);

    program.loadInto(funcMem);
    archRegs.pc = program.entry();
    fetchPc = program.entry();

    pstats.windowOccupancy.init(0, cfg.core.windowSize + 1, 16);
    pstats.registerIn(statGroup);
    cpi.registerIn(statGroup);
    memSys.registerStats(statGroup);
    bpred.registerStats(statGroup);

    obs::TraceManager &tm = obs::TraceManager::instance();
    if (tm.intervalPeriod() > 0) {
        std::string label = obs::runLabel().empty()
            ? cfg.name()
            : obs::runLabel();
        sampler = std::make_unique<obs::IntervalSampler>(
            tm.intervalPath(), tm.intervalPeriod(), label);
        if (!sampler->valid())
            sampler.reset();
    }

    if (obs::DepProfManager::instance().active()) {
        std::string label = obs::runLabel().empty()
            ? cfg.name()
            : obs::runLabel();
        dprof = std::make_unique<obs::DepProfile>("proc", label,
                                                  &statGroup);
        mdpTable.setProfile(dprof.get());
    }
}

Processor::~Processor()
{
    finishIntervalSampling();
    finishDepProfile();
}

void
Processor::run()
{
    while (!haltedFlag && cycle < cfg.maxCycles &&
           !(cfg.maxInsts && pstats.commits.value() >= cfg.maxInsts)) {
        tick();
    }
    // Flush the sampler's trailing partial interval now rather than at
    // destruction, so callers reading the interval file right after
    // run() see the complete time series. Same for the dependence
    // profile: the harness harvests it right after run() returns.
    finishIntervalSampling();
    finishDepProfile();
}

uint64_t
Processor::runTiming(uint64_t max_commits)
{
    uint64_t start = pstats.commits.value();
    while (!haltedFlag && cycle < cfg.maxCycles &&
           pstats.commits.value() - start < max_commits) {
        tick();
    }
    // Drain: discard all speculative state so a functional phase (or
    // the caller) sees a clean architectural boundary.
    if (!rob.empty() || !fetchQueue.empty()) {
        squashYoungerThan(0, archRegs.pc, commitCount,
                          /*repair_bpred=*/false, SquashCause::Drain);
    }
    eq.drain();
    // Committed stores already updated architectural memory at commit;
    // force-retire their buffer entries so a functional phase starts
    // from an empty machine.
    while (!sb.empty()) {
        panic_if(!sb.front().committed,
                 "uncommitted store survived the drain squash");
        sb.popFront();
    }
    return pstats.commits.value() - start;
}

uint64_t
Processor::fastForward(uint64_t n)
{
    panic_if(!rob.empty() || !fetchQueue.empty(),
             "fastForward with a non-drained pipeline");

    Executor ex(funcMem, archRegs.pc);
    ex.state() = archRegs;
    ex.state().halted = false;

    Addr last_iblock = invalid_addr;
    unsigned iblock_size = memSys.icacheBlock();

    uint64_t steps = 0;
    while (steps < n && !ex.halted()) {
        StepInfo info = ex.step();
        ++steps;

        Addr block = info.pc & ~Addr(iblock_size - 1);
        if (block != last_iblock) {
            memSys.warmInst(block);
            last_iblock = block;
        }
        if (info.isLoad || info.isStore)
            memSys.warmData(info.memAddr, info.isStore);
        if (info.inst.isControl()) {
            bpred.warmUpdate(info.inst, info.pc, info.taken,
                             info.nextPc);
        }
    }

    archRegs = ex.state();
    commitCount += steps;
    nextFetchTraceIdx = commitCount;
    fetchPc = archRegs.pc;
    if (ex.halted())
        haltedFlag = true;
    return steps;
}

void
Processor::tick()
{
    // Refresh the thread-local trace timestamp so cycle-less components
    // (MdpTable) stamp their lines correctly; skipped entirely when
    // tracing is off.
    if (obs::tracingActive())
        obs::setTraceCycle(cycle);

    eq.runUntil(cycle);
    if (haltedFlag)
        return;

    memPortsLeft = cfg.core.memPorts;
    lsqInPortsLeft = cfg.core.lsqInputPorts;
    fuUsed.fill(0);
    pstats.windowOccupancy.sample(static_cast<double>(rob.size()));

    uint64_t commitsBefore = pstats.commits.value();
    doCommit();
    if (!haltedFlag) {
        releaseStores();
        doIssue();
        doDispatch();
        doFetch();
    }

    if (usesMdpt && faults.enabled())
        injectMdptFaults();
    if (faults.enabled())
        executeHostFault(faults.drawHostFault());

    if (checkLevel > 0) {
        checkInvariants();
        if (!haltedFlag && wdog.expired(cycle)) {
            frec.record(cycle, check::EventKind::WatchdogTrip, 0, 0,
                        wdog.lastProgressAt());
            checkFail(SimErrorKind::Watchdog,
                      strfmt("no commit in %llu cycles (last progress "
                             "at cycle %llu): pipeline livelock",
                             static_cast<unsigned long long>(
                                 wdog.tripInterval()),
                             static_cast<unsigned long long>(
                                 wdog.lastProgressAt())));
        }
    }

    // Commit-slot accounting: every one of this cycle's commitWidth
    // slots is attributed exactly once — k committed, the rest blamed
    // on why the window head could not commit. O(1) per cycle; the
    // residual cause is computed only on non-full cycles. Placed after
    // checkInvariants() so the level-1 conservation check always sees
    // a consistent (cycles, slots) pair.
    unsigned committed =
        static_cast<unsigned>(pstats.commits.value() - commitsBefore);
    cpi.account(committed,
                committed < cfg.core.commitWidth ? classifyResidual()
                                                 : obs::CpiCause::Committed);

    ++cycle;
    ++pstats.cycles;

    if (sampler && sampler->due(cycle))
        emitIntervalSample();

    if (usesMdpt && cycle - lastMdptReset >= cfg.mdp.resetInterval) {
        // Sample occupancy/confidence at the reset boundary — the one
        // moment the predictor's learned state is fully mature — before
        // the flush erases it.
        if (__builtin_expect(dprof != nullptr, 0)) {
            dprof->noteMdptSample(cycle, mdpTable.validEntries(),
                                  mdpTable.meanConfidence());
        }
        mdpTable.reset();
        lastMdptReset = cycle;
    }
}

// ---------------------------------------------------------------------
// Commit.
// ---------------------------------------------------------------------

void
Processor::doCommit()
{
    unsigned budget = cfg.core.commitWidth;
    while (budget > 0 && !rob.empty()) {
        DynInst &head = rob.front();
        if (!head.done)
            break;

        if (checkLevel > 0) {
            if (head.seq <= lastCommitSeq) {
                checkFail(SimErrorKind::Invariant,
                          strfmt("out-of-order commit: seq %llu after "
                                 "%llu",
                                 static_cast<unsigned long long>(
                                     head.seq),
                                 static_cast<unsigned long long>(
                                     lastCommitSeq)));
            }
            lastCommitSeq = head.seq;
            frec.record(cycle, check::EventKind::Retire, head.seq,
                        head.pc);
            wdog.progress(cycle);
        }

        if (head.si.isHalt()) {
            haltedFlag = true;
            ++commitCount;
            ++pstats.commits;
            CWSIM_TRACE(Commit, "commit seq %llu pc 0x%llx halt",
                        static_cast<unsigned long long>(head.seq),
                        static_cast<unsigned long long>(head.pc));
            if (pipe)
                emitPipeRecord(head, SquashCause::None);
            rob.popFront();
            return;
        }

        if (head.si.writesReg())
            archRegs.writeReg(head.si.rd, head.result);

        if (head.isStore()) {
            SbEntry &entry = sb.slot(head.sbSlot);
            panic_if(entry.seq != head.seq, "store buffer slot mismatch");
            entry.committed = true;
            // Architectural memory is updated at commit; the release
            // queue models the D-cache write timing afterwards.
            funcMem.write(entry.addr, entry.size, entry.data);
            ++pstats.committedStores;
            if (__builtin_expect(dprof != nullptr, 0))
                dprof->noteStoreCommit(head.pc);
        }
        if (head.isLoad()) {
            deindexLoadBytes(head);
            ++pstats.committedLoads;
            if (head.fdEvaluated) {
                if (head.fdIsFalse) {
                    ++pstats.falseDepLoads;
                    pstats.falseDepLatency.sample(
                        static_cast<double>(head.fdLatency));
                } else {
                    ++pstats.trueDepStalledLoads;
                }
            }
            if (__builtin_expect(dprof != nullptr, 0)) {
                dprof->noteLoadCommit(head.pc);
                if (head.fdEvaluated) {
                    if (head.fdIsFalse)
                        dprof->noteFalseDep(head.pc, head.fdLatency);
                    else
                        dprof->noteTrueDep(head.pc);
                }
            }
        }

        if (head.si.isControl()) {
            bpred.update(head.si, head.pc, head.actualTaken,
                         head.actualTarget, head.checkpoint.globalHist);
            archRegs.pc =
                head.actualTaken ? head.actualTarget : head.pc + 4;
        } else {
            archRegs.pc = head.pc + 4;
        }

        if (head.si.writesReg()) {
            RegMapEntry &rm = regMap[head.si.rd];
            if (rm.busy && rm.producer == head.seq)
                rm.busy = false;
        }

        if (head.si.isMem())
            --lsqCount;

        CWSIM_TRACE(Commit, "commit seq %llu pc 0x%llx %s",
                    static_cast<unsigned long long>(head.seq),
                    static_cast<unsigned long long>(head.pc),
                    head.si.disassemble().c_str());
        if (pipe)
            emitPipeRecord(head, SquashCause::None);

        rob.popFront();
        ++commitCount;
        ++pstats.commits;
        --budget;
    }
}

void
Processor::releaseStores()
{
    for (size_t i = 0; i < sb.size(); ++i) {
        SbEntry &entry = sb.at(i);
        if (!entry.committed)
            break;
        if (entry.released || entry.releasing)
            continue;
        if (memPortsLeft == 0)
            break;
        InstSeqNum seq = entry.seq;
        bool accepted = memSys.dataAccess(
            entry.addr, entry.size, true, [this, seq]() {
                if (SbEntry *e = findSbEntry(seq)) {
                    e->releasing = false;
                    e->released = true;
                }
            });
        if (!accepted)
            break; // bank conflict; retry next cycle
        entry.releasing = true;
        --memPortsLeft;
    }
    while (!sb.empty() && sb.front().released)
        sb.popFront();
}

// ---------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------

void
Processor::registerConsumer(const DynInst &producer,
                            const DynInst &consumer)
{
    std::vector<ConsumerRef> &list = consumers[rob.slotOf(producer)];
    size_t cslot = rob.slotOf(consumer);
    // src1 and src2 of one instruction register back to back; one ref
    // per consumer is enough (broadcast checks both operands).
    if (!list.empty() && list.back().slot == cslot &&
        list.back().seq == consumer.seq) {
        return;
    }
    list.push_back(ConsumerRef{cslot, consumer.seq});
}

void
Processor::captureOperand(DynInst &inst, DynInst::Operand &op,
                          RegId reg)
{
    op.reg = reg;
    if (reg == reg_invalid || reg == reg_zero) {
        op.ready = true;
        op.value = 0;
        return;
    }
    const RegMapEntry &rm = regMap[reg];
    if (!rm.busy) {
        op.ready = true;
        op.value = archRegs.readReg(reg);
        return;
    }
    op.producer = rm.producer;
    op.hasProducer = true;
    DynInst *producer = findInst(rm.producer);
    if (!producer) {
        // Producer committed between renaming and now (can happen after
        // squash-undo restored an already-retired producer).
        op.ready = true;
        op.value = archRegs.readReg(reg);
        return;
    }
    // Even a done producer registers the consumer: a selective replay
    // can un-complete it later and must be able to recall the value.
    registerConsumer(*producer, inst);
    if (producer->done) {
        op.ready = true;
        op.value = producer->result;
    } else {
        op.ready = false;
    }
}

void
Processor::renameDest(DynInst &inst)
{
    if (!inst.si.writesReg())
        return;
    RegMapEntry &rm = regMap[inst.si.rd];
    inst.renamedDest = true;
    inst.prevDestBusy = rm.busy;
    inst.prevDestProducer = rm.producer;
    rm.busy = true;
    rm.producer = inst.seq;
}

void
Processor::doDispatch()
{
    unsigned budget = cfg.core.issueWidth;
    while (budget > 0 && !fetchQueue.empty()) {
        FetchedInst &fi = fetchQueue.front();
        if (fi.readyAt > cycle)
            break;
        if (rob.full())
            break;
        if (fi.si.isMem() && lsqCount >= cfg.core.lsqSize)
            break;
        if (fi.si.isStore() && sb.full())
            break;

        size_t rob_slot = rob.pushBack(DynInst{});
        consumers[rob_slot].clear();
        DynInst &inst = rob.back();
        inst.seq = fi.seq;
        inst.traceIdx = fi.traceIdx;
        inst.pc = fi.pc;
        inst.si = fi.si;
        inst.fetchedAt = fi.fetchedAt;
        inst.dispatchedAt = cycle;
        inst.predTaken = fi.predTaken;
        inst.predTarget = fi.predTarget;
        inst.predTargetKnown = fi.predTargetKnown;
        inst.hasCheckpoint = fi.hasCheckpoint;
        inst.checkpoint = fi.checkpoint;
        inst.memSize = fi.si.memSize();
        // Publish the identity fields before operand capture: its
        // producer lookups binary-search the seq mirror, which must
        // already be sorted through this slot.
        rob.sync(inst);

        captureOperand(inst, inst.src1, fi.si.rs1);
        captureOperand(inst, inst.src2, fi.si.rs2);
        renameDest(inst);

        if (inst.si.isHalt())
            inst.done = true;
        else
            pendingBits.set(rob_slot);

        if (inst.isStore()) {
            SbEntry entry;
            entry.seq = inst.seq;
            entry.traceIdx = inst.traceIdx;
            entry.pc = inst.pc;
            entry.size = inst.memSize;
            inst.sbSlot = static_cast<int>(sb.allocate(entry));
            unissuedStores.insert(inst.seq);

            // Fault injection: AS delays address posting directly in
            // postStoreAddr; for single-phase NAS stores the closest
            // equivalent is holding back the whole execution, which
            // widens every younger load's speculation window.
            if (lsqModel == LsqModel::NAS) {
                if (Cycles delay = faults.injectStoreAddrDelay()) {
                    inst.storeExecNotBefore = cycle + delay;
                    ++pstats.injectedAddrDelays;
                    frec.record(cycle,
                                check::EventKind::InjectedAddrDelay,
                                inst.seq, inst.pc, delay);
                }
            }

            if (policy == SpecPolicy::StoreBarrier &&
                mdpTable.predictsDependence(inst.pc)) {
                sb.slot(inst.sbSlot).barrier = true;
                unissuedBarriers.insert(inst.seq);
                if (__builtin_expect(dprof != nullptr, 0))
                    dprof->noteStoreBarrier(inst.pc);
                CWSIM_TRACE(MDP, "STORE predicts dependence: store seq "
                            "%llu pc 0x%llx becomes a barrier",
                            static_cast<unsigned long long>(inst.seq),
                            static_cast<unsigned long long>(inst.pc));
            }
            if (policy == SpecPolicy::SpecSync) {
                Synonym syn = mdpTable.synonymOf(inst.pc);
                if (syn != invalid_synonym) {
                    sb.setProducerSynonym(inst.sbSlot, syn);
                    inst.syncProducer = true;
                }
            }
        }

        if (inst.isLoad()) {
            if (policy == SpecPolicy::Selective &&
                mdpTable.predictsDependence(inst.pc)) {
                inst.waitAllStores = true;
                ++pstats.selHolds;
                if (__builtin_expect(dprof != nullptr, 0))
                    dprof->noteSelHold(inst.pc);
                CWSIM_TRACE(MDP, "SEL predicts dependence: load seq "
                            "%llu pc 0x%llx waits for all older stores",
                            static_cast<unsigned long long>(inst.seq),
                            static_cast<unsigned long long>(inst.pc));
            }
            if (policy == SpecPolicy::SpecSync) {
                Synonym syn = mdpTable.synonymOf(inst.pc);
                if (syn != invalid_synonym) {
                    inst.waitSynonym = syn;
                    // Closest preceding store producing this synonym.
                    const SbEntry *e =
                        sb.youngestSynonymProducerBefore(syn, inst.seq);
                    if (e) {
                        inst.hasSyncWait = true;
                        inst.waitedSync = true;
                        inst.syncWaitStore = e->seq;
                        ++pstats.syncWaits;
                        if (__builtin_expect(dprof != nullptr, 0)) {
                            dprof->noteSyncWait(inst.pc, e->pc,
                                                inst.seq - e->seq);
                        }
                        CWSIM_TRACE(MDP, "SYNC: load seq %llu pc "
                                    "0x%llx synchronizes on store "
                                    "seq %llu (synonym %u)",
                                    static_cast<unsigned long long>(
                                        inst.seq),
                                    static_cast<unsigned long long>(
                                        inst.pc),
                                    static_cast<unsigned long long>(
                                        e->seq),
                                    static_cast<unsigned>(syn));
                    }
                }
            }
            if (oracle) {
                const auto *set = oracle->producersOf(inst.traceIdx);
                if (set) {
                    inst.oracleProducers = set->stores;
                    inst.oracleProducerCount = set->count;
                }
            }
        }

        if (inst.si.isMem())
            ++lsqCount;

        // All dispatch-time writes to mirrored fields are done.
        rob.sync(inst);

        fetchQueue.pop_front();
        --budget;
        // The front end has caught up with the last squash's refetch;
        // subsequent empty-window cycles are ordinary front-end lag.
        refetchCause = SquashCause::None;
    }
}

// ---------------------------------------------------------------------
// Fetch.
// ---------------------------------------------------------------------

void
Processor::doFetch()
{
    if (fetchHalted || fetchStalledOnSeq != 0)
        return;

    const size_t fetch_queue_cap = 4 * cfg.core.fetchWidth;
    unsigned iblock = memSys.icacheBlock();
    auto block_of = [iblock](Addr pc) { return pc & ~Addr(iblock - 1); };

    auto request_block = [this](Addr block) {
        if (pendingIBlocks.count(block))
            return;
        if (pendingIBlocks.size() >= cfg.core.maxFetchRequests)
            return;
        bool accepted = memSys.instAccess(
            block, [this, block]() { pendingIBlocks.erase(block); });
        if (accepted)
            pendingIBlocks.insert(block);
    };

    unsigned insts = 0;
    unsigned blocks = 1;
    unsigned preds = 0;

    Addr cur_block = block_of(fetchPc);
    if (!memSys.l1i().isResident(cur_block)) {
        request_block(cur_block);
        return;
    }
    // Next-line prefetch (Table 2 allows 4 in-flight fetch requests).
    Addr next_block = cur_block + iblock;
    if (!memSys.l1i().isResident(next_block))
        request_block(next_block);

    while (insts < cfg.core.fetchWidth &&
           fetchQueue.size() < fetch_queue_cap) {
        if (block_of(fetchPc) != cur_block) {
            ++blocks;
            if (blocks > cfg.core.fetchMaxBlocks)
                break;
            cur_block = block_of(fetchPc);
            if (!memSys.l1i().isResident(cur_block)) {
                request_block(cur_block);
                break;
            }
        }

        const StaticInst &si = decoder.lookup(fetchPc);

        FetchedInst fi;
        fi.seq = nextSeq++;
        fi.traceIdx = nextFetchTraceIdx++;
        fi.pc = fetchPc;
        fi.si = si;
        fi.readyAt = cycle + cfg.core.fetchToDispatch;
        fi.fetchedAt = cycle;
        CWSIM_TRACE(Fetch, "fetch seq %llu pc 0x%llx %s",
                    static_cast<unsigned long long>(fi.seq),
                    static_cast<unsigned long long>(fi.pc),
                    si.disassemble().c_str());

        if (si.isHalt()) {
            fetchQueue.push_back(fi);
            ++pstats.fetchedInsts;
            fetchHalted = true;
            break;
        }

        if (si.isControl()) {
            if (preds >= cfg.bpred.predictionsPerCycle)
                break;
            ++preds;
            auto pred = bpred.predict(si, fetchPc);
            fi.predTaken = pred.taken;
            fi.predTarget = pred.target;
            fi.predTargetKnown = pred.targetKnown;
            fi.hasCheckpoint = true;
            fi.checkpoint = pred.checkpoint;
            fetchQueue.push_back(fi);
            ++pstats.fetchedInsts;
            ++insts;

            if (pred.taken && pred.targetKnown) {
                fetchPc = pred.target;
            } else if (pred.taken && !pred.targetKnown) {
                // Indirect target unknown: stall until it executes.
                fetchStalledOnSeq = fi.seq;
                break;
            } else {
                fetchPc += 4;
            }
            continue;
        }

        fetchQueue.push_back(fi);
        ++pstats.fetchedInsts;
        ++insts;
        fetchPc += 4;
    }
}

void
Processor::resumeFetch(Addr target)
{
    fetchPc = target;
    fetchStalledOnSeq = 0;
}

// ---------------------------------------------------------------------
// Completion, resolution, squash.
// ---------------------------------------------------------------------

DynInst *
Processor::findInst(InstSeqNum seq)
{
    // Binary search over the window's dense seq array; the fat record
    // is only touched on a hit.
    size_t s = rob.findSlot(seq);
    return s == Window::npos ? nullptr : &rob.slot(s);
}

SbEntry *
Processor::findSbEntry(InstSeqNum seq)
{
    return sb.findSeq(seq);
}

const SbEntry *
Processor::findSbByTraceIdx(TraceIndex idx) const
{
    return sb.findTraceIdx(idx);
}

void
Processor::indexLoadBytes(DynInst &inst)
{
    panic_if(inst.bytesIndexed, "load double-indexed");
    loadBytes.add(inst.effAddr, inst.memSize, inst.seq,
                  rob.slotOf(inst));
    inst.bytesIndexed = true;
}

void
Processor::deindexLoadBytes(DynInst &inst)
{
    if (!inst.bytesIndexed)
        return;
    loadBytes.remove(inst.effAddr, inst.memSize, inst.seq);
    inst.bytesIndexed = false;
}

bool
Processor::loadHasStaleByteFrom(const DynInst &load,
                                const SbEntry &entry) const
{
    for (unsigned i = 0; i < load.memSize; ++i) {
        if (entry.coversByte(load.effAddr + i) &&
            load.loadByteSource[i] < entry.seq) {
            return true;
        }
    }
    return false;
}

bool
Processor::loadForwardedFrom(const DynInst &load,
                             InstSeqNum store_seq) const
{
    for (unsigned i = 0; i < load.memSize; ++i) {
        if (load.loadByteSource[i] == store_seq)
            return true;
    }
    return false;
}

void
Processor::broadcastResult(const DynInst &producer)
{
    // Walk the producer's consumer list instead of the whole window.
    // Refs to squashed consumers (dead slot, or a reused slot holding
    // a different seq) are compacted away as they are found.
    std::vector<ConsumerRef> &list = consumers[rob.slotOf(producer)];
    size_t keep = 0;
    for (size_t i = 0; i < list.size(); ++i) {
        const ConsumerRef ref = list[i];
        if (!rob.refLive(ref.slot, ref.seq))
            continue;
        list[keep++] = ref;
        DynInst &inst = rob.slot(ref.slot);
        bool woke = false;
        if (inst.src1.hasProducer && !inst.src1.ready &&
            inst.src1.producer == producer.seq) {
            inst.src1.ready = true;
            inst.src1.value = producer.result;
            woke = true;
        }
        if (inst.src2.hasProducer && !inst.src2.ready &&
            inst.src2.producer == producer.seq) {
            inst.src2.ready = true;
            inst.src2.value = producer.result;
            woke = true;
        }
        if (woke)
            rob.sync(inst);
    }
    list.resize(keep);
}

void
Processor::unbroadcast(const DynInst &producer)
{
    std::vector<ConsumerRef> &list = consumers[rob.slotOf(producer)];
    size_t keep = 0;
    for (size_t i = 0; i < list.size(); ++i) {
        const ConsumerRef ref = list[i];
        if (!rob.refLive(ref.slot, ref.seq))
            continue;
        list[keep++] = ref;
        DynInst &inst = rob.slot(ref.slot);
        bool recalled = false;
        if (inst.src1.hasProducer &&
            inst.src1.producer == producer.seq) {
            inst.src1.ready = false;
            recalled = true;
            // A load may have address-generated from the stale value
            // while blocked on a port; the cached address is wrong
            // once the operand is recalled.
            if (inst.isLoad() && !inst.memIssued)
                inst.effAddr = invalid_addr;
        }
        if (inst.src2.hasProducer &&
            inst.src2.producer == producer.seq) {
            inst.src2.ready = false;
            recalled = true;
        }
        if (recalled)
            rob.sync(inst);
    }
    list.resize(keep);
}

bool
Processor::consumerCapturedResult(const DynInst &inst) const
{
    // Has this instruction acted on its captured operand values in a
    // way that outlives the operands themselves? Issued instructions
    // obviously have; so has a two-phase store that posted its (stale)
    // address or data to the store buffer without fully executing.
    if (inst.issued || inst.memIssued)
        return true;
    if (inst.isStore() && inst.sbSlot >= 0) {
        const SbEntry &entry = sb.slot(inst.sbSlot);
        return entry.addrValid || entry.dataValid;
    }
    return false;
}

bool
Processor::anyConsumerIssued(const DynInst &producer) const
{
    const std::vector<ConsumerRef> &list =
        consumers[rob.slotOf(producer)];
    for (const ConsumerRef &ref : list) {
        if (!rob.refLive(ref.slot, ref.seq))
            continue;
        const DynInst &inst = rob.slot(ref.slot);
        bool consumes =
            (inst.src1.hasProducer &&
             inst.src1.producer == producer.seq) ||
            (inst.src2.hasProducer && inst.src2.producer == producer.seq);
        if (consumes && consumerCapturedResult(inst))
            return true;
    }
    return false;
}

void
Processor::completeInst(DynInst &inst)
{
    inst.done = true;
    inst.completedAt = cycle;
    rob.sync(inst);
    pendingBits.clear(rob.slotOf(inst));
    if (inst.si.writesReg())
        broadcastResult(inst);
    if (inst.si.isControl()) {
        resolveControl(inst);
    } else if (fetchStalledOnSeq == inst.seq) {
        // Defensive: only control instructions stall fetch.
        fetchStalledOnSeq = 0;
    }
}

void
Processor::resolveControl(DynInst &inst)
{
    if (inst.si.isBranch()) {
        inst.actualTaken =
            exec::branchTaken(inst.si.op, inst.src1.value,
                              inst.src2.value);
        inst.actualTarget = branchTarget(inst.si, inst.pc);
    } else {
        inst.actualTaken = true;
        inst.actualTarget = inst.si.isIndirect()
            ? static_cast<Addr>(static_cast<uint32_t>(inst.src1.value))
            : branchTarget(inst.si, inst.pc);
    }

    bool mispredict;
    if (inst.si.isBranch()) {
        mispredict = inst.predTaken != inst.actualTaken ||
                     (inst.actualTaken &&
                      inst.predTarget != inst.actualTarget);
    } else if (inst.predTargetKnown) {
        mispredict = inst.predTarget != inst.actualTarget;
    } else {
        mispredict = false; // fetch stalled; nothing fetched after it
    }

    Addr next_pc = inst.actualTaken ? inst.actualTarget : inst.pc + 4;

    if (mispredict) {
        ++pstats.branchMispredicts;
        CWSIM_TRACE(Recovery, "branch mispredict: seq %llu pc 0x%llx "
                    "-> 0x%llx",
                    static_cast<unsigned long long>(inst.seq),
                    static_cast<unsigned long long>(inst.pc),
                    static_cast<unsigned long long>(next_pc));
        bool repaired = false;
        if (inst.si.isBranch()) {
            bpred.repairAndResolve(inst.checkpoint, inst.actualTaken);
            repaired = true;
        }
        squashYoungerThan(inst.seq, next_pc, inst.traceIdx + 1,
                          /*repair_bpred=*/!repaired,
                          SquashCause::BranchMispredict);
    } else if (fetchStalledOnSeq == inst.seq) {
        resumeFetch(next_pc);
    }
}

void
Processor::squashYoungerThan(InstSeqNum keep_seq, Addr restart_pc,
                             TraceIndex restart_trace_idx,
                             bool repair_bpred, SquashCause cause)
{
    if (repair_bpred) {
        // Repair to the state just before the oldest squashed
        // prediction (which includes every older, surviving update).
        const BPredCheckpoint *cp = nullptr;
        for (size_t i = 0; i < rob.size() && !cp; ++i) {
            const DynInst &inst = rob.at(i);
            if (inst.seq > keep_seq && inst.hasCheckpoint)
                cp = &inst.checkpoint;
        }
        if (!cp) {
            for (const FetchedInst &fi : fetchQueue) {
                if (fi.seq > keep_seq && fi.hasCheckpoint) {
                    cp = &fi.checkpoint;
                    break;
                }
            }
        }
        if (cp)
            bpred.repair(*cp);
    }

    unsigned squashed = 0;
    while (!rob.empty() && rob.back().seq > keep_seq) {
        DynInst &inst = rob.back();
        pendingBits.clear(rob.slotOf(inst));
        if (inst.isLoad())
            deindexLoadBytes(inst);
        if (inst.renamedDest) {
            RegMapEntry &rm = regMap[inst.si.rd];
            rm.busy = inst.prevDestBusy;
            rm.producer = inst.prevDestProducer;
        }
        if (inst.isStore()) {
            unissuedStores.erase(inst.seq);
            unissuedBarriers.erase(inst.seq);
        }
        if (inst.si.isMem())
            --lsqCount;
        ++pstats.squashedInsts;
        ++squashed;
        if (pipe)
            emitPipeRecord(inst, cause);
        rob.truncate(1);
    }

    if (pipe) {
        // Fetched-but-never-dispatched instructions also get a (mostly
        // empty) timeline record so the trace accounts for every fetch.
        for (const FetchedInst &fi : fetchQueue) {
            obs::PipeViewWriter::Record r;
            r.seq = fi.seq;
            r.pc = fi.pc;
            r.fetch = fi.fetchedAt;
            r.disasm = fi.si.disassemble() +
                       strfmt(" [squash: %s]", toString(cause));
            pipe->write(r);
        }
    }

    CWSIM_TRACE(Recovery,
                "squash (%s): %u insts younger than seq %llu, "
                "restart pc 0x%llx",
                toString(cause), squashed,
                static_cast<unsigned long long>(keep_seq),
                static_cast<unsigned long long>(restart_pc));

    frec.record(cycle, check::EventKind::Squash, keep_seq, restart_pc,
                squashed);

    sb.squashYoungerThan(keep_seq);

    fetchQueue.clear();
    fetchPc = restart_pc;
    nextFetchTraceIdx = restart_trace_idx;
    fetchStalledOnSeq = 0;
    fetchHalted = false;
    refetchCause = cause;
}

void
Processor::emitPipeRecord(const DynInst &inst, SquashCause cause)
{
    obs::PipeViewWriter::Record r;
    r.seq = inst.seq;
    r.pc = inst.pc;

    // Record fields are in cycles; the writer converts to ticks.
    r.fetch = inst.fetchedAt;
    // This model has no distinct decode/rename stages; mirror the
    // neighbouring stage times so Konata draws a contiguous bar.
    r.decode = r.fetch;
    r.rename = inst.dispatchedAt;
    r.dispatch = inst.dispatchedAt;
    r.issue = inst.issued ? inst.issuedAt : 0;
    r.complete = inst.done ? inst.completedAt : 0;
    // Squashed instructions never retire (time 0 = stage not reached).
    r.retire = cause == SquashCause::None ? cycle : 0;
    if (inst.isStore() && cause == SquashCause::None)
        r.storeComplete = r.retire;

    std::string annot;
    if (inst.timesReplayed)
        annot += strfmt(" [replay x%u]", unsigned{inst.timesReplayed});
    if (inst.waitedSync)
        annot += " [sync-wait]";
    if (inst.waitAllStores)
        annot += " [sel-hold]";
    if (inst.fdEvaluated && inst.fdIsFalse) {
        annot += strfmt(" [false-dep %lluc]",
                        static_cast<unsigned long long>(inst.fdLatency));
    }
    if (inst.speculativeLoad)
        annot += " [spec-load]";
    if (cause != SquashCause::None)
        annot += strfmt(" [squash: %s]", toString(cause));
    r.disasm = inst.si.disassemble() + annot;

    pipe->write(r);
}

obs::IntervalCounters
Processor::intervalCounters() const
{
    obs::IntervalCounters now;
    now.commits = pstats.commits.value();
    now.violations = pstats.memOrderViolations.value();
    now.replays = pstats.loadReplays.value();
    now.falseDepLoads = pstats.falseDepLoads.value();
    now.occupancySum = pstats.windowOccupancy.sum();
    now.occupancyCount = pstats.windowOccupancy.count();
    return now;
}

void
Processor::emitIntervalSample()
{
    sampler->sample(cycle, intervalCounters());
}

void
Processor::finishIntervalSampling()
{
    if (sampler)
        sampler->finalize(cycle, intervalCounters());
}

void
Processor::finishDepProfile()
{
    if (!dprof || dprofWritten)
        return;
    dprofWritten = true;
    // Final predictor snapshot: the interval since the last reset
    // boundary would otherwise be invisible.
    if (usesMdpt) {
        dprof->noteMdptSample(cycle, mdpTable.validEntries(),
                              mdpTable.meanConfidence());
    }
    obs::DepProfManager::instance().writeRun(*dprof);
}

obs::CpiCause
Processor::classifyResidual() const
{
    using obs::CpiCause;

    // Empty window: either the front end is refilling after a squash
    // (blame the squash's cause) or it simply has not caught up.
    if (rob.empty()) {
        switch (refetchCause) {
          case SquashCause::MemOrderViolation:
          case SquashCause::InjectedViolation:
            return CpiCause::MemDepSquash;
          case SquashCause::BranchMispredict:
            return CpiCause::FetchBranch;
          default:
            return CpiCause::FrontEndIdle;
        }
    }

    const DynInst &head = rob.front();
    // A done head with leftover slots only happens on the halt cycle
    // (commit stops at HALT); nothing architectural was lost.
    if (head.done)
        return CpiCause::FrontEndIdle;
    // A head that is re-executing already paid for its first execution;
    // the extra cycles are miss-speculation recovery cost.
    if (head.timesReplayed > 0)
        return CpiCause::MemDepSquash;

    CpiCause cause = CpiCause::Exec;
    if (head.isLoad()) {
        if (head.memIssued) {
            // In flight: AS loads spend the first asLatency cycles in
            // the address-scheduler pipeline, the rest in the cache.
            Tick elapsed = cycle - head.issuedAt;
            cause = (lsqModel == LsqModel::AS &&
                     elapsed < Tick{cfg.mdp.asLatency})
                ? CpiCause::AddrSched
                : CpiCause::CacheMiss;
        } else if (!head.src1.ready) {
            cause = CpiCause::Exec;
        } else {
            // Address-ready but unissued: blame the policy gate that
            // refused it this cycle (doIssue visits the head before
            // ports run out, so gateBlock is fresh).
            switch (head.gateBlock) {
              case GateBlock::Barrier:
                cause = CpiCause::StoreBarrier;
                break;
              case GateBlock::Sync:
                cause = CpiCause::SyncWait;
                break;
              case GateBlock::OracleWait:
              case GateBlock::AsTrueDep:
                cause = CpiCause::TrueDep;
                break;
              case GateBlock::StoreSet:
              case GateBlock::AsAmbiguous:
                // The false-dep probe (oracle pre-pass) tells us
                // whether this hold protects a real dependence; with
                // no oracle every hold is charged as false.
                cause = (head.fdStallStarted && !head.fdIsFalse)
                    ? CpiCause::TrueDep
                    : CpiCause::FalseDep;
                break;
              case GateBlock::None:
                cause = CpiCause::Exec; // Port/FU starvation.
                break;
            }
        }
    }

    // Execution-latency loss hurts doubly when dispatch is also
    // blocked: reclassify so window pressure is visible.
    if (cause == CpiCause::Exec && rob.full())
        cause = CpiCause::WindowFull;
    return cause;
}

} // namespace cwsim
