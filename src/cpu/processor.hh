/**
 * @file
 * The centralized, continuous-window out-of-order superscalar timing
 * core (the paper's Table 2 machine).
 *
 * Execution-driven and cycle-stepped: instructions are fetched along
 * the predicted path (wrong-path work is fetched, renamed, executed and
 * squashed), inserted into a single RUU-style window in program order,
 * and issued with program-order (oldest-first) priority. The
 * event-driven memory hierarchy supplies load/fill latencies.
 *
 * Load/store scheduling is governed by the MdpConfig: the LsqModel
 * selects whether an address-based scheduler exists, and the SpecPolicy
 * selects among the paper's five speculation policies plus the oracle.
 * This file is where the paper's mechanisms meet the pipeline; the
 * prediction structures themselves live in src/mdp/.
 */

#ifndef CWSIM_CPU_PROCESSOR_HH
#define CWSIM_CPU_PROCESSOR_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "base/arena.hh"
#include "base/byte_index.hh"
#include "base/sim_error.hh"
#include "base/slot_bitmap.hh"
#include "base/types.hh"
#include "bpred/bpred.hh"
#include "check/fault_injector.hh"
#include "check/flight_recorder.hh"
#include "check/watchdog.hh"
#include "cpu/dyn_inst.hh"
#include "cpu/store_buffer.hh"
#include "cpu/window.hh"
#include "isa/executor.hh"
#include "isa/program.hh"
#include "mdp/mdp_table.hh"
#include "mdp/oracle.hh"
#include "mem/functional_memory.hh"
#include "mem/timing_cache.hh"
#include "obs/cpi_stack.hh"
#include "obs/depprof.hh"
#include "obs/interval.hh"
#include "obs/pipeview.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace cwsim
{

/** Why a squash happened — annotated onto pipeline-trace records. */
enum class SquashCause : uint8_t
{
    None,             ///< Not squashed (committed normally).
    BranchMispredict,
    MemOrderViolation, ///< A memory dependence miss-speculation.
    InjectedViolation, ///< Fault injection forced the violation.
    Drain,            ///< runTiming() boundary drain.
};

const char *toString(SquashCause cause);

/** Aggregate statistics for one Processor run. */
struct ProcStats
{
    stats::Scalar cycles;
    stats::Scalar commits;
    stats::Scalar committedLoads;
    stats::Scalar committedStores;
    stats::Scalar fetchedInsts;
    stats::Scalar squashedInsts;
    stats::Scalar branchMispredicts;
    stats::Scalar memOrderViolations; ///< Dependence miss-speculations.
    stats::Scalar loadReplays;        ///< AS silent re-executions.
    stats::Scalar selectiveRecoveries; ///< Slice re-executions.
    stats::Scalar selectiveFallbacks;  ///< Slices that needed a squash.
    stats::Average sliceSize;          ///< Insts per selective recovery.
    stats::Scalar falseDepLoads;      ///< Table 3 "FD" numerator.
    stats::Scalar trueDepStalledLoads;
    stats::Scalar syncWaits;          ///< Loads synchronized by SYNC.
    stats::Scalar selHolds;           ///< Loads held by SEL prediction.
    stats::Scalar barrierHolds;       ///< Loads held behind a barrier.
    stats::Scalar loadsForwarded;     ///< Loads served fully by the SB.
    stats::Average falseDepLatency;   ///< Table 3 "RL".
    stats::Average loadIssueDelay;    ///< Ready-to-issue cycles, loads.
    /** Window (ROB) occupancy, sampled every cycle. */
    stats::Distribution windowOccupancy;
    // Fault injection (check.faults).
    stats::Scalar injectedViolations;
    stats::Scalar injectedAddrDelays;
    stats::Scalar injectedMdptFaults;

    void registerIn(stats::StatGroup &group);

    double
    ipc() const
    {
        return cycles.value()
            ? static_cast<double>(commits.value()) / cycles.value()
            : 0.0;
    }

    double
    misspecRate() const
    {
        return committedLoads.value()
            ? static_cast<double>(memOrderViolations.value()) /
                  committedLoads.value()
            : 0.0;
    }

    double
    falseDepFraction() const
    {
        return committedLoads.value()
            ? static_cast<double>(falseDepLoads.value()) /
                  committedLoads.value()
            : 0.0;
    }
};

class Processor
{
  public:
    /**
     * @param cfg Machine configuration (Table 2 presets + MdpConfig).
     * @param program The workload image.
     * @param oracle Pre-pass dependence information. Mandatory for
     *        SpecPolicy::Oracle; optional otherwise (enables the
     *        false-dependence probes of Table 3 when present).
     */
    Processor(const SimConfig &cfg, const Program &program,
              const OracleDeps *oracle = nullptr);
    ~Processor();

    /** Run until HALT commits, cfg.maxInsts commits, or cfg.maxCycles. */
    void run();

    /**
     * Timing-simulate until @p max_commits more instructions commit (or
     * HALT); then drain speculative state so a functional phase can
     * take over. @return commits performed.
     */
    uint64_t runTiming(uint64_t max_commits);

    /**
     * Fast-forward @p n instructions functionally, warming the caches
     * and the branch predictor (the paper's sampling methodology).
     */
    uint64_t fastForward(uint64_t n);

    bool halted() const { return haltedFlag; }

    ProcStats &procStats() { return pstats; }
    const ProcStats &procStats() const { return pstats; }
    stats::StatGroup &statsGroup() { return statGroup; }
    const obs::CpiStack &cpiStack() const { return cpi; }

    const ArchState &archState() const { return archRegs; }
    FunctionalMemory &memory() { return funcMem; }
    MemorySystem &memorySystem() { return memSys; }
    BranchPredictor &branchPredictor() { return bpred; }
    MdpTable &mdpt() { return mdpTable; }
    const check::FlightRecorder &flightRecorder() const { return frec; }
    /** The run's dependence profile, or nullptr when profiling is off. */
    const obs::DepProfile *depProfile() const { return dprof.get(); }

    Tick curCycle() const { return cycle; }
    uint64_t totalCommits() const { return commitCount; }

    /**
     * Render the machine's current state (cycle, window, store buffer,
     * fetch engine) for diagnostics.
     */
    std::string machineStateDump() const;

  private:
    // ---- pipeline phases (called once per cycle, in this order) ----
    void tick();
    void doCommit();
    void releaseStores();
    void doIssue();
    void doDispatch();
    void doFetch();

    // ---- issue helpers (processor_issue.cc) -------------------------
    /** One pending instruction's issue attempt (the doIssue body). */
    void tryIssue(DynInst &inst, unsigned &slots);
    /** The policy gate: may this load access memory this cycle? */
    bool loadMayIssue(DynInst &inst);
    bool gateNasAllOlderStoresIssued(const DynInst &inst) const;
    bool gateStoreBarrier(const DynInst &inst);
    bool gateSync(DynInst &inst);
    bool gateOracle(DynInst &inst);
    bool gateAddressScheduler(DynInst &inst, bool speculate);

    void executeLoad(DynInst &inst);
    void executeStoreNas(DynInst &inst);
    void postStoreAddr(DynInst &inst);
    void postStoreData(DynInst &inst);
    void storeBecameExecuted(DynInst &inst, SbEntry &entry);

    void checkViolationsNas(const SbEntry &entry);
    void checkStaleLoadsAs(const SbEntry &entry);
    void trainPredictors(const DynInst &load, const SbEntry &store);
    void replayLoad(DynInst &inst);

    /**
     * The byte-wise staleness test: did @p load read any byte that
     * @p entry writes from a source older than @p entry (memory or an
     * older store)? Bytes forwarded from younger stores are correct
     * regardless of this store's value.
     */
    bool loadHasStaleByteFrom(const DynInst &load,
                              const SbEntry &entry) const;
    /** Did any byte of @p load forward from store @p store_seq? */
    bool loadForwardedFrom(const DynInst &load,
                           InstSeqNum store_seq) const;
    /** Register an issued load's bytes in the loadBytes index. */
    void indexLoadBytes(DynInst &inst);
    /** Remove a load from loadBytes (replay / squash / commit). */
    void deindexLoadBytes(DynInst &inst);

    /**
     * Selective invalidation: re-execute the violated load and,
     * transitively, every instruction that consumed erroneous data
     * (through registers or store-buffer forwarding).
     * @return False if the slice reached resolved control flow (or a
     *         replay-storm guard tripped) and the caller must fall
     *         back to squash invalidation.
     */
    bool replayDependenceSlice(DynInst &victim);
    void resetForReplay(DynInst &inst);

    /**
     * Byte-wise load assembly from the store buffer + memory. When
     * @p byte_sources is non-null it receives, per byte, the seq of
     * the forwarding store (0 = memory); must hold @p size elements.
     */
    uint64_t assembleLoadBytes(Addr addr, unsigned size,
                               InstSeqNum load_seq,
                               InstSeqNum *byte_sources) const;

    void noteFalseDepStall(DynInst &inst);
    void finishFalseDepStall(DynInst &inst);

    // ---- checked simulation (processor_check.cc) --------------------
    /** Per-cycle invariants; dispatches on cfg.check.level. */
    void checkInvariants();
    /** Level >= 2: full structural scans of window/SB/rename/MDPT. */
    void heavyInvariants();
    /**
     * Raise a structured checked-simulation failure: the message plus
     * the machine-state and flight-recorder dumps, as a SimError.
     */
    [[noreturn]] void checkFail(SimErrorKind kind,
                                const std::string &what);
    /** Fault injection: spurious violation against a younger load. */
    void injectSpuriousViolation(const SbEntry &entry);
    /** Fault injection: per-cycle MDPT drop/corrupt draws. */
    void injectMdptFaults();
    /**
     * Fault injection: execute a host-level fault (abort / spin /
     * allocation storm). Never returns for anything but
     * HostFault::None — containment is the --isolate executor's job.
     */
    void executeHostFault(check::HostFault fault);

    // ---- shared helpers ----------------------------------------------
    DynInst *findInst(InstSeqNum seq);
    SbEntry *findSbEntry(InstSeqNum seq);
    const SbEntry *findSbByTraceIdx(TraceIndex idx) const;
    void completeInst(DynInst &inst);
    void broadcastResult(const DynInst &producer);
    void resolveControl(DynInst &inst);
    bool consumerCapturedResult(const DynInst &inst) const;
    bool anyConsumerIssued(const DynInst &producer) const;
    void unbroadcast(const DynInst &producer);

    /**
     * Squash every instruction younger than @p keep_seq (everything if
     * keep_seq == 0), repair the branch predictor, and redirect fetch.
     * @p cause annotates the squashed instructions' pipeline-trace
     * records.
     */
    void squashYoungerThan(InstSeqNum keep_seq, Addr restart_pc,
                           TraceIndex restart_trace_idx,
                           bool repair_bpred, SquashCause cause);
    void resumeFetch(Addr target);

    // ---- observability (src/obs/) -----------------------------------
    /** Emit @p inst's O3PipeView record (cause != None => squashed). */
    void emitPipeRecord(const DynInst &inst, SquashCause cause);
    void emitIntervalSample();
    obs::IntervalCounters intervalCounters() const;
    /** Flush the sampler's trailing partial interval (idempotent). */
    void finishIntervalSampling();
    /**
     * Take a final MDPT sample and append the dependence profile to
     * the process-wide profile file (idempotent, no-op without one).
     */
    void finishDepProfile();
    /**
     * Blame for this cycle's residual (non-committing) commit slots.
     * Called only when fewer than commitWidth instructions committed;
     * inspects the window head after the issue/dispatch/fetch phases
     * ran (DESIGN.md §11 has the priority order).
     */
    obs::CpiCause classifyResidual() const;

    void captureOperand(DynInst &inst, DynInst::Operand &op, RegId reg);
    void renameDest(DynInst &inst);
    void registerConsumer(const DynInst &producer,
                          const DynInst &consumer);

    // ---- configuration ------------------------------------------------
    SimConfig cfg;
    LsqModel lsqModel;
    SpecPolicy policy;
    bool usesMdpt;
    unsigned checkLevel;

    // ---- checked simulation ---------------------------------------------
    check::FlightRecorder frec;
    check::Watchdog wdog;
    check::FaultInjector faults;
    InstSeqNum lastCommitSeq; ///< In-order-commit invariant state.

    // ---- structural state ----------------------------------------------
    EventQueue eq;
    FunctionalMemory funcMem;
    MemorySystem memSys;
    BranchPredictor bpred;
    DecodeCache decoder;
    MdpTable mdpTable;
    const OracleDeps *oracle;

    ArchState archRegs; ///< Committed register state + next commit PC.

    struct RegMapEntry
    {
        bool busy = false;
        InstSeqNum producer = 0;
    };
    std::array<RegMapEntry, num_arch_regs> regMap;

    /**
     * The instruction window, SoA-split: full DynInst records plus
     * dense hot-field mirrors (see cpu/window.hh for the sync
     * contract; heavyInvariants cross-checks the views at level 2).
     */
    Window rob;
    StoreBuffer sb;
    unsigned lsqCount; ///< Memory instructions resident in the window.

    /**
     * Stable ROB slots doIssue must still visit: resident instructions
     * that are not done, excluding issued plain instructions (they
     * complete through events) and memory-issued loads. Maintained
     * incrementally at dispatch / issue / completion / replay / squash;
     * heavyInvariants() rebuilds it from the window and compares.
     */
    SlotBitmap pendingBits;

    /**
     * Bytes read by in-flight memory-issued loads, by age. Replaces
     * the full-window sweep of the violation checks: a store that
     * executes asks for the younger loads that read any byte it
     * writes. Entries reference ROB slots; validated against seq at
     * visit time (squash truncation leaves dead slots behind).
     */
    ByteSeqIndex loadBytes;

    struct ConsumerRef
    {
        size_t slot = 0;
        InstSeqNum seq = 0;
    };
    /**
     * Per-producer consumer (wakeup) lists, indexed by the producer's
     * ROB slot; built during operand capture at dispatch. Replaces the
     * full-window sweeps of broadcastResult / unbroadcast /
     * anyConsumerIssued. Refs to squashed consumers go stale and are
     * dropped lazily (slot liveness + seq check); a producer's list is
     * cleared when its slot is reallocated at dispatch.
     */
    std::vector<std::vector<ConsumerRef>> consumers;

    /** Scratch for violation-check candidate collection. */
    std::vector<ByteSeqIndex::Ref> checkScratch;

    /**
     * Un-executed stores, by sequence number (the NAS "NO" gate).
     * Arena-backed: one node churns per store, none outlive the run.
     */
    ArenaSet<InstSeqNum> unissuedStores;
    /** Un-executed barrier-predicted stores (the STORE gate). */
    ArenaSet<InstSeqNum> unissuedBarriers;

    // ---- fetch state ------------------------------------------------------
    struct FetchedInst
    {
        InstSeqNum seq = 0;
        TraceIndex traceIdx = 0;
        Addr pc = 0;
        StaticInst si;
        bool predTaken = false;
        Addr predTarget = 0;
        bool predTargetKnown = false;
        bool hasCheckpoint = false;
        BPredCheckpoint checkpoint;
        Tick readyAt = 0;
        Tick fetchedAt = 0;
    };
    std::deque<FetchedInst> fetchQueue;
    Addr fetchPc;
    bool fetchHalted;
    InstSeqNum fetchStalledOnSeq; ///< Waiting for an indirect target.
    std::set<Addr> pendingIBlocks;

    // ---- per-cycle resource budgets (reset in doIssue) ---------------
    unsigned memPortsLeft;
    unsigned lsqInPortsLeft;
    std::array<unsigned, num_fu_classes> fuUsed;

    // ---- bookkeeping -------------------------------------------------------
    Tick cycle;
    InstSeqNum nextSeq;
    TraceIndex nextFetchTraceIdx;
    uint64_t commitCount;
    bool haltedFlag;
    Tick lastMdptReset;
    /**
     * Cause of the most recent squash, held until the front end
     * delivers the first refetched instruction to dispatch; classifies
     * empty-window cycles as mem-dep-squash vs branch-refetch loss.
     */
    SquashCause refetchCause;

    ProcStats pstats;
    stats::StatGroup statGroup;
    /** Commit-slot cycle accounting; child "cpi" group of statGroup. */
    obs::CpiStack cpi;

    // ---- observability ------------------------------------------------
    /** Pipeline-trace writer (nullptr when not recording). */
    obs::PipeViewWriter *pipe;
    /** Interval stats sampler (nullptr when not sampling). */
    std::unique_ptr<obs::IntervalSampler> sampler;
    /**
     * Per-static-PC dependence attribution (nullptr when profiling is
     * off — every hook below a single predicted-false pointer test).
     * Observation only: the enabled path reads simulation state but
     * never feeds back, so simulated stats stay bit-identical.
     */
    std::unique_ptr<obs::DepProfile> dprof;
    bool dprofWritten = false;
};

} // namespace cwsim

#endif // CWSIM_CPU_PROCESSOR_HH
