/**
 * @file
 * The checked-simulation side of the processor: per-cycle invariant
 * checking (MachineConfig check.level), structured failure reporting
 * with the flight-recorder dump attached, and the fault-injection
 * points that storm the miss-speculation recovery machinery.
 */

#include <cstdlib>
#include <memory>
#include <sstream>
#include <vector>

#include "base/logging.hh"
#include "cpu/processor.hh"

namespace cwsim
{

std::string
Processor::machineStateDump() const
{
    std::ostringstream os;
    os << strfmt("machine state @ cycle %llu: commits %llu, window "
                 "%zu/%u, SB %zu/%u, lsq %u/%u, fetchPc 0x%llx%s, "
                 "unissued stores %zu\n",
                 static_cast<unsigned long long>(cycle),
                 static_cast<unsigned long long>(commitCount),
                 rob.size(), cfg.core.windowSize, sb.size(),
                 cfg.core.storeBufferSize, lsqCount, cfg.core.lsqSize,
                 static_cast<unsigned long long>(fetchPc),
                 fetchStalledOnSeq ? " (stalled on indirect)" : "",
                 unissuedStores.size());
    size_t shown = std::min<size_t>(rob.size(), 4);
    for (size_t i = 0; i < shown; ++i) {
        const DynInst &inst = rob.at(i);
        os << strfmt("  rob[%zu]: seq %llu pc 0x%llx%s%s%s%s\n", i,
                     static_cast<unsigned long long>(inst.seq),
                     static_cast<unsigned long long>(inst.pc),
                     inst.isLoad() ? " load" : "",
                     inst.isStore() ? " store" : "",
                     inst.issued ? " issued" : "",
                     inst.done ? " done" : "");
    }
    return os.str();
}

void
Processor::checkFail(SimErrorKind kind, const std::string &what)
{
    throw SimError(kind, what, __FILE__, 0,
                   machineStateDump() + frec.dumpString());
}

// ---------------------------------------------------------------------
// Invariant checking.
// ---------------------------------------------------------------------

void
Processor::checkInvariants()
{
    // Level 1: O(1) occupancy bounds every cycle.
    if (rob.size() > cfg.core.windowSize) {
        checkFail(SimErrorKind::Invariant,
                  strfmt("window occupancy %zu exceeds %u", rob.size(),
                         cfg.core.windowSize));
    }
    if (lsqCount > cfg.core.lsqSize) {
        checkFail(SimErrorKind::Invariant,
                  strfmt("LSQ occupancy %u exceeds %u", lsqCount,
                         cfg.core.lsqSize));
    }
    if (sb.size() > cfg.core.storeBufferSize) {
        checkFail(SimErrorKind::Invariant,
                  strfmt("store buffer occupancy %zu exceeds %u",
                         sb.size(), cfg.core.storeBufferSize));
    }

    // Commit-slot conservation: every completed tick accounted exactly
    // commitWidth slots. At this point in tick() both counters reflect
    // the previous N ticks (this tick's accounting happens after the
    // check), so any pipeline path that advances the cycle count
    // without accounting trips here the very next cycle.
    uint64_t expect_slots =
        pstats.cycles.value() * uint64_t{cfg.core.commitWidth};
    if (cpi.totalSlots() != expect_slots ||
        cpi.cycles() != pstats.cycles.value()) {
        checkFail(SimErrorKind::Invariant,
                  strfmt("CPI-stack conservation broken: %llu slots / "
                         "%llu accounted cycles, expected %llu / %llu",
                         static_cast<unsigned long long>(
                             cpi.totalSlots()),
                         static_cast<unsigned long long>(cpi.cycles()),
                         static_cast<unsigned long long>(expect_slots),
                         static_cast<unsigned long long>(
                             pstats.cycles.value())));
    }

    if (checkLevel >= 2)
        heavyInvariants();
}

void
Processor::heavyInvariants()
{
    // Window entries in strict program order; memory population counted.
    unsigned mem_insts = 0;
    for (size_t i = 0; i < rob.size(); ++i) {
        const DynInst &inst = rob.at(i);
        if (i > 0 && inst.seq <= rob.at(i - 1).seq) {
            checkFail(SimErrorKind::Invariant,
                      strfmt("window order broken: seq %llu at pos %zu "
                             "after %llu",
                             static_cast<unsigned long long>(inst.seq),
                             i,
                             static_cast<unsigned long long>(
                                 rob.at(i - 1).seq)));
        }
        if (inst.si.isMem())
            ++mem_insts;
        if (inst.isLoad() && inst.memIssued &&
            inst.effAddr == invalid_addr) {
            checkFail(SimErrorKind::Invariant,
                      strfmt("issued load seq %llu has no address",
                             static_cast<unsigned long long>(
                                 inst.seq)));
        }
        if (inst.isStore()) {
            if (inst.sbSlot < 0 ||
                sb.slot(inst.sbSlot).seq != inst.seq) {
                checkFail(SimErrorKind::Invariant,
                          strfmt("store seq %llu lost its SB slot",
                                 static_cast<unsigned long long>(
                                     inst.seq)));
            }
        }
    }
    if (mem_insts != lsqCount) {
        checkFail(SimErrorKind::Invariant,
                  strfmt("lsqCount %u but window holds %u memory "
                         "instructions",
                         lsqCount, mem_insts));
    }

    // Store-buffer FIFO discipline: ages ascending, the committed
    // entries form a prefix, and only committed entries release.
    bool seen_uncommitted = false;
    for (size_t i = 0; i < sb.size(); ++i) {
        const SbEntry &entry = sb.at(i);
        if (i > 0 && entry.seq <= sb.at(i - 1).seq) {
            checkFail(SimErrorKind::Invariant,
                      strfmt("store buffer order broken at pos %zu",
                             i));
        }
        if (entry.committed && seen_uncommitted) {
            checkFail(SimErrorKind::Invariant,
                      "committed store behind an uncommitted one");
        }
        if (!entry.committed)
            seen_uncommitted = true;
        if ((entry.released || entry.releasing) && !entry.committed) {
            checkFail(SimErrorKind::Invariant,
                      strfmt("uncommitted store seq %llu releasing",
                             static_cast<unsigned long long>(
                                 entry.seq)));
        }
    }

    // The NO-gate set tracks exactly the unexecuted stores in flight.
    for (InstSeqNum seq : unissuedStores) {
        const DynInst *inst = findInst(seq);
        if (!inst || !inst->isStore()) {
            checkFail(SimErrorKind::Invariant,
                      strfmt("unissued-store set names seq %llu which "
                             "is not an in-flight store",
                             static_cast<unsigned long long>(seq)));
        }
        if (inst->sbSlot >= 0 && sb.slot(inst->sbSlot).executed) {
            checkFail(SimErrorKind::Invariant,
                      strfmt("unissued-store set holds executed store "
                             "seq %llu",
                             static_cast<unsigned long long>(seq)));
        }
    }

    // Rename map: a busy architectural register's producer, when still
    // in flight, must actually write that register. (The producer may
    // legitimately have committed already — squash-undo can restore a
    // mapping to a retired instruction; operand capture falls back to
    // the architectural file in that case.)
    for (unsigned r = 0; r < num_arch_regs; ++r) {
        const RegMapEntry &rm = regMap[r];
        if (!rm.busy)
            continue;
        const DynInst *producer = findInst(rm.producer);
        if (producer &&
            (!producer->si.writesReg() || producer->si.rd != r)) {
            checkFail(SimErrorKind::Invariant,
                      strfmt("rename map for r%u names seq %llu which "
                             "does not write it",
                             r,
                             static_cast<unsigned long long>(
                                 rm.producer)));
        }
    }

    // MDPT synonym-table sanity; amortized, the table is large.
    if (usesMdpt && (cycle & 1023) == 0) {
        std::string complaint = mdpTable.sanityCheck();
        if (!complaint.empty()) {
            checkFail(SimErrorKind::Invariant,
                      "MDPT sanity: " + complaint);
        }
    }

    // The store buffer's own incremental indexes against a rebuild.
    {
        std::string complaint = sb.selfCheck(cycle);
        if (!complaint.empty()) {
            checkFail(SimErrorKind::Invariant,
                      "store buffer: " + complaint);
        }
    }

    // The window's structure-of-arrays views against the canonical
    // DynInst records: every mirrored hot field rebuilt and compared.
    {
        std::string complaint = rob.crossCheck();
        if (!complaint.empty()) {
            checkFail(SimErrorKind::Invariant,
                      "window SoA mirror: " + complaint);
        }
    }

    // The pending-issue bitmap must be exactly the from-scratch
    // predicate over the live window: resident, not done, and not yet
    // (mem)issued.
    size_t expected_pending = 0;
    for (size_t i = 0; i < rob.size(); ++i) {
        const DynInst &inst = rob.at(i);
        size_t slot = rob.slotOf(inst);
        bool pending = !inst.done &&
                       !(inst.isLoad() ? inst.memIssued : inst.issued);
        if (pending)
            ++expected_pending;
        if (pendingBits.test(slot) != pending) {
            checkFail(SimErrorKind::Invariant,
                      strfmt("pending bitmap %s for seq %llu (done %d, "
                             "issued %d, memIssued %d)",
                             pending ? "missing" : "stale",
                             static_cast<unsigned long long>(inst.seq),
                             inst.done, inst.issued, inst.memIssued));
        }
    }
    if (pendingBits.count() != expected_pending) {
        checkFail(SimErrorKind::Invariant,
                  strfmt("pending bitmap holds %zu bits on dead slots "
                         "(%zu set, %zu expected)",
                         pendingBits.count() - expected_pending,
                         pendingBits.count(), expected_pending));
    }

    // The issued-load byte index must cover exactly the memory-issued
    // in-flight loads, byte for byte, and agree with its own redundant
    // structures.
    size_t expected_bytes = 0;
    for (size_t i = 0; i < rob.size(); ++i) {
        const DynInst &inst = rob.at(i);
        bool indexed = inst.isLoad() && inst.memIssued;
        if (inst.bytesIndexed != indexed) {
            checkFail(SimErrorKind::Invariant,
                      strfmt("load-byte index flag %d but load seq %llu "
                             "is %smemory-issued",
                             inst.bytesIndexed,
                             static_cast<unsigned long long>(inst.seq),
                             indexed ? "" : "not "));
        }
        if (!indexed)
            continue;
        expected_bytes += inst.memSize;
        size_t slot = rob.slotOf(inst);
        for (unsigned b = 0; b < inst.memSize; ++b) {
            ByteSeqIndex::Ref ref;
            if (!loadBytes.newestBefore(inst.effAddr + b, inst.seq + 1,
                                        ref) ||
                ref.seq != inst.seq || ref.slot != slot) {
                checkFail(SimErrorKind::Invariant,
                          strfmt("load-byte index misses byte %u of "
                                 "load seq %llu",
                                 b,
                                 static_cast<unsigned long long>(
                                     inst.seq)));
            }
        }
    }
    if (loadBytes.size() != expected_bytes) {
        checkFail(SimErrorKind::Invariant,
                  strfmt("load-byte index holds %zu bytes, window "
                         "accounts for %zu",
                         loadBytes.size(), expected_bytes));
    }
    {
        std::string complaint = loadBytes.selfCheck();
        if (!complaint.empty()) {
            checkFail(SimErrorKind::Invariant,
                      "load-byte index: " + complaint);
        }
    }

    // Consumer lists: every in-flight consumer naming an in-flight
    // producer must appear on that producer's list (completeness), and
    // every valid list entry must actually consume the producer
    // (soundness up to lazy invalidation).
    for (size_t i = 0; i < rob.size(); ++i) {
        const DynInst &c = rob.at(i);
        for (const DynInst::Operand *op : {&c.src1, &c.src2}) {
            if (!op->hasProducer)
                continue;
            const DynInst *p = findInst(op->producer);
            if (!p)
                continue; // producer retired; list entry not required
            size_t pslot = rob.slotOf(*p);
            size_t cslot = rob.slotOf(c);
            bool found = false;
            for (const ConsumerRef &ref : consumers[pslot]) {
                if (ref.slot == cslot && ref.seq == c.seq) {
                    found = true;
                    break;
                }
            }
            if (!found) {
                checkFail(SimErrorKind::Invariant,
                          strfmt("consumer seq %llu missing from "
                                 "producer seq %llu's wakeup list",
                                 static_cast<unsigned long long>(c.seq),
                                 static_cast<unsigned long long>(
                                     p->seq)));
            }
        }
    }
    for (size_t slot = 0; slot < consumers.size(); ++slot) {
        // Dead producers keep stale lists until slot reuse; their refs
        // must simply fail validation against the live window.
        for (const ConsumerRef &ref : consumers[slot]) {
            if (!rob.slotLive(ref.slot))
                continue;
            const DynInst &c = rob.slot(ref.slot);
            if (c.seq != ref.seq)
                continue; // stale ref, lazily compacted later
            if (!rob.slotLive(slot))
                continue;
            const DynInst &p = rob.slot(slot);
            bool consumes =
                (c.src1.hasProducer && c.src1.producer == p.seq) ||
                (c.src2.hasProducer && c.src2.producer == p.seq);
            if (!consumes) {
                checkFail(SimErrorKind::Invariant,
                          strfmt("wakeup list of seq %llu names seq "
                                 "%llu which does not consume it",
                                 static_cast<unsigned long long>(p.seq),
                                 static_cast<unsigned long long>(
                                     c.seq)));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------

void
Processor::injectSpuriousViolation(const SbEntry &entry)
{
    // Victim: the oldest issued load younger than the store, i.e. the
    // same instruction a real violation by this store would hit.
    DynInst *victim = nullptr;
    for (size_t i = 0; i < rob.size(); ++i) {
        DynInst &inst = rob.at(i);
        if (inst.seq > entry.seq && inst.isLoad() && inst.memIssued) {
            victim = &inst;
            break;
        }
    }
    if (!victim)
        return;

    ++pstats.injectedViolations;
    frec.record(cycle, check::EventKind::InjectedViolation, victim->seq,
                victim->pc, entry.pc);

    // Run the exact recovery path a real miss-speculation would take —
    // minus predictor training, so the induced storm cannot teach the
    // MDPT phantom dependences.
    if (cfg.mdp.recovery == RecoveryModel::Selective) {
        if (replayDependenceSlice(*victim))
            return;
        ++pstats.selectiveFallbacks;
        frec.record(cycle, check::EventKind::SelectiveFallback,
                    victim->seq, victim->pc);
    }
    Addr restart_pc = victim->pc;
    TraceIndex restart_idx = victim->traceIdx;
    squashYoungerThan(victim->seq - 1, restart_pc, restart_idx,
                      /*repair_bpred=*/true,
                      SquashCause::InjectedViolation);
}

void
Processor::executeHostFault(check::HostFault fault)
{
    // These faults deliberately take the process down (or wedge it);
    // the warn() line is the last breadcrumb a contained child leaves
    // on stderr before the --isolate parent classifies its demise.
    switch (fault) {
      case check::HostFault::None:
        return;
      case check::HostFault::Crash:
        warn("fault injector: host crash (abort) at cycle %llu",
             static_cast<unsigned long long>(cycle));
        std::abort();
      case check::HostFault::Hang: {
        warn("fault injector: host hang (infinite spin) at cycle %llu",
             static_cast<unsigned long long>(cycle));
        volatile uint64_t spin = 0;
        for (;;)
            spin = spin + 1;
      }
      case check::HostFault::Alloc: {
        warn("fault injector: host allocation storm at cycle %llu",
             static_cast<unsigned long long>(cycle));
        // Raw new[] (no value-init) with a sparse touch: the storm
        // must burn address space fast — RLIMIT_AS and the overcommit
        // heuristics care about mappings, and zero-filling them first
        // would let a wall-clock timeout win the race and misclassify
        // the fault — while still dirtying enough pages that the
        // kernel's OOM killer notices when no rlimit is set.
        std::vector<std::unique_ptr<char[]>> hoard;
        constexpr size_t chunk = 16u << 20;
        for (;;) {
            hoard.emplace_back(new char[chunk]);
            char *p = hoard.back().get();
            for (size_t off = 0; off < chunk; off += 1u << 20)
                p[off] = static_cast<char>(off);
        }
      }
    }
}

void
Processor::injectMdptFaults()
{
    if (faults.injectMdptDrop() &&
        mdpTable.dropRandomEntry(faults.random())) {
        ++pstats.injectedMdptFaults;
        frec.record(cycle, check::EventKind::InjectedMdptFault, 0, 0,
                    /*arg=*/0);
    }
    if (faults.injectMdptCorrupt() &&
        mdpTable.corruptRandomEntry(faults.random())) {
        ++pstats.injectedMdptFaults;
        frec.record(cycle, check::EventKind::InjectedMdptFault, 0, 0,
                    /*arg=*/1);
    }
}

} // namespace cwsim
