/**
 * @file
 * The issue phase: oldest-first selection, the load scheduling gates
 * for every (LsqModel x SpecPolicy) combination, store address/data
 * posting, dependence-violation detection and recovery. This file is
 * the paper's mechanism-under-study.
 */

#include <algorithm>

#include "base/addr_range.hh"
#include "base/logging.hh"
#include "cpu/processor.hh"
#include "isa/exec_fn.hh"
#include "obs/trace.hh"

namespace cwsim
{

void
Processor::doIssue()
{
    unsigned slots = cfg.core.issueWidth;
    if (rob.empty())
        return;

    // Walk the pending bitmap in age order instead of scanning every
    // window entry. The window occupies slots [head, head+count) with
    // wraparound and bits exist only on live slots, so the [head, cap)
    // segment holds the older part and [0, head) the wrapped younger
    // part. The head cannot move during issue (commit already ran this
    // cycle), and every in-visit mutation — a squash clearing bits, a
    // selective replay setting bits — only touches instructions younger
    // than the one being visited, i.e. positions the walk has not
    // reached; nextSet re-reads the words, so the historical full-scan
    // semantics are preserved exactly.
    size_t head = rob.slotOf(rob.front());
    bool wrapped = false;
    size_t s = pendingBits.nextSet(head);
    while (slots > 0) {
        if (s == SlotBitmap::npos || (wrapped && s >= head)) {
            if (wrapped)
                break;
            wrapped = true;
            s = pendingBits.nextSet(0);
            continue;
        }
        // Cheap rejection off the window's hot-flag array: most
        // pending instructions are waiting on operands, and the
        // predicates below reproduce tryIssue's early-outs exactly —
        // the fat DynInst record is only touched when the instruction
        // might actually do something this cycle.
        uint8_t f = rob.flagsAt(s);
        bool skip;
        if (f & Window::FlagIsStore) {
            skip = false; // store posting needs SB state; go in
        } else if (f & Window::FlagIsLoad) {
            skip = (f & (Window::FlagDone | Window::FlagMemIssued)) ||
                   !(f & Window::FlagSrc1Ready);
        } else {
            skip = (f & (Window::FlagIssued | Window::FlagDone)) ||
                   !(f & Window::FlagSrcsReady);
        }
        if (!skip)
            tryIssue(rob.slot(s), slots);
        // Advance only after the visit: a selective replay inside it
        // may have set a bit between this slot and the next.
        s = pendingBits.nextSet(s + 1);
    }
}

void
Processor::tryIssue(DynInst &inst, unsigned &slots)
{
    {
        if (inst.done)
            return;

        if (inst.isStore()) {
            SbEntry &entry = sb.slot(inst.sbSlot);
            if (lsqModel == LsqModel::AS) {
                // Two-phase store: post the address as soon as the base
                // register is available, the data whenever it arrives.
                if (!entry.addrValid && inst.src1.ready &&
                    lsqInPortsLeft > 0) {
                    postStoreAddr(inst);
                    --slots;
                    --lsqInPortsLeft;
                }
                if (!inst.done && !entry.dataValid && inst.src2.ready)
                    postStoreData(inst);
            } else {
                // Table 2 base model: stores wait for both data and
                // address operands before issuing.
                if (!inst.issued && inst.srcsReady() &&
                    cycle >= inst.storeExecNotBefore &&
                    lsqInPortsLeft > 0) {
                    executeStoreNas(inst);
                    --slots;
                    --lsqInPortsLeft;
                }
            }
            return;
        }

        if (inst.isLoad()) {
            if (inst.memIssued || !inst.src1.ready)
                return;
            // Recompute on every attempt: a port-blocked load can sit
            // with a cached address while selective recovery replaces
            // its base register value underneath it.
            inst.effAddr =
                exec::effectiveAddr(inst.si, inst.src1.value);
            if (!loadMayIssue(inst)) {
                rob.sync(inst); // effAddr + gate verdict
                noteFalseDepStall(inst);
                return;
            }
            rob.sync(inst);
            if (memPortsLeft == 0 || lsqInPortsLeft == 0)
                return;
            executeLoad(inst);
            if (inst.memIssued) {
                --slots;
                --memPortsLeft;
                --lsqInPortsLeft;
            }
            return;
        }

        // Plain computational / control instructions. Once issued they
        // complete through the event queue and need no further issue
        // attention; drop them from the pending set.
        if (inst.issued || !inst.srcsReady())
            return;
        unsigned fu = static_cast<unsigned>(inst.si.fuClass());
        if (fuUsed[fu] >= cfg.core.fuCopies)
            return;
        ++fuUsed[fu];
        --slots;

        inst.issued = true;
        inst.issuedAt = cycle;
        ++inst.epoch;
        rob.sync(inst);
        pendingBits.clear(rob.slotOf(inst));
        if (inst.si.writesReg()) {
            inst.result = exec::compute(inst.si, inst.src1.value,
                                        inst.src2.value, inst.pc);
        }
        InstSeqNum seq = inst.seq;
        uint32_t epoch = inst.epoch;
        eq.scheduleIn(inst.si.latency(), [this, seq, epoch]() {
            // Precheck through the hot views; the full record is only
            // touched when the completion is still current.
            size_t s = rob.findSlot(seq);
            if (s != Window::npos && rob.epochAt(s) == epoch &&
                rob.isIssued(s) && !rob.isDone(s)) {
                completeInst(rob.slot(s));
            }
        });
    }
}

// ---------------------------------------------------------------------
// Load scheduling gates (the heart of the study).
// ---------------------------------------------------------------------

bool
Processor::loadMayIssue(DynInst &inst)
{
    if (lsqModel == LsqModel::AS) {
        // AS configurations pair with NO or NAV only. The AS gate
        // records its own (two-valued) block cause.
        return gateAddressScheduler(inst,
                                    policy == SpecPolicy::Naive);
    }

    // Evaluate the policy gate, and record WHY a refused load is
    // gate-blocked so the commit-slot accounting can classify a
    // stalled window head (obs/cpi_stack.hh). Observation only: the
    // issue decision is exactly the gate's verdict.
    bool may = true;
    GateBlock cause = GateBlock::None;
    switch (policy) {
      case SpecPolicy::No:
        may = gateNasAllOlderStoresIssued(inst);
        cause = GateBlock::StoreSet;
        break;
      case SpecPolicy::Naive:
        break;
      case SpecPolicy::Selective:
        may = inst.waitAllStores ? gateNasAllOlderStoresIssued(inst)
                                 : true;
        cause = GateBlock::StoreSet;
        break;
      case SpecPolicy::StoreBarrier:
        may = gateStoreBarrier(inst);
        cause = GateBlock::Barrier;
        break;
      case SpecPolicy::SpecSync:
        may = gateSync(inst);
        cause = GateBlock::Sync;
        break;
      case SpecPolicy::Oracle:
        may = gateOracle(inst);
        cause = GateBlock::OracleWait;
        break;
    }
    inst.gateBlock = may ? GateBlock::None : cause;
    return may;
}

bool
Processor::gateNasAllOlderStoresIssued(const DynInst &inst) const
{
    return unissuedStores.empty() ||
           *unissuedStores.begin() > inst.seq;
}

bool
Processor::gateStoreBarrier(const DynInst &inst)
{
    bool blocked = !unissuedBarriers.empty() &&
                   *unissuedBarriers.begin() < inst.seq;
    if (blocked && !inst.fdStallStarted) {
        ++pstats.barrierHolds;
        if (__builtin_expect(dprof != nullptr, 0))
            dprof->noteBarrierHold(inst.pc);
    }
    return !blocked;
}

bool
Processor::gateSync(DynInst &inst)
{
    if (!inst.hasSyncWait)
        return true;
    SbEntry *store = findSbEntry(inst.syncWaitStore);
    if (!store || store->seq >= inst.seq) {
        // The store was squashed or has fully retired; nothing to wait
        // for any more.
        inst.hasSyncWait = false;
        return true;
    }
    // "A waiting load is free to issue one cycle after the store it
    // speculatively depends upon issues."
    return store->executed && cycle >= store->executedAt + 1;
}

bool
Processor::gateOracle(DynInst &inst)
{
    // Wait for EVERY producing store, not just the youngest: with
    // partial overlaps a load reads bytes from several stores, and
    // issuing after only one of them would forward stale bytes from
    // the ranges the others cover.
    for (unsigned i = 0; i < inst.oracleProducerCount; ++i) {
        TraceIndex producer = inst.oracleProducers[i];
        if (producer >= inst.traceIdx) {
            // Wrong-path garbage mapping; never deadlock on it.
            continue;
        }
        if (producer < commitCount)
            continue; // the producing store already committed
        const SbEntry *entry = findSbByTraceIdx(producer);
        if (entry && !entry->executed)
            return false;
    }
    return true;
}

bool
Processor::gateAddressScheduler(DynInst &inst, bool speculate)
{
    // Known true dependence: an older store with a visible address
    // overlapping the load and no data yet — the load always waits.
    if (sb.blockingOlderStore(inst.effAddr, inst.memSize, inst.seq,
                              cycle)) {
        inst.gateBlock = GateBlock::AsTrueDep;
        return false;
    }
    // Otherwise NAV issues through ambiguity, NO waits it out.
    if (!speculate && sb.ambiguousOlderThan(inst.seq, cycle)) {
        inst.gateBlock = GateBlock::AsAmbiguous;
        return false;
    }
    inst.gateBlock = GateBlock::None;
    return true;
}

// ---------------------------------------------------------------------
// Load execution.
// ---------------------------------------------------------------------

uint64_t
Processor::assembleLoadBytes(Addr addr, unsigned size,
                             InstSeqNum load_seq,
                             InstSeqNum *byte_sources) const
{
    // Per byte: the youngest older store with valid data covering it
    // (one indexed lookup), else architectural memory. When the caller
    // passes @p byte_sources (size elements), each byte's forwarding
    // store seq is recorded (0 = memory) — the violation checks test
    // staleness byte-wise against these.
    uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i) {
        Addr byte_addr = addr + i;
        ByteSeqIndex::Ref src;
        if (sb.newestDataBefore(byte_addr, load_seq, src)) {
            value |= static_cast<uint64_t>(
                         sb.slot(src.slot).byteAt(byte_addr))
                     << (8 * i);
            if (byte_sources)
                byte_sources[i] = src.seq;
        } else {
            value |= static_cast<uint64_t>(funcMem.read8(byte_addr))
                     << (8 * i);
            if (byte_sources)
                byte_sources[i] = 0;
        }
    }
    return value;
}

void
Processor::executeLoad(DynInst &inst)
{
    // Sample memory at access time: stores executing later than this
    // point are exactly the ones that can violate the load.
    InstSeqNum sources[8] = {};
    uint64_t raw = assembleLoadBytes(inst.effAddr, inst.memSize,
                                     inst.seq, sources);
    InstSeqNum source = 0;
    bool all_forwarded = true;
    for (unsigned i = 0; i < inst.memSize; ++i) {
        source = std::max(source, sources[i]);
        all_forwarded = all_forwarded && sources[i] != 0;
    }

    // Did the load execute with ambiguous older stores outstanding?
    if (lsqModel == LsqModel::NAS) {
        inst.speculativeLoad = !unissuedStores.empty() &&
                               *unissuedStores.begin() < inst.seq;
    } else {
        inst.speculativeLoad = sb.ambiguousOlderThan(inst.seq, cycle);
    }

    Cycles as_extra =
        lsqModel == LsqModel::AS ? cfg.mdp.asLatency : 0;
    InstSeqNum seq = inst.seq;
    uint32_t epoch = inst.epoch + 1;

    auto finish = [this, seq, epoch]() {
        size_t s = rob.findSlot(seq);
        if (s != Window::npos && rob.epochAt(s) == epoch &&
            rob.isMemIssued(s) && !rob.isDone(s)) {
            DynInst &p = rob.slot(s);
            p.memDone = true;
            completeInst(p);
        }
    };

    if (all_forwarded) {
        // Store-to-load forward: same latency as an L1 hit, no cache
        // bank consumed.
        ++pstats.loadsForwarded;
        eq.scheduleIn(cfg.mem.dcache.hitLatency + as_extra, finish);
    } else {
        bool accepted;
        if (as_extra == 0) {
            accepted = memSys.dataAccess(inst.effAddr, inst.memSize,
                                         false, finish);
        } else {
            accepted = memSys.dataAccess(
                inst.effAddr, inst.memSize, false,
                [this, finish, as_extra]() {
                    eq.scheduleIn(as_extra, finish);
                });
        }
        if (!accepted)
            return; // bank/MSHR conflict; retry next cycle
    }

    ++inst.epoch;
    inst.issued = true;
    inst.memIssued = true;
    inst.issuedAt = cycle;
    inst.loadRaw = raw;
    inst.loadSourceSeq = source;
    for (unsigned i = 0; i < inst.memSize; ++i)
        inst.loadByteSource[i] = sources[i];
    inst.result = exec::loadExtend(inst.si, raw);
    rob.sync(inst);
    indexLoadBytes(inst);
    // Issued: completion arrives through the event queue; violation
    // checks reach the load through loadBytes, not the issue walk.
    pendingBits.clear(rob.slotOf(inst));
    CWSIM_TRACE(Issue, "load seq %llu pc 0x%llx addr 0x%llx%s%s%s",
                static_cast<unsigned long long>(inst.seq),
                static_cast<unsigned long long>(inst.pc),
                static_cast<unsigned long long>(inst.effAddr),
                all_forwarded ? " [forwarded]" : "",
                inst.speculativeLoad ? " [speculative]" : "",
                source ? strfmt(" [src-store seq %llu]",
                                static_cast<unsigned long long>(source))
                             .c_str()
                       : "");
    if (__builtin_expect(dprof != nullptr, 0))
        dprof->noteLoadExec(inst.pc, all_forwarded);
    finishFalseDepStall(inst);
}

void
Processor::replayLoad(DynInst &inst)
{
    unbroadcast(inst);
    deindexLoadBytes(inst);
    ++inst.epoch; // invalidate any in-flight completion
    inst.issued = false;
    inst.memIssued = false;
    inst.memDone = false;
    inst.done = false;
    rob.sync(inst);
    pendingBits.set(rob.slotOf(inst));
    ++inst.timesReplayed;
    ++pstats.loadReplays;
    if (__builtin_expect(dprof != nullptr, 0))
        dprof->noteLoadReplay(inst.pc);
    CWSIM_TRACE(Recovery, "silent replay: load seq %llu pc 0x%llx "
                "(replay #%u)",
                static_cast<unsigned long long>(inst.seq),
                static_cast<unsigned long long>(inst.pc),
                unsigned{inst.timesReplayed});
    frec.record(cycle, check::EventKind::Replay, inst.seq, inst.pc);
}

// ---------------------------------------------------------------------
// Store execution / posting.
// ---------------------------------------------------------------------

void
Processor::executeStoreNas(DynInst &inst)
{
    size_t slot = static_cast<size_t>(inst.sbSlot);
    SbEntry &entry = sb.slot(slot);
    Addr addr = exec::effectiveAddr(inst.si, inst.src1.value);
    // Single-phase store: address immediately visible, data with it.
    sb.postAddr(slot, addr, cycle, cycle);
    sb.postData(slot, exec::storeValue(inst.si, inst.src2.value));
    inst.effAddr = addr;
    CWSIM_TRACE(Issue, "store seq %llu pc 0x%llx addr 0x%llx",
                static_cast<unsigned long long>(inst.seq),
                static_cast<unsigned long long>(inst.pc),
                static_cast<unsigned long long>(entry.addr));
    storeBecameExecuted(inst, entry);
}

void
Processor::postStoreAddr(DynInst &inst)
{
    size_t slot = static_cast<size_t>(inst.sbSlot);
    SbEntry &entry = sb.slot(slot);
    Addr addr = exec::effectiveAddr(inst.si, inst.src1.value);
    Tick visible_at = cycle + cfg.mdp.asLatency;
    if (Cycles delay = faults.injectStoreAddrDelay()) {
        visible_at += delay;
        ++pstats.injectedAddrDelays;
        frec.record(cycle, check::EventKind::InjectedAddrDelay,
                    inst.seq, inst.pc, delay);
    }
    sb.postAddr(slot, addr, visible_at, cycle);
    inst.effAddr = addr;
    rob.sync(inst);
    CWSIM_TRACE(LSQ, "store addr posted: seq %llu pc 0x%llx "
                "addr 0x%llx visible at cycle %llu",
                static_cast<unsigned long long>(inst.seq),
                static_cast<unsigned long long>(inst.pc),
                static_cast<unsigned long long>(entry.addr),
                static_cast<unsigned long long>(entry.addrVisibleAt));
    if (entry.dataValid)
        storeBecameExecuted(inst, entry);
}

void
Processor::postStoreData(DynInst &inst)
{
    size_t slot = static_cast<size_t>(inst.sbSlot);
    SbEntry &entry = sb.slot(slot);
    sb.postData(slot, exec::storeValue(inst.si, inst.src2.value));
    CWSIM_TRACE(LSQ, "store data posted: seq %llu pc 0x%llx",
                static_cast<unsigned long long>(inst.seq),
                static_cast<unsigned long long>(inst.pc));
    if (entry.addrValid)
        storeBecameExecuted(inst, entry);
}

void
Processor::storeBecameExecuted(DynInst &inst, SbEntry &entry)
{
    sb.setExecuted(static_cast<size_t>(inst.sbSlot), cycle);
    unissuedStores.erase(inst.seq);
    unissuedBarriers.erase(inst.seq);
    inst.issued = true;
    inst.done = true;
    inst.issuedAt = cycle;
    rob.sync(inst);
    pendingBits.clear(rob.slotOf(inst));

    if (policy != SpecPolicy::Oracle) {
        // The oracle skips detection: gateOracle holds every load
        // until ALL of its byte-producing stores have executed (not
        // just the youngest — see OracleDeps::ProducerSet), so a
        // correct-path load can never forward a stale byte. Wrong-path
        // loads can, but a control squash discards them before they
        // commit, and flagging them here would charge the idealized
        // oracle with violations it never architecturally commits.
        if (lsqModel == LsqModel::AS)
            checkStaleLoadsAs(entry);
        else
            checkViolationsNas(entry);
    }

    // Fault injection rides AFTER real violation detection so a genuine
    // dependence can never be masked by an induced one.
    if (faults.injectSpuriousViolation())
        injectSpuriousViolation(entry);
}

// ---------------------------------------------------------------------
// Violation detection and recovery.
// ---------------------------------------------------------------------

void
Processor::trainPredictors(const DynInst &load, const SbEntry &store)
{
    CWSIM_TRACE(MDP, "train: load pc 0x%llx / store pc 0x%llx",
                static_cast<unsigned long long>(load.pc),
                static_cast<unsigned long long>(store.pc));
    switch (policy) {
      case SpecPolicy::SpecSync:
        mdpTable.pair(load.pc, store.pc);
        break;
      case SpecPolicy::Selective:
        mdpTable.recordMissSpeculation(load.pc);
        break;
      case SpecPolicy::StoreBarrier:
        mdpTable.recordMissSpeculation(store.pc);
        break;
      default:
        break;
    }
}

void
Processor::checkViolationsNas(const SbEntry &entry)
{
    // Every younger load that read a value this store should have
    // supplied, oldest first. One store can violate several
    // independent loads; a squash from the oldest victim wipes the
    // rest implicitly, but selective recovery must repair each one or
    // the younger victims keep their stale values forever (this store
    // never re-executes to re-check them).
    //
    // Candidates come from the loadBytes index (the younger issued
    // loads reading any byte this store writes) instead of a window
    // sweep; each is re-validated at visit time because a selective
    // recovery for an older victim can reset or squash later ones.
    checkScratch.clear();
    loadBytes.collectYoungerThan(entry.addr, entry.size, entry.seq,
                                 checkScratch);
    if (checkScratch.empty())
        return;
    std::sort(checkScratch.begin(), checkScratch.end(),
              [](const ByteSeqIndex::Ref &a, const ByteSeqIndex::Ref &b)
              { return a.seq < b.seq; });
    InstSeqNum visited = 0;
    for (const ByteSeqIndex::Ref &ref : checkScratch) {
        if (ref.seq == visited)
            continue; // one ref per byte read; visit each load once
        visited = ref.seq;
        // Validate through the hot views before touching the record.
        if (!rob.refLive(ref.slot, ref.seq) ||
            !rob.isMemIssuedLoad(ref.slot)) {
            continue;
        }
        DynInst &load = rob.slot(ref.slot);
        if (!loadHasStaleByteFrom(load, entry))
            continue; // every shared byte came from a younger store

        ++pstats.memOrderViolations;
        if (__builtin_expect(dprof != nullptr, 0)) {
            dprof->noteViolation(
                entry.pc, load.pc, load.seq - entry.seq,
                entry.addr <= load.effAddr &&
                    entry.addr + entry.size >=
                        load.effAddr + load.memSize);
        }
        CWSIM_TRACE(Recovery, "mem-order violation: load seq %llu "
                    "pc 0x%llx vs store seq %llu pc 0x%llx "
                    "addr 0x%llx",
                    static_cast<unsigned long long>(load.seq),
                    static_cast<unsigned long long>(load.pc),
                    static_cast<unsigned long long>(entry.seq),
                    static_cast<unsigned long long>(entry.pc),
                    static_cast<unsigned long long>(entry.addr));
        frec.record(cycle, check::EventKind::Violation, load.seq,
                    load.pc, entry.pc);
        trainPredictors(load, entry);

        if (cfg.mdp.recovery == RecoveryModel::Selective) {
            if (replayDependenceSlice(load)) {
                // Recovered without discarding unrelated work. Loads
                // in the replayed slice are memIssued=false now, so
                // the scan skips them and only genuinely independent
                // further victims are repaired.
                continue;
            }
            ++pstats.selectiveFallbacks;
            CWSIM_TRACE(Recovery, "selective recovery fell back to "
                        "squash: load seq %llu pc 0x%llx",
                        static_cast<unsigned long long>(load.seq),
                        static_cast<unsigned long long>(load.pc));
            frec.record(cycle, check::EventKind::SelectiveFallback,
                        load.seq, load.pc);
        }

        // Squash invalidation: re-fetch from the load itself. This
        // also disposes of any younger victims.
        Addr restart_pc = load.pc;
        TraceIndex restart_idx = load.traceIdx;
        squashYoungerThan(load.seq - 1, restart_pc, restart_idx,
                          /*repair_bpred=*/true,
                          SquashCause::MemOrderViolation);
        return;
    }
}

// ---------------------------------------------------------------------
// Selective invalidation (the Section 2 alternative to squashing).
// ---------------------------------------------------------------------

void
Processor::resetForReplay(DynInst &inst)
{
    if (inst.isLoad())
        deindexLoadBytes(inst); // before the address is forgotten
    ++inst.epoch; // kill in-flight completion events
    inst.issued = false;
    inst.done = false;
    inst.memIssued = false;
    inst.memDone = false;
    inst.effAddr = invalid_addr;
    ++inst.timesReplayed;
    rob.sync(inst);
    pendingBits.set(rob.slotOf(inst));

    if (inst.isStore() && inst.sbSlot >= 0) {
        SbEntry &entry = sb.slot(inst.sbSlot);
        panic_if(entry.seq != inst.seq, "replaying foreign SB entry");
        sb.invalidateForReplay(static_cast<size_t>(inst.sbSlot));
        unissuedStores.insert(inst.seq);
        if (entry.barrier)
            unissuedBarriers.insert(inst.seq);
    }
    if (inst.isLoad()) {
        inst.loadRaw = 0;
        inst.loadSourceSeq = 0;
        inst.loadByteSource.fill(0);
        inst.speculativeLoad = false;
    }
}

bool
Processor::replayDependenceSlice(DynInst &victim)
{
    // Replay-storm guard: a load cycling through many re-executions is
    // cheaper to squash.
    if (victim.epoch > 60)
        return false;

    std::vector<InstSeqNum> work{victim.seq};
    std::set<InstSeqNum> slice;

    while (!work.empty()) {
        InstSeqNum seq = work.back();
        work.pop_back();
        if (slice.count(seq))
            continue;
        DynInst *inst = findInst(seq);
        if (!inst)
            continue;

        // A resolved control instruction that consumed bad data may
        // have steered fetch the wrong way; only a squash can repair
        // that.
        if (inst->si.isControl() && inst->issued)
            return false;

        slice.insert(seq);

        // Register consumers of this instruction's (stale) result,
        // straight off its consumer list. Unissued consumers recapture
        // from the re-broadcast; the ones that already acted on the
        // stale value (issued, or posted it into the store buffer)
        // must replay.
        for (const ConsumerRef &ref : consumers[rob.slotOf(*inst)]) {
            if (!rob.refLive(ref.slot, ref.seq))
                continue;
            DynInst &c = rob.slot(ref.slot);
            bool consumes =
                (c.src1.hasProducer && c.src1.producer == seq) ||
                (c.src2.hasProducer && c.src2.producer == seq);
            if (consumes && consumerCapturedResult(c))
                work.push_back(c.seq);
        }

        // Loads that forwarded any byte from this (stale) store. The
        // loadBytes index narrows the search to loads reading the
        // store's range; the per-byte source test catches partial
        // forwards the scalar loadSourceSeq used to hide.
        if (inst->isStore() && inst->sbSlot >= 0) {
            const SbEntry &se = sb.slot(inst->sbSlot);
            if (se.addrValid && se.dataValid) {
                checkScratch.clear();
                loadBytes.collectYoungerThan(se.addr, se.size, seq,
                                             checkScratch);
                for (const ByteSeqIndex::Ref &ref : checkScratch) {
                    if (!rob.refLive(ref.slot, ref.seq) ||
                        !rob.isMemIssuedLoad(ref.slot)) {
                        continue;
                    }
                    DynInst &c = rob.slot(ref.slot);
                    if (loadForwardedFrom(c, seq))
                        work.push_back(c.seq);
                }
            }
        }
    }

    // If half the window is tainted, a squash is no more expensive.
    if (slice.size() > rob.size() / 2)
        return false;

    for (InstSeqNum seq : slice) {
        DynInst *inst = findInst(seq);
        panic_if(!inst, "slice member vanished");
        // Un-ready everyone who captured the stale value (issued
        // capturers are themselves in the slice and will recapture
        // from the re-broadcast).
        unbroadcast(*inst);
        resetForReplay(*inst);
    }

    ++pstats.selectiveRecoveries;
    pstats.sliceSize.sample(static_cast<double>(slice.size()));
    CWSIM_TRACE(Recovery, "selective recovery: victim seq %llu "
                "pc 0x%llx, slice of %zu insts replayed",
                static_cast<unsigned long long>(victim.seq),
                static_cast<unsigned long long>(victim.pc),
                slice.size());
    frec.record(cycle, check::EventKind::SelectiveRecovery, victim.seq,
                victim.pc, slice.size());
    return true;
}

void
Processor::checkStaleLoadsAs(const SbEntry &entry)
{
    // Section 3.4's three conditions: the load read memory, obtained a
    // different value than the store writes, and propagated it. The
    // loadBytes index yields exactly the memory-issued younger loads
    // touching the store's range; the byte-wise source test replaces
    // the scalar loadSourceSeq skip, which wrongly cleared loads that
    // forwarded only part of their bytes from a younger store.
    checkScratch.clear();
    loadBytes.collectYoungerThan(entry.addr, entry.size, entry.seq,
                                 checkScratch);
    if (checkScratch.empty())
        return;
    std::sort(checkScratch.begin(), checkScratch.end(),
              [](const ByteSeqIndex::Ref &a, const ByteSeqIndex::Ref &b) {
                  return a.seq < b.seq;
              });
    InstSeqNum visited = 0;
    for (const ByteSeqIndex::Ref &ref : checkScratch) {
        if (ref.seq == visited)
            continue; // one ref per byte; visit each load once
        visited = ref.seq;
        if (!rob.refLive(ref.slot, ref.seq) ||
            !rob.isMemIssuedLoad(ref.slot)) {
            continue;
        }
        DynInst &load = rob.slot(ref.slot);
        if (!loadHasStaleByteFrom(load, entry))
            continue;

        uint64_t correct = assembleLoadBytes(load.effAddr, load.memSize,
                                             load.seq, nullptr);
        if (correct == load.loadRaw)
            continue; // same value: speculation was harmless

        if (anyConsumerIssued(load)) {
            ++pstats.memOrderViolations;
            if (__builtin_expect(dprof != nullptr, 0)) {
                dprof->noteViolation(
                    entry.pc, load.pc, load.seq - entry.seq,
                    entry.addr <= load.effAddr &&
                        entry.addr + entry.size >=
                            load.effAddr + load.memSize);
            }
            CWSIM_TRACE(Recovery, "stale AS load with consumers: "
                        "seq %llu pc 0x%llx vs store seq %llu "
                        "pc 0x%llx",
                        static_cast<unsigned long long>(load.seq),
                        static_cast<unsigned long long>(load.pc),
                        static_cast<unsigned long long>(entry.seq),
                        static_cast<unsigned long long>(entry.pc));
            frec.record(cycle, check::EventKind::Violation, load.seq,
                        load.pc, entry.pc);
            trainPredictors(load, entry);
            Addr restart_pc = load.pc;
            TraceIndex restart_idx = load.traceIdx;
            squashYoungerThan(load.seq - 1, restart_pc, restart_idx,
                              /*repair_bpred=*/true,
                              SquashCause::MemOrderViolation);
            return;
        }

        // No consumer used the stale value yet: silently re-execute.
        replayLoad(load);
    }
}

// ---------------------------------------------------------------------
// False-dependence probes (Table 3).
// ---------------------------------------------------------------------

void
Processor::noteFalseDepStall(DynInst &inst)
{
    if (inst.fdStallStarted)
        return;
    inst.fdStallStarted = true;
    inst.fdStallStart = cycle;

    // Classify using oracle knowledge: a stalled load with no in-flight
    // producing store is delayed by a false dependence.
    bool true_dep = false;
    for (unsigned i = 0; oracle && i < inst.oracleProducerCount; ++i) {
        TraceIndex p = inst.oracleProducers[i];
        if (p >= inst.traceIdx || p < commitCount)
            continue;
        const SbEntry *producer = findSbByTraceIdx(p);
        if (producer && !producer->executed) {
            true_dep = true;
            break;
        }
    }
    inst.fdIsFalse = !true_dep;
    CWSIM_TRACE(LSQ, "load stalled by %s dependence: seq %llu "
                "pc 0x%llx",
                true_dep ? "a true" : "a false",
                static_cast<unsigned long long>(inst.seq),
                static_cast<unsigned long long>(inst.pc));
}

void
Processor::finishFalseDepStall(DynInst &inst)
{
    if (!inst.fdStallStarted || inst.fdEvaluated)
        return;
    inst.fdEvaluated = true;
    inst.fdLatency = cycle - inst.fdStallStart;
    pstats.loadIssueDelay.sample(static_cast<double>(inst.fdLatency));
}

} // namespace cwsim
