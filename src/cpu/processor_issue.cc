/**
 * @file
 * The issue phase: oldest-first selection, the load scheduling gates
 * for every (LsqModel x SpecPolicy) combination, store address/data
 * posting, dependence-violation detection and recovery. This file is
 * the paper's mechanism-under-study.
 */

#include "base/logging.hh"
#include "cpu/processor.hh"
#include "isa/exec_fn.hh"
#include "obs/trace.hh"

namespace cwsim
{

namespace
{

bool
rangesOverlap(Addr a, unsigned as, Addr b, unsigned bs)
{
    return a < b + bs && b < a + as;
}

} // anonymous namespace

void
Processor::doIssue()
{
    unsigned slots = cfg.core.issueWidth;

    for (size_t i = 0; i < rob.size() && slots > 0; ++i) {
        DynInst &inst = rob.at(i);
        if (inst.done)
            continue;

        if (inst.isStore()) {
            SbEntry &entry = sb.slot(inst.sbSlot);
            if (lsqModel == LsqModel::AS) {
                // Two-phase store: post the address as soon as the base
                // register is available, the data whenever it arrives.
                if (!entry.addrValid && inst.src1.ready &&
                    lsqInPortsLeft > 0) {
                    postStoreAddr(inst);
                    --slots;
                    --lsqInPortsLeft;
                }
                if (!inst.done && !entry.dataValid && inst.src2.ready)
                    postStoreData(inst);
            } else {
                // Table 2 base model: stores wait for both data and
                // address operands before issuing.
                if (!inst.issued && inst.srcsReady() &&
                    cycle >= inst.storeExecNotBefore &&
                    lsqInPortsLeft > 0) {
                    executeStoreNas(inst);
                    --slots;
                    --lsqInPortsLeft;
                }
            }
            continue;
        }

        if (inst.isLoad()) {
            if (inst.memIssued || !inst.src1.ready)
                continue;
            // Recompute on every attempt: a port-blocked load can sit
            // with a cached address while selective recovery replaces
            // its base register value underneath it.
            inst.effAddr =
                exec::effectiveAddr(inst.si, inst.src1.value);
            if (!loadMayIssue(inst)) {
                noteFalseDepStall(inst);
                continue;
            }
            if (memPortsLeft == 0 || lsqInPortsLeft == 0)
                continue;
            size_t rob_size_before = rob.size();
            executeLoad(inst);
            if (inst.memIssued) {
                --slots;
                --memPortsLeft;
                --lsqInPortsLeft;
            }
            (void)rob_size_before;
            continue;
        }

        // Plain computational / control instructions.
        if (inst.issued || !inst.srcsReady())
            continue;
        unsigned fu = static_cast<unsigned>(inst.si.fuClass());
        if (fuUsed[fu] >= cfg.core.fuCopies)
            continue;
        ++fuUsed[fu];
        --slots;

        inst.issued = true;
        inst.issuedAt = cycle;
        ++inst.epoch;
        if (inst.si.writesReg()) {
            inst.result = exec::compute(inst.si, inst.src1.value,
                                        inst.src2.value, inst.pc);
        }
        InstSeqNum seq = inst.seq;
        uint32_t epoch = inst.epoch;
        eq.scheduleIn(inst.si.latency(), [this, seq, epoch]() {
            DynInst *p = findInst(seq);
            if (p && p->epoch == epoch && p->issued && !p->done)
                completeInst(*p);
        });
    }
}

// ---------------------------------------------------------------------
// Load scheduling gates (the heart of the study).
// ---------------------------------------------------------------------

bool
Processor::loadMayIssue(DynInst &inst)
{
    if (lsqModel == LsqModel::AS) {
        // AS configurations pair with NO or NAV only.
        return gateAddressScheduler(inst,
                                    policy == SpecPolicy::Naive);
    }

    switch (policy) {
      case SpecPolicy::No:
        return gateNasAllOlderStoresIssued(inst);
      case SpecPolicy::Naive:
        return true;
      case SpecPolicy::Selective:
        return inst.waitAllStores ? gateNasAllOlderStoresIssued(inst)
                                  : true;
      case SpecPolicy::StoreBarrier:
        return gateStoreBarrier(inst);
      case SpecPolicy::SpecSync:
        return gateSync(inst);
      case SpecPolicy::Oracle:
        return gateOracle(inst);
    }
    panic("bad policy");
}

bool
Processor::gateNasAllOlderStoresIssued(const DynInst &inst) const
{
    return unissuedStores.empty() ||
           *unissuedStores.begin() > inst.seq;
}

bool
Processor::gateStoreBarrier(const DynInst &inst)
{
    bool blocked = !unissuedBarriers.empty() &&
                   *unissuedBarriers.begin() < inst.seq;
    if (blocked && !inst.fdStallStarted)
        ++pstats.barrierHolds;
    return !blocked;
}

bool
Processor::gateSync(DynInst &inst)
{
    if (!inst.hasSyncWait)
        return true;
    SbEntry *store = findSbEntry(inst.syncWaitStore);
    if (!store || store->seq >= inst.seq) {
        // The store was squashed or has fully retired; nothing to wait
        // for any more.
        inst.hasSyncWait = false;
        return true;
    }
    // "A waiting load is free to issue one cycle after the store it
    // speculatively depends upon issues."
    return store->executed && cycle >= store->executedAt + 1;
}

bool
Processor::gateOracle(DynInst &inst)
{
    TraceIndex producer = inst.oracleProducer;
    if (producer == invalid_trace_index)
        return true;
    if (producer >= inst.traceIdx) {
        // Wrong-path garbage mapping; never deadlock on it.
        return true;
    }
    if (producer < commitCount)
        return true; // the producing store already committed
    const SbEntry *entry = findSbByTraceIdx(producer);
    if (!entry)
        return true;
    return entry->executed;
}

bool
Processor::gateAddressScheduler(DynInst &inst, bool speculate)
{
    bool ambiguous = false;
    for (size_t i = 0; i < sb.size(); ++i) {
        const SbEntry &entry = sb.at(i);
        if (entry.seq >= inst.seq)
            break;
        if (entry.released)
            continue;
        if (!entry.addrValid || cycle < entry.addrVisibleAt) {
            ambiguous = true;
            continue;
        }
        if (entry.overlaps(inst.effAddr, inst.memSize) &&
            !entry.dataValid) {
            // Known true dependence: a load always waits for the data.
            return false;
        }
    }
    return speculate || !ambiguous;
}

// ---------------------------------------------------------------------
// Load execution.
// ---------------------------------------------------------------------

uint64_t
Processor::assembleLoadBytes(Addr addr, unsigned size,
                             InstSeqNum load_seq,
                             InstSeqNum *source_seq) const
{
    uint64_t value = 0;
    InstSeqNum newest = 0;
    for (unsigned i = 0; i < size; ++i) {
        Addr byte_addr = addr + i;
        bool forwarded = false;
        for (size_t j = sb.size(); j-- > 0;) {
            const SbEntry &entry = sb.at(j);
            if (entry.seq >= load_seq)
                continue;
            if (!entry.dataValid || !entry.coversByte(byte_addr))
                continue;
            value |= static_cast<uint64_t>(entry.byteAt(byte_addr))
                     << (8 * i);
            if (entry.seq > newest)
                newest = entry.seq;
            forwarded = true;
            break;
        }
        if (!forwarded) {
            value |= static_cast<uint64_t>(funcMem.read8(byte_addr))
                     << (8 * i);
        }
    }
    if (source_seq)
        *source_seq = newest;
    return value;
}

void
Processor::executeLoad(DynInst &inst)
{
    // Sample memory at access time: stores executing later than this
    // point are exactly the ones that can violate the load.
    InstSeqNum source = 0;
    uint64_t raw = assembleLoadBytes(inst.effAddr, inst.memSize,
                                     inst.seq, &source);

    // Did the load execute with ambiguous older stores outstanding?
    if (lsqModel == LsqModel::NAS) {
        inst.speculativeLoad = !unissuedStores.empty() &&
                               *unissuedStores.begin() < inst.seq;
    } else {
        inst.speculativeLoad = false;
        for (size_t i = 0; i < sb.size(); ++i) {
            const SbEntry &entry = sb.at(i);
            if (entry.seq >= inst.seq)
                break;
            if (!entry.released &&
                (!entry.addrValid || cycle < entry.addrVisibleAt)) {
                inst.speculativeLoad = true;
                break;
            }
        }
    }

    // Full forward if every byte came from the store buffer.
    bool all_forwarded = true;
    for (unsigned i = 0; i < inst.memSize && all_forwarded; ++i) {
        Addr byte_addr = inst.effAddr + i;
        bool covered = false;
        for (size_t j = sb.size(); j-- > 0 && !covered;) {
            const SbEntry &entry = sb.at(j);
            covered = entry.seq < inst.seq && entry.dataValid &&
                      entry.coversByte(byte_addr);
        }
        all_forwarded = covered;
    }

    Cycles as_extra =
        lsqModel == LsqModel::AS ? cfg.mdp.asLatency : 0;
    InstSeqNum seq = inst.seq;
    uint32_t epoch = inst.epoch + 1;

    auto finish = [this, seq, epoch]() {
        DynInst *p = findInst(seq);
        if (p && p->epoch == epoch && p->memIssued && !p->done) {
            p->memDone = true;
            completeInst(*p);
        }
    };

    if (all_forwarded) {
        // Store-to-load forward: same latency as an L1 hit, no cache
        // bank consumed.
        ++pstats.loadsForwarded;
        eq.scheduleIn(cfg.mem.dcache.hitLatency + as_extra, finish);
    } else {
        bool accepted;
        if (as_extra == 0) {
            accepted = memSys.dataAccess(inst.effAddr, inst.memSize,
                                         false, finish);
        } else {
            accepted = memSys.dataAccess(
                inst.effAddr, inst.memSize, false,
                [this, finish, as_extra]() {
                    eq.scheduleIn(as_extra, finish);
                });
        }
        if (!accepted)
            return; // bank/MSHR conflict; retry next cycle
    }

    ++inst.epoch;
    inst.issued = true;
    inst.memIssued = true;
    inst.issuedAt = cycle;
    inst.loadRaw = raw;
    inst.loadSourceSeq = source;
    inst.result = exec::loadExtend(inst.si, raw);
    CWSIM_TRACE(Issue, "load seq %llu pc 0x%llx addr 0x%llx%s%s%s",
                static_cast<unsigned long long>(inst.seq),
                static_cast<unsigned long long>(inst.pc),
                static_cast<unsigned long long>(inst.effAddr),
                all_forwarded ? " [forwarded]" : "",
                inst.speculativeLoad ? " [speculative]" : "",
                source ? strfmt(" [src-store seq %llu]",
                                static_cast<unsigned long long>(source))
                             .c_str()
                       : "");
    finishFalseDepStall(inst);
}

void
Processor::replayLoad(DynInst &inst)
{
    unbroadcast(inst);
    ++inst.epoch; // invalidate any in-flight completion
    inst.issued = false;
    inst.memIssued = false;
    inst.memDone = false;
    inst.done = false;
    ++inst.timesReplayed;
    ++pstats.loadReplays;
    CWSIM_TRACE(Recovery, "silent replay: load seq %llu pc 0x%llx "
                "(replay #%u)",
                static_cast<unsigned long long>(inst.seq),
                static_cast<unsigned long long>(inst.pc),
                unsigned{inst.timesReplayed});
    frec.record(cycle, check::EventKind::Replay, inst.seq, inst.pc);
}

// ---------------------------------------------------------------------
// Store execution / posting.
// ---------------------------------------------------------------------

void
Processor::executeStoreNas(DynInst &inst)
{
    SbEntry &entry = sb.slot(inst.sbSlot);
    entry.addr = exec::effectiveAddr(inst.si, inst.src1.value);
    entry.addrValid = true;
    entry.addrVisibleAt = cycle;
    entry.data = exec::storeValue(inst.si, inst.src2.value);
    entry.dataValid = true;
    inst.effAddr = entry.addr;
    CWSIM_TRACE(Issue, "store seq %llu pc 0x%llx addr 0x%llx",
                static_cast<unsigned long long>(inst.seq),
                static_cast<unsigned long long>(inst.pc),
                static_cast<unsigned long long>(entry.addr));
    storeBecameExecuted(inst, entry);
}

void
Processor::postStoreAddr(DynInst &inst)
{
    SbEntry &entry = sb.slot(inst.sbSlot);
    entry.addr = exec::effectiveAddr(inst.si, inst.src1.value);
    entry.addrValid = true;
    entry.addrVisibleAt = cycle + cfg.mdp.asLatency;
    if (Cycles delay = faults.injectStoreAddrDelay()) {
        entry.addrVisibleAt += delay;
        ++pstats.injectedAddrDelays;
        frec.record(cycle, check::EventKind::InjectedAddrDelay,
                    inst.seq, inst.pc, delay);
    }
    inst.effAddr = entry.addr;
    CWSIM_TRACE(LSQ, "store addr posted: seq %llu pc 0x%llx "
                "addr 0x%llx visible at cycle %llu",
                static_cast<unsigned long long>(inst.seq),
                static_cast<unsigned long long>(inst.pc),
                static_cast<unsigned long long>(entry.addr),
                static_cast<unsigned long long>(entry.addrVisibleAt));
    if (entry.dataValid)
        storeBecameExecuted(inst, entry);
}

void
Processor::postStoreData(DynInst &inst)
{
    SbEntry &entry = sb.slot(inst.sbSlot);
    entry.data = exec::storeValue(inst.si, inst.src2.value);
    entry.dataValid = true;
    CWSIM_TRACE(LSQ, "store data posted: seq %llu pc 0x%llx",
                static_cast<unsigned long long>(inst.seq),
                static_cast<unsigned long long>(inst.pc));
    if (entry.addrValid)
        storeBecameExecuted(inst, entry);
}

void
Processor::storeBecameExecuted(DynInst &inst, SbEntry &entry)
{
    entry.executed = true;
    entry.executedAt = cycle;
    unissuedStores.erase(inst.seq);
    unissuedBarriers.erase(inst.seq);
    inst.issued = true;
    inst.done = true;
    inst.issuedAt = cycle;

    if (policy != SpecPolicy::Oracle) {
        // The oracle never lets a correct-path load violate; wrong-path
        // loads are cleaned up by control squashes.
        if (lsqModel == LsqModel::AS)
            checkStaleLoadsAs(entry);
        else
            checkViolationsNas(entry);
    }

    // Fault injection rides AFTER real violation detection so a genuine
    // dependence can never be masked by an induced one.
    if (faults.injectSpuriousViolation())
        injectSpuriousViolation(entry);
}

// ---------------------------------------------------------------------
// Violation detection and recovery.
// ---------------------------------------------------------------------

void
Processor::trainPredictors(const DynInst &load, const SbEntry &store)
{
    CWSIM_TRACE(MDP, "train: load pc 0x%llx / store pc 0x%llx",
                static_cast<unsigned long long>(load.pc),
                static_cast<unsigned long long>(store.pc));
    switch (policy) {
      case SpecPolicy::SpecSync:
        mdpTable.pair(load.pc, store.pc);
        break;
      case SpecPolicy::Selective:
        mdpTable.recordMissSpeculation(load.pc);
        break;
      case SpecPolicy::StoreBarrier:
        mdpTable.recordMissSpeculation(store.pc);
        break;
      default:
        break;
    }
}

void
Processor::checkViolationsNas(const SbEntry &entry)
{
    // Every younger load that read a value this store should have
    // supplied, oldest first. One store can violate several
    // independent loads; a squash from the oldest victim wipes the
    // rest implicitly, but selective recovery must repair each one or
    // the younger victims keep their stale values forever (this store
    // never re-executes to re-check them).
    for (size_t i = 0; i < rob.size(); ++i) {
        DynInst &load = rob.at(i);
        if (load.seq <= entry.seq || !load.isLoad() || !load.memIssued)
            continue;
        if (!rangesOverlap(load.effAddr, load.memSize, entry.addr,
                           entry.size)) {
            continue;
        }
        if (load.loadSourceSeq >= entry.seq)
            continue; // forwarded from a younger store: value is fine

        ++pstats.memOrderViolations;
        CWSIM_TRACE(Recovery, "mem-order violation: load seq %llu "
                    "pc 0x%llx vs store seq %llu pc 0x%llx "
                    "addr 0x%llx",
                    static_cast<unsigned long long>(load.seq),
                    static_cast<unsigned long long>(load.pc),
                    static_cast<unsigned long long>(entry.seq),
                    static_cast<unsigned long long>(entry.pc),
                    static_cast<unsigned long long>(entry.addr));
        frec.record(cycle, check::EventKind::Violation, load.seq,
                    load.pc, entry.pc);
        trainPredictors(load, entry);

        if (cfg.mdp.recovery == RecoveryModel::Selective) {
            if (replayDependenceSlice(load)) {
                // Recovered without discarding unrelated work. Loads
                // in the replayed slice are memIssued=false now, so
                // the scan skips them and only genuinely independent
                // further victims are repaired.
                continue;
            }
            ++pstats.selectiveFallbacks;
            CWSIM_TRACE(Recovery, "selective recovery fell back to "
                        "squash: load seq %llu pc 0x%llx",
                        static_cast<unsigned long long>(load.seq),
                        static_cast<unsigned long long>(load.pc));
            frec.record(cycle, check::EventKind::SelectiveFallback,
                        load.seq, load.pc);
        }

        // Squash invalidation: re-fetch from the load itself. This
        // also disposes of any younger victims.
        Addr restart_pc = load.pc;
        TraceIndex restart_idx = load.traceIdx;
        squashYoungerThan(load.seq - 1, restart_pc, restart_idx,
                          /*repair_bpred=*/true,
                          SquashCause::MemOrderViolation);
        return;
    }
}

// ---------------------------------------------------------------------
// Selective invalidation (the Section 2 alternative to squashing).
// ---------------------------------------------------------------------

void
Processor::resetForReplay(DynInst &inst)
{
    ++inst.epoch; // kill in-flight completion events
    inst.issued = false;
    inst.done = false;
    inst.memIssued = false;
    inst.memDone = false;
    inst.effAddr = invalid_addr;
    ++inst.timesReplayed;

    if (inst.isStore() && inst.sbSlot >= 0) {
        SbEntry &entry = sb.slot(inst.sbSlot);
        panic_if(entry.seq != inst.seq, "replaying foreign SB entry");
        entry.addr = invalid_addr;
        entry.addrValid = false;
        entry.dataValid = false;
        entry.executed = false;
        unissuedStores.insert(inst.seq);
        if (entry.barrier)
            unissuedBarriers.insert(inst.seq);
    }
    if (inst.isLoad()) {
        inst.loadRaw = 0;
        inst.loadSourceSeq = 0;
        inst.speculativeLoad = false;
    }
}

bool
Processor::replayDependenceSlice(DynInst &victim)
{
    // Replay-storm guard: a load cycling through many re-executions is
    // cheaper to squash.
    if (victim.epoch > 60)
        return false;

    std::vector<InstSeqNum> work{victim.seq};
    std::set<InstSeqNum> slice;

    while (!work.empty()) {
        InstSeqNum seq = work.back();
        work.pop_back();
        if (slice.count(seq))
            continue;
        DynInst *inst = findInst(seq);
        if (!inst)
            continue;

        // A resolved control instruction that consumed bad data may
        // have steered fetch the wrong way; only a squash can repair
        // that.
        if (inst->si.isControl() && inst->issued)
            return false;

        slice.insert(seq);

        // Register consumers of this instruction's (stale) result.
        for (size_t i = 0; i < rob.size(); ++i) {
            DynInst &c = rob.at(i);
            if (c.seq <= seq)
                continue;
            bool consumes =
                (c.src1.hasProducer && c.src1.producer == seq) ||
                (c.src2.hasProducer && c.src2.producer == seq);
            // Unissued consumers recapture from the re-broadcast; the
            // ones that already acted on the stale value (issued, or
            // posted it into the store buffer) must replay.
            if (consumes && consumerCapturedResult(c))
                work.push_back(c.seq);
        }

        // Loads that forwarded from this (stale) store.
        if (inst->isStore()) {
            for (size_t i = 0; i < rob.size(); ++i) {
                DynInst &c = rob.at(i);
                if (c.seq > seq && c.isLoad() && c.memIssued &&
                    c.loadSourceSeq == seq) {
                    work.push_back(c.seq);
                }
            }
        }
    }

    // If half the window is tainted, a squash is no more expensive.
    if (slice.size() > rob.size() / 2)
        return false;

    for (InstSeqNum seq : slice) {
        DynInst *inst = findInst(seq);
        panic_if(!inst, "slice member vanished");
        // Un-ready everyone who captured the stale value (issued
        // capturers are themselves in the slice and will recapture
        // from the re-broadcast).
        unbroadcast(*inst);
        resetForReplay(*inst);
    }

    ++pstats.selectiveRecoveries;
    pstats.sliceSize.sample(static_cast<double>(slice.size()));
    CWSIM_TRACE(Recovery, "selective recovery: victim seq %llu "
                "pc 0x%llx, slice of %zu insts replayed",
                static_cast<unsigned long long>(victim.seq),
                static_cast<unsigned long long>(victim.pc),
                slice.size());
    frec.record(cycle, check::EventKind::SelectiveRecovery, victim.seq,
                victim.pc, slice.size());
    return true;
}

void
Processor::checkStaleLoadsAs(const SbEntry &entry)
{
    // Section 3.4's three conditions: the load read memory, obtained a
    // different value than the store writes, and propagated it.
    for (size_t i = 0; i < rob.size(); ++i) {
        DynInst &load = rob.at(i);
        if (load.seq <= entry.seq || !load.isLoad() || !load.memIssued)
            continue;
        if (!rangesOverlap(load.effAddr, load.memSize, entry.addr,
                           entry.size)) {
            continue;
        }
        if (load.loadSourceSeq >= entry.seq)
            continue;

        uint64_t correct = assembleLoadBytes(load.effAddr, load.memSize,
                                             load.seq, nullptr);
        if (correct == load.loadRaw)
            continue; // same value: speculation was harmless

        if (anyConsumerIssued(load)) {
            ++pstats.memOrderViolations;
            CWSIM_TRACE(Recovery, "stale AS load with consumers: "
                        "seq %llu pc 0x%llx vs store seq %llu "
                        "pc 0x%llx",
                        static_cast<unsigned long long>(load.seq),
                        static_cast<unsigned long long>(load.pc),
                        static_cast<unsigned long long>(entry.seq),
                        static_cast<unsigned long long>(entry.pc));
            frec.record(cycle, check::EventKind::Violation, load.seq,
                        load.pc, entry.pc);
            trainPredictors(load, entry);
            Addr restart_pc = load.pc;
            TraceIndex restart_idx = load.traceIdx;
            squashYoungerThan(load.seq - 1, restart_pc, restart_idx,
                              /*repair_bpred=*/true,
                              SquashCause::MemOrderViolation);
            return;
        }

        // No consumer used the stale value yet: silently re-execute.
        replayLoad(load);
    }
}

// ---------------------------------------------------------------------
// False-dependence probes (Table 3).
// ---------------------------------------------------------------------

void
Processor::noteFalseDepStall(DynInst &inst)
{
    if (inst.fdStallStarted)
        return;
    inst.fdStallStarted = true;
    inst.fdStallStart = cycle;

    // Classify using oracle knowledge: a stalled load with no in-flight
    // producing store is delayed by a false dependence.
    bool true_dep = false;
    if (oracle && inst.oracleProducer != invalid_trace_index &&
        inst.oracleProducer < inst.traceIdx &&
        inst.oracleProducer >= commitCount) {
        const SbEntry *producer = findSbByTraceIdx(inst.oracleProducer);
        if (producer && !producer->executed)
            true_dep = true;
    }
    inst.fdIsFalse = !true_dep;
    CWSIM_TRACE(LSQ, "load stalled by %s dependence: seq %llu "
                "pc 0x%llx",
                true_dep ? "a true" : "a false",
                static_cast<unsigned long long>(inst.seq),
                static_cast<unsigned long long>(inst.pc));
}

void
Processor::finishFalseDepStall(DynInst &inst)
{
    if (!inst.fdStallStarted || inst.fdEvaluated)
        return;
    inst.fdEvaluated = true;
    inst.fdLatency = cycle - inst.fdStallStart;
    pstats.loadIssueDelay.sample(static_cast<double>(inst.fdLatency));
}

} // namespace cwsim
