#include "cpu/store_buffer.hh"

#include "base/str.hh"

namespace cwsim
{

bool
StoreBuffer::slotLive(size_t slot_idx) const
{
    return q.slotLive(slot_idx);
}

void
StoreBuffer::eraseRef(ArenaVec<SlotRef> &v, size_t slot_idx)
{
    for (size_t i = v.size(); i-- > 0;) {
        if (v[i].slot == slot_idx)
            v.erase(v.begin() + i);
    }
}

size_t
StoreBuffer::allocate(SbEntry entry)
{
    panic_if(entry.addrValid || entry.dataValid || entry.executed,
             "store allocated with execution state already set");
    InstSeqNum seq = entry.seq;
    TraceIndex trace_idx = entry.traceIdx;
    Synonym syn = entry.producerSynonym;
    size_t slot_idx = q.pushBack(std::move(entry));
    bySeq.emplace(seq, slot_idx);
    byTrace.emplace(trace_idx, slot_idx);
    addrUnposted.insert(seq);
    if (syn != invalid_synonym)
        bySynonym[syn].push_back(SlotRef{slot_idx, seq});
    return slot_idx;
}

void
StoreBuffer::unindexEntry(const SbEntry &entry, size_t slot_idx)
{
    bySeq.erase(entry.seq);
    byTrace.erase(entry.traceIdx);
    if (entry.addrValid && entry.dataValid)
        dataBytes.remove(entry.addr, entry.size, entry.seq);
    addrUnposted.erase(entry.seq);
    eraseRef(addrInFlight, slot_idx);
    eraseRef(awaitingData, slot_idx);
    if (entry.producerSynonym != invalid_synonym) {
        auto it = bySynonym.find(entry.producerSynonym);
        if (it != bySynonym.end()) {
            eraseRef(it->second, slot_idx);
            // Keep the list even when empty: the synonym working set
            // is small and the same producer PC allocates again soon.
        }
    }
}

void
StoreBuffer::popFront()
{
    const SbEntry &entry = q.front();
    unindexEntry(entry, q.slotOf(entry));
    q.popFront();
}

void
StoreBuffer::squashYoungerThan(InstSeqNum keep)
{
    // Committed entries are never squashed: stop at the first one from
    // the tail, exactly like the historical truncation loop.
    while (!q.empty() && !q.back().committed && q.back().seq > keep) {
        const SbEntry &entry = q.back();
        unindexEntry(entry, q.slotOf(entry));
        q.truncate(1);
    }
}

void
StoreBuffer::postAddr(size_t slot_idx, Addr addr, Tick visible_at,
                      Tick now)
{
    SbEntry &entry = q.slot(slot_idx);
    panic_if(entry.addrValid, "postAddr on entry with a posted address");
    entry.addr = addr;
    entry.addrValid = true;
    entry.addrVisibleAt = visible_at;
    addrUnposted.erase(entry.seq);
    if (visible_at > now)
        addrInFlight.push_back(SlotRef{slot_idx, entry.seq});
    if (entry.dataValid)
        dataBytes.add(entry.addr, entry.size, entry.seq, slot_idx);
    else
        awaitingData.push_back(SlotRef{slot_idx, entry.seq});
}

void
StoreBuffer::postData(size_t slot_idx, uint64_t data)
{
    SbEntry &entry = q.slot(slot_idx);
    panic_if(entry.dataValid, "postData on entry with posted data");
    entry.data = data;
    entry.dataValid = true;
    if (entry.addrValid) {
        dataBytes.add(entry.addr, entry.size, entry.seq, slot_idx);
        // Usually the last-posted entry; the back-scan is O(1) for
        // single-phase (NAS) stores, which post address then data in
        // the same cycle.
        eraseRef(awaitingData, slot_idx);
    }
}

void
StoreBuffer::setExecuted(size_t slot_idx, Tick now)
{
    SbEntry &entry = q.slot(slot_idx);
    panic_if(!entry.addrValid || !entry.dataValid,
             "setExecuted on an incomplete store");
    entry.executed = true;
    entry.executedAt = now;
}

void
StoreBuffer::setProducerSynonym(size_t slot_idx, Synonym syn)
{
    SbEntry &entry = q.slot(slot_idx);
    panic_if(entry.producerSynonym != invalid_synonym,
             "store already tagged with a synonym");
    entry.producerSynonym = syn;
    if (syn != invalid_synonym)
        bySynonym[syn].push_back(SlotRef{slot_idx, entry.seq});
}

void
StoreBuffer::invalidateForReplay(size_t slot_idx)
{
    SbEntry &entry = q.slot(slot_idx);
    if (entry.addrValid && entry.dataValid)
        dataBytes.remove(entry.addr, entry.size, entry.seq);
    eraseRef(addrInFlight, slot_idx);
    eraseRef(awaitingData, slot_idx);
    entry.addr = invalid_addr;
    entry.addrValid = false;
    entry.dataValid = false;
    entry.executed = false;
    addrUnposted.insert(entry.seq);
}

SbEntry *
StoreBuffer::findSeq(InstSeqNum seq)
{
    auto it = bySeq.find(seq);
    return it == bySeq.end() ? nullptr : &q.slot(it->second);
}

const SbEntry *
StoreBuffer::findSeq(InstSeqNum seq) const
{
    auto it = bySeq.find(seq);
    return it == bySeq.end() ? nullptr : &q.slot(it->second);
}

size_t
StoreBuffer::slotOfSeq(InstSeqNum seq) const
{
    auto it = bySeq.find(seq);
    return it == bySeq.end() ? npos : it->second;
}

const SbEntry *
StoreBuffer::findTraceIdx(TraceIndex idx) const
{
    auto it = byTrace.find(idx);
    return it == byTrace.end() ? nullptr : &q.slot(it->second);
}

bool
StoreBuffer::ambiguousOlderThan(InstSeqNum seq, Tick now)
{
    // Unposted addresses: the set is age-ordered, so one ordered probe
    // answers "any older than seq".
    if (!addrUnposted.empty() && *addrUnposted.begin() < seq)
        return true;

    // Posted-but-not-yet-visible addresses. Compact dead or
    // already-visible refs as we go: visibility is monotone (a posted
    // address never un-posts without passing through
    // invalidateForReplay, which drops the ref), so dropped refs can
    // never be needed again.
    bool ambiguous = false;
    size_t keep = 0;
    for (size_t i = 0; i < addrInFlight.size(); ++i) {
        const SlotRef ref = addrInFlight[i];
        if (!refValid(ref))
            continue;
        const SbEntry &entry = q.slot(ref.slot);
        if (!entry.addrValid || now >= entry.addrVisibleAt)
            continue;
        addrInFlight[keep++] = ref;
        if (entry.seq < seq && !entry.released)
            ambiguous = true;
    }
    addrInFlight.resize(keep);
    return ambiguous;
}

bool
StoreBuffer::blockingOlderStore(Addr addr, unsigned size,
                                InstSeqNum seq, Tick now)
{
    bool blocking = false;
    size_t keep = 0;
    for (size_t i = 0; i < awaitingData.size(); ++i) {
        const SlotRef ref = awaitingData[i];
        if (!refValid(ref))
            continue;
        const SbEntry &entry = q.slot(ref.slot);
        if (!entry.addrValid || entry.dataValid)
            continue;
        awaitingData[keep++] = ref;
        if (entry.seq < seq && now >= entry.addrVisibleAt &&
            !entry.released && entry.overlaps(addr, size)) {
            blocking = true;
        }
    }
    awaitingData.resize(keep);
    return blocking;
}

const SbEntry *
StoreBuffer::youngestSynonymProducerBefore(Synonym syn,
                                           InstSeqNum before) const
{
    auto it = bySynonym.find(syn);
    if (it == bySynonym.end())
        return nullptr;
    // Allocation order == age order; walk youngest-first.
    const ArenaVec<SlotRef> &v = it->second;
    for (size_t i = v.size(); i-- > 0;) {
        if (!refValid(v[i]))
            continue;
        const SbEntry &entry = q.slot(v[i].slot);
        if (entry.seq < before && !entry.committed)
            return &entry;
    }
    return nullptr;
}

std::string
StoreBuffer::selfCheck(Tick now) const
{
    size_t n_data_bytes = 0;
    size_t n_unposted = 0;
    for (size_t i = 0; i < q.size(); ++i) {
        const SbEntry &e = q.at(i);
        size_t slot_idx = q.slotOf(e);

        if (i > 0 && q.at(i - 1).seq >= e.seq)
            return strfmt("SB seq order broken at pos %zu", i);

        auto seq_it = bySeq.find(e.seq);
        if (seq_it == bySeq.end() || seq_it->second != slot_idx) {
            return strfmt("bySeq missing/wrong for seq %llu",
                          static_cast<unsigned long long>(e.seq));
        }
        auto trc_it = byTrace.find(e.traceIdx);
        if (trc_it == byTrace.end() || trc_it->second != slot_idx) {
            return strfmt("byTrace missing/wrong for trace %llu",
                          static_cast<unsigned long long>(e.traceIdx));
        }

        if (!e.addrValid) {
            ++n_unposted;
            if (!addrUnposted.count(e.seq)) {
                return strfmt("addrUnposted missing seq %llu",
                              static_cast<unsigned long long>(e.seq));
            }
        } else if (now < e.addrVisibleAt) {
            bool found = false;
            for (const SlotRef &ref : addrInFlight)
                found |= ref.slot == slot_idx && ref.seq == e.seq;
            if (!found) {
                return strfmt("addrInFlight missing seq %llu",
                              static_cast<unsigned long long>(e.seq));
            }
        }

        if (e.addrValid && !e.dataValid) {
            bool found = false;
            for (const SlotRef &ref : awaitingData)
                found |= ref.slot == slot_idx && ref.seq == e.seq;
            if (!found) {
                return strfmt("awaitingData missing seq %llu",
                              static_cast<unsigned long long>(e.seq));
            }
        }

        if (e.addrValid && e.dataValid) {
            n_data_bytes += e.size;
            for (unsigned b = 0; b < e.size; ++b) {
                // The youngest indexed writer of this byte at or below
                // e.seq must be e itself.
                ByteSeqIndex::Ref ref;
                if (!dataBytes.newestBefore(e.addr + b, e.seq + 1,
                                            ref) ||
                    ref.seq != e.seq || ref.slot != slot_idx) {
                    return strfmt("dataBytes missing byte 0x%llx of "
                                  "seq %llu",
                                  static_cast<unsigned long long>(
                                      e.addr + b),
                                  static_cast<unsigned long long>(
                                      e.seq));
                }
            }
        }

        if (e.producerSynonym != invalid_synonym) {
            auto syn_it = bySynonym.find(e.producerSynonym);
            bool found = false;
            if (syn_it != bySynonym.end()) {
                for (const SlotRef &ref : syn_it->second)
                    found |= ref.slot == slot_idx && ref.seq == e.seq;
            }
            if (!found) {
                return strfmt("bySynonym missing seq %llu",
                              static_cast<unsigned long long>(e.seq));
            }
        }
    }

    if (bySeq.size() != q.size())
        return strfmt("bySeq has %zu entries, SB %zu", bySeq.size(),
                      q.size());
    if (byTrace.size() != q.size())
        return strfmt("byTrace has %zu entries, SB %zu", byTrace.size(),
                      q.size());
    if (addrUnposted.size() != n_unposted)
        return strfmt("addrUnposted has %zu entries, expected %zu",
                      addrUnposted.size(), n_unposted);
    if (dataBytes.size() != n_data_bytes)
        return strfmt("dataBytes indexes %zu bytes, expected %zu",
                      dataBytes.size(), n_data_bytes);
    if (std::string err = dataBytes.selfCheck(); !err.empty())
        return "dataBytes: " + err;

    // Lazily-compacted lists may hold stale refs, but every live ref
    // must describe its entry truthfully.
    for (const SlotRef &ref : addrInFlight) {
        if (!refValid(ref))
            continue;
        if (!q.slot(ref.slot).addrValid)
            return "addrInFlight ref to unposted address";
    }
    for (const SlotRef &ref : awaitingData) {
        if (!refValid(ref))
            continue;
        const SbEntry &e = q.slot(ref.slot);
        if (!e.addrValid || e.dataValid)
            return "awaitingData ref to wrong-state entry";
    }
    for (const auto &[syn, v] : bySynonym) {
        for (const SlotRef &ref : v) {
            if (!refValid(ref))
                return "bySynonym holds a dead ref";
            if (q.slot(ref.slot).producerSynonym != syn)
                return "bySynonym ref with mismatched synonym";
        }
    }
    return "";
}

} // namespace cwsim
