/**
 * @file
 * The store buffer (Table 2: 128 entries): holds every in-flight
 * store's address/data from execution until it has been released to the
 * D-cache after commit. It provides memory renaming — speculative store
 * data lives here, loads forward from it byte-wise ("combines store
 * requests for load forwarding"), and architectural memory is only
 * updated at commit.
 *
 * Under the AS model a store posts its address (and later its data)
 * into its entry as the operands arrive; `addrVisibleAt` models the
 * address-based scheduler's latency before loads can see the address.
 */

#ifndef CWSIM_CPU_STORE_BUFFER_HH
#define CWSIM_CPU_STORE_BUFFER_HH

#include <cstdint>

#include "base/circular_queue.hh"
#include "base/types.hh"
#include "mdp/mdp_table.hh"

namespace cwsim
{

struct SbEntry
{
    InstSeqNum seq = 0;
    TraceIndex traceIdx = 0;
    Addr pc = 0;

    Addr addr = invalid_addr;
    unsigned size = 0;
    uint64_t data = 0;

    bool addrValid = false;
    bool dataValid = false;
    /** AS: tick at which the posted address becomes visible to loads. */
    Tick addrVisibleAt = 0;

    /** Address and data both available (the store has "issued"). */
    bool executed = false;
    Tick executedAt = 0;

    bool committed = false;
    bool releasing = false;
    bool released = false;

    /** STORE policy: this store is predicted to be a barrier. */
    bool barrier = false;
    /** SYNC: synonym this store produces (invalid if none). */
    Synonym producerSynonym = invalid_synonym;

    bool
    overlaps(Addr a, unsigned s) const
    {
        return addrValid && addr < a + s && a < addr + size;
    }

    /** Does this store write the byte at @p byte_addr? */
    bool
    coversByte(Addr byte_addr) const
    {
        return addrValid && byte_addr >= addr && byte_addr < addr + size;
    }

    uint8_t
    byteAt(Addr byte_addr) const
    {
        return static_cast<uint8_t>(data >> (8 * (byte_addr - addr)));
    }
};

using StoreBuffer = CircularQueue<SbEntry>;

} // namespace cwsim

#endif // CWSIM_CPU_STORE_BUFFER_HH
