/**
 * @file
 * The store buffer (Table 2: 128 entries): holds every in-flight
 * store's address/data from execution until it has been released to the
 * D-cache after commit. It provides memory renaming — speculative store
 * data lives here, loads forward from it byte-wise ("combines store
 * requests for load forwarding"), and architectural memory is only
 * updated at commit.
 *
 * Under the AS model a store posts its address (and later its data)
 * into its entry as the operands arrive; `addrVisibleAt` models the
 * address-based scheduler's latency before loads can see the address.
 *
 * StoreBuffer is an *indexed* FIFO: alongside the age-ordered circular
 * queue it maintains
 *   - O(1) seq -> slot and traceIdx -> slot lookup maps,
 *   - a byte-granular ByteSeqIndex over executed store data (the
 *     forwarding lookup: youngest older store writing a byte),
 *   - an age-ordered set of stores whose address is still unknown and
 *     a small list of stores whose posted address is not yet visible
 *     (the address scheduler's ambiguity test),
 *   - a list of address-only stores (posted address, data pending —
 *     the scheduler's known-true-dependence test), and
 *   - per-synonym producer lists (the SYNC dispatch lookup).
 * Entry fields that feed an index (addr/data/executed) may only be
 * written through the mutating API below; bookkeeping flags
 * (committed, releasing, released, barrier) may be poked directly via
 * slot(). selfCheck() rebuilds every index from the queue and is run
 * at check level 2.
 */

#ifndef CWSIM_CPU_STORE_BUFFER_HH
#define CWSIM_CPU_STORE_BUFFER_HH

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/addr_range.hh"
#include "base/arena.hh"
#include "base/byte_index.hh"
#include "base/circular_queue.hh"
#include "base/types.hh"
#include "mdp/mdp_table.hh"

namespace cwsim
{

struct SbEntry
{
    InstSeqNum seq = 0;
    TraceIndex traceIdx = 0;
    Addr pc = 0;

    Addr addr = invalid_addr;
    unsigned size = 0;
    uint64_t data = 0;

    bool addrValid = false;
    bool dataValid = false;
    /** AS: tick at which the posted address becomes visible to loads. */
    Tick addrVisibleAt = 0;

    /** Address and data both available (the store has "issued"). */
    bool executed = false;
    Tick executedAt = 0;

    bool committed = false;
    bool releasing = false;
    bool released = false;

    /** STORE policy: this store is predicted to be a barrier. */
    bool barrier = false;
    /** SYNC: synonym this store produces (invalid if none). */
    Synonym producerSynonym = invalid_synonym;

    bool
    overlaps(Addr a, unsigned s) const
    {
        return addrValid && rangesOverlap(addr, size, a, s);
    }

    /** Does this store write the byte at @p byte_addr? */
    bool
    coversByte(Addr byte_addr) const
    {
        return addrValid && rangeCoversByte(addr, size, byte_addr);
    }

    uint8_t
    byteAt(Addr byte_addr) const
    {
        return static_cast<uint8_t>(data >> (8 * (byte_addr - addr)));
    }
};

class StoreBuffer
{
  public:
    explicit StoreBuffer(size_t capacity) : q(capacity) {}

    // ---- FIFO shape (CircularQueue passthrough) ---------------------
    size_t capacity() const { return q.capacity(); }
    size_t size() const { return q.size(); }
    bool empty() const { return q.empty(); }
    bool full() const { return q.full(); }
    SbEntry &front() { return q.front(); }
    const SbEntry &front() const { return q.front(); }
    SbEntry &back() { return q.back(); }
    const SbEntry &back() const { return q.back(); }
    SbEntry &at(size_t pos) { return q.at(pos); }
    const SbEntry &at(size_t pos) const { return q.at(pos); }
    /**
     * Direct slot access. Writing addr/data/valid/executed through
     * this would corrupt the indexes — use the mutating API; only
     * commit/release/barrier/synonym-free bookkeeping is fair game.
     */
    SbEntry &slot(size_t idx) { return q.slot(idx); }
    const SbEntry &slot(size_t idx) const { return q.slot(idx); }

    // ---- lifecycle ---------------------------------------------------
    /** Dispatch a store: append and index. @return its stable slot. */
    size_t allocate(SbEntry entry);

    /** Retire the (released) head entry and unindex it. */
    void popFront();

    /** Squash: drop uncommitted tail entries younger than @p keep. */
    void squashYoungerThan(InstSeqNum keep);

    // ---- execution-state mutation -----------------------------------
    /**
     * Post the effective address. @p visible_at models the address
     * scheduler's latency (== @p now for single-phase NAS stores).
     */
    void postAddr(size_t slot_idx, Addr addr, Tick visible_at,
                  Tick now);

    /** Post the store data. */
    void postData(size_t slot_idx, uint64_t data);

    /** Mark address+data complete (the store has "issued"). */
    void setExecuted(size_t slot_idx, Tick now);

    /** SYNC: tag a store as producing @p syn (dispatch time). */
    void setProducerSynonym(size_t slot_idx, Synonym syn);

    /**
     * Selective replay: forget address, data and executed state; the
     * store will re-post both.
     */
    void invalidateForReplay(size_t slot_idx);

    // ---- queries -----------------------------------------------------
    /** O(1) lookup by sequence number (nullptr if not resident). */
    SbEntry *findSeq(InstSeqNum seq);
    const SbEntry *findSeq(InstSeqNum seq) const;
    /** Slot of @p seq; npos when not resident. */
    static constexpr size_t npos = ~size_t(0);
    size_t slotOfSeq(InstSeqNum seq) const;

    /** O(1) lookup by trace index (nullptr if not resident). */
    const SbEntry *findTraceIdx(TraceIndex idx) const;

    /**
     * Address-scheduler ambiguity: does a store older than @p seq,
     * not yet released, have no visible address at @p now?
     */
    bool ambiguousOlderThan(InstSeqNum seq, Tick now);

    /**
     * Address-scheduler dependence: a store older than @p seq whose
     * address is visible at @p now, overlaps [addr, addr+size), and
     * whose data has not arrived (the load must wait).
     */
    bool blockingOlderStore(Addr addr, unsigned size, InstSeqNum seq,
                            Tick now);

    /**
     * Forwarding: the youngest store older than @p before with valid
     * data covering @p byte_addr. @return true and fill @p out.
     */
    bool
    newestDataBefore(Addr byte_addr, InstSeqNum before,
                     ByteSeqIndex::Ref &out) const
    {
        return dataBytes.newestBefore(byte_addr, before, out);
    }

    /**
     * SYNC dispatch: the youngest uncommitted store older than
     * @p before producing @p syn (nullptr if none).
     */
    const SbEntry *youngestSynonymProducerBefore(Synonym syn,
                                                 InstSeqNum before) const;

    /**
     * Rebuild every index from the queue and compare (check level 2).
     * @param now Current cycle, for visibility-list validation.
     * @return "" when consistent, else a complaint.
     */
    std::string selfCheck(Tick now) const;

  private:
    struct SlotRef
    {
        size_t slot = 0;
        InstSeqNum seq = 0;
    };

    /** Is (slot, seq) still the resident entry it was recorded for? */
    bool
    refValid(const SlotRef &ref) const
    {
        return slotLive(ref.slot) && q.slot(ref.slot).seq == ref.seq;
    }

    bool slotLive(size_t slot_idx) const;
    void unindexEntry(const SbEntry &entry, size_t slot_idx);
    static void eraseRef(ArenaVec<SlotRef> &v, size_t slot_idx);

    CircularQueue<SbEntry> q;

    // All index containers draw from the per-run arena: their nodes
    // churn once per store, never outlive the Processor, and are
    // reclaimed wholesale between runs.
    ArenaMap<InstSeqNum, size_t> bySeq;
    ArenaMap<TraceIndex, size_t> byTrace;

    /** Bytes of entries with addrValid && dataValid. */
    ByteSeqIndex dataBytes;

    /** Seqs of resident entries with no posted address, age-ordered. */
    ArenaSet<InstSeqNum> addrUnposted;

    /**
     * Entries whose posted address is not visible yet (addrVisibleAt
     * in the future when posted). Compacted lazily as they become
     * visible or die; bounded by stores posted within asLatency.
     */
    ArenaVec<SlotRef> addrInFlight;

    /** Entries with a posted address awaiting data (AS two-phase). */
    ArenaVec<SlotRef> awaitingData;

    /** SYNC: producer entries per synonym, in allocation (age) order. */
    ArenaMap<Synonym, ArenaVec<SlotRef>> bySynonym;
};

} // namespace cwsim

#endif // CWSIM_CPU_STORE_BUFFER_HH
