/**
 * @file
 * The instruction window as a structure-of-arrays hybrid: the
 * CircularQueue of full DynInst records stays canonical, and the hot
 * scheduling fields — seq, epoch, issue/done/mem flags, operand
 * readiness, effective address/size, gate state — are mirrored into
 * dense parallel arrays indexed by stable slot.
 *
 * Why: the issue walk, wakeup validation, completion events and
 * violation scans each test a handful of one-byte predicates, but
 * through the AoS layout every test dragged a whole ~250-byte DynInst
 * line through the cache. The arrays pack the same predicates at a few
 * bytes per slot, so a 128-entry window's entire scheduling state fits
 * in a handful of cache lines.
 *
 * Contract (the PR-4 index idiom, same as StoreBuffer's): DynInst is
 * the truth. Any mutation of a mirrored field must be followed by
 * sync() (or the targeted setGate()) on that instruction before the
 * next read of the hot views. Cold fields may be written freely
 * through slot()/at(). crossCheck() rebuilds every array entry from
 * the canonical DynInst and compares — heavyInvariants runs it at
 * check level 2, so a missed sync fails loudly in the checked suite
 * instead of silently desynchronizing the scheduler.
 *
 * Slots of squashed (truncated) instructions keep stale array values
 * just like they keep stale DynInst contents; liveness (slotLive /
 * refLive) gates every access, exactly as before.
 */

#ifndef CWSIM_CPU_WINDOW_HH
#define CWSIM_CPU_WINDOW_HH

#include <string>
#include <vector>

#include "base/circular_queue.hh"
#include "base/str.hh"
#include "cpu/dyn_inst.hh"

namespace cwsim
{

class Window
{
  public:
    /** Packed per-slot scheduling flags (the hot one-byte predicates). */
    enum Flag : uint8_t
    {
        FlagIssued = 1 << 0,
        FlagDone = 1 << 1,
        FlagMemIssued = 1 << 2,
        FlagSrcsReady = 1 << 3,
        FlagSrc1Ready = 1 << 4,
        FlagIsLoad = 1 << 5,
        FlagIsStore = 1 << 6,
    };

    explicit Window(size_t capacity)
        : q(capacity), seqs(capacity), epochs(capacity), flags_(capacity),
          effAddrs(capacity), memSizes(capacity), gates(capacity)
    {
    }

    // ---- container interface (mirrors CircularQueue) -----------------
    size_t capacity() const { return q.capacity(); }
    size_t size() const { return q.size(); }
    bool empty() const { return q.empty(); }
    bool full() const { return q.full(); }

    size_t
    pushBack(DynInst inst)
    {
        size_t s = q.pushBack(std::move(inst));
        syncSlot(s);
        return s;
    }

    void popFront() { q.popFront(); }
    void truncate(size_t n) { q.truncate(n); }
    void clear() { q.clear(); }

    DynInst &front() { return q.front(); }
    const DynInst &front() const { return q.front(); }
    DynInst &back() { return q.back(); }
    const DynInst &back() const { return q.back(); }
    DynInst &at(size_t pos) { return q.at(pos); }
    const DynInst &at(size_t pos) const { return q.at(pos); }
    size_t physIndex(size_t pos) const { return q.physIndex(pos); }
    DynInst &slot(size_t idx) { return q.slot(idx); }
    const DynInst &slot(size_t idx) const { return q.slot(idx); }
    bool slotLive(size_t idx) const { return q.slotLive(idx); }
    size_t slotOf(const DynInst &inst) const { return q.slotOf(inst); }

    // ---- hot views ---------------------------------------------------
    InstSeqNum seqAt(size_t slot) const { return seqs[slot]; }
    uint32_t epochAt(size_t slot) const { return epochs[slot]; }
    uint8_t flagsAt(size_t slot) const { return flags_[slot]; }
    bool isIssued(size_t slot) const { return flags_[slot] & FlagIssued; }
    bool isDone(size_t slot) const { return flags_[slot] & FlagDone; }
    bool
    isMemIssued(size_t slot) const
    {
        return flags_[slot] & FlagMemIssued;
    }
    Addr effAddrAt(size_t slot) const { return effAddrs[slot]; }
    unsigned memSizeAt(size_t slot) const { return memSizes[slot]; }
    GateBlock gateAt(size_t slot) const { return gates[slot]; }

    /**
     * Is @p slot still occupied by the instruction with @p seq? The
     * liveness + identity test every slot-holding index (consumer
     * lists, loadBytes refs) performs before dereferencing.
     */
    bool
    refLive(size_t slot, InstSeqNum seq) const
    {
        return q.slotLive(slot) && seqs[slot] == seq;
    }

    /** A memory-issued load currently resides in @p slot. */
    bool
    isMemIssuedLoad(size_t slot) const
    {
        constexpr uint8_t want = FlagIsLoad | FlagMemIssued;
        return (flags_[slot] & want) == want;
    }

    /**
     * Stable slot of the resident instruction with @p seq, or npos.
     * Window entries are seq-sorted by position (squashes leave gaps),
     * so binary-search positions — touching only the dense seq array,
     * never the fat records.
     */
    static constexpr size_t npos = ~size_t(0);
    size_t
    findSlot(InstSeqNum seq) const
    {
        size_t lo = 0;
        size_t hi = q.size();
        while (lo < hi) {
            size_t mid = lo + (hi - lo) / 2;
            size_t s = q.physIndex(mid);
            if (seqs[s] == seq)
                return s;
            if (seqs[s] < seq)
                lo = mid + 1;
            else
                hi = mid;
        }
        return npos;
    }

    // ---- mirror maintenance -------------------------------------------
    /**
     * Re-derive every mirrored field of @p inst (a live element of this
     * window) from its canonical record. Call after any batch of writes
     * to hot fields.
     */
    void sync(const DynInst &inst) { syncSlot(q.slotOf(inst)); }

    /** Targeted variant for the per-attempt gate verdict update. */
    void
    setGate(const DynInst &inst)
    {
        gates[q.slotOf(inst)] = inst.gateBlock;
    }

    /**
     * Rebuild the mirror of every live slot from the canonical records
     * and compare with the incrementally-maintained arrays.
     * @return "" when consistent, else a complaint naming the slot.
     */
    std::string
    crossCheck() const
    {
        for (size_t pos = 0; pos < q.size(); ++pos) {
            size_t s = q.physIndex(pos);
            const DynInst &inst = q.slot(s);
            if (seqs[s] != inst.seq)
                return strfmt("window slot %zu: seq view %llu != %llu",
                              s,
                              static_cast<unsigned long long>(seqs[s]),
                              static_cast<unsigned long long>(inst.seq));
            if (epochs[s] != inst.epoch)
                return strfmt("window slot %zu (seq %llu): epoch view "
                              "%u != %u",
                              s,
                              static_cast<unsigned long long>(inst.seq),
                              epochs[s], inst.epoch);
            if (flags_[s] != flagsOf(inst))
                return strfmt("window slot %zu (seq %llu): flags view "
                              "0x%x != 0x%x",
                              s,
                              static_cast<unsigned long long>(inst.seq),
                              flags_[s], flagsOf(inst));
            if (effAddrs[s] != inst.effAddr)
                return strfmt("window slot %zu (seq %llu): effAddr "
                              "view 0x%llx != 0x%llx",
                              s,
                              static_cast<unsigned long long>(inst.seq),
                              static_cast<unsigned long long>(
                                  effAddrs[s]),
                              static_cast<unsigned long long>(
                                  inst.effAddr));
            if (memSizes[s] != inst.memSize)
                return strfmt("window slot %zu (seq %llu): memSize "
                              "view %u != %u",
                              s,
                              static_cast<unsigned long long>(inst.seq),
                              memSizes[s], inst.memSize);
            if (gates[s] != inst.gateBlock)
                return strfmt("window slot %zu (seq %llu): gate view "
                              "%u != %u",
                              s,
                              static_cast<unsigned long long>(inst.seq),
                              static_cast<unsigned>(gates[s]),
                              static_cast<unsigned>(inst.gateBlock));
        }
        return "";
    }

  private:
    static uint8_t
    flagsOf(const DynInst &inst)
    {
        uint8_t f = 0;
        if (inst.issued)
            f |= FlagIssued;
        if (inst.done)
            f |= FlagDone;
        if (inst.memIssued)
            f |= FlagMemIssued;
        if (inst.srcsReady())
            f |= FlagSrcsReady;
        if (inst.src1.ready)
            f |= FlagSrc1Ready;
        if (inst.isLoad())
            f |= FlagIsLoad;
        if (inst.isStore())
            f |= FlagIsStore;
        return f;
    }

    void
    syncSlot(size_t s)
    {
        const DynInst &inst = q.slot(s);
        seqs[s] = inst.seq;
        epochs[s] = inst.epoch;
        flags_[s] = flagsOf(inst);
        effAddrs[s] = inst.effAddr;
        memSizes[s] = inst.memSize;
        gates[s] = inst.gateBlock;
    }

    CircularQueue<DynInst> q;

    // Parallel hot arrays, indexed by stable slot.
    std::vector<InstSeqNum> seqs;
    std::vector<uint32_t> epochs;
    std::vector<uint8_t> flags_;
    std::vector<Addr> effAddrs;
    std::vector<unsigned> memSizes;
    std::vector<GateBlock> gates;
};

} // namespace cwsim

#endif // CWSIM_CPU_WINDOW_HH
