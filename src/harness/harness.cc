#include "harness/harness.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <tuple>

#include "base/arena.hh"
#include "base/logging.hh"
#include "base/sim_error.hh"
#include "base/str.hh"
#include "check/equivalence.hh"
#include "obs/trace.hh"

namespace cwsim
{
namespace harness
{

const char *
toString(FailKind kind)
{
    switch (kind) {
      case FailKind::None:
        return "none";
      case FailKind::SimError:
        return "sim_error";
      case FailKind::Crash:
        return "crash";
      case FailKind::Timeout:
        return "timeout";
      case FailKind::Oom:
        return "oom";
      case FailKind::Protocol:
        return "protocol";
    }
    return "none";
}

bool
failKindFromString(const std::string &text, FailKind &out)
{
    for (FailKind k :
         {FailKind::None, FailKind::SimError, FailKind::Crash,
          FailKind::Timeout, FailKind::Oom, FailKind::Protocol}) {
        if (text == toString(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

std::string
RunResult::failLabel() const
{
    if (failKind == FailKind::None)
        return "-";
    if (failDetail.empty())
        return toString(failKind);
    return strfmt("%s(%s)", toString(failKind), failDetail.c_str());
}

Runner::Runner(uint64_t scale) : runScale(scale)
{
}

Runner::CacheSlot<Workload> &
Runner::workloadSlot(const std::string &name)
{
    std::lock_guard<std::mutex> lock(cacheMutex);
    return workloadCache[name];
}

Runner::CacheSlot<PrepassResult> &
Runner::prepassSlot(const std::string &name)
{
    std::lock_guard<std::mutex> lock(cacheMutex);
    return prepassCache[name];
}

const Workload &
Runner::workload(const std::string &name)
{
    CacheSlot<Workload> &slot = workloadSlot(name);
    // On a SimError (bad workload name under a trap) call_once leaves
    // the latch unset, so a later caller retries instead of deadlocking
    // or seeing a half-built value.
    std::call_once(slot.once, [&] {
        slot.value = std::make_unique<Workload>(
            workloads::build(name, runScale));
    });
    return *slot.value;
}

const PrepassResult &
Runner::prepass(const std::string &name)
{
    CacheSlot<PrepassResult> &slot = prepassSlot(name);
    std::call_once(slot.once, [&] {
        const Workload &w = workload(name);
        auto result = std::make_unique<PrepassResult>(
            runPrepass(w.program));
        fatal_if(!result->halted,
                 "workload %s did not halt in its functional pre-pass",
                 name.c_str());
        slot.value = std::move(result);
    });
    return *slot.value;
}

void
Runner::recordFailure(const RunResult &result)
{
    std::lock_guard<std::mutex> lock(failMutex);
    failedRuns.push_back(result);
}

RunResult
Runner::run(const std::string &name, const SimConfig &cfg)
{
    RunResult r;
    r.workload = name;
    r.config = cfg.name();

    // Tag this worker's trace lines with "workload config" so parallel
    // sweeps stay attributable. Cheap enough to do unconditionally.
    obs::setRunLabel(name + " " + r.config);

    auto wall_start = std::chrono::steady_clock::now();
    auto stamp_wall = [&] {
        r.wallMs = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
    };

    try {
        // While the trap is live, panic()/fatal() anywhere below us
        // throw SimError instead of aborting the process.
        ScopedErrorTrap trap;

        const Workload &w = workload(name);
        const PrepassResult &pre = prepass(name);

        Processor proc(cfg, w.program, &pre.deps);
        proc.run();
        fatal_if(!proc.halted(), "%s did not halt under %s (after %llu "
                 "cycles, %llu commits)", name.c_str(),
                 cfg.name().c_str(),
                 static_cast<unsigned long long>(proc.curCycle()),
                 static_cast<unsigned long long>(proc.totalCommits()));

        const ProcStats &s = proc.procStats();
        r.cycles = s.cycles.value();
        r.commits = s.commits.value();
        r.committedLoads = s.committedLoads.value();
        r.committedStores = s.committedStores.value();
        r.violations = s.memOrderViolations.value();
        r.replays = s.loadReplays.value();
        r.selectiveRecoveries = s.selectiveRecoveries.value();
        r.selectiveFallbacks = s.selectiveFallbacks.value();
        r.branchMispredicts = s.branchMispredicts.value();
        r.squashedInsts = s.squashedInsts.value();
        r.falseDepLoads = s.falseDepLoads.value();
        r.falseDepLatency = s.falseDepLatency.mean();
        r.injectedViolations = s.injectedViolations.value();

        const obs::CpiStack &cpi = proc.cpiStack();
        r.commitWidth = cpi.width();
        for (size_t i = 0; i < obs::num_cpi_causes; ++i)
            r.cpiSlots[i] = cpi.slot(obs::CpiCause(i));

        // Dependence-profile surface: the full profile already went to
        // the .depprof.jsonl writer; the record carries the summary.
        if (const obs::DepProfile *dp = proc.depProfile()) {
            r.depProfiled = true;
            r.depLoads = dp->numLoads();
            r.depStores = dp->numStores();
            r.depEdges = dp->numEdges();
            r.depHotEdges = dp->hotEdges(8);
        }

        // Architectural-state equivalence against the functional
        // pre-pass. Only meaningful when the timing run retired the
        // whole program (maxInsts == 0 means run to completion).
        if (cfg.check.level > 0 && cfg.maxInsts == 0) {
            std::string diff = check::compareWithGolden(
                proc.archState(), proc.memory().fingerprint(),
                proc.totalCommits(), prepass(name));
            if (!diff.empty()) {
                throw SimError(SimErrorKind::Equivalence,
                               strfmt("%s under %s diverged from the "
                                      "functional pre-pass",
                                      name.c_str(), cfg.name().c_str()),
                               __FILE__, __LINE__, diff);
            }
        }
        stamp_wall();
    } catch (const SimError &e) {
        stamp_wall();
        r.ok = false;
        r.failKind = FailKind::SimError;
        r.error = e.summary();
        // The last few flight-recorder events (the dump's tail) make
        // the FAILED RUNS row self-diagnosing.
        r.diagnostic = lastLines(e.diagnostic(), 8);
        recordFailure(r);
        warn("run failed (%s, %s): %s", name.c_str(),
             cfg.name().c_str(), e.summary().c_str());
    }
    // The Processor (and with it every arena-backed container) is dead
    // on both the normal and the error path by now; reclaim the run's
    // transient allocations wholesale so the next run on this worker
    // bumps through warm, already-faulted chunks.
    runArena().reset();
    return r;
}

FailureSummary
collectFailures(const Runner &runner)
{
    FailureSummary summary;
    // Copy and sort: under a parallel sweep the arrival order of
    // failures depends on worker scheduling, and the FAILED RUNS table
    // must be byte-identical at any --jobs count.
    summary.failures = runner.failures();
    std::sort(summary.failures.begin(), summary.failures.end(),
              [](const RunResult &a, const RunResult &b) {
                  return std::tie(a.workload, a.config, a.error) <
                         std::tie(b.workload, b.config, b.error);
              });
    for (const RunResult &f : summary.failures) {
        if (f.injectedHostFault)
            ++summary.injected;
    }
    return summary;
}

double
geomean(const std::vector<double> &values)
{
    double log_sum = 0;
    size_t n = 0;
    for (double v : values) {
        if (!std::isfinite(v) || v <= 0)
            continue; // failed run: NaN metric, or degenerate value
        log_sum += std::log(v);
        ++n;
    }
    size_t skipped = values.size() - n;
    if (skipped > 0) {
        warn("geomean: skipped %zu of %zu entries (failed runs or "
             "non-positive values)", skipped, values.size());
    }
    if (n == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return std::exp(log_sum / static_cast<double>(n));
}

std::string
formatSpeedup(double ratio)
{
    if (!std::isfinite(ratio))
        return "n/a";
    return strfmt("%+.1f%%", (ratio - 1.0) * 100.0);
}

std::string
formatPct(double fraction, int decimals)
{
    if (!std::isfinite(fraction))
        return "n/a";
    return strfmt("%.*f%%", decimals, fraction * 100.0);
}

uint64_t
benchScale()
{
    return envUint64("CWSIM_SCALE", 1000, 80'000);
}

double
meanSpeedup(const std::map<std::string, double> &num,
            const std::map<std::string, double> &den,
            const std::vector<std::string> &keys)
{
    std::vector<double> ratios;
    for (const auto &k : keys) {
        auto n = num.find(k), d = den.find(k);
        if (n == num.end() || d == den.end())
            continue; // run failed before recording this key
        ratios.push_back(n->second / d->second);
    }
    return geomean(ratios);
}

} // namespace harness
} // namespace cwsim
