#include "harness/harness.hh"

#include <cmath>
#include <cstdlib>

#include "base/logging.hh"
#include "base/str.hh"

namespace cwsim
{
namespace harness
{

Runner::Runner(uint64_t scale) : runScale(scale)
{
}

const Workload &
Runner::workload(const std::string &name)
{
    auto it = workloadCache.find(name);
    if (it == workloadCache.end()) {
        it = workloadCache
                 .emplace(name, workloads::build(name, runScale))
                 .first;
    }
    return it->second;
}

const PrepassResult &
Runner::prepass(const std::string &name)
{
    auto it = prepassCache.find(name);
    if (it == prepassCache.end()) {
        const Workload &w = workload(name);
        auto result = std::make_unique<PrepassResult>(
            runPrepass(w.program));
        fatal_if(!result->halted,
                 "workload %s did not halt in its functional pre-pass",
                 name.c_str());
        it = prepassCache.emplace(name, std::move(result)).first;
    }
    return *it->second;
}

RunResult
Runner::run(const std::string &name, const SimConfig &cfg)
{
    const Workload &w = workload(name);
    const PrepassResult &pre = prepass(name);

    Processor proc(cfg, w.program, &pre.deps);
    proc.run();
    fatal_if(!proc.halted(), "%s did not halt under %s (after %llu "
             "cycles, %llu commits)", name.c_str(), cfg.name().c_str(),
             static_cast<unsigned long long>(proc.curCycle()),
             static_cast<unsigned long long>(proc.totalCommits()));

    const ProcStats &s = proc.procStats();
    RunResult r;
    r.workload = name;
    r.config = cfg.name();
    r.cycles = s.cycles.value();
    r.commits = s.commits.value();
    r.committedLoads = s.committedLoads.value();
    r.committedStores = s.committedStores.value();
    r.violations = s.memOrderViolations.value();
    r.replays = s.loadReplays.value();
    r.selectiveRecoveries = s.selectiveRecoveries.value();
    r.selectiveFallbacks = s.selectiveFallbacks.value();
    r.branchMispredicts = s.branchMispredicts.value();
    r.squashedInsts = s.squashedInsts.value();
    r.falseDepLoads = s.falseDepLoads.value();
    r.falseDepLatency = s.falseDepLatency.mean();
    return r;
}

double
geomean(const std::vector<double> &values)
{
    panic_if(values.empty(), "geomean of nothing");
    double log_sum = 0;
    for (double v : values) {
        panic_if(v <= 0, "geomean needs positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string
formatSpeedup(double ratio)
{
    return strfmt("%+.1f%%", (ratio - 1.0) * 100.0);
}

std::string
formatPct(double fraction, int decimals)
{
    return strfmt("%.*f%%", decimals, fraction * 100.0);
}

uint64_t
benchScale()
{
    if (const char *env = std::getenv("CWSIM_SCALE")) {
        uint64_t v = std::strtoull(env, nullptr, 10);
        if (v >= 1000)
            return v;
        warn("ignoring CWSIM_SCALE=%s (must be >= 1000)", env);
    }
    return 80'000;
}

double
meanSpeedup(const std::map<std::string, double> &num,
            const std::map<std::string, double> &den,
            const std::vector<std::string> &keys)
{
    std::vector<double> ratios;
    for (const auto &k : keys)
        ratios.push_back(num.at(k) / den.at(k));
    return geomean(ratios);
}

} // namespace harness
} // namespace cwsim
