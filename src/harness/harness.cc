#include "harness/harness.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/logging.hh"
#include "base/sim_error.hh"
#include "base/str.hh"
#include "check/equivalence.hh"

namespace cwsim
{
namespace harness
{

Runner::Runner(uint64_t scale) : runScale(scale)
{
}

const Workload &
Runner::workload(const std::string &name)
{
    auto it = workloadCache.find(name);
    if (it == workloadCache.end()) {
        it = workloadCache
                 .emplace(name, workloads::build(name, runScale))
                 .first;
    }
    return it->second;
}

const PrepassResult &
Runner::prepass(const std::string &name)
{
    auto it = prepassCache.find(name);
    if (it == prepassCache.end()) {
        const Workload &w = workload(name);
        auto result = std::make_unique<PrepassResult>(
            runPrepass(w.program));
        fatal_if(!result->halted,
                 "workload %s did not halt in its functional pre-pass",
                 name.c_str());
        it = prepassCache.emplace(name, std::move(result)).first;
    }
    return *it->second;
}

RunResult
Runner::run(const std::string &name, const SimConfig &cfg)
{
    RunResult r;
    r.workload = name;
    r.config = cfg.name();

    try {
        // While the trap is live, panic()/fatal() anywhere below us
        // throw SimError instead of aborting the process.
        ScopedErrorTrap trap;

        const Workload &w = workload(name);
        const PrepassResult &pre = prepass(name);

        Processor proc(cfg, w.program, &pre.deps);
        proc.run();
        fatal_if(!proc.halted(), "%s did not halt under %s (after %llu "
                 "cycles, %llu commits)", name.c_str(),
                 cfg.name().c_str(),
                 static_cast<unsigned long long>(proc.curCycle()),
                 static_cast<unsigned long long>(proc.totalCommits()));

        const ProcStats &s = proc.procStats();
        r.cycles = s.cycles.value();
        r.commits = s.commits.value();
        r.committedLoads = s.committedLoads.value();
        r.committedStores = s.committedStores.value();
        r.violations = s.memOrderViolations.value();
        r.replays = s.loadReplays.value();
        r.selectiveRecoveries = s.selectiveRecoveries.value();
        r.selectiveFallbacks = s.selectiveFallbacks.value();
        r.branchMispredicts = s.branchMispredicts.value();
        r.squashedInsts = s.squashedInsts.value();
        r.falseDepLoads = s.falseDepLoads.value();
        r.falseDepLatency = s.falseDepLatency.mean();
        r.injectedViolations = s.injectedViolations.value();

        // Architectural-state equivalence against the functional
        // pre-pass. Only meaningful when the timing run retired the
        // whole program (maxInsts == 0 means run to completion).
        if (cfg.check.level > 0 && cfg.maxInsts == 0) {
            std::string diff = check::compareWithGolden(
                proc.archState(), proc.memory().fingerprint(),
                proc.totalCommits(), prepass(name));
            if (!diff.empty()) {
                throw SimError(SimErrorKind::Equivalence,
                               strfmt("%s under %s diverged from the "
                                      "functional pre-pass",
                                      name.c_str(), cfg.name().c_str()),
                               __FILE__, __LINE__, diff);
            }
        }
    } catch (const SimError &e) {
        r.ok = false;
        r.error = e.summary();
        failedRuns.push_back(r);
        warn("run failed (%s, %s): %s", name.c_str(),
             cfg.name().c_str(), e.summary().c_str());
    }
    return r;
}

size_t
reportFailures(const Runner &runner)
{
    const auto &fails = runner.failures();
    if (fails.empty())
        return 0;

    std::printf("\nFAILED RUNS (%zu):\n",
                static_cast<size_t>(fails.size()));
    TextTable table;
    table.setHeader({"workload", "config", "error"});
    for (const auto &f : fails)
        table.addRow({f.workload, f.config, f.error});
    std::fputs(table.toString().c_str(), stdout);
    return fails.size();
}

double
geomean(const std::vector<double> &values)
{
    double log_sum = 0;
    size_t n = 0;
    for (double v : values) {
        if (!std::isfinite(v) || v <= 0)
            continue; // failed run: NaN metric, or degenerate value
        log_sum += std::log(v);
        ++n;
    }
    if (n == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return std::exp(log_sum / static_cast<double>(n));
}

std::string
formatSpeedup(double ratio)
{
    if (!std::isfinite(ratio))
        return "n/a";
    return strfmt("%+.1f%%", (ratio - 1.0) * 100.0);
}

std::string
formatPct(double fraction, int decimals)
{
    if (!std::isfinite(fraction))
        return "n/a";
    return strfmt("%.*f%%", decimals, fraction * 100.0);
}

uint64_t
benchScale()
{
    if (const char *env = std::getenv("CWSIM_SCALE")) {
        uint64_t v = std::strtoull(env, nullptr, 10);
        if (v >= 1000)
            return v;
        warn("ignoring CWSIM_SCALE=%s (must be >= 1000)", env);
    }
    return 80'000;
}

double
meanSpeedup(const std::map<std::string, double> &num,
            const std::map<std::string, double> &den,
            const std::vector<std::string> &keys)
{
    std::vector<double> ratios;
    for (const auto &k : keys) {
        auto n = num.find(k), d = den.find(k);
        if (n == num.end() || d == den.end())
            continue; // run failed before recording this key
        ratios.push_back(n->second / d->second);
    }
    return geomean(ratios);
}

} // namespace harness
} // namespace cwsim
