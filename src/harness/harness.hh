/**
 * @file
 * The experiment harness shared by every bench binary: builds
 * workloads, caches their functional pre-passes (oracle dependence
 * info), runs timing simulations, and aggregates results the way the
 * paper reports them (per-benchmark bars plus int/fp averages).
 */

#ifndef CWSIM_HARNESS_HARNESS_HH
#define CWSIM_HARNESS_HARNESS_HH

#include <array>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cpu/processor.hh"
#include "obs/cpi_stack.hh"
#include "mdp/oracle.hh"
#include "sim/config.hh"
#include "workloads/workload.hh"

namespace cwsim
{
namespace harness
{

/**
 * First-class failure taxonomy for a run. SimError is the in-process
 * fail-soft class PR 1 introduced (watchdog, invariant, equivalence…);
 * the host-level classes (Crash, Timeout, Oom, Protocol) can only be
 * observed by the --isolate sweep executor, which runs each simulation
 * in a sandboxed child process and classifies how the child died.
 */
enum class FailKind
{
    None,     ///< The run completed (ok == true).
    SimError, ///< In-process SimError caught by the fail-soft harness.
    Crash,    ///< Child killed by a signal or a nonzero exit.
    Timeout,  ///< Wall-clock deadline (SIGKILL) or RLIMIT_CPU.
    Oom,      ///< Allocation failure under RLIMIT_AS or the OOM killer.
    Protocol, ///< Child exited 0 but its result record was unreadable.
};

/** Stable wire/text name: "none", "sim_error", "crash", ... */
const char *toString(FailKind kind);

/** Parse a toString(FailKind) name back; false on unknown text. */
bool failKindFromString(const std::string &text, FailKind &out);

/** Everything a bench needs from one (workload, config) timing run. */
struct RunResult
{
    std::string workload;
    std::string config;
    uint64_t cycles = 0;
    uint64_t commits = 0;
    uint64_t committedLoads = 0;
    uint64_t committedStores = 0;
    uint64_t violations = 0;
    uint64_t replays = 0;
    uint64_t selectiveRecoveries = 0;
    uint64_t selectiveFallbacks = 0;
    uint64_t branchMispredicts = 0;
    uint64_t squashedInsts = 0;
    uint64_t falseDepLoads = 0;
    double falseDepLatency = 0;
    uint64_t injectedViolations = 0;

    /**
     * Commit-slot cycle accounting, indexed by obs::CpiCause. Sums to
     * cycles * commitWidth for a completed run. commitWidth == 0 marks
     * a record that predates the accounting (schema v1/v2 cache or
     * JSONL records): the slots are unknown, not zero-loss.
     */
    std::array<uint64_t, obs::num_cpi_causes> cpiSlots{};
    unsigned commitWidth = 0;

    /**
     * Fail-soft sweeps: false when the run raised a SimError (watchdog
     * trip, invariant failure, panic, oracle-equivalence mismatch…).
     * Failed runs yield NaN metrics, which the formatters render as
     * "n/a" and geomean() skips, so one poisoned (workload, config)
     * pair cannot abort or silently skew a whole sweep.
     */
    bool ok = true;
    /** One-line failure summary (empty when ok). */
    std::string error;
    /** How the run failed (None when ok). */
    FailKind failKind = FailKind::None;
    /**
     * Kind-specific detail: the signal name for a crash ("SIGSEGV"),
     * "exit=N" for a nonzero exit, the deadline for a timeout…
     */
    std::string failDetail;
    /**
     * True when the failure was provoked by an armed host-fault
     * injection mode (check.faults.host*Rate): the run died exactly as
     * designed, so containment benches report it in FAILED RUNS without
     * counting it as a campaign failure (reportFailures() skips it when
     * deciding the exit code).
     */
    bool injectedHostFault = false;
    /**
     * Failure diagnostics: the last few flight-recorder events (or
     * whatever dump the SimError carried), so a FAILED RUNS row is
     * self-diagnosing without rerunning under a debugger.
     */
    std::string diagnostic;

    // Dependence-profile surface (schema v5). Host-adjacent: the
    // profile is deterministic per run but only collected when
    // CWSIM_DEPPROF / --depprof is on, so diffRunRecords excludes
    // these fields — dedicated tests compare them directly instead.
    bool depProfiled = false; ///< A DepProfile was collected.
    uint64_t depLoads = 0;    ///< Distinct load PCs profiled.
    uint64_t depStores = 0;   ///< Distinct store PCs profiled.
    uint64_t depEdges = 0;    ///< Distinct (store,load) edges.
    /** Top edges, hotEdges() encoding: "0xS-0xL:viol:syncs;...". */
    std::string depHotEdges;

    // Host-side profiling (not part of the simulated result; excluded
    // from determinism comparisons).
    double wallMs = 0;     ///< Wall-clock time of this run.
    /**
     * Host-side time the run spent waiting to execute (scheduler
     * queue plus isolate-pool queue), as opposed to wallMs which is
     * the execute time itself. Always 0 for cache hits, which never
     * queue — the split is what makes cached vs. fresh runs
     * distinguishable in reports.
     */
    double queueMs = 0;
    bool cacheHit = false; ///< Served from the sweep's run cache.

    double
    simCyclesPerSec() const
    {
        return wallMs > 0 ? static_cast<double>(cycles) /
                                (wallMs / 1000.0)
                          : 0;
    }

    double
    ipc() const
    {
        if (!ok)
            return std::numeric_limits<double>::quiet_NaN();
        return cycles ? static_cast<double>(commits) / cycles : 0;
    }

    double
    misspecRate() const
    {
        if (!ok)
            return std::numeric_limits<double>::quiet_NaN();
        return committedLoads
            ? static_cast<double>(violations) / committedLoads
            : 0;
    }

    double
    falseDepFraction() const
    {
        if (!ok)
            return std::numeric_limits<double>::quiet_NaN();
        return committedLoads
            ? static_cast<double>(falseDepLoads) / committedLoads
            : 0;
    }

    /**
     * Rendered failure kind for tables: "-" when ok, "sim_error", or
     * "crash(SIGSEGV)"-style kind(detail) for host-level failures.
     */
    std::string failLabel() const;

    /** True when this record carries CPI-stack data (schema >= v3). */
    bool hasCpiStack() const { return commitWidth != 0; }

    uint64_t
    cpiTotalSlots() const
    {
        uint64_t total = 0;
        for (uint64_t s : cpiSlots)
            total += s;
        return total;
    }

    /** Share of all commit slots spent on @p cause (NaN without data). */
    double
    cpiFraction(obs::CpiCause cause) const
    {
        if (!hasCpiStack() || cpiTotalSlots() == 0)
            return std::numeric_limits<double>::quiet_NaN();
        return static_cast<double>(cpiSlots[size_t(cause)]) /
               static_cast<double>(cpiTotalSlots());
    }
};

/**
 * Thread-safe: run() may be called concurrently from sweep workers.
 * The workload and pre-pass caches use per-entry once-latches so the
 * expensive functional pre-pass runs exactly once per workload no
 * matter how many workers ask for it simultaneously, and each run()
 * arms its own (thread-local) ScopedErrorTrap, so one worker's
 * failure cannot be swallowed by — or abort — another worker's run.
 */
class Runner
{
  public:
    /** @param scale Dynamic-instruction target per workload. */
    explicit Runner(uint64_t scale = workloads::default_scale);

    /** The workload (built once, cached). */
    const Workload &workload(const std::string &name);

    /** The functional pre-pass for @p name (run once, cached). */
    const PrepassResult &prepass(const std::string &name);

    /**
     * Run @p name under @p cfg to completion, fail-soft: library-level
     * panic/fatal, watchdog trips, invariant failures, and
     * oracle-equivalence mismatches are caught as SimError, recorded in
     * the returned RunResult (ok=false) and in failures(), and the
     * sweep continues with the next run.
     */
    RunResult run(const std::string &name, const SimConfig &cfg);

    uint64_t scale() const { return runScale; }

    /**
     * Record a failed run that did not come from run() — e.g. a cached
     * failure the sweep engine replayed — so reportFailures() sees it.
     */
    void recordFailure(const RunResult &result);

    /**
     * Every failed run seen so far. Arrival order is nondeterministic
     * under a parallel sweep; reportFailures() sorts before printing.
     * Do not call while a sweep is still running.
     */
    const std::vector<RunResult> &failures() const { return failedRuns; }

  private:
    /**
     * A map node holding a once-latch next to its value. Node
     * addresses in std::map are stable, so the latch can be used
     * outside the map lock: workers contend on the cheap map lookup,
     * then exactly one of them builds the value while the others block
     * on the latch instead of redoing the work.
     */
    template <typename T>
    struct CacheSlot
    {
        std::once_flag once;
        std::unique_ptr<T> value;
    };

    CacheSlot<Workload> &workloadSlot(const std::string &name);
    CacheSlot<PrepassResult> &prepassSlot(const std::string &name);

    uint64_t runScale;
    std::mutex cacheMutex;
    std::map<std::string, CacheSlot<Workload>> workloadCache;
    std::map<std::string, CacheSlot<PrepassResult>> prepassCache;
    std::mutex failMutex;
    std::vector<RunResult> failedRuns;
};

/**
 * A campaign's failed runs, collected for reporting: sorted by
 * (workload, config) so parallel sweeps summarize deterministically,
 * with the injected-host-fault tally split out. Pure data — rendering
 * (the FAILED RUNS table) lives in sweep::reportFailures() so this
 * library stays printf-free and a daemon can link it headlessly.
 */
struct FailureSummary
{
    /** Every failed run, sorted by (workload, config, error). */
    std::vector<RunResult> failures;
    /** How many of them were armed host-fault injections. */
    size_t injected = 0;

    bool empty() const { return failures.empty(); }
    /**
     * Failures that count against the campaign: injected host faults
     * died exactly as designed, so a containment bench that killed
     * only the runs it armed faults on still exits 0.
     */
    size_t unexpected() const { return failures.size() - injected; }
};

/** Snapshot @p runner's failed runs as a sorted FailureSummary. */
FailureSummary collectFailures(const Runner &runner);

/**
 * Geometric mean of the positive, finite entries of @p values.
 * NaN/inf/non-positive entries (failed runs) are skipped — but
 * counted: when any entry is dropped a warn() reports how many, so a
 * half-failed sweep cannot masquerade as a clean average. Returns NaN
 * when nothing usable remains, including an empty input.
 */
double geomean(const std::vector<double> &values);

/** Format a ratio as "+12.3%" / "-4.5%" relative change ("n/a" for NaN). */
std::string formatSpeedup(double ratio);

/** Format 0.0123 as "1.23%" ("n/a" for NaN). */
std::string formatPct(double fraction, int decimals = 1);

/**
 * Paper-style summary: geometric-mean speedup of @p num over @p den
 * IPCs across the given short-name keys.
 */
double
meanSpeedup(const std::map<std::string, double> &num,
            const std::map<std::string, double> &den,
            const std::vector<std::string> &keys);

/**
 * Dynamic-instruction target for bench binaries: the CWSIM_SCALE
 * environment variable, or 80000.
 */
uint64_t benchScale();

} // namespace harness
} // namespace cwsim

#endif // CWSIM_HARNESS_HARNESS_HH
