/**
 * @file
 * The experiment harness shared by every bench binary: builds
 * workloads, caches their functional pre-passes (oracle dependence
 * info), runs timing simulations, and aggregates results the way the
 * paper reports them (per-benchmark bars plus int/fp averages).
 */

#ifndef CWSIM_HARNESS_HARNESS_HH
#define CWSIM_HARNESS_HARNESS_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cpu/processor.hh"
#include "mdp/oracle.hh"
#include "sim/config.hh"
#include "sim/table.hh"
#include "workloads/workload.hh"

namespace cwsim
{
namespace harness
{

/** Everything a bench needs from one (workload, config) timing run. */
struct RunResult
{
    std::string workload;
    std::string config;
    uint64_t cycles = 0;
    uint64_t commits = 0;
    uint64_t committedLoads = 0;
    uint64_t committedStores = 0;
    uint64_t violations = 0;
    uint64_t replays = 0;
    uint64_t selectiveRecoveries = 0;
    uint64_t selectiveFallbacks = 0;
    uint64_t branchMispredicts = 0;
    uint64_t squashedInsts = 0;
    uint64_t falseDepLoads = 0;
    double falseDepLatency = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(commits) / cycles : 0;
    }

    double
    misspecRate() const
    {
        return committedLoads
            ? static_cast<double>(violations) / committedLoads
            : 0;
    }

    double
    falseDepFraction() const
    {
        return committedLoads
            ? static_cast<double>(falseDepLoads) / committedLoads
            : 0;
    }
};

class Runner
{
  public:
    /** @param scale Dynamic-instruction target per workload. */
    explicit Runner(uint64_t scale = workloads::default_scale);

    /** The workload (built once, cached). */
    const Workload &workload(const std::string &name);

    /** The functional pre-pass for @p name (run once, cached). */
    const PrepassResult &prepass(const std::string &name);

    /** Run @p name under @p cfg to completion. */
    RunResult run(const std::string &name, const SimConfig &cfg);

    uint64_t scale() const { return runScale; }

  private:
    uint64_t runScale;
    std::map<std::string, Workload> workloadCache;
    std::map<std::string, std::unique_ptr<PrepassResult>> prepassCache;
};

/** Geometric mean of @p values (all > 0). */
double geomean(const std::vector<double> &values);

/** Format a ratio as "+12.3%" / "-4.5%" relative change. */
std::string formatSpeedup(double ratio);

/** Format 0.0123 as "1.23%". */
std::string formatPct(double fraction, int decimals = 1);

/**
 * Paper-style summary: geometric-mean speedup of @p num over @p den
 * IPCs across the given short-name keys.
 */
double
meanSpeedup(const std::map<std::string, double> &num,
            const std::map<std::string, double> &den,
            const std::vector<std::string> &keys);

/**
 * Dynamic-instruction target for bench binaries: the CWSIM_SCALE
 * environment variable, or 80000.
 */
uint64_t benchScale();

} // namespace harness
} // namespace cwsim

#endif // CWSIM_HARNESS_HARNESS_HH
