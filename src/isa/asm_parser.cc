#include "isa/asm_parser.hh"

#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "base/bitfield.hh"
#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "isa/opcodes.hh"
#include "isa/static_inst.hh"

namespace cwsim
{

namespace
{

constexpr Addr code_base = 0x1000;
constexpr Addr data_base = 0x100000;

struct Token
{
    std::string text;
};

struct Line
{
    int number = 0;
    std::string label;       // empty if none
    std::string op;          // directive or mnemonic, empty if none
    std::vector<std::string> operands;
};

[[noreturn]] void
parseError(int line, const std::string &msg)
{
    fatal("assembly error at line %d: %s", line, msg.c_str());
}

/** Split an operand list on commas and/or whitespace. */
std::vector<std::string>
splitOperands(const std::string &text)
{
    std::string normalized = text;
    for (char &c : normalized) {
        if (c == ',' || c == '\t')
            c = ' ';
    }
    std::vector<std::string> out;
    for (const std::string &piece : split(normalized, ' ')) {
        std::string t = trim(piece);
        if (!t.empty())
            out.push_back(t);
    }
    return out;
}

Line
parseLine(const std::string &raw, int number)
{
    Line line;
    line.number = number;

    std::string text = raw;
    size_t hash = text.find('#');
    if (hash != std::string::npos)
        text = text.substr(0, hash);
    text = trim(text);

    size_t colon = text.find(':');
    if (colon != std::string::npos) {
        line.label = trim(text.substr(0, colon));
        if (line.label.empty())
            parseError(number, "empty label");
        text = trim(text.substr(colon + 1));
    }

    if (text.empty())
        return line;

    size_t space = text.find_first_of(" \t");
    if (space == std::string::npos) {
        line.op = text;
    } else {
        line.op = text.substr(0, space);
        line.operands = splitOperands(trim(text.substr(space + 1)));
    }
    return line;
}

bool
parseReg(const std::string &text, RegId &reg)
{
    if (text.size() < 2)
        return false;
    char kind = text[0];
    if (kind != 'r' && kind != 'f')
        return false;
    for (size_t i = 1; i < text.size(); ++i) {
        if (!isdigit(static_cast<unsigned char>(text[i])))
            return false;
    }
    unsigned long n = 0;
    try {
        n = std::stoul(text.substr(1));
    } catch (const std::out_of_range &) {
        // An absurdly long digit string (e.g. r99999999999999999999)
        // is a malformed operand, not a crash.
        return false;
    }
    if (n >= 32)
        return false;
    unsigned rn = static_cast<unsigned>(n);
    reg = kind == 'r' ? ir(rn) : fr(rn);
    return true;
}

bool
parseInt(const std::string &text, int64_t &value)
{
    if (text.empty())
        return false;
    size_t pos = 0;
    try {
        value = std::stoll(text, &pos, 0); // handles 0x..., negatives
    } catch (...) {
        return false;
    }
    return pos == text.size();
}

/** Look up the opcode table index for a mnemonic, or -1. */
int
opcodeFor(const std::string &mnemonic)
{
    static const std::map<std::string, int> index = [] {
        std::map<std::string, int> m;
        for (unsigned i = 0; i < num_opcodes; ++i)
            m[opName(static_cast<Opcode>(i))] = static_cast<int>(i);
        return m;
    }();
    auto it = index.find(mnemonic);
    return it == index.end() ? -1 : it->second;
}

/** Number of instruction words a source line expands to. */
unsigned
instWords(const Line &line)
{
    // Pseudo-ops li and la always expand to two words so pass 1 can
    // assign addresses without knowing operand values.
    if (line.op == "li" || line.op == "la")
        return 2;
    return 1;
}

/** Parse "imm(reg)" into its parts. */
bool
parseMemOperand(const std::string &text, int64_t &imm, RegId &base)
{
    size_t open = text.find('(');
    size_t close = text.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
        return false;
    }
    std::string imm_text = trim(text.substr(0, open));
    if (imm_text.empty())
        imm_text = "0";
    if (!parseInt(imm_text, imm))
        return false;
    return parseReg(trim(text.substr(open + 1, close - open - 1)),
                    base);
}

class Assembler
{
  public:
    Program
    assemble(const std::string &source)
    {
        std::istringstream in(source);
        std::string raw;
        int number = 0;
        while (std::getline(in, raw))
            lines.push_back(parseLine(raw, ++number));

        firstPass();
        secondPass();

        Program prog;
        prog.setEntry(code_base);
        prog.setStaticInstCount(insts.size());
        std::vector<uint8_t> code(insts.size() * 4);
        for (size_t i = 0; i < insts.size(); ++i) {
            uint32_t word = insts[i].encode();
            std::memcpy(&code[i * 4], &word, 4);
        }
        prog.addSegment(code_base, std::move(code));
        if (!data.empty())
            prog.addSegment(data_base, data);
        return prog;
    }

  private:
    void
    defineLabel(const Line &line, uint64_t value)
    {
        if (labels.count(line.label))
            parseError(line.number, "label '" + line.label +
                                        "' defined twice");
        labels[line.label] = value;
    }

    uint64_t
    labelValue(const Line &line, const std::string &name) const
    {
        auto it = labels.find(name);
        if (it == labels.end())
            parseError(line.number, "unknown label '" + name + "'");
        return it->second;
    }

    void
    firstPass()
    {
        bool in_data = false;
        uint64_t word_index = 0;
        uint64_t data_off = 0;

        for (const Line &line : lines) {
            // Align before binding a label to a .double so the label
            // names the aligned location.
            if (in_data && line.op == ".double")
                data_off = alignUp(data_off, 8);
            if (!line.label.empty()) {
                defineLabel(line, in_data ? data_base + data_off
                                          : code_base + 4 * word_index);
            }
            if (line.op.empty())
                continue;
            if (line.op[0] == '.') {
                if (line.op == ".data") {
                    in_data = true;
                } else if (line.op == ".text") {
                    in_data = false;
                } else if (line.op == ".space") {
                    int64_t n;
                    if (line.operands.size() != 1 ||
                        !parseInt(line.operands[0], n) || n < 0) {
                        parseError(line.number, "bad .space");
                    }
                    data_off += static_cast<uint64_t>(n);
                } else if (line.op == ".word") {
                    data_off += 4 * line.operands.size();
                } else if (line.op == ".byte") {
                    data_off += line.operands.size();
                } else if (line.op == ".double") {
                    // Already aligned above.
                    data_off += 8 * line.operands.size();
                } else if (line.op == ".align") {
                    int64_t a;
                    if (line.operands.size() != 1 ||
                        !parseInt(line.operands[0], a) ||
                        !isPowerOf2(static_cast<uint64_t>(a))) {
                        parseError(line.number, "bad .align");
                    }
                    data_off = alignUp(data_off,
                                       static_cast<uint64_t>(a));
                } else {
                    parseError(line.number,
                               "unknown directive " + line.op);
                }
                continue;
            }
            if (in_data)
                parseError(line.number, "instruction in .data");
            word_index += instWords(line);
        }
        dataSize = data_off;
    }

    void
    emit(const StaticInst &inst)
    {
        insts.push_back(inst);
    }

    RegId
    reg(const Line &line, const std::string &text) const
    {
        RegId r;
        if (!parseReg(text, r))
            parseError(line.number, "bad register '" + text + "'");
        return r;
    }

    int32_t
    imm16(const Line &line, const std::string &text) const
    {
        int64_t v;
        if (!parseInt(text, v))
            parseError(line.number, "bad immediate '" + text + "'");
        if (v < -32768 || v > 65535)
            parseError(line.number, "immediate out of range");
        if (v > 32767)
            v = static_cast<int16_t>(v); // logical-immediate folding
        return static_cast<int32_t>(v);
    }

    void
    emitLi(RegId rd, uint32_t value)
    {
        emit(StaticInst(Opcode::LUI, rd, reg_zero, reg_invalid,
                        static_cast<int16_t>(value >> 16)));
        emit(StaticInst(Opcode::ORI, rd, rd, reg_invalid,
                        static_cast<int16_t>(value & 0xffff)));
    }

    void
    expect(const Line &line, size_t n) const
    {
        if (line.operands.size() != n) {
            parseError(line.number,
                       strfmt("%s expects %zu operands, got %zu",
                              line.op.c_str(), n,
                              line.operands.size()));
        }
    }

    void
    emitInstruction(const Line &line)
    {
        // Pseudo-ops first.
        if (line.op == "nop") {
            emit(StaticInst(Opcode::ADDI, reg_zero, reg_zero,
                            reg_invalid, 0));
            return;
        }
        if (line.op == "mv") {
            expect(line, 2);
            emit(StaticInst(Opcode::ADDI, reg(line, line.operands[0]),
                            reg(line, line.operands[1]), reg_invalid,
                            0));
            return;
        }
        if (line.op == "li" || line.op == "la") {
            expect(line, 2);
            RegId rd = reg(line, line.operands[0]);
            uint32_t value;
            int64_t v;
            if (parseInt(line.operands[1], v)) {
                value = static_cast<uint32_t>(v);
            } else {
                value = static_cast<uint32_t>(
                    labelValue(line, line.operands[1]));
            }
            emitLi(rd, value);
            return;
        }

        int op_index = opcodeFor(line.op);
        if (op_index < 0)
            parseError(line.number, "unknown mnemonic " + line.op);
        Opcode op = static_cast<Opcode>(op_index);
        const OpInfo &info = opInfo(op);

        auto branch_offset = [&](const std::string &target,
                                 size_t inst_index) {
            uint64_t addr = labelValue(line, target);
            int64_t delta =
                (static_cast<int64_t>(addr) -
                 static_cast<int64_t>(code_base + 4 * inst_index)) /
                    4 -
                1;
            return static_cast<int32_t>(delta);
        };

        bool two_operand_r =
            op == Opcode::CVT_W_D || op == Opcode::CVT_D_W ||
            op == Opcode::FMOV || op == Opcode::FNEG;

        switch (info.format) {
          case InstFormat::R:
            if (two_operand_r) {
                expect(line, 2);
                emit(StaticInst(op, reg(line, line.operands[0]),
                                reg(line, line.operands[1]),
                                reg_invalid, 0));
            } else {
                expect(line, 3);
                emit(StaticInst(op, reg(line, line.operands[0]),
                                reg(line, line.operands[1]),
                                reg(line, line.operands[2]), 0));
            }
            break;
          case InstFormat::I:
            if (info.isLoad) {
                expect(line, 2);
                int64_t off;
                RegId base;
                if (!parseMemOperand(line.operands[1], off, base))
                    parseError(line.number, "bad memory operand");
                emit(StaticInst(op, reg(line, line.operands[0]), base,
                                reg_invalid,
                                static_cast<int32_t>(off)));
            } else if (op == Opcode::LUI) {
                expect(line, 2);
                emit(StaticInst(op, reg(line, line.operands[0]),
                                reg_zero, reg_invalid,
                                imm16(line, line.operands[1])));
            } else {
                expect(line, 3);
                emit(StaticInst(op, reg(line, line.operands[0]),
                                reg(line, line.operands[1]),
                                reg_invalid,
                                imm16(line, line.operands[2])));
            }
            break;
          case InstFormat::S: {
            expect(line, 2);
            int64_t off;
            RegId base;
            if (!parseMemOperand(line.operands[1], off, base))
                parseError(line.number, "bad memory operand");
            emit(StaticInst(op, reg_invalid, base,
                            reg(line, line.operands[0]),
                            static_cast<int32_t>(off)));
            break;
          }
          case InstFormat::B:
            expect(line, 3);
            emit(StaticInst(op, reg_invalid,
                            reg(line, line.operands[0]),
                            reg(line, line.operands[1]),
                            branch_offset(line.operands[2],
                                          insts.size())));
            break;
          case InstFormat::Jf:
            expect(line, 1);
            emit(StaticInst(op, info.isCall ? reg_ra : reg_invalid,
                            reg_invalid, reg_invalid,
                            branch_offset(line.operands[0],
                                          insts.size())));
            break;
          case InstFormat::JRf:
            if (info.isCall) {
                expect(line, 2);
                emit(StaticInst(op, reg(line, line.operands[0]),
                                reg(line, line.operands[1]),
                                reg_invalid, 0));
            } else {
                expect(line, 1);
                emit(StaticInst(op, reg_invalid,
                                reg(line, line.operands[0]),
                                reg_invalid, 0));
            }
            break;
          case InstFormat::N:
            expect(line, 0);
            emit(StaticInst(op, reg_invalid, reg_invalid, reg_invalid,
                            0));
            break;
        }
    }

    void
    dataWrite(uint64_t off, const void *src, size_t len)
    {
        if (data.size() < off + len)
            data.resize(off + len, 0);
        std::memcpy(&data[off], src, len);
    }

    void
    secondPass()
    {
        bool in_data = false;
        uint64_t data_off = 0;

        for (const Line &line : lines) {
            if (line.op.empty())
                continue;
            if (line.op[0] == '.') {
                if (line.op == ".data") {
                    in_data = true;
                } else if (line.op == ".text") {
                    in_data = false;
                } else if (line.op == ".space") {
                    int64_t n;
                    parseInt(line.operands[0], n);
                    data_off += static_cast<uint64_t>(n);
                    if (data.size() < data_off)
                        data.resize(data_off, 0);
                } else if (line.op == ".word") {
                    for (const auto &operand : line.operands) {
                        int64_t v;
                        if (!parseInt(operand, v))
                            parseError(line.number, "bad .word value");
                        uint32_t w = static_cast<uint32_t>(v);
                        dataWrite(data_off, &w, 4);
                        data_off += 4;
                    }
                } else if (line.op == ".byte") {
                    for (const auto &operand : line.operands) {
                        int64_t v;
                        if (!parseInt(operand, v))
                            parseError(line.number, "bad .byte value");
                        uint8_t byte = static_cast<uint8_t>(v);
                        dataWrite(data_off, &byte, 1);
                        data_off += 1;
                    }
                } else if (line.op == ".double") {
                    data_off = alignUp(data_off, 8);
                    for (const auto &operand : line.operands) {
                        double d;
                        try {
                            d = std::stod(operand);
                        } catch (...) {
                            parseError(line.number,
                                       "bad .double value");
                        }
                        dataWrite(data_off, &d, 8);
                        data_off += 8;
                    }
                } else if (line.op == ".align") {
                    int64_t a;
                    parseInt(line.operands[0], a);
                    data_off = alignUp(data_off,
                                       static_cast<uint64_t>(a));
                    if (data.size() < data_off)
                        data.resize(data_off, 0);
                }
                continue;
            }
            if (!in_data)
                emitInstruction(line);
        }
    }

    std::vector<Line> lines;
    std::map<std::string, uint64_t> labels;
    std::vector<StaticInst> insts;
    std::vector<uint8_t> data;
    uint64_t dataSize = 0;
};

} // anonymous namespace

Program
assembleText(const std::string &source)
{
    Assembler assembler;
    return assembler.assemble(source);
}

Program
assembleFile(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open assembly file '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return assembleText(buf.str());
}

} // namespace cwsim
