/**
 * @file
 * A two-pass textual assembler for the cwsim ISA, so kernels can be
 * written as .s text instead of through the ProgramBuilder API.
 *
 * Syntax:
 *
 *     # comment
 *     .data                     # switch to the data segment
 *     table: .space 64          # reserve 64 zero bytes
 *     pi:    .double 3.14159
 *     val:   .word 42 7 9       # 32-bit words
 *     msg:   .byte 104 105
 *     .align 8
 *     .text                     # switch back to code (default)
 *     start:
 *         la   r1, table        # pseudo-op: load a data label/address
 *         lw   r2, 4(r1)
 *         addi r2, r2, 1
 *         beq  r2, r0, done
 *         j    start
 *     done:
 *         halt
 *
 * Registers are r0..r31 and f0..f31. Mnemonics are the opcode names of
 * opcodes.hh (e.g. "fadd.d", "ld.f"). Pseudo-ops: `nop`, `mv rd, rs`,
 * `li rd, imm32`, `la rd, label`. Branch/jump targets are labels.
 * Errors are reported with line numbers via fatal().
 */

#ifndef CWSIM_ISA_ASM_PARSER_HH
#define CWSIM_ISA_ASM_PARSER_HH

#include <string>

#include "isa/program.hh"

namespace cwsim
{

/** Assemble @p source text into a Program. */
Program assembleText(const std::string &source);

/** Assemble the file at @p path. */
Program assembleFile(const std::string &path);

} // namespace cwsim

#endif // CWSIM_ISA_ASM_PARSER_HH
