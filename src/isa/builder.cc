#include "isa/builder.hh"

#include <cstring>

#include "base/intmath.hh"
#include "base/logging.hh"

namespace cwsim
{

ProgramBuilder::ProgramBuilder(Addr code_base, Addr data_base,
                               Addr stack_top)
    : codeBase(code_base), dataBase(data_base), stackTopAddr(stack_top),
      dataUsed(0)
{
    panic_if(code_base % 4 != 0, "code base must be word aligned");
}

ProgramBuilder::Label
ProgramBuilder::newLabel()
{
    labelTargets.push_back(-1);
    return labelTargets.size() - 1;
}

void
ProgramBuilder::bind(Label label)
{
    panic_if(label >= labelTargets.size(), "bad label %zu", label);
    panic_if(labelTargets[label] >= 0, "label %zu bound twice", label);
    labelTargets[label] = static_cast<int64_t>(insts.size());
}

void
ProgramBuilder::emit(const StaticInst &inst)
{
    insts.push_back(inst);
}

// R-format helpers ----------------------------------------------------

#define DEF_R(method, opcode)                                           \
    void                                                                \
    ProgramBuilder::method(RegId rd, RegId rs1, RegId rs2)              \
    {                                                                   \
        emit(StaticInst(Opcode::opcode, rd, rs1, rs2, 0));              \
    }

DEF_R(add, ADD)
DEF_R(sub, SUB)
DEF_R(and_, AND)
DEF_R(or_, OR)
DEF_R(xor_, XOR)
DEF_R(sll, SLL)
DEF_R(srl, SRL)
DEF_R(sra, SRA)
DEF_R(slt, SLT)
DEF_R(sltu, SLTU)
DEF_R(mul, MUL)
DEF_R(div, DIV)
DEF_R(rem, REM)
DEF_R(fadd_s, FADD_S)
DEF_R(fsub_s, FSUB_S)
DEF_R(fmul_s, FMUL_S)
DEF_R(fdiv_s, FDIV_S)
DEF_R(fadd_d, FADD_D)
DEF_R(fsub_d, FSUB_D)
DEF_R(fmul_d, FMUL_D)
DEF_R(fdiv_d, FDIV_D)
DEF_R(fclt, FCLT)
DEF_R(fcle, FCLE)
DEF_R(fceq, FCEQ)

#undef DEF_R

void
ProgramBuilder::cvt_w_d(RegId rd, RegId fs1)
{
    emit(StaticInst(Opcode::CVT_W_D, rd, fs1, reg_invalid, 0));
}

void
ProgramBuilder::cvt_d_w(RegId fd, RegId rs1)
{
    emit(StaticInst(Opcode::CVT_D_W, fd, rs1, reg_invalid, 0));
}

void
ProgramBuilder::fmov(RegId fd, RegId fs1)
{
    emit(StaticInst(Opcode::FMOV, fd, fs1, reg_invalid, 0));
}

void
ProgramBuilder::fneg(RegId fd, RegId fs1)
{
    emit(StaticInst(Opcode::FNEG, fd, fs1, reg_invalid, 0));
}

// I-format helpers ----------------------------------------------------

#define DEF_I(method, opcode)                                           \
    void                                                                \
    ProgramBuilder::method(RegId rd, RegId rs1, int32_t imm)            \
    {                                                                   \
        emit(StaticInst(Opcode::opcode, rd, rs1, reg_invalid, imm));    \
    }

DEF_I(addi, ADDI)
DEF_I(slli, SLLI)
DEF_I(srli, SRLI)
DEF_I(srai, SRAI)
DEF_I(slti, SLTI)

#undef DEF_I

namespace
{

/**
 * Logical immediates are zero-extended 16-bit fields; accept the
 * natural [0, 65535] range and fold it into the signed encoding slot.
 */
int32_t
logicalImm(int32_t imm)
{
    panic_if(imm < -32768 || imm > 65535,
             "logical immediate %d out of 16-bit range", imm);
    return static_cast<int16_t>(imm);
}

} // anonymous namespace

void
ProgramBuilder::andi(RegId rd, RegId rs1, int32_t imm)
{
    emit(StaticInst(Opcode::ANDI, rd, rs1, reg_invalid,
                    logicalImm(imm)));
}

void
ProgramBuilder::ori(RegId rd, RegId rs1, int32_t imm)
{
    emit(StaticInst(Opcode::ORI, rd, rs1, reg_invalid, logicalImm(imm)));
}

void
ProgramBuilder::xori(RegId rd, RegId rs1, int32_t imm)
{
    emit(StaticInst(Opcode::XORI, rd, rs1, reg_invalid,
                    logicalImm(imm)));
}

void
ProgramBuilder::lui(RegId rd, int32_t imm)
{
    emit(StaticInst(Opcode::LUI, rd, reg_zero, reg_invalid, imm));
}

// Memory ---------------------------------------------------------------

#define DEF_LOAD(method, opcode)                                        \
    void                                                                \
    ProgramBuilder::method(RegId rd, RegId base, int32_t off)           \
    {                                                                   \
        emit(StaticInst(Opcode::opcode, rd, base, reg_invalid, off));   \
    }

DEF_LOAD(lb, LB)
DEF_LOAD(lbu, LBU)
DEF_LOAD(lw, LW)
DEF_LOAD(ld_f, LD_F)

#undef DEF_LOAD

#define DEF_STORE(method, opcode)                                       \
    void                                                                \
    ProgramBuilder::method(RegId src, RegId base, int32_t off)          \
    {                                                                   \
        emit(StaticInst(Opcode::opcode, reg_invalid, base, src, off));  \
    }

DEF_STORE(sb, SB)
DEF_STORE(sw, SW)
DEF_STORE(sd_f, SD_F)

#undef DEF_STORE

// Control ---------------------------------------------------------------

void
ProgramBuilder::emitBranch(Opcode op, RegId rs1, RegId rs2, Label target)
{
    fixups.push_back(Fixup{insts.size(), target});
    emit(StaticInst(op, reg_invalid, rs1, rs2, 0));
}

void
ProgramBuilder::beq(RegId rs1, RegId rs2, Label target)
{
    emitBranch(Opcode::BEQ, rs1, rs2, target);
}

void
ProgramBuilder::bne(RegId rs1, RegId rs2, Label target)
{
    emitBranch(Opcode::BNE, rs1, rs2, target);
}

void
ProgramBuilder::blt(RegId rs1, RegId rs2, Label target)
{
    emitBranch(Opcode::BLT, rs1, rs2, target);
}

void
ProgramBuilder::bge(RegId rs1, RegId rs2, Label target)
{
    emitBranch(Opcode::BGE, rs1, rs2, target);
}

void
ProgramBuilder::j(Label target)
{
    fixups.push_back(Fixup{insts.size(), target});
    emit(StaticInst(Opcode::J, reg_invalid, reg_invalid, reg_invalid, 0));
}

void
ProgramBuilder::jal(Label target)
{
    fixups.push_back(Fixup{insts.size(), target});
    emit(StaticInst(Opcode::JAL, reg_ra, reg_invalid, reg_invalid, 0));
}

void
ProgramBuilder::jr(RegId rs1)
{
    emit(StaticInst(Opcode::JR, reg_invalid, rs1, reg_invalid, 0));
}

void
ProgramBuilder::jalr(RegId rd, RegId rs1)
{
    emit(StaticInst(Opcode::JALR, rd, rs1, reg_invalid, 0));
}

void
ProgramBuilder::halt()
{
    emit(StaticInst(Opcode::HALT, reg_invalid, reg_invalid, reg_invalid,
                    0));
}

// Pseudo-instructions ----------------------------------------------------

void
ProgramBuilder::nop()
{
    addi(reg_zero, reg_zero, 0);
}

void
ProgramBuilder::mv(RegId rd, RegId rs)
{
    addi(rd, rs, 0);
}

void
ProgramBuilder::li32(RegId rd, uint32_t value)
{
    int32_t as_signed = static_cast<int32_t>(value);
    if (as_signed >= -32768 && as_signed <= 32767) {
        addi(rd, reg_zero, as_signed);
        return;
    }
    // The upper half travels through the signed imm16 field; compute()
    // masks it back to 16 bits before shifting.
    lui(rd, static_cast<int16_t>(value >> 16));
    if (value & 0xffff)
        ori(rd, rd, static_cast<int32_t>(value & 0xffff));
}

// Data segment -------------------------------------------------------------

Addr
ProgramBuilder::dataAlloc(size_t bytes, size_t align)
{
    panic_if(!isPowerOf2(align), "data alignment must be a power of two");
    dataUsed = alignUp(dataUsed, align);
    Addr addr = dataBase + dataUsed;
    dataUsed += bytes;
    if (data.size() < dataUsed)
        data.resize(dataUsed, 0);
    return addr;
}

void
ProgramBuilder::dataW8(Addr addr, uint8_t v)
{
    size_t off = addr - dataBase;
    panic_if(off >= data.size(), "data write out of allocated range");
    data[off] = v;
}

void
ProgramBuilder::dataW32(Addr addr, uint32_t v)
{
    size_t off = addr - dataBase;
    panic_if(off + 4 > data.size(), "data write out of allocated range");
    std::memcpy(&data[off], &v, 4);
}

void
ProgramBuilder::dataW64(Addr addr, uint64_t v)
{
    size_t off = addr - dataBase;
    panic_if(off + 8 > data.size(), "data write out of allocated range");
    std::memcpy(&data[off], &v, 8);
}

void
ProgramBuilder::dataF64(Addr addr, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    dataW64(addr, bits);
}

Program
ProgramBuilder::build()
{
    // Resolve branch/jump fixups to word offsets relative to inst+1.
    for (const Fixup &fx : fixups) {
        panic_if(fx.label >= labelTargets.size(), "bad fixup label");
        int64_t target = labelTargets[fx.label];
        panic_if(target < 0, "label %zu never bound", fx.label);
        int64_t delta = target - static_cast<int64_t>(fx.instIndex) - 1;
        insts[fx.instIndex].imm = static_cast<int32_t>(delta);
    }

    Program prog;
    prog.setEntry(codeBase);
    prog.setStaticInstCount(insts.size());

    std::vector<uint8_t> code(insts.size() * 4);
    for (size_t i = 0; i < insts.size(); ++i) {
        uint32_t word = insts[i].encode();
        std::memcpy(&code[i * 4], &word, 4);
    }
    prog.addSegment(codeBase, std::move(code));

    if (!data.empty())
        prog.addSegment(dataBase, data);

    return prog;
}

} // namespace cwsim
