/**
 * @file
 * ProgramBuilder: an embedded assembler with labels, used by the
 * workload kernels. One mnemonic method per opcode, plus pseudo-ops
 * (li32/la/nop/mv) and a bump allocator for the data segment.
 */

#ifndef CWSIM_ISA_BUILDER_HH
#define CWSIM_ISA_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "isa/program.hh"
#include "isa/static_inst.hh"

namespace cwsim
{

class ProgramBuilder
{
  public:
    /** An index into the builder's label table. */
    using Label = size_t;

    explicit ProgramBuilder(Addr code_base = 0x1000,
                            Addr data_base = 0x100000,
                            Addr stack_top = 0xf00000);

    // --- labels -----------------------------------------------------
    Label newLabel();
    /** Bind @p label to the next emitted instruction. */
    void bind(Label label);
    /** Shorthand: create a label bound right here. */
    Label
    hereLabel()
    {
        Label l = newLabel();
        bind(l);
        return l;
    }

    /** PC the next emitted instruction will occupy. */
    Addr herePc() const { return codeBase + 4 * insts.size(); }

    // --- raw emission -----------------------------------------------
    void emit(const StaticInst &inst);

    // --- ALU, register-register --------------------------------------
    void add(RegId rd, RegId rs1, RegId rs2);
    void sub(RegId rd, RegId rs1, RegId rs2);
    void and_(RegId rd, RegId rs1, RegId rs2);
    void or_(RegId rd, RegId rs1, RegId rs2);
    void xor_(RegId rd, RegId rs1, RegId rs2);
    void sll(RegId rd, RegId rs1, RegId rs2);
    void srl(RegId rd, RegId rs1, RegId rs2);
    void sra(RegId rd, RegId rs1, RegId rs2);
    void slt(RegId rd, RegId rs1, RegId rs2);
    void sltu(RegId rd, RegId rs1, RegId rs2);
    void mul(RegId rd, RegId rs1, RegId rs2);
    void div(RegId rd, RegId rs1, RegId rs2);
    void rem(RegId rd, RegId rs1, RegId rs2);

    // --- ALU, register-immediate --------------------------------------
    void addi(RegId rd, RegId rs1, int32_t imm);
    void andi(RegId rd, RegId rs1, int32_t imm);
    void ori(RegId rd, RegId rs1, int32_t imm);
    void xori(RegId rd, RegId rs1, int32_t imm);
    void slli(RegId rd, RegId rs1, int32_t shamt);
    void srli(RegId rd, RegId rs1, int32_t shamt);
    void srai(RegId rd, RegId rs1, int32_t shamt);
    void slti(RegId rd, RegId rs1, int32_t imm);
    void lui(RegId rd, int32_t imm);

    // --- floating point ------------------------------------------------
    void fadd_s(RegId fd, RegId fs1, RegId fs2);
    void fsub_s(RegId fd, RegId fs1, RegId fs2);
    void fmul_s(RegId fd, RegId fs1, RegId fs2);
    void fdiv_s(RegId fd, RegId fs1, RegId fs2);
    void fadd_d(RegId fd, RegId fs1, RegId fs2);
    void fsub_d(RegId fd, RegId fs1, RegId fs2);
    void fmul_d(RegId fd, RegId fs1, RegId fs2);
    void fdiv_d(RegId fd, RegId fs1, RegId fs2);
    void fclt(RegId rd, RegId fs1, RegId fs2);
    void fcle(RegId rd, RegId fs1, RegId fs2);
    void fceq(RegId rd, RegId fs1, RegId fs2);
    void cvt_w_d(RegId rd, RegId fs1);
    void cvt_d_w(RegId fd, RegId rs1);
    void fmov(RegId fd, RegId fs1);
    void fneg(RegId fd, RegId fs1);

    // --- memory ----------------------------------------------------------
    void lb(RegId rd, RegId base, int32_t off);
    void lbu(RegId rd, RegId base, int32_t off);
    void lw(RegId rd, RegId base, int32_t off);
    void sb(RegId src, RegId base, int32_t off);
    void sw(RegId src, RegId base, int32_t off);
    void ld_f(RegId fd, RegId base, int32_t off);
    void sd_f(RegId fsrc, RegId base, int32_t off);

    // --- control ----------------------------------------------------------
    void beq(RegId rs1, RegId rs2, Label target);
    void bne(RegId rs1, RegId rs2, Label target);
    void blt(RegId rs1, RegId rs2, Label target);
    void bge(RegId rs1, RegId rs2, Label target);
    void j(Label target);
    void jal(Label target);
    void jr(RegId rs1);
    void jalr(RegId rd, RegId rs1);
    void halt();

    // --- pseudo-instructions ----------------------------------------------
    void nop();
    /** rd <- rs (integer move). */
    void mv(RegId rd, RegId rs);
    /** Load an arbitrary 32-bit constant (lui/ori pair or single op). */
    void li32(RegId rd, uint32_t value);
    /** Load an address constant. */
    void la(RegId rd, Addr addr) { li32(rd, static_cast<uint32_t>(addr)); }

    // --- data segment -------------------------------------------------------
    /** Reserve @p bytes of zero-initialized data; returns its address. */
    Addr dataAlloc(size_t bytes, size_t align = 8);
    void dataW8(Addr addr, uint8_t v);
    void dataW32(Addr addr, uint32_t v);
    void dataW64(Addr addr, uint64_t v);
    void dataF64(Addr addr, double v);

    Addr stackTop() const { return stackTopAddr; }

    /** Resolve all label fixups and produce the image. */
    Program build();

    size_t instCount() const { return insts.size(); }

  private:
    struct Fixup
    {
        size_t instIndex;
        Label label;
    };

    void emitBranch(Opcode op, RegId rs1, RegId rs2, Label target);

    Addr codeBase;
    Addr dataBase;
    Addr stackTopAddr;
    std::vector<StaticInst> insts;
    std::vector<int64_t> labelTargets; ///< inst index or -1 if unbound
    std::vector<Fixup> fixups;
    std::vector<uint8_t> data;
    size_t dataUsed;
};

} // namespace cwsim

#endif // CWSIM_ISA_BUILDER_HH
