#include "isa/exec_fn.hh"

#include <bit>

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace cwsim
{
namespace exec
{

double
asDouble(uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

uint64_t
fromDouble(double d)
{
    return std::bit_cast<uint64_t>(d);
}

uint64_t
compute(const StaticInst &inst, uint64_t a, uint64_t b, Addr pc)
{
    int32_t ia = static_cast<int32_t>(a);
    int32_t ib = static_cast<int32_t>(b);
    uint32_t ua = static_cast<uint32_t>(a);
    uint32_t ub = static_cast<uint32_t>(b);
    int32_t imm = inst.imm;
    double fa = asDouble(a);
    double fb = asDouble(b);

    switch (inst.op) {
      case Opcode::ADD: return canonInt(ua + ub);
      case Opcode::SUB: return canonInt(ua - ub);
      case Opcode::AND: return canonInt(ua & ub);
      case Opcode::OR: return canonInt(ua | ub);
      case Opcode::XOR: return canonInt(ua ^ ub);
      case Opcode::SLL: return canonInt(ua << (ub & 31));
      case Opcode::SRL: return canonInt(ua >> (ub & 31));
      case Opcode::SRA: return canonInt(
          static_cast<uint32_t>(ia >> (ub & 31)));
      case Opcode::SLT: return ia < ib ? 1 : 0;
      case Opcode::SLTU: return ua < ub ? 1 : 0;
      case Opcode::ADDI: return canonInt(ua + static_cast<uint32_t>(imm));
      // Logical immediates zero-extend their 16-bit field (as in MIPS).
      case Opcode::ANDI: return canonInt(ua &
          (static_cast<uint32_t>(imm) & 0xffff));
      case Opcode::ORI: return canonInt(ua |
          (static_cast<uint32_t>(imm) & 0xffff));
      case Opcode::XORI: return canonInt(ua ^
          (static_cast<uint32_t>(imm) & 0xffff));
      case Opcode::SLLI: return canonInt(ua << (imm & 31));
      case Opcode::SRLI: return canonInt(ua >> (imm & 31));
      case Opcode::SRAI: return canonInt(
          static_cast<uint32_t>(ia >> (imm & 31)));
      case Opcode::SLTI: return ia < imm ? 1 : 0;
      case Opcode::LUI: return canonInt(static_cast<uint32_t>(imm) << 16);
      case Opcode::MUL: return canonInt(ua * ub);
      case Opcode::DIV:
        // Division by zero yields zero (the ISA has no traps).
        if (ib == 0)
            return 0;
        if (ia == INT32_MIN && ib == -1)
            return canonInt(static_cast<uint32_t>(INT32_MIN));
        return canonInt(static_cast<uint32_t>(ia / ib));
      case Opcode::REM:
        if (ib == 0)
            return 0;
        if (ia == INT32_MIN && ib == -1)
            return 0;
        return canonInt(static_cast<uint32_t>(ia % ib));
      case Opcode::FADD_S:
      case Opcode::FADD_D: return fromDouble(fa + fb);
      case Opcode::FSUB_S:
      case Opcode::FSUB_D: return fromDouble(fa - fb);
      case Opcode::FMUL_S:
      case Opcode::FMUL_D: return fromDouble(fa * fb);
      case Opcode::FDIV_S:
      case Opcode::FDIV_D:
        return fromDouble(fb == 0.0 ? 0.0 : fa / fb);
      case Opcode::FCLT: return fa < fb ? 1 : 0;
      case Opcode::FCLE: return fa <= fb ? 1 : 0;
      case Opcode::FCEQ: return fa == fb ? 1 : 0;
      case Opcode::CVT_W_D:
      {
        // Saturate out-of-range conversions instead of raising.
        if (fa >= 2147483647.0)
            return canonInt(0x7fffffffu);
        if (fa <= -2147483648.0)
            return canonInt(0x80000000u);
        return canonInt(static_cast<uint32_t>(static_cast<int32_t>(fa)));
      }
      case Opcode::CVT_D_W: return fromDouble(static_cast<double>(ia));
      case Opcode::FMOV: return a;
      case Opcode::FNEG: return fromDouble(-fa);
      case Opcode::JAL:
      case Opcode::JALR: return canonInt(static_cast<uint32_t>(pc + 4));
      default:
        panic("compute() on non-computational opcode %s",
              opName(inst.op));
    }
}

bool
branchTaken(Opcode op, uint64_t a, uint64_t b)
{
    int32_t ia = static_cast<int32_t>(a);
    int32_t ib = static_cast<int32_t>(b);
    switch (op) {
      case Opcode::BEQ: return ia == ib;
      case Opcode::BNE: return ia != ib;
      case Opcode::BLT: return ia < ib;
      case Opcode::BGE: return ia >= ib;
      default:
        panic("branchTaken() on non-branch opcode %s", opName(op));
    }
}

Addr
effectiveAddr(const StaticInst &inst, uint64_t base)
{
    uint32_t addr = static_cast<uint32_t>(base) +
                    static_cast<uint32_t>(inst.imm);
    return static_cast<Addr>(addr);
}

uint64_t
loadExtend(const StaticInst &inst, uint64_t raw)
{
    const OpInfo &i = inst.info();
    switch (i.memSize) {
      case 1:
        return i.memSigned ? static_cast<uint64_t>(sext(raw, 8))
                           : (raw & mask(8));
      case 4:
        return canonInt(raw);
      case 8:
        return raw;
      default:
        panic("loadExtend: bad access size %u", i.memSize);
    }
}

uint64_t
storeValue(const StaticInst &inst, uint64_t src)
{
    unsigned size = inst.memSize();
    return size >= 8 ? src : (src & mask(8 * size));
}

} // namespace exec
} // namespace cwsim
