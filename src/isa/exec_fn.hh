/**
 * @file
 * Pure computational semantics of the cwsim ISA.
 *
 * These functions are shared verbatim by the functional interpreter and
 * the out-of-order timing core, which is what guarantees the
 * architectural-equivalence property tests can compare the two.
 *
 * Value representation: every register value travels as a uint64_t.
 * Integer registers hold 32-bit values sign-extended to 64 bits
 * (canonical form); fp registers hold the bit pattern of a double.
 */

#ifndef CWSIM_ISA_EXEC_FN_HH
#define CWSIM_ISA_EXEC_FN_HH

#include <cstdint>

#include "base/types.hh"
#include "isa/static_inst.hh"

namespace cwsim
{
namespace exec
{

/** Canonicalize a 32-bit integer result (sign-extend to 64 bits). */
constexpr uint64_t
canonInt(uint64_t v)
{
    return static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int32_t>(v)));
}

/** Reinterpret a register value as a double. */
double asDouble(uint64_t bits);

/** Reinterpret a double as a register value. */
uint64_t fromDouble(double d);

/**
 * Compute the result of a non-memory, non-control instruction (or the
 * link value of a call). @p a and @p b are the rs1/rs2 source values;
 * @p pc is the instruction's own PC (used by JAL/JALR).
 */
uint64_t compute(const StaticInst &inst, uint64_t a, uint64_t b, Addr pc);

/** Evaluate a conditional branch. */
bool branchTaken(Opcode op, uint64_t a, uint64_t b);

/** Effective address of a memory instruction given the base value. */
Addr effectiveAddr(const StaticInst &inst, uint64_t base);

/** Extend a raw little-endian loaded value per the load's semantics. */
uint64_t loadExtend(const StaticInst &inst, uint64_t raw);

/** The value a store writes to memory (truncated to access size). */
uint64_t storeValue(const StaticInst &inst, uint64_t src);

} // namespace exec
} // namespace cwsim

#endif // CWSIM_ISA_EXEC_FN_HH
