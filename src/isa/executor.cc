#include "isa/executor.hh"

#include "base/logging.hh"
#include "isa/exec_fn.hh"
#include "mem/functional_memory.hh"

namespace cwsim
{

const StaticInst &
DecodeCache::lookup(Addr pc)
{
    Slot &slot = slots[(pc >> 2) & (num_slots - 1)];
    if (slot.pc == pc)
        return slot.inst;
    uint32_t word = static_cast<uint32_t>(mem->read(pc, 4));
    if (tolerateInvalid && (word >> 26) >= num_opcodes) {
        // Wrong-path fetch into non-code bytes: substitute a harmless
        // no-op; it can never commit.
        slot.inst = StaticInst(Opcode::ADD, reg_zero, reg_zero,
                               reg_zero, 0);
    } else {
        slot.inst = StaticInst::decode(word);
    }
    if (slot.pc == invalid_addr)
        ++numResident;
    slot.pc = pc;
    return slot.inst;
}

Executor::Executor(FunctionalMemory &mem, Addr entry)
    : mem(mem), decoder(mem), numInsts(0)
{
    archState.pc = entry;
}

StepInfo
Executor::step()
{
    panic_if(archState.halted, "step() after halt");

    StepInfo info;
    info.pc = archState.pc;
    const StaticInst &inst = decoder.lookup(archState.pc);
    info.inst = inst;
    info.nextPc = archState.pc + 4;

    uint64_t a = archState.readReg(inst.rs1);
    uint64_t b = archState.readReg(inst.rs2);

    if (inst.isHalt()) {
        archState.halted = true;
        info.halted = true;
    } else if (inst.isLoad()) {
        Addr addr = exec::effectiveAddr(inst, a);
        uint64_t raw = mem.read(addr, inst.memSize());
        uint64_t value = exec::loadExtend(inst, raw);
        archState.writeReg(inst.rd, value);
        info.isLoad = true;
        info.memAddr = addr;
        info.memSize = inst.memSize();
        info.memValue = value;
    } else if (inst.isStore()) {
        Addr addr = exec::effectiveAddr(inst, a);
        uint64_t value = exec::storeValue(inst, b);
        mem.write(addr, inst.memSize(), value);
        info.isStore = true;
        info.memAddr = addr;
        info.memSize = inst.memSize();
        info.memValue = value;
    } else if (inst.isBranch()) {
        info.taken = exec::branchTaken(inst.op, a, b);
        if (info.taken)
            info.nextPc = branchTarget(inst, archState.pc);
    } else if (inst.isJump()) {
        info.taken = true;
        if (inst.isIndirect()) {
            info.nextPc = static_cast<Addr>(static_cast<uint32_t>(a));
        } else {
            info.nextPc = branchTarget(inst, archState.pc);
        }
        if (inst.writesReg()) {
            archState.writeReg(
                inst.rd, exec::compute(inst, a, b, archState.pc));
        }
    } else {
        archState.writeReg(inst.rd,
                           exec::compute(inst, a, b, archState.pc));
    }

    archState.pc = info.nextPc;
    ++numInsts;
    return info;
}

uint64_t
Executor::run(uint64_t max_insts)
{
    uint64_t executed = 0;
    while (!archState.halted && executed < max_insts) {
        step();
        ++executed;
    }
    return executed;
}

} // namespace cwsim
