/**
 * @file
 * The functional core: an architectural-state interpreter for the cwsim
 * ISA. It provides golden results for the correctness tests, drives
 * fast-forward (functional) phases of sampled simulation, and generates
 * the committed-path trace the oracle disambiguator and the split-window
 * model are built from.
 */

#ifndef CWSIM_ISA_EXECUTOR_HH
#define CWSIM_ISA_EXECUTOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "isa/static_inst.hh"

namespace cwsim
{

class FunctionalMemory;

/** The complete architected register state plus the PC. */
struct ArchState
{
    Addr pc = 0;
    std::array<uint64_t, num_arch_regs> regs{};
    bool halted = false;

    uint64_t
    readReg(RegId r) const
    {
        if (r == reg_invalid || r == reg_zero)
            return 0;
        return regs[r];
    }

    void
    writeReg(RegId r, uint64_t v)
    {
        if (r != reg_invalid && r != reg_zero)
            regs[r] = v;
    }
};

/**
 * Decoded-instruction cache keyed by PC. Programs are not
 * self-modifying, so entries never need invalidation.
 */
class DecodeCache
{
  public:
    /**
     * @param tolerate_invalid Decode undecodable words as harmless
     *        "add r0, r0, r0" instead of panicking — required by the
     *        fetch unit, which may chase wrong-path PCs into data or
     *        unmapped memory.
     */
    explicit DecodeCache(const FunctionalMemory &mem,
                         bool tolerate_invalid = false)
        : mem(&mem), tolerateInvalid(tolerate_invalid),
          slots(num_slots)
    {}

    const StaticInst &lookup(Addr pc);

    /** Number of resident decoded instructions. */
    size_t size() const { return numResident; }

  private:
    /**
     * Direct-mapped by word-aligned pc: fetch hits this once per
     * fetched instruction, and a hash probe per fetch is measurable.
     * Code is immutable, so a collision simply re-decodes.
     */
    struct Slot
    {
        Addr pc = invalid_addr;
        StaticInst inst;
    };
    static constexpr size_t num_slots = 8192;
    static_assert((num_slots & (num_slots - 1)) == 0,
                  "slot count must be a power of two");

    const FunctionalMemory *mem;
    bool tolerateInvalid;
    std::vector<Slot> slots;
    size_t numResident = 0;
};

/** Everything observable about one functionally executed instruction. */
struct StepInfo
{
    Addr pc = 0;
    StaticInst inst;
    bool isLoad = false;
    bool isStore = false;
    Addr memAddr = invalid_addr;
    unsigned memSize = 0;
    /** Value loaded (after extension) or stored (truncated). */
    uint64_t memValue = 0;
    bool taken = false;     ///< Control transfer taken.
    Addr nextPc = 0;
    bool halted = false;
};

class Executor
{
  public:
    /**
     * @param mem Architectural memory (already loaded with the program).
     * @param entry Initial PC.
     */
    Executor(FunctionalMemory &mem, Addr entry);

    /** Execute one instruction; undefined if already halted. */
    StepInfo step();

    /**
     * Run until HALT or until @p max_insts more instructions execute.
     * @return Number of instructions executed by this call.
     */
    uint64_t run(uint64_t max_insts = ~uint64_t(0));

    bool halted() const { return archState.halted; }
    uint64_t instCount() const { return numInsts; }

    ArchState &state() { return archState; }
    const ArchState &state() const { return archState; }

  private:
    FunctionalMemory &mem;
    DecodeCache decoder;
    ArchState archState;
    uint64_t numInsts;
};

} // namespace cwsim

#endif // CWSIM_ISA_EXECUTOR_HH
