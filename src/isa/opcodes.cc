#include "isa/opcodes.hh"

#include "base/logging.hh"

namespace cwsim
{

namespace
{

using F = InstFormat;
using U = FuClass;

// One row per opcode, in enum order.
// name, format, fu, lat, load, store, br, jmp, call, ret, wRd,
// rdFp, rs1Fp, rs2Fp, memSize, memSigned
const OpInfo op_table[num_opcodes] = {
    {"add",    F::R, U::IntAlu, 1, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"sub",    F::R, U::IntAlu, 1, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"and",    F::R, U::IntAlu, 1, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"or",     F::R, U::IntAlu, 1, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"xor",    F::R, U::IntAlu, 1, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"sll",    F::R, U::IntAlu, 1, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"srl",    F::R, U::IntAlu, 1, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"sra",    F::R, U::IntAlu, 1, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"slt",    F::R, U::IntAlu, 1, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"sltu",   F::R, U::IntAlu, 1, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"addi",   F::I, U::IntAlu, 1, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"andi",   F::I, U::IntAlu, 1, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"ori",    F::I, U::IntAlu, 1, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"xori",   F::I, U::IntAlu, 1, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"slli",   F::I, U::IntAlu, 1, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"srli",   F::I, U::IntAlu, 1, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"srai",   F::I, U::IntAlu, 1, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"slti",   F::I, U::IntAlu, 1, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"lui",    F::I, U::IntAlu, 1, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"mul",    F::R, U::IntMul,  4, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"div",    F::R, U::IntDiv, 12, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"rem",    F::R, U::IntDiv, 12, 0,0,0,0,0,0, 1, 0,0,0, 0,0},
    {"fadd.s", F::R, U::FpAdd,  2, 0,0,0,0,0,0, 1, 1,1,1, 0,0},
    {"fsub.s", F::R, U::FpAdd,  2, 0,0,0,0,0,0, 1, 1,1,1, 0,0},
    {"fmul.s", F::R, U::FpMul,  4, 0,0,0,0,0,0, 1, 1,1,1, 0,0},
    {"fdiv.s", F::R, U::FpDiv, 12, 0,0,0,0,0,0, 1, 1,1,1, 0,0},
    {"fadd.d", F::R, U::FpAdd,  2, 0,0,0,0,0,0, 1, 1,1,1, 0,0},
    {"fsub.d", F::R, U::FpAdd,  2, 0,0,0,0,0,0, 1, 1,1,1, 0,0},
    {"fmul.d", F::R, U::FpMul,  5, 0,0,0,0,0,0, 1, 1,1,1, 0,0},
    {"fdiv.d", F::R, U::FpDiv, 15, 0,0,0,0,0,0, 1, 1,1,1, 0,0},
    {"fclt",   F::R, U::FpAdd,  2, 0,0,0,0,0,0, 1, 0,1,1, 0,0},
    {"fcle",   F::R, U::FpAdd,  2, 0,0,0,0,0,0, 1, 0,1,1, 0,0},
    {"fceq",   F::R, U::FpAdd,  2, 0,0,0,0,0,0, 1, 0,1,1, 0,0},
    {"cvt.w.d",F::R, U::FpAdd,  2, 0,0,0,0,0,0, 1, 0,1,0, 0,0},
    {"cvt.d.w",F::R, U::FpAdd,  2, 0,0,0,0,0,0, 1, 1,0,0, 0,0},
    {"fmov",   F::R, U::FpAdd,  1, 0,0,0,0,0,0, 1, 1,1,0, 0,0},
    {"fneg",   F::R, U::FpAdd,  1, 0,0,0,0,0,0, 1, 1,1,0, 0,0},
    {"lb",     F::I, U::MemPort, 1, 1,0,0,0,0,0, 1, 0,0,0, 1,1},
    {"lbu",    F::I, U::MemPort, 1, 1,0,0,0,0,0, 1, 0,0,0, 1,0},
    {"lw",     F::I, U::MemPort, 1, 1,0,0,0,0,0, 1, 0,0,0, 4,1},
    {"sb",     F::S, U::MemPort, 1, 0,1,0,0,0,0, 0, 0,0,0, 1,0},
    {"sw",     F::S, U::MemPort, 1, 0,1,0,0,0,0, 0, 0,0,0, 4,0},
    {"ld.f",   F::I, U::MemPort, 1, 1,0,0,0,0,0, 1, 1,0,0, 8,0},
    {"sd.f",   F::S, U::MemPort, 1, 0,1,0,0,0,0, 0, 0,0,1, 8,0},
    {"beq",    F::B, U::IntAlu, 1, 0,0,1,0,0,0, 0, 0,0,0, 0,0},
    {"bne",    F::B, U::IntAlu, 1, 0,0,1,0,0,0, 0, 0,0,0, 0,0},
    {"blt",    F::B, U::IntAlu, 1, 0,0,1,0,0,0, 0, 0,0,0, 0,0},
    {"bge",    F::B, U::IntAlu, 1, 0,0,1,0,0,0, 0, 0,0,0, 0,0},
    {"j",      F::Jf, U::IntAlu, 1, 0,0,0,1,0,0, 0, 0,0,0, 0,0},
    {"jal",    F::Jf, U::IntAlu, 1, 0,0,0,1,1,0, 1, 0,0,0, 0,0},
    {"jr",     F::JRf, U::IntAlu, 1, 0,0,0,1,0,1, 0, 0,0,0, 0,0},
    {"jalr",   F::JRf, U::IntAlu, 1, 0,0,0,1,1,0, 1, 0,0,0, 0,0},
    {"halt",   F::N, U::IntAlu, 1, 0,0,0,0,0,0, 0, 0,0,0, 0,0},
};

} // anonymous namespace

const OpInfo &
opInfo(Opcode op)
{
    unsigned idx = static_cast<unsigned>(op);
    panic_if(idx >= num_opcodes, "bad opcode %u", idx);
    return op_table[idx];
}

} // namespace cwsim
