/**
 * @file
 * The cwsim ISA opcode set and its static metadata.
 *
 * The ISA is a MIPS-I-flavoured 32-bit load/store RISC: 6-bit opcodes,
 * three-register or register-immediate formats, word-granular PC. The
 * functional-unit latencies attached to each opcode reproduce Table 2 of
 * the paper (integer 1 cycle, multiply 4, divide 12; FP add/sub/compare
 * 2, SP multiply 4, DP multiply 5, SP divide 12, DP divide 15).
 */

#ifndef CWSIM_ISA_OPCODES_HH
#define CWSIM_ISA_OPCODES_HH

#include <cstdint>

#include "base/types.hh"

namespace cwsim
{

enum class Opcode : uint8_t
{
    // Integer ALU, register-register.
    ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
    // Integer ALU, register-immediate.
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, LUI,
    // Multiply / divide.
    MUL, DIV, REM,
    // Floating point (registers hold 64-bit values; the _S forms model
    // single-precision latency).
    FADD_S, FSUB_S, FMUL_S, FDIV_S,
    FADD_D, FSUB_D, FMUL_D, FDIV_D,
    FCLT, FCLE, FCEQ,      // fp compare -> int register
    CVT_W_D, CVT_D_W,      // double<->int conversions
    FMOV, FNEG,
    // Memory.
    LB, LBU, LW,           // int loads
    SB, SW,                // int stores
    LD_F, SD_F,            // fp loads/stores (8 bytes)
    // Control.
    BEQ, BNE, BLT, BGE,
    J, JAL, JR, JALR,
    // Termination.
    HALT,

    NUM_OPCODES,
};

constexpr unsigned num_opcodes = static_cast<unsigned>(Opcode::NUM_OPCODES);

/** Instruction formats (operand-field interpretation). */
enum class InstFormat : uint8_t
{
    R,   ///< rd <- op(rs1, rs2)
    I,   ///< rd <- op(rs1, imm)
    S,   ///< mem[rs1 + imm] <- rs2
    B,   ///< if cmp(rs1, rs2) goto pc + 4 + imm*4
    Jf,  ///< goto pc + 4 + imm*4 (JAL links into r31)
    JRf, ///< goto rs1 (JALR links into rd)
    N,   ///< no operands (HALT)
};

/** Functional-unit classes (Table 2: 8 fully pipelined copies each). */
enum class FuClass : uint8_t
{
    IntAlu,
    IntMul,
    IntDiv,
    FpAdd,
    FpMul,
    FpDiv,
    MemPort,
    None,
    NUM_CLASSES,
};

constexpr unsigned num_fu_classes =
    static_cast<unsigned>(FuClass::NUM_CLASSES);

/** Static per-opcode properties. */
struct OpInfo
{
    const char *name;
    InstFormat format;
    FuClass fu;
    Cycles latency;      ///< Execution latency once issued.
    bool isLoad;
    bool isStore;
    bool isBranch;       ///< Conditional branch.
    bool isJump;         ///< Unconditional control transfer.
    bool isCall;
    bool isReturn;
    bool writesRd;
    bool rdFp;           ///< Destination is a fp register.
    bool rs1Fp;
    bool rs2Fp;
    unsigned memSize;    ///< Access size in bytes (0 for non-memory).
    bool memSigned;      ///< Sign-extend the loaded value.
};

/** One metadata row per opcode, in enum order (defined in opcodes.cc). */
extern const OpInfo op_table[num_opcodes];

/**
 * Metadata for @p op. Inline: the accessors below sit on the fetch,
 * dispatch, and issue hot paths, where an out-of-line call per query
 * is measurable.
 */
inline const OpInfo &
opInfo(Opcode op)
{
    return op_table[static_cast<unsigned>(op)];
}

inline const char *
opName(Opcode op)
{
    return opInfo(op).name;
}

inline bool
isMemOp(Opcode op)
{
    const OpInfo &i = opInfo(op);
    return i.isLoad || i.isStore;
}

inline bool
isControlOp(Opcode op)
{
    const OpInfo &i = opInfo(op);
    return i.isBranch || i.isJump;
}

} // namespace cwsim

#endif // CWSIM_ISA_OPCODES_HH
