#include "isa/program.hh"

#include "mem/functional_memory.hh"

namespace cwsim
{

void
Program::addSegment(Addr base, std::vector<uint8_t> bytes)
{
    segs.push_back(Segment{base, std::move(bytes)});
}

void
Program::loadInto(FunctionalMemory &mem) const
{
    for (const Segment &seg : segs)
        mem.writeBytes(seg.base, seg.bytes.data(), seg.bytes.size());
}

} // namespace cwsim
