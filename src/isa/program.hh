/**
 * @file
 * An executable memory image: code and data segments plus an entry PC.
 */

#ifndef CWSIM_ISA_PROGRAM_HH
#define CWSIM_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"

namespace cwsim
{

class FunctionalMemory;

class Program
{
  public:
    struct Segment
    {
        Addr base;
        std::vector<uint8_t> bytes;
    };

    Program() : entryPc(0) {}

    void setEntry(Addr pc) { entryPc = pc; }
    Addr entry() const { return entryPc; }

    void addSegment(Addr base, std::vector<uint8_t> bytes);

    const std::vector<Segment> &segments() const { return segs; }

    /** Number of static instructions (words in code segments). */
    size_t staticInstCount() const { return numCodeWords; }
    void setStaticInstCount(size_t n) { numCodeWords = n; }

    /** Copy every segment into @p mem. */
    void loadInto(FunctionalMemory &mem) const;

  private:
    Addr entryPc;
    std::vector<Segment> segs;
    size_t numCodeWords = 0;
};

} // namespace cwsim

#endif // CWSIM_ISA_PROGRAM_HH
