/**
 * @file
 * Register identifiers for the cwsim ISA.
 *
 * The architected state mirrors the paper's machine: 32 integer
 * registers (r0 hardwired to zero), 32 floating-point registers, and
 * the HI/LO multiply-divide pair. Identifiers are flat so the rename
 * logic and scoreboard can index a single array.
 */

#ifndef CWSIM_ISA_REGISTERS_HH
#define CWSIM_ISA_REGISTERS_HH

#include <cstdint>

namespace cwsim
{

/** Flat register identifier: [0,32) int, [32,64) fp, 64 HI, 65 LO. */
using RegId = uint8_t;

constexpr unsigned num_int_regs = 32;
constexpr unsigned num_fp_regs = 32;
constexpr RegId reg_hi = 64;
constexpr RegId reg_lo = 65;
constexpr unsigned num_arch_regs = 66;

/** Sentinel meaning "no register operand". */
constexpr RegId reg_invalid = 0xff;

/** Integer register r<n>. */
constexpr RegId
ir(unsigned n)
{
    return static_cast<RegId>(n);
}

/** Floating-point register f<n>. */
constexpr RegId
fr(unsigned n)
{
    return static_cast<RegId>(num_int_regs + n);
}

constexpr bool
isIntReg(RegId r)
{
    return r < num_int_regs;
}

constexpr bool
isFpReg(RegId r)
{
    return r >= num_int_regs && r < num_int_regs + num_fp_regs;
}

/** The always-zero integer register. */
constexpr RegId reg_zero = ir(0);
/** Conventional stack pointer. */
constexpr RegId reg_sp = ir(29);
/** Conventional link register (JAL writes it). */
constexpr RegId reg_ra = ir(31);

} // namespace cwsim

#endif // CWSIM_ISA_REGISTERS_HH
