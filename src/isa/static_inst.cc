#include "isa/static_inst.hh"

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "base/str.hh"

namespace cwsim
{

namespace
{

/** Render a register operand with its file prefix. */
std::string
regName(RegId r)
{
    if (r == reg_invalid)
        return "-";
    if (isIntReg(r))
        return strfmt("r%u", static_cast<unsigned>(r));
    if (isFpReg(r))
        return strfmt("f%u", static_cast<unsigned>(r - num_int_regs));
    if (r == reg_hi)
        return "hi";
    if (r == reg_lo)
        return "lo";
    return strfmt("?%u", static_cast<unsigned>(r));
}

/** Strip the file prefix for encoding (5-bit field). */
uint32_t
regField(RegId r)
{
    if (r == reg_invalid)
        return 0;
    if (isFpReg(r))
        return r - num_int_regs;
    return r;
}

/** Reconstruct a RegId from a 5-bit field given the file flag. */
RegId
fieldToReg(uint32_t field, bool fp)
{
    return fp ? fr(field) : ir(field);
}

} // anonymous namespace

uint32_t
StaticInst::encode() const
{
    const OpInfo &i = info();
    uint32_t word = static_cast<uint32_t>(op) << 26;
    switch (i.format) {
      case InstFormat::R:
        word = insertBits(word, 25, 21, regField(rs1));
        word = insertBits(word, 20, 16, regField(rs2));
        word = insertBits(word, 15, 11, regField(rd));
        break;
      case InstFormat::I:
        word = insertBits(word, 25, 21, regField(rs1));
        word = insertBits(word, 20, 16, regField(rd));
        word = insertBits(word, 15, 0, static_cast<uint32_t>(imm) &
                          mask(16));
        panic_if(imm < -32768 || imm > 32767,
                 "imm16 overflow (%d) encoding %s", imm, i.name);
        break;
      case InstFormat::S:
      case InstFormat::B:
        word = insertBits(word, 25, 21, regField(rs1));
        word = insertBits(word, 20, 16, regField(rs2));
        word = insertBits(word, 15, 0, static_cast<uint32_t>(imm) &
                          mask(16));
        panic_if(imm < -32768 || imm > 32767,
                 "imm16 overflow (%d) encoding %s", imm, i.name);
        break;
      case InstFormat::Jf:
        word = insertBits(word, 25, 0, static_cast<uint32_t>(imm) &
                          mask(26));
        panic_if(imm < -(1 << 25) || imm >= (1 << 25),
                 "imm26 overflow (%d) encoding %s", imm, i.name);
        break;
      case InstFormat::JRf:
        word = insertBits(word, 25, 21, regField(rs1));
        word = insertBits(word, 20, 16, regField(rd));
        break;
      case InstFormat::N:
        break;
    }
    return word;
}

StaticInst
StaticInst::decode(uint32_t word)
{
    unsigned op_field = bits(word, 31, 26);
    panic_if(op_field >= num_opcodes, "undecodable opcode field %u",
             op_field);
    Opcode op = static_cast<Opcode>(op_field);
    const OpInfo &i = opInfo(op);

    StaticInst inst;
    inst.op = op;
    inst.rd = reg_invalid;
    inst.rs1 = reg_invalid;
    inst.rs2 = reg_invalid;
    inst.imm = 0;

    switch (i.format) {
      case InstFormat::R:
        inst.rs1 = fieldToReg(bits(word, 25, 21), i.rs1Fp);
        inst.rs2 = fieldToReg(bits(word, 20, 16), i.rs2Fp);
        if (i.writesRd)
            inst.rd = fieldToReg(bits(word, 15, 11), i.rdFp);
        break;
      case InstFormat::I:
        inst.rs1 = fieldToReg(bits(word, 25, 21), i.rs1Fp);
        if (i.writesRd)
            inst.rd = fieldToReg(bits(word, 20, 16), i.rdFp);
        inst.imm = static_cast<int32_t>(sext(bits(word, 15, 0), 16));
        break;
      case InstFormat::S:
      case InstFormat::B:
        inst.rs1 = fieldToReg(bits(word, 25, 21), i.rs1Fp);
        inst.rs2 = fieldToReg(bits(word, 20, 16), i.rs2Fp);
        inst.imm = static_cast<int32_t>(sext(bits(word, 15, 0), 16));
        break;
      case InstFormat::Jf:
        inst.imm = static_cast<int32_t>(sext(bits(word, 25, 0), 26));
        if (i.isCall)
            inst.rd = reg_ra;
        break;
      case InstFormat::JRf:
        inst.rs1 = fieldToReg(bits(word, 25, 21), false);
        if (i.isCall)
            inst.rd = fieldToReg(bits(word, 20, 16), false);
        break;
      case InstFormat::N:
        break;
    }
    return inst;
}

std::string
StaticInst::disassemble() const
{
    const OpInfo &i = info();
    switch (i.format) {
      case InstFormat::R:
        if (!i.writesRd) {
            return strfmt("%s %s, %s", i.name, regName(rs1).c_str(),
                          regName(rs2).c_str());
        }
        if (rs2 == reg_invalid) {
            return strfmt("%s %s, %s", i.name, regName(rd).c_str(),
                          regName(rs1).c_str());
        }
        return strfmt("%s %s, %s, %s", i.name, regName(rd).c_str(),
                      regName(rs1).c_str(), regName(rs2).c_str());
      case InstFormat::I:
        if (i.isLoad) {
            return strfmt("%s %s, %d(%s)", i.name, regName(rd).c_str(),
                          imm, regName(rs1).c_str());
        }
        return strfmt("%s %s, %s, %d", i.name, regName(rd).c_str(),
                      regName(rs1).c_str(), imm);
      case InstFormat::S:
        return strfmt("%s %s, %d(%s)", i.name, regName(rs2).c_str(), imm,
                      regName(rs1).c_str());
      case InstFormat::B:
        return strfmt("%s %s, %s, %d", i.name, regName(rs1).c_str(),
                      regName(rs2).c_str(), imm);
      case InstFormat::Jf:
        return strfmt("%s %d", i.name, imm);
      case InstFormat::JRf:
        if (i.isCall) {
            return strfmt("%s %s, %s", i.name, regName(rd).c_str(),
                          regName(rs1).c_str());
        }
        return strfmt("%s %s", i.name, regName(rs1).c_str());
      case InstFormat::N:
        return i.name;
    }
    panic("bad format");
}

} // namespace cwsim
