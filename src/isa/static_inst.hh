/**
 * @file
 * Decoded-instruction representation, binary encode/decode, and
 * disassembly for the cwsim ISA.
 *
 * Encoding (32-bit word, opcode in bits [31:26]):
 *  - R:  rs1[25:21] rs2[20:16] rd[15:11]
 *  - I:  rs1[25:21] rd[20:16]  imm16[15:0]   (imm sign-extended)
 *  - S:  rs1[25:21] rs2[20:16] imm16[15:0]   (mem[rs1+imm] <- rs2)
 *  - B:  rs1[25:21] rs2[20:16] imm16[15:0]   (word-offset branch)
 *  - J:  imm26[25:0]                          (word-offset jump)
 *  - JR: rs1[25:21] rd[20:16]
 *
 * Register fields address the integer or fp file depending on the
 * opcode's metadata. For memory-latency purposes a load's OpInfo latency
 * covers only address generation; the cache hierarchy supplies the rest.
 */

#ifndef CWSIM_ISA_STATIC_INST_HH
#define CWSIM_ISA_STATIC_INST_HH

#include <cstdint>
#include <string>

#include "base/types.hh"
#include "isa/opcodes.hh"
#include "isa/registers.hh"

namespace cwsim
{

class StaticInst
{
  public:
    StaticInst()
        : op(Opcode::HALT), rd(reg_invalid), rs1(reg_invalid),
          rs2(reg_invalid), imm(0)
    {}

    StaticInst(Opcode op, RegId rd, RegId rs1, RegId rs2, int32_t imm)
        : op(op), rd(rd), rs1(rs1), rs2(rs2), imm(imm)
    {}

    Opcode op;
    RegId rd;   ///< Destination (reg_invalid if none).
    RegId rs1;  ///< First source / base register.
    RegId rs2;  ///< Second source / store-data register.
    int32_t imm;

    const OpInfo &info() const { return opInfo(op); }

    bool isLoad() const { return info().isLoad; }
    bool isStore() const { return info().isStore; }
    bool isMem() const { return info().isLoad || info().isStore; }
    bool isBranch() const { return info().isBranch; }
    bool isJump() const { return info().isJump; }
    bool isControl() const { return isBranch() || isJump(); }
    bool isIndirect() const
    {
        return op == Opcode::JR || op == Opcode::JALR;
    }
    bool isCall() const { return info().isCall; }
    bool isReturn() const { return info().isReturn; }
    bool isHalt() const { return op == Opcode::HALT; }
    bool writesReg() const { return info().writesRd && rd != reg_zero; }
    unsigned memSize() const { return info().memSize; }

    FuClass fuClass() const { return info().fu; }
    Cycles latency() const { return info().latency; }

    /** Encode into a 32-bit instruction word. */
    uint32_t encode() const;

    /** Decode a 32-bit instruction word. */
    static StaticInst decode(uint32_t word);

    /** Disassemble, e.g. "lw r5, 16(r3)". */
    std::string disassemble() const;

    bool
    operator==(const StaticInst &o) const
    {
        return op == o.op && rd == o.rd && rs1 == o.rs1 && rs2 == o.rs2 &&
               imm == o.imm;
    }
};

/**
 * Compute a control instruction's taken-target given its PC.
 * Only valid for direct branches/jumps (B and J formats).
 */
inline Addr
branchTarget(const StaticInst &inst, Addr pc)
{
    return pc + 4 + static_cast<int64_t>(inst.imm) * 4;
}

} // namespace cwsim

#endif // CWSIM_ISA_STATIC_INST_HH
