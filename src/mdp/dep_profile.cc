#include "mdp/dep_profile.hh"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "base/jsonl.hh"
#include "base/str.hh"

namespace cwsim
{
namespace mdp
{

namespace
{

using Fields = std::map<std::string, std::string>;

bool
getU64(const Fields &fields, const std::string &key, uint64_t &out)
{
    auto it = fields.find(key);
    if (it == fields.end() || it->second.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (errno != 0 || end == it->second.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
getF64(const Fields &fields, const std::string &key, double &out)
{
    auto it = fields.find(key);
    if (it == fields.end() || it->second.empty())
        return false;
    if (it->second == "nan") {
        out = std::numeric_limits<double>::quiet_NaN();
        return true;
    }
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (errno != 0 || end == it->second.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

/** PCs travel as "0x<hex>" strings (JSON numbers lose 64-bit range). */
bool
getPc(const Fields &fields, const std::string &key, Addr &out)
{
    auto it = fields.find(key);
    if (it == fields.end())
        return false;
    const std::string &s = it->second;
    if (s.size() < 3 || s[0] != '0' || (s[1] != 'x' && s[1] != 'X'))
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str() + 2, &end, 16);
    if (errno != 0 || end == s.c_str() + 2 || *end != '\0')
        return false;
    out = v;
    return true;
}

/** Decode the compact "bucket:count;bucket:count" histogram field. */
bool
parseDist(const std::string &s,
          std::array<uint64_t, obs::dep_dist_buckets> &out)
{
    out.fill(0);
    if (s.empty())
        return true;
    size_t pos = 0;
    while (pos < s.size()) {
        size_t colon = s.find(':', pos);
        if (colon == std::string::npos)
            return false;
        size_t semi = s.find(';', colon);
        std::string bucket_text = s.substr(pos, colon - pos);
        std::string count_text =
            s.substr(colon + 1, (semi == std::string::npos
                                     ? s.size()
                                     : semi) - colon - 1);
        errno = 0;
        char *end = nullptr;
        unsigned long long bucket =
            std::strtoull(bucket_text.c_str(), &end, 10);
        if (errno != 0 || end == bucket_text.c_str() || *end != '\0' ||
            bucket >= obs::dep_dist_buckets) {
            return false;
        }
        errno = 0;
        end = nullptr;
        unsigned long long count =
            std::strtoull(count_text.c_str(), &end, 10);
        if (errno != 0 || end == count_text.c_str() || *end != '\0' ||
            count == 0) {
            return false;
        }
        if (out[bucket] != 0)
            return false; // duplicate bucket
        out[bucket] = count;
        pos = semi == std::string::npos ? s.size() : semi + 1;
    }
    return true;
}

/** The header's expected record counts, checked at block close. */
struct BlockExpectation
{
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t edges = 0;
    uint64_t mdptPcs = 0;
    uint64_t mdptSamples = 0;
};

} // anonymous namespace

bool
DepProfileFile::parseLines(const std::vector<std::string> &lines)
{
    runList.clear();
    errorList.clear();

    DepProfileRun *cur = nullptr;
    BlockExpectation expect;

    auto fail = [&](size_t line_no, const std::string &what) {
        errorList.push_back(
            strfmt("line %zu: %s", line_no + 1, what.c_str()));
    };

    auto closeBlock = [&](size_t line_no) {
        if (!cur)
            return;
        if (cur->loads.size() != expect.loads ||
            cur->stores.size() != expect.stores ||
            cur->edges.size() != expect.edges ||
            cur->mdpt.size() != expect.mdptPcs ||
            cur->mdptSamples.size() != expect.mdptSamples) {
            fail(line_no,
                 strfmt("run \"%s\": header promised %llu/%llu/%llu/"
                        "%llu/%llu loads/stores/edges/mdpt_pcs/samples "
                        "but the block carries %zu/%zu/%zu/%zu/%zu",
                        cur->run.c_str(),
                        static_cast<unsigned long long>(expect.loads),
                        static_cast<unsigned long long>(expect.stores),
                        static_cast<unsigned long long>(expect.edges),
                        static_cast<unsigned long long>(expect.mdptPcs),
                        static_cast<unsigned long long>(
                            expect.mdptSamples),
                        cur->loads.size(), cur->stores.size(),
                        cur->edges.size(), cur->mdpt.size(),
                        cur->mdptSamples.size()));
        }
        cur = nullptr;
    };

    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string &line = lines[i];
        if (line.empty())
            continue;

        Fields fields;
        if (!parseFlatJson(line, fields)) {
            fail(i, "malformed flat JSON");
            continue;
        }

        uint64_t v = 0;
        if (!getU64(fields, "v", v)) {
            fail(i, "missing or non-numeric version field");
            continue;
        }
        if (v != obs::dep_profile_version) {
            fail(i, strfmt("unsupported profile version %llu "
                           "(this reader speaks %u)",
                           static_cast<unsigned long long>(v),
                           obs::dep_profile_version));
            continue;
        }

        auto kind_it = fields.find("kind");
        auto run_it = fields.find("run");
        if (kind_it == fields.end() || run_it == fields.end()) {
            fail(i, "missing kind/run field");
            continue;
        }
        const std::string &kind = kind_it->second;

        if (kind == "header") {
            closeBlock(i);
            auto sim_it = fields.find("sim");
            BlockExpectation e;
            if (sim_it == fields.end() ||
                !getU64(fields, "loads", e.loads) ||
                !getU64(fields, "stores", e.stores) ||
                !getU64(fields, "edges", e.edges) ||
                !getU64(fields, "mdpt_pcs", e.mdptPcs) ||
                !getU64(fields, "mdpt_samples", e.mdptSamples)) {
                fail(i, "header missing sim or a count field");
                continue;
            }
            runList.emplace_back();
            cur = &runList.back();
            cur->run = run_it->second;
            cur->sim = sim_it->second;
            expect = e;
            continue;
        }

        if (!cur) {
            fail(i, strfmt("%s record before any header",
                           kind.c_str()));
            continue;
        }
        if (run_it->second != cur->run) {
            fail(i, strfmt("record labeled \"%s\" inside run \"%s\" "
                           "(interleaved blocks?)",
                           run_it->second.c_str(), cur->run.c_str()));
            continue;
        }

        if (kind == "load") {
            Addr pc = 0;
            uint64_t execs = 0, forwards = 0, replays = 0,
                     violations = 0, sync_waits = 0, sel_holds = 0,
                     barrier_holds = 0, fd_loads = 0, fd_cycles = 0,
                     td_loads = 0, commits = 0;
            if (!getPc(fields, "pc", pc) ||
                !getU64(fields, "execs", execs) ||
                !getU64(fields, "forwards", forwards) ||
                !getU64(fields, "replays", replays) ||
                !getU64(fields, "violations", violations) ||
                !getU64(fields, "sync_waits", sync_waits) ||
                !getU64(fields, "sel_holds", sel_holds) ||
                !getU64(fields, "barrier_holds", barrier_holds) ||
                !getU64(fields, "false_dep_loads", fd_loads) ||
                !getU64(fields, "false_dep_cycles", fd_cycles) ||
                !getU64(fields, "true_dep_loads", td_loads) ||
                !getU64(fields, "commits", commits)) {
                fail(i, "load record missing or malformed fields");
                continue;
            }
            if (cur->loads.count(pc)) {
                fail(i, strfmt("duplicate load pc 0x%llx",
                               static_cast<unsigned long long>(pc)));
                continue;
            }
            obs::DepLoadCounters &rec = cur->loads[pc];
            rec.execs += execs;
            rec.forwards += forwards;
            rec.replays += replays;
            rec.violations += violations;
            rec.syncWaits += sync_waits;
            rec.selHolds += sel_holds;
            rec.barrierHolds += barrier_holds;
            rec.falseDepLoads += fd_loads;
            rec.falseDepCycles += fd_cycles;
            rec.trueDepLoads += td_loads;
            rec.commits += commits;
        } else if (kind == "store") {
            Addr pc = 0;
            uint64_t commits = 0, caused = 0, barriers = 0,
                     produces = 0;
            if (!getPc(fields, "pc", pc) ||
                !getU64(fields, "commits", commits) ||
                !getU64(fields, "violations_caused", caused) ||
                !getU64(fields, "barriers", barriers) ||
                !getU64(fields, "sync_produces", produces)) {
                fail(i, "store record missing or malformed fields");
                continue;
            }
            if (cur->stores.count(pc)) {
                fail(i, strfmt("duplicate store pc 0x%llx",
                               static_cast<unsigned long long>(pc)));
                continue;
            }
            obs::DepStoreCounters &rec = cur->stores[pc];
            rec.commits += commits;
            rec.violationsCaused += caused;
            rec.barriers += barriers;
            rec.syncProduces += produces;
        } else if (kind == "edge") {
            Addr store_pc = 0, load_pc = 0;
            uint64_t violations = 0, syncs = 0, full = 0, partial = 0;
            auto dist_it = fields.find("dist");
            std::array<uint64_t, obs::dep_dist_buckets> dist{};
            if (!getPc(fields, "store_pc", store_pc) ||
                !getPc(fields, "load_pc", load_pc) ||
                !getU64(fields, "violations", violations) ||
                !getU64(fields, "syncs", syncs) ||
                !getU64(fields, "full_overlaps", full) ||
                !getU64(fields, "partial_overlaps", partial) ||
                dist_it == fields.end() ||
                !parseDist(dist_it->second, dist)) {
                fail(i, "edge record missing or malformed fields");
                continue;
            }
            obs::DepEdgeKey key(store_pc, load_pc);
            if (cur->edges.count(key)) {
                fail(i, strfmt("duplicate edge 0x%llx -> 0x%llx",
                               static_cast<unsigned long long>(
                                   store_pc),
                               static_cast<unsigned long long>(
                                   load_pc)));
                continue;
            }
            obs::DepEdgeCounters &rec = cur->edges[key];
            rec.violations += violations;
            rec.syncs += syncs;
            rec.fullOverlaps += full;
            rec.partialOverlaps += partial;
            rec.dist = dist;
        } else if (kind == "mdpt") {
            Addr pc = 0;
            uint64_t allocs = 0, evicts = 0, pairs = 0, merges = 0,
                     miss_specs = 0;
            if (!getPc(fields, "pc", pc) ||
                !getU64(fields, "allocs", allocs) ||
                !getU64(fields, "evicts", evicts) ||
                !getU64(fields, "pairs", pairs) ||
                !getU64(fields, "merges", merges) ||
                !getU64(fields, "miss_specs", miss_specs)) {
                fail(i, "mdpt record missing or malformed fields");
                continue;
            }
            if (cur->mdpt.count(pc)) {
                fail(i, strfmt("duplicate mdpt pc 0x%llx",
                               static_cast<unsigned long long>(pc)));
                continue;
            }
            obs::DepMdptCounters &rec = cur->mdpt[pc];
            rec.allocs += allocs;
            rec.evicts += evicts;
            rec.pairs += pairs;
            rec.merges += merges;
            rec.missSpecs += miss_specs;
        } else if (kind == "mdpt_sample") {
            obs::DepMdptSample s;
            if (!getU64(fields, "cycle", s.cycle) ||
                !getU64(fields, "occupancy", s.occupancy) ||
                !getF64(fields, "mean_confidence",
                        s.meanConfidence)) {
                fail(i, "mdpt_sample record missing or malformed "
                        "fields");
                continue;
            }
            cur->mdptSamples.push_back(s);
        } else {
            fail(i, strfmt("unknown record kind \"%s\"",
                           kind.c_str()));
        }
    }
    closeBlock(lines.size() ? lines.size() - 1 : 0);
    return errorList.empty();
}

bool
DepProfileFile::load(const std::string &path, std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = strfmt("cannot open %s", path.c_str());
        return false;
    }
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    bool ok = parseLines(lines);
    if (!ok && err) {
        *err = strfmt("%s: %zu validation error(s); first: %s",
                      path.c_str(), errorList.size(),
                      errorList.empty() ? "?"
                                        : errorList.front().c_str());
    }
    return ok;
}

const DepProfileRun *
DepProfileFile::findRun(const std::string &label) const
{
    for (const DepProfileRun &r : runList) {
        if (r.run == label)
            return &r;
    }
    return nullptr;
}

} // namespace mdp
} // namespace cwsim
