/**
 * @file
 * Loader/validator for .depprof.jsonl dependence profiles — the
 * explicit input contract for profile-guided dependence policies
 * (ROADMAP item 4): a policy consumes validated DepProfileRun blocks,
 * never raw text.
 *
 * The writer side (format documentation included) is
 * obs/depprof.hh. This reader is strict on purpose: every line must
 * parse as flat JSON, carry the expected version, belong to the block
 * its header opened, and the header's record counts must match what
 * the block actually contains — a torn, interleaved, or truncated
 * profile surfaces as validation errors, not as silently merged data.
 */

#ifndef CWSIM_MDP_DEP_PROFILE_HH
#define CWSIM_MDP_DEP_PROFILE_HH

#include <map>
#include <string>
#include <vector>

#include "base/types.hh"
#include "obs/depprof.hh"

namespace cwsim
{
namespace mdp
{

/** One run's worth of profile records, as read back from disk. */
struct DepProfileRun
{
    std::string run; ///< The run label ("workload config").
    std::string sim; ///< Producing simulator ("proc" / "split").
    std::map<Addr, obs::DepLoadCounters> loads;
    std::map<Addr, obs::DepStoreCounters> stores;
    std::map<obs::DepEdgeKey, obs::DepEdgeCounters> edges;
    std::map<Addr, obs::DepMdptCounters> mdpt;
    std::vector<obs::DepMdptSample> mdptSamples;
};

class DepProfileFile
{
  public:
    /**
     * Read and validate @p path. Returns false when the file cannot
     * be opened (@p err filled) or any line fails validation (the
     * complaints are in errors()). Runs that validated are available
     * either way.
     */
    bool load(const std::string &path, std::string *err = nullptr);

    /**
     * Validate pre-split @p lines (the in-memory form of the file).
     * Returns true iff no validation errors were recorded.
     */
    bool parseLines(const std::vector<std::string> &lines);

    const std::vector<DepProfileRun> &runs() const { return runList; }
    const std::vector<std::string> &errors() const { return errorList; }
    bool valid() const { return errorList.empty(); }

    /** The run block labeled @p label, or nullptr. */
    const DepProfileRun *findRun(const std::string &label) const;

  private:
    std::vector<DepProfileRun> runList;
    std::vector<std::string> errorList;
};

} // namespace mdp
} // namespace cwsim

#endif // CWSIM_MDP_DEP_PROFILE_HH
