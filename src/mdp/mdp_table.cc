#include "mdp/mdp_table.hh"

#include "base/intmath.hh"
#include "base/logging.hh"
#include "obs/trace.hh"

namespace cwsim
{

MdpTable::MdpTable(const MdpConfig &cfg)
    : assoc(cfg.mdptAssoc), counterBits(cfg.counterBits),
      predictThreshold(cfg.predictThreshold), nextSynonym(0),
      useCounter(0)
{
    fatal_if(cfg.mdptEntries % cfg.mdptAssoc != 0,
             "MDPT entries not divisible by associativity");
    sets = cfg.mdptEntries / cfg.mdptAssoc;
    fatal_if(!isPowerOf2(sets), "MDPT set count must be a power of two");
    entries.assign(static_cast<size_t>(sets) * assoc, Entry{});
    for (Entry &e : entries)
        e.confidence = SatCounter(counterBits, 0);
}

unsigned
MdpTable::indexOf(Addr pc) const
{
    return static_cast<unsigned>((pc >> 2) & (sets - 1));
}

MdpTable::Entry *
MdpTable::find(Addr pc)
{
    size_t base = static_cast<size_t>(indexOf(pc)) * assoc;
    for (unsigned w = 0; w < assoc; ++w) {
        Entry &e = entries[base + w];
        if (e.valid && e.tag == pc) {
            e.lastUse = ++useCounter;
            return &e;
        }
    }
    return nullptr;
}

const MdpTable::Entry *
MdpTable::find(Addr pc) const
{
    size_t base = static_cast<size_t>(indexOf(pc)) * assoc;
    for (unsigned w = 0; w < assoc; ++w) {
        const Entry &e = entries[base + w];
        if (e.valid && e.tag == pc)
            return &e;
    }
    return nullptr;
}

MdpTable::Entry &
MdpTable::allocate(Addr pc)
{
    if (Entry *hit = find(pc))
        return *hit;

    size_t base = static_cast<size_t>(indexOf(pc)) * assoc;
    Entry *victim = &entries[base];
    for (unsigned w = 0; w < assoc; ++w) {
        Entry &e = entries[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    ++allocations;
    if (__builtin_expect(dprof != nullptr, 0)) {
        // The victim still holding valid state means LRU displaced a
        // live prediction: attribute the eviction to the displaced PC.
        if (victim->valid)
            dprof->noteMdptEvict(victim->tag);
        dprof->noteMdptAlloc(pc);
    }
    victim->valid = true;
    victim->tag = pc;
    victim->confidence = SatCounter(counterBits, 0);
    victim->synonym = invalid_synonym;
    victim->lastUse = ++useCounter;
    return *victim;
}

bool
MdpTable::recordMissSpeculation(Addr pc)
{
    Entry &e = allocate(pc);
    e.confidence.increment();
    bool predicts = e.confidence.value() >= predictThreshold;
    if (__builtin_expect(dprof != nullptr, 0))
        dprof->noteMdptMissSpec(pc);
    CWSIM_TRACE(MDP, "miss-speculation recorded: pc 0x%llx "
                "confidence %u%s",
                static_cast<unsigned long long>(pc),
                e.confidence.value(),
                predicts ? " (predicting)" : "");
    return predicts;
}

bool
MdpTable::predictsDependence(Addr pc) const
{
    const Entry *e = find(pc);
    return e && e->confidence.value() >= predictThreshold;
}

Synonym
MdpTable::synonymOf(Addr pc) const
{
    const Entry *e = find(pc);
    return e ? e->synonym : invalid_synonym;
}

Synonym
MdpTable::pair(Addr load_pc, Addr store_pc)
{
    // Capture the store's synonym by value before touching the load:
    // allocate(load_pc) can evict the store's entry from the shared set
    // (same-set at low associativity), after which the reference would
    // alias the load's freshly reset entry and the store's existing
    // chain membership would be read as invalid.
    Synonym store_syn = allocate(store_pc).synonym;
    Entry &load_e = allocate(load_pc);

    // Reuse an existing synonym from either side so that chains merge
    // (the level of indirection of Section 3.6); prefer the store's.
    Synonym syn = store_syn;
    if (syn == invalid_synonym)
        syn = load_e.synonym;
    bool merged = syn != invalid_synonym;
    if (!merged)
        syn = nextSynonym++;
    if (__builtin_expect(dprof != nullptr, 0))
        dprof->noteMdptPair(load_pc, store_pc, merged);

    // Re-find the store: it may have been evicted by the load's
    // allocation, in which case only the load keeps the synonym (one
    // set slot cannot hold both). Probe without a recency bump — the
    // allocate above already counted as the store's use.
    size_t store_base = static_cast<size_t>(indexOf(store_pc)) * assoc;
    for (unsigned w = 0; w < assoc; ++w) {
        Entry &e = entries[store_base + w];
        if (e.valid && e.tag == store_pc) {
            e.synonym = syn;
            break;
        }
    }
    load_e.synonym = syn;
    ++pairings;
    CWSIM_TRACE(MDP, "paired load pc 0x%llx with store pc 0x%llx "
                "under synonym %llu",
                static_cast<unsigned long long>(load_pc),
                static_cast<unsigned long long>(store_pc),
                static_cast<unsigned long long>(syn));
    return syn;
}

size_t
MdpTable::validEntries() const
{
    size_t n = 0;
    for (const Entry &e : entries)
        n += e.valid ? 1 : 0;
    return n;
}

double
MdpTable::meanConfidence() const
{
    uint64_t sum = 0;
    size_t n = 0;
    for (const Entry &e : entries) {
        if (!e.valid)
            continue;
        sum += e.confidence.value();
        ++n;
    }
    return n ? static_cast<double>(sum) / static_cast<double>(n) : 0.0;
}

bool
MdpTable::dropRandomEntry(Random &rng)
{
    size_t valid = validEntries();
    if (valid == 0)
        return false;
    size_t pick = rng.below(valid);
    for (Entry &e : entries) {
        if (!e.valid)
            continue;
        if (pick-- == 0) {
            e.valid = false;
            e.tag = invalid_addr;
            e.confidence = SatCounter(counterBits, 0);
            e.synonym = invalid_synonym;
            return true;
        }
    }
    return false;
}

bool
MdpTable::corruptRandomEntry(Random &rng)
{
    size_t valid = validEntries();
    if (valid == 0)
        return false;
    size_t pick = rng.below(valid);
    for (Entry &e : entries) {
        if (!e.valid)
            continue;
        if (pick-- == 0) {
            // Scramble prediction state only; the tag stays put so the
            // entry keeps mapping to a real static instruction.
            e.confidence = SatCounter(
                counterBits,
                static_cast<unsigned>(
                    rng.below((1ull << counterBits))));
            if (nextSynonym > 0 && rng.chance(0.5))
                e.synonym = static_cast<Synonym>(
                    rng.below(nextSynonym));
            else
                e.synonym = invalid_synonym;
            return true;
        }
    }
    return false;
}

std::string
MdpTable::sanityCheck() const
{
    for (size_t i = 0; i < entries.size(); ++i) {
        const Entry &e = entries[i];
        if (!e.valid) {
            if (e.synonym != invalid_synonym)
                return "invalid entry carries a synonym";
            continue;
        }
        if (e.tag == invalid_addr)
            return "valid entry with invalid tag";
        size_t set = i / assoc;
        if (indexOf(e.tag) != set)
            return "entry tag maps to a different set";
        if (e.synonym != invalid_synonym && e.synonym >= nextSynonym)
            return "synonym above the allocation high-water mark";
        if (e.lastUse > useCounter)
            return "recency stamp from the future";
        if (e.confidence.value() >= (1u << counterBits))
            return "confidence counter out of range";
    }
    return "";
}

void
MdpTable::reset()
{
    for (Entry &e : entries) {
        e.valid = false;
        e.tag = invalid_addr;
        e.confidence = SatCounter(counterBits, 0);
        e.synonym = invalid_synonym;
    }
    ++resets;
    CWSIM_TRACE(MDP, "table reset #%llu",
                static_cast<unsigned long long>(resets.value()));
}

} // namespace cwsim
