/**
 * @file
 * The memory dependence prediction table (MDPT) used by the selective,
 * store-barrier, and speculation/synchronization policies.
 *
 * The paper's configuration (Section 3.5/3.6): 4K entries, 2-way set
 * associative, indexed by instruction PC. SEL and STORE entries carry a
 * 2-bit saturating confidence counter that must see `predictThreshold`
 * miss-speculations before a dependence is predicted; SYNC entries carry
 * a synonym (a level of indirection pairing dependent loads and stores)
 * and predict unconditionally once allocated. The whole table is
 * flushed/reset every `resetInterval` cycles to adapt back.
 */

#ifndef CWSIM_MDP_MDP_TABLE_HH
#define CWSIM_MDP_MDP_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/random.hh"
#include "base/sat_counter.hh"
#include "base/types.hh"
#include "obs/depprof.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace cwsim
{

/** A synonym names a predicted store->load dependence chain. */
using Synonym = uint32_t;

constexpr Synonym invalid_synonym = ~Synonym(0);

class MdpTable
{
  public:
    struct Entry
    {
        Addr tag = invalid_addr;
        bool valid = false;
        SatCounter confidence{2, 0};
        Synonym synonym = invalid_synonym;
        uint64_t lastUse = 0;
    };

    explicit MdpTable(const MdpConfig &cfg);

    /** Find the entry for @p pc, or nullptr. Updates recency. */
    Entry *find(Addr pc);
    const Entry *find(Addr pc) const;

    /** Find or allocate (LRU within the set) an entry for @p pc. */
    Entry &allocate(Addr pc);

    /**
     * Record one miss-speculation against @p pc.
     * @return True once the entry's confidence has reached the
     *         prediction threshold (i.e. a dependence is now predicted).
     */
    bool recordMissSpeculation(Addr pc);

    /**
     * SEL / STORE prediction: is a dependence predicted for @p pc?
     * True once the confidence counter has counted `predictThreshold`
     * miss-speculations.
     */
    bool predictsDependence(Addr pc) const;

    /**
     * SYNC: return the synonym associated with @p pc, or
     * invalid_synonym.
     */
    Synonym synonymOf(Addr pc) const;

    /**
     * SYNC: pair a (load PC, store PC) after a miss-speculation. Reuses
     * either instruction's existing synonym so multiple loads/stores
     * naturally merge into one chain; allocates a fresh synonym
     * otherwise. @return the synonym now shared by both.
     */
    Synonym pair(Addr load_pc, Addr store_pc);

    /** Periodic flush (SYNC) / counter reset (SEL, STORE). */
    void reset();

    size_t numEntries() const { return sets * assoc; }
    size_t validEntries() const;
    /** Mean confidence-counter value over valid entries (0 if empty). */
    double meanConfidence() const;

    /**
     * Attach a dependence-profile collector; allocations, evictions,
     * pairings and miss-speculations are attributed to it from then
     * on. Observation only — the table never reads the profile — so
     * attaching one cannot change prediction behavior. nullptr (the
     * default) keeps the hooks to a single predicted-false branch.
     */
    void setProfile(obs::DepProfile *profile) { dprof = profile; }

    /**
     * Fault injection: invalidate a random valid entry (a dropped
     * prediction). @return true if an entry was dropped.
     */
    bool dropRandomEntry(Random &rng);

    /**
     * Fault injection: scramble a random valid entry's confidence and
     * synonym. The table is prediction-only state, so a corrupted entry
     * may cost performance but can never affect correctness.
     * @return true if an entry was corrupted.
     */
    bool corruptRandomEntry(Random &rng);

    /**
     * Synonym-table sanity: every valid entry's tag maps to its set,
     * synonyms are below the allocation high-water mark, and recency
     * stamps are consistent. @return empty string, or a description of
     * the first inconsistency.
     */
    std::string sanityCheck() const;

    // Statistics.
    stats::Scalar allocations;
    stats::Scalar pairings;
    stats::Scalar resets;

  private:
    unsigned indexOf(Addr pc) const;

    unsigned sets;
    unsigned assoc;
    unsigned counterBits;
    unsigned predictThreshold;
    std::vector<Entry> entries;
    Synonym nextSynonym;
    uint64_t useCounter;
    obs::DepProfile *dprof = nullptr;
};

} // namespace cwsim

#endif // CWSIM_MDP_MDP_TABLE_HH
