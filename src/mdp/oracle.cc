#include "mdp/oracle.hh"

#include <algorithm>

#include "isa/opcodes.hh"
#include "mem/functional_memory.hh"

namespace cwsim
{

PrepassResult
runPrepass(const Program &program, const PrepassOptions &opts)
{
    FunctionalMemory mem;
    program.loadInto(mem);
    Executor ex(mem, program.entry());

    PrepassResult result;

    // Last store (by trace index) to write each byte.
    std::unordered_map<Addr, TraceIndex> last_writer;
    last_writer.reserve(1 << 16);

    uint64_t limit = opts.maxInsts ? opts.maxInsts : ~uint64_t(0);
    while (!ex.halted() && result.instCount < limit) {
        TraceIndex idx = result.instCount;
        StepInfo info = ex.step();
        ++result.instCount;

        if (info.isLoad) {
            ++result.loadCount;
            OracleDeps::ProducerSet set;
            for (unsigned i = 0; i < info.memSize; ++i) {
                auto it = last_writer.find(info.memAddr + i);
                if (it == last_writer.end())
                    continue;
                bool dup = false;
                for (unsigned j = 0; j < set.count; ++j)
                    dup = dup || set.stores[j] == it->second;
                if (!dup)
                    set.stores[set.count++] = it->second;
            }
            if (set.count) {
                std::sort(set.stores.begin(),
                          set.stores.begin() + set.count);
                result.deps.record(idx, set);
            }
        } else if (info.isStore) {
            ++result.storeCount;
            for (unsigned i = 0; i < info.memSize; ++i)
                last_writer[info.memAddr + i] = idx;
        } else if (info.inst.isBranch()) {
            ++result.branchCount;
            if (info.taken)
                ++result.takenBranches;
        }
        if (info.inst.fuClass() == FuClass::FpAdd ||
            info.inst.fuClass() == FuClass::FpMul ||
            info.inst.fuClass() == FuClass::FpDiv) {
            ++result.fpOps;
        }

        if (opts.recordTrace) {
            TraceEntry te;
            te.pc = info.pc;
            te.inst = info.inst;
            te.memAddr = info.memAddr;
            te.memSize = static_cast<uint8_t>(info.memSize);
            te.taken = info.taken;
            result.trace.push_back(te);
        }
    }

    result.halted = ex.halted();
    result.finalState = ex.state();
    result.memFingerprint = mem.fingerprint();
    return result;
}

} // namespace cwsim
