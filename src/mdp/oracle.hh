/**
 * @file
 * The oracle disambiguator and the functional pre-pass that builds it.
 *
 * The pre-pass runs the program through the functional interpreter and
 * records, for every committed dynamic load, the trace index of the
 * most recent store that wrote any byte the load reads. Because the
 * ISA is deterministic, committed-path trace indices in the timing run
 * line up exactly with the pre-pass, so the NAS/ORACLE configuration
 * can wake each load the moment its producing store has executed —
 * "perfect, a priori knowledge of all memory dependences" (Section
 * 3.2).
 *
 * The pre-pass also yields the committed-path trace (consumed by the
 * split-window model of Section 3.7), workload characteristics for
 * Table 1, and golden architectural state for the equivalence tests.
 */

#ifndef CWSIM_MDP_ORACLE_HH
#define CWSIM_MDP_ORACLE_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/types.hh"
#include "isa/executor.hh"
#include "isa/program.hh"

namespace cwsim
{

/** Per-dynamic-load producing-store information. */
class OracleDeps
{
  public:
    /**
     * The distinct stores that produce at least one byte of a load,
     * oldest first. A load reads at most 8 bytes, so at most 8 stores.
     * Partial overlaps make the full set necessary: waking the load
     * after only the youngest producer would forward stale bytes from
     * the ranges the other producers cover.
     */
    struct ProducerSet
    {
        std::array<TraceIndex, 8> stores{};
        uint8_t count = 0;
    };

    /**
     * Trace index of the last store conflicting with the load at trace
     * index @p load_idx, or invalid_trace_index if the load has no
     * producer.
     */
    TraceIndex
    producerOf(TraceIndex load_idx) const
    {
        auto it = producers.find(load_idx);
        return it == producers.end()
                   ? invalid_trace_index
                   : it->second.stores[it->second.count - 1];
    }

    /** All distinct byte producers, or nullptr if the load has none. */
    const ProducerSet *
    producersOf(TraceIndex load_idx) const
    {
        auto it = producers.find(load_idx);
        return it == producers.end() ? nullptr : &it->second;
    }

    void
    record(TraceIndex load_idx, const ProducerSet &set)
    {
        producers.emplace(load_idx, set);
    }

    size_t size() const { return producers.size(); }

  private:
    std::unordered_map<TraceIndex, ProducerSet> producers;
};

/** One committed-path instruction, as the split-window model needs it. */
struct TraceEntry
{
    Addr pc = 0;
    StaticInst inst;
    Addr memAddr = invalid_addr;
    uint8_t memSize = 0;
    bool taken = false;
};

struct PrepassOptions
{
    /** Stop after this many committed instructions (0 = run to HALT). */
    uint64_t maxInsts = 0;
    /** Record the full committed trace (split-window model input). */
    bool recordTrace = false;
};

struct PrepassResult
{
    OracleDeps deps;
    std::vector<TraceEntry> trace;

    uint64_t instCount = 0;
    uint64_t loadCount = 0;
    uint64_t storeCount = 0;
    uint64_t branchCount = 0;
    uint64_t takenBranches = 0;
    uint64_t fpOps = 0;
    bool halted = false;

    /** Golden final state for the equivalence tests. */
    ArchState finalState;
    uint64_t memFingerprint = 0;
};

/** Run the functional pre-pass over @p program. */
PrepassResult runPrepass(const Program &program,
                         const PrepassOptions &opts = {});

} // namespace cwsim

#endif // CWSIM_MDP_ORACLE_HH
