#include "mem/functional_memory.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "base/logging.hh"

namespace cwsim
{

FunctionalMemory::Page *
FunctionalMemory::findPage(Addr addr) const
{
    Addr pn = addr >> page_shift;
    if (pn == lastPageNum)
        return lastPage;
    auto it = pages.find(pn);
    if (it == pages.end())
        return nullptr;
    lastPageNum = pn;
    lastPage = it->second.get();
    return lastPage;
}

FunctionalMemory::Page &
FunctionalMemory::getPage(Addr addr)
{
    Addr pn = addr >> page_shift;
    if (pn == lastPageNum)
        return *lastPage;
    auto &slot = pages[pn];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    lastPageNum = pn;
    lastPage = slot.get();
    return *slot;
}

uint8_t
FunctionalMemory::read8(Addr addr) const
{
    Page *page = findPage(addr);
    return page ? (*page)[addr & (page_size - 1)] : 0;
}

void
FunctionalMemory::write8(Addr addr, uint8_t value)
{
    getPage(addr)[addr & (page_size - 1)] = value;
}

uint64_t
FunctionalMemory::read(Addr addr, unsigned size) const
{
    panic_if(size != 1 && size != 2 && size != 4 && size != 8,
             "bad access size %u", size);
    size_t off = addr & (page_size - 1);
    if (off + size <= page_size) {
        Page *page = findPage(addr);
        if (!page)
            return 0;
        uint64_t v = 0;
        std::memcpy(&v, page->data() + off, size);
        return v;
    }
    // Page-crossing access: assemble byte-by-byte.
    uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= static_cast<uint64_t>(read8(addr + i)) << (8 * i);
    return v;
}

void
FunctionalMemory::write(Addr addr, unsigned size, uint64_t value)
{
    panic_if(size != 1 && size != 2 && size != 4 && size != 8,
             "bad access size %u", size);
    size_t off = addr & (page_size - 1);
    if (off + size <= page_size) {
        Page &page = getPage(addr);
        std::memcpy(page.data() + off, &value, size);
        return;
    }
    for (unsigned i = 0; i < size; ++i)
        write8(addr + i, static_cast<uint8_t>(value >> (8 * i)));
}

uint64_t
FunctionalMemory::fingerprint() const
{
    std::vector<Addr> page_nums;
    page_nums.reserve(pages.size());
    for (const auto &[pn, page] : pages)
        page_nums.push_back(pn);
    std::sort(page_nums.begin(), page_nums.end());

    uint64_t hash = 0xcbf29ce484222325ull;
    auto mix = [&hash](uint8_t byte) {
        hash ^= byte;
        hash *= 0x100000001b3ull;
    };
    for (Addr pn : page_nums) {
        const Page &page = *pages.at(pn);
        // Skip all-zero pages: a page touched but still zero must hash
        // like an untouched page.
        bool all_zero = true;
        for (uint8_t b : page) {
            if (b != 0) {
                all_zero = false;
                break;
            }
        }
        if (all_zero)
            continue;
        for (unsigned i = 0; i < 8; ++i)
            mix(static_cast<uint8_t>(pn >> (8 * i)));
        for (uint8_t b : page)
            mix(b);
    }
    return hash;
}

void
FunctionalMemory::readBytes(Addr addr, uint8_t *buf, size_t len) const
{
    for (size_t i = 0; i < len; ++i)
        buf[i] = read8(addr + i);
}

void
FunctionalMemory::writeBytes(Addr addr, const uint8_t *buf, size_t len)
{
    for (size_t i = 0; i < len; ++i)
        write8(addr + i, buf[i]);
}

} // namespace cwsim
