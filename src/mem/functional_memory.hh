/**
 * @file
 * Sparse, page-granular functional memory holding the simulated
 * machine's architectural memory state.
 *
 * Both the functional interpreter and the timing core read through this
 * structure; in the timing core, speculative store data lives in the
 * store buffer and only reaches FunctionalMemory when a committed store
 * retires, so wrong-path loads naturally observe stale (but harmless)
 * values.
 */

#ifndef CWSIM_MEM_FUNCTIONAL_MEMORY_HH
#define CWSIM_MEM_FUNCTIONAL_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace cwsim
{

class FunctionalMemory
{
  public:
    static constexpr unsigned page_shift = 12;
    static constexpr size_t page_size = size_t(1) << page_shift;

    FunctionalMemory() = default;

    // Non-copyable (pages are large); movable.
    FunctionalMemory(const FunctionalMemory &) = delete;
    FunctionalMemory &operator=(const FunctionalMemory &) = delete;
    FunctionalMemory(FunctionalMemory &&) = default;
    FunctionalMemory &operator=(FunctionalMemory &&) = default;

    uint8_t read8(Addr addr) const;
    void write8(Addr addr, uint8_t value);

    /** Little-endian read of @p size (1, 2, 4 or 8) bytes. */
    uint64_t read(Addr addr, unsigned size) const;

    /** Little-endian write of the low @p size bytes of @p value. */
    void write(Addr addr, unsigned size, uint64_t value);

    void readBytes(Addr addr, uint8_t *buf, size_t len) const;
    void writeBytes(Addr addr, const uint8_t *buf, size_t len);

    /** Number of distinct pages touched so far. */
    size_t pageCount() const { return pages.size(); }

    /**
     * Order-independent FNV-1a hash over all touched pages. Two
     * memories with identical contents (ignoring untouched-vs-zero
     * pages) produce the same fingerprint, which is how the
     * architectural-equivalence tests compare a timing run against the
     * functional interpreter.
     */
    uint64_t fingerprint() const;

    void clear() { pages.clear(); }

  private:
    using Page = std::array<uint8_t, page_size>;

    Page *findPage(Addr addr) const;
    Page &getPage(Addr addr);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;

    // One-entry translation cache: workloads touch pages in runs.
    mutable Addr lastPageNum = invalid_addr;
    mutable Page *lastPage = nullptr;
};

} // namespace cwsim

#endif // CWSIM_MEM_FUNCTIONAL_MEMORY_HH
