#include "mem/timing_cache.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace cwsim
{

namespace
{

/** Number of 4-word (16-byte) transfer chunks for @p size bytes. */
Cycles
chunksFor(unsigned size)
{
    return divCeil(size, 16);
}

} // anonymous namespace

MainMemory::MainMemory(const MemConfig &cfg, EventQueue &eq)
    : eq(eq), baseLatency(cfg.memBaseLatency),
      perChunkLatency(cfg.memTransferPer4Words)
{
}

bool
MainMemory::access(Addr addr, unsigned size, bool write, MemDoneFn done)
{
    (void)addr;
    if (write)
        ++numWrites;
    else
        ++numReads;
    eq.scheduleIn(baseLatency + perChunkLatency * chunksFor(size),
                  std::move(done));
    return true;
}

TimingCache::TimingCache(const CacheConfig &cfg,
                         Cycles transfer_per_chunk, EventQueue &eq,
                         MemLevel &next)
    : cacheName(cfg.name), blockSize(cfg.blockSize),
      blockMask(cfg.blockSize - 1), numBanks(cfg.banks),
      assoc(cfg.assoc), hitLatency(cfg.hitLatency),
      transferPerChunk(transfer_per_chunk),
      primaryLimit(cfg.primaryMshrsPerBank),
      secondaryLimit(cfg.secondaryPerPrimary), eq(eq), next(next),
      useCounter(0)
{
    fatal_if(!isPowerOf2(cfg.blockSize), "%s: block size not a power of 2",
             cacheName.c_str());
    fatal_if(!isPowerOf2(cfg.banks), "%s: bank count not a power of 2",
             cacheName.c_str());
    uint64_t num_blocks = cfg.sizeBytes / cfg.blockSize;
    uint64_t num_sets = num_blocks / cfg.assoc;
    fatal_if(num_sets % cfg.banks != 0,
             "%s: sets not divisible across banks", cacheName.c_str());
    setsPerBank = static_cast<unsigned>(num_sets / cfg.banks);
    fatal_if(!isPowerOf2(setsPerBank), "%s: sets per bank not power of 2",
             cacheName.c_str());
    lines.assign(num_blocks, Line{});
    bankBusyUntil.assign(numBanks, 0);
    primaryPerBank.assign(numBanks, 0);
}

unsigned
TimingCache::bankOf(Addr block) const
{
    // Block-interleaved banking.
    return static_cast<unsigned>((block / blockSize) % numBanks);
}

unsigned
TimingCache::setOf(Addr block) const
{
    return static_cast<unsigned>((block / blockSize / numBanks) %
                                 setsPerBank);
}

bool
TimingCache::isResident(Addr addr) const
{
    Addr block = blockAddr(addr);
    unsigned bank = bankOf(block);
    unsigned set = setOf(block);
    size_t base = (static_cast<size_t>(bank) * setsPerBank + set) * assoc;
    for (unsigned w = 0; w < assoc; ++w) {
        const Line &line = lines[base + w];
        if (line.valid && line.tag == block)
            return true;
    }
    return false;
}

TimingCache::Line &
TimingCache::fillLine(Addr block, bool write)
{
    unsigned bank = bankOf(block);
    unsigned set = setOf(block);
    size_t base = (static_cast<size_t>(bank) * setsPerBank + set) * assoc;

    // Reuse an invalid way or the LRU way.
    Line *victim = &lines[base];
    for (unsigned w = 0; w < assoc; ++w) {
        Line &line = lines[base + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lastUse < victim->lastUse)
            victim = &line;
    }
    victim->valid = true;
    victim->tag = block;
    victim->dirty = write;
    victim->lastUse = ++useCounter;
    return *victim;
}

bool
TimingCache::access(Addr addr, unsigned size, bool write, MemDoneFn done)
{
    Addr block = blockAddr(addr);
    unsigned bank = bankOf(block);
    unsigned set = setOf(block);

    // One access per bank per cycle.
    if (bankBusyUntil[bank] > eq.curTick()) {
        ++bankRejects;
        return false;
    }

    size_t base = (static_cast<size_t>(bank) * setsPerBank + set) * assoc;
    for (unsigned w = 0; w < assoc; ++w) {
        Line &line = lines[base + w];
        if (line.valid && line.tag == block) {
            line.lastUse = ++useCounter;
            line.dirty = line.dirty || write;
            ++hits;
            bankBusyUntil[bank] = eq.curTick() + 1;
            eq.scheduleIn(hitLatency + transferPerChunk * chunksFor(size),
                          std::move(done));
            return true;
        }
    }

    // Miss: merge into an existing MSHR if one tracks this block.
    auto it = mshrs.find(block);
    if (it != mshrs.end()) {
        if (it->second.targets.size() >= 1 + secondaryLimit) {
            ++mshrRejects;
            return false;
        }
        it->second.targets.push_back(std::move(done));
        it->second.write = it->second.write || write;
        ++mshrMerges;
        ++misses;
        bankBusyUntil[bank] = eq.curTick() + 1;
        return true;
    }

    // New primary miss.
    if (primaryPerBank[bank] >= primaryLimit) {
        ++mshrRejects;
        return false;
    }
    ++misses;
    bankBusyUntil[bank] = eq.curTick() + 1;
    ++primaryPerBank[bank];
    Mshr &mshr = mshrs[block];
    mshr.bank = bank;
    mshr.write = write;
    mshr.targets.push_back(std::move(done));
    issueToNext(block, write);
    return true;
}

void
TimingCache::issueToNext(Addr block, bool write)
{
    bool accepted = next.access(
        block, blockSize, write, [this, block]() { handleFill(block); });
    if (!accepted) {
        // Next level is saturated; retry on the next cycle.
        eq.scheduleIn(1, [this, block, write]() {
            if (mshrs.count(block))
                issueToNext(block, write);
        });
    }
}

void
TimingCache::handleFill(Addr block)
{
    auto it = mshrs.find(block);
    panic_if(it == mshrs.end(), "%s: fill for unknown block %llx",
             cacheName.c_str(), static_cast<unsigned long long>(block));

    Mshr mshr = std::move(it->second);
    mshrs.erase(it);
    panic_if(primaryPerBank[mshr.bank] == 0, "MSHR accounting underflow");
    --primaryPerBank[mshr.bank];

    fillLine(block, mshr.write);
    ++fills;

    for (MemDoneFn &target : mshr.targets)
        eq.scheduleIn(0, std::move(target));
}

void
TimingCache::probeWarm(Addr addr, bool write)
{
    Addr block = blockAddr(addr);
    unsigned bank = bankOf(block);
    unsigned set = setOf(block);
    size_t base = (static_cast<size_t>(bank) * setsPerBank + set) * assoc;
    for (unsigned w = 0; w < assoc; ++w) {
        Line &line = lines[base + w];
        if (line.valid && line.tag == block) {
            line.lastUse = ++useCounter;
            line.dirty = line.dirty || write;
            return;
        }
    }
    fillLine(block, write);
}

void
TimingCache::registerStats(stats::StatGroup &group)
{
    group.addScalar(cacheName + ".hits", &hits);
    group.addScalar(cacheName + ".misses", &misses);
    group.addScalar(cacheName + ".mshr_merges", &mshrMerges);
    group.addScalar(cacheName + ".bank_rejects", &bankRejects);
    group.addScalar(cacheName + ".mshr_rejects", &mshrRejects);
    group.addScalar(cacheName + ".fills", &fills);
}

MemorySystem::MemorySystem(const MemConfig &cfg, EventQueue &eq)
    : mainMem(cfg, eq),
      l2(cfg.l2, cfg.l2TransferPer4Words, eq, mainMem),
      dcache(cfg.dcache, 0, eq, l2),
      icache(cfg.icache, 0, eq, l2),
      dcacheBlockSize(cfg.dcache.blockSize),
      icacheBlockSize(cfg.icache.blockSize)
{
}

void
MemorySystem::warmData(Addr addr, bool write)
{
    if (!dcache.isResident(addr) && !l2.isResident(addr))
        l2.probeWarm(addr, write);
    dcache.probeWarm(addr, write);
}

void
MemorySystem::warmInst(Addr addr)
{
    if (!icache.isResident(addr) && !l2.isResident(addr))
        l2.probeWarm(addr, false);
    icache.probeWarm(addr, false);
}

void
MemorySystem::registerStats(stats::StatGroup &group)
{
    icache.registerStats(group);
    dcache.registerStats(group);
    l2.registerStats(group);
    group.addScalar("mem.reads", &mainMem.numReads);
    group.addScalar("mem.writes", &mainMem.numWrites);
}

} // namespace cwsim
