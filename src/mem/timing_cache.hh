/**
 * @file
 * The timing side of the memory hierarchy: banked, set-associative,
 * lockup-free caches with bounded primary/secondary MSHRs, and the
 * fixed-latency main memory behind them.
 *
 * Caches are tag-only: data values always come from the store buffer or
 * FunctionalMemory. Timing parameters follow Table 2 of the paper, e.g.
 * an L1 miss that hits in the unified L2 completes in
 * 8 + (32B / 16B-per-chunk) * 1 = 10 cycles, and an L2 miss fills its
 * 128-byte block from main memory in 34 + 8 * 2 = 50 cycles.
 */

#ifndef CWSIM_MEM_TIMING_CACHE_HH
#define CWSIM_MEM_TIMING_CACHE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "base/arena.hh"
#include "base/types.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace cwsim
{

/** Completion callback for a timing access. */
using MemDoneFn = InplaceFunction;

/** Anything a cache can forward misses to. */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /**
     * Try to start an access at the current tick.
     *
     * @param addr First byte accessed.
     * @param size Bytes requested (a block size for refills).
     * @param write True for stores / dirty refills.
     * @param done Invoked when the data is available.
     * @return False if the request was rejected (busy bank / MSHRs
     *         exhausted); the caller must retry on a later tick.
     */
    virtual bool access(Addr addr, unsigned size, bool write,
                        MemDoneFn done) = 0;
};

/** Infinite-capacity main memory with fixed base + transfer latency. */
class MainMemory : public MemLevel
{
  public:
    MainMemory(const MemConfig &cfg, EventQueue &eq);

    bool access(Addr addr, unsigned size, bool write,
                MemDoneFn done) override;

    stats::Scalar numReads;
    stats::Scalar numWrites;

  private:
    EventQueue &eq;
    Cycles baseLatency;
    Cycles perChunkLatency;
};

class TimingCache : public MemLevel
{
  public:
    /**
     * @param cfg Geometry and latency of this cache.
     * @param transfer_per_chunk Added response latency per 4-word chunk
     *        of the requested size (0 for L1s, 1 for the L2).
     * @param eq The simulation event queue.
     * @param next The level misses are forwarded to.
     */
    TimingCache(const CacheConfig &cfg, Cycles transfer_per_chunk,
                EventQueue &eq, MemLevel &next);

    bool access(Addr addr, unsigned size, bool write,
                MemDoneFn done) override;

    /**
     * Functional warm-up access used during the fast-forward phase of
     * sampled simulation: updates tags and LRU state with zero latency
     * and no resource constraints.
     */
    void probeWarm(Addr addr, bool write);

    /** True if the block containing @p addr is currently resident. */
    bool isResident(Addr addr) const;

    const std::string &name() const { return cacheName; }

    // Statistics.
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar mshrMerges;
    stats::Scalar bankRejects;
    stats::Scalar mshrRejects;
    stats::Scalar fills;

    void registerStats(stats::StatGroup &group);

  private:
    struct Line
    {
        Addr tag = invalid_addr;
        bool valid = false;
        bool dirty = false;
        uint64_t lastUse = 0;
    };

    struct Mshr
    {
        ArenaVec<MemDoneFn> targets;
        unsigned bank = 0;
        bool write = false;
    };

    Addr blockAddr(Addr addr) const { return addr & ~Addr(blockMask); }
    unsigned bankOf(Addr block) const;
    unsigned setOf(Addr block) const;

    /** Install @p block, evicting LRU; returns the victim line. */
    Line &fillLine(Addr block, bool write);

    void issueToNext(Addr block, bool write);
    void handleFill(Addr block);

    std::string cacheName;
    unsigned blockSize;
    unsigned blockMask;
    unsigned numBanks;
    unsigned setsPerBank;
    unsigned assoc;
    Cycles hitLatency;
    Cycles transferPerChunk;
    unsigned primaryLimit;
    unsigned secondaryLimit;

    EventQueue &eq;
    MemLevel &next;

    std::vector<Line> lines;        ///< [bank][set][way] flattened.
    std::vector<Tick> bankBusyUntil;
    std::vector<unsigned> primaryPerBank;
    /**
     * Outstanding misses. Arena-backed: every miss allocates an MSHR
     * node and a target list and frees them on fill — with the
     * per-run bump arena that churn is a pointer bump, reclaimed
     * wholesale when the harness resets between runs.
     */
    ArenaMap<Addr, Mshr> mshrs;
    uint64_t useCounter;
};

/** The full hierarchy: L1I + L1D in front of a unified L2 and memory. */
class MemorySystem
{
  public:
    MemorySystem(const MemConfig &cfg, EventQueue &eq);

    /** Timing access from the LSQ / store buffer. */
    bool
    dataAccess(Addr addr, unsigned size, bool write, MemDoneFn done)
    {
        return dcache.access(addr, size, write, std::move(done));
    }

    /** Timing access from the fetch unit (one cache block). */
    bool
    instAccess(Addr addr, MemDoneFn done)
    {
        return icache.access(addr, icacheBlockSize, false,
                             std::move(done));
    }

    /** Warm-up probes used during fast-forward. */
    void warmData(Addr addr, bool write);
    void warmInst(Addr addr);

    unsigned dcacheBlock() const { return dcacheBlockSize; }
    unsigned icacheBlock() const { return icacheBlockSize; }

    TimingCache &l1d() { return dcache; }
    TimingCache &l1i() { return icache; }
    TimingCache &unified() { return l2; }

    void registerStats(stats::StatGroup &group);

  private:
    MainMemory mainMem;
    TimingCache l2;
    TimingCache dcache;
    TimingCache icache;
    unsigned dcacheBlockSize;
    unsigned icacheBlockSize;
};

} // namespace cwsim

#endif // CWSIM_MEM_TIMING_CACHE_HH
