#include "obs/cpi_stack.hh"

#include "base/logging.hh"

namespace cwsim
{
namespace obs
{

const char *
toString(CpiCause cause)
{
    switch (cause) {
      case CpiCause::Committed: return "committed";
      case CpiCause::MemDepSquash: return "mem-dep squash";
      case CpiCause::FalseDep: return "false dep";
      case CpiCause::TrueDep: return "true dep";
      case CpiCause::SyncWait: return "sync wait";
      case CpiCause::StoreBarrier: return "store barrier";
      case CpiCause::AddrSched: return "addr sched";
      case CpiCause::CacheMiss: return "cache miss";
      case CpiCause::FetchBranch: return "fetch/branch";
      case CpiCause::WindowFull: return "window full";
      case CpiCause::FrontEndIdle: return "front-end idle";
      case CpiCause::Exec: return "exec";
    }
    panic("bad CpiCause %d", int(cause));
}

const char *
statKey(CpiCause cause)
{
    switch (cause) {
      case CpiCause::Committed: return "committed";
      case CpiCause::MemDepSquash: return "mem_dep_squash";
      case CpiCause::FalseDep: return "false_dep";
      case CpiCause::TrueDep: return "true_dep";
      case CpiCause::SyncWait: return "sync_wait";
      case CpiCause::StoreBarrier: return "store_barrier";
      case CpiCause::AddrSched: return "addr_sched";
      case CpiCause::CacheMiss: return "cache_miss";
      case CpiCause::FetchBranch: return "fetch_branch";
      case CpiCause::WindowFull: return "window_full";
      case CpiCause::FrontEndIdle: return "front_end_idle";
      case CpiCause::Exec: return "exec";
    }
    panic("bad CpiCause %d", int(cause));
}

// A zero commit width is legal: such a machine owns zero slots per
// cycle, so account() accrues nothing and the conservation law holds
// trivially (0 == cycles * 0). The checked-simulation tests build
// commitWidth=0 configs on purpose to livelock the core, and the
// watchdog — not this constructor — must be what reports them.
CpiStack::CpiStack(unsigned commit_width) : commitWidth(commit_width) {}

void
CpiStack::registerIn(stats::StatGroup &parent)
{
    panic_if(group != nullptr, "CPI stack registered twice");
    group = std::make_unique<stats::StatGroup>("cpi", &parent);
    for (size_t i = 0; i < num_cpi_causes; ++i) {
        auto cause = CpiCause(i);
        group->addScalar(statKey(cause), &slots[i],
                         std::string("commit slots: ") + toString(cause));
    }
    group->addScalar("cycles", &accounted, "cycles accounted");
}

uint64_t
CpiStack::totalSlots() const
{
    uint64_t total = 0;
    for (const auto &s : slots)
        total += s.value();
    return total;
}

double
CpiStack::fraction(CpiCause cause) const
{
    uint64_t total = totalSlots();
    return total ? double(slot(cause)) / double(total) : 0.0;
}

} // namespace obs
} // namespace cwsim
