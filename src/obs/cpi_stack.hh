/**
 * @file
 * Commit-slot cycle accounting ("CPI stacks").
 *
 * Every cycle the commit stage owns commitWidth slots. Each slot is
 * attributed to exactly ONE cause: it either committed an instruction
 * or it was lost, and the lost slots of a cycle are all blamed on the
 * single highest-priority reason the window head could not commit
 * (DESIGN.md §11 records the priority order). Attributing per slot
 * rather than per cycle gives an exact conservation law,
 *
 *     sum over causes of slots(cause) == cycles * commitWidth,
 *
 * which the invariant checker enforces at level 1, and lets loss
 * fractions be read directly as fractions of peak throughput: a
 * config whose mem_dep_squash share is 0.18 is losing 18% of its
 * commit bandwidth to miss-speculation recovery.
 *
 * The accounting cost is O(1) per cycle (two array adds and an
 * increment), independent of commitWidth and window size, so it is
 * always on — there is no flag to disable it.
 */

#ifndef CWSIM_OBS_CPI_STACK_HH
#define CWSIM_OBS_CPI_STACK_HH

#include <array>
#include <cstdint>
#include <memory>

#include "sim/stats.hh"

namespace cwsim
{
namespace obs
{

/**
 * Why a commit slot was spent. One value per slot per cycle; residual
 * (non-committing) slots of a cycle all share one cause.
 */
enum class CpiCause : uint8_t
{
    /** The slot committed an instruction. */
    Committed,
    /** Window drained/replaying after a memory-order violation. */
    MemDepSquash,
    /** Head load gated on a predicted dependence that was false. */
    FalseDep,
    /** Head load gated on a genuine in-flight store dependence. */
    TrueDep,
    /** Head load waiting for a synonym store under SPEC-SYNC. */
    SyncWait,
    /** Head load held behind an unissued store barrier. */
    StoreBarrier,
    /** Head load paying the address-scheduler pipeline latency. */
    AddrSched,
    /** Head load's memory access in flight (cache/memory latency). */
    CacheMiss,
    /** Window drained by a branch mispredict; refetch in progress. */
    FetchBranch,
    /** Head stalled for execution while the window is full. */
    WindowFull,
    /** Nothing old enough to commit: front end has not caught up. */
    FrontEndIdle,
    /** Head executing: operands, FU/port contention, plain latency. */
    Exec,
};

constexpr size_t num_cpi_causes = size_t(CpiCause::Exec) + 1;

/** Human-readable label, e.g. "mem-dep squash". */
const char *toString(CpiCause cause);

/**
 * Stable machine key, e.g. "mem_dep_squash". Used as the StatGroup
 * stat name and (prefixed "cpi_") as the sweep JSONL field name.
 */
const char *statKey(CpiCause cause);

/**
 * The per-run accumulator. Owners call account() exactly once per
 * simulated cycle; the conservation law then holds by construction.
 * Standalone-usable (the split-window model has no StatGroup);
 * registerIn() optionally exports the counters as a "cpi" child
 * group, so they ride along in flat-JSON stat dumps.
 */
class CpiStack
{
  public:
    explicit CpiStack(unsigned commit_width);

    /** Export all counters under a "cpi" child of @p parent. */
    void registerIn(stats::StatGroup &parent);

    /**
     * Account one cycle: @p committed slots committed; the remaining
     * width() - committed slots are all blamed on @p residual. When
     * every slot committed the residual cause is ignored.
     */
    void
    account(unsigned committed, CpiCause residual)
    {
        slots[size_t(CpiCause::Committed)] += committed;
        if (committed < commitWidth)
            slots[size_t(residual)] += commitWidth - committed;
        ++accounted;
    }

    unsigned width() const { return commitWidth; }
    /** Number of cycles accounted so far. */
    uint64_t cycles() const { return accounted.value(); }
    uint64_t slot(CpiCause cause) const
    {
        return slots[size_t(cause)].value();
    }
    /** Sum over all causes; equals cycles() * width() by construction. */
    uint64_t totalSlots() const;
    /** Share of all slots spent on @p cause (0 when no cycles yet). */
    double fraction(CpiCause cause) const;

  private:
    unsigned commitWidth;
    std::array<stats::Scalar, num_cpi_causes> slots;
    stats::Scalar accounted;
    /** Owned child group; allocated only when registerIn() is used. */
    std::unique_ptr<stats::StatGroup> group;
};

} // namespace obs
} // namespace cwsim

#endif // CWSIM_OBS_CPI_STACK_HH
