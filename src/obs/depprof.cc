#include "obs/depprof.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "base/jsonl.hh"
#include "base/logging.hh"
#include "base/str.hh"

namespace cwsim
{
namespace obs
{

namespace detail
{
std::atomic<bool> depprof_on{false};
} // namespace detail

size_t
depDistBucket(uint64_t distance)
{
    if (distance < 2)
        return 0;
    size_t b = 0;
    while (distance > 1) {
        distance >>= 1;
        ++b;
    }
    return std::min(b, dep_dist_buckets - 1);
}

std::string
depDistBucketLabel(size_t bucket)
{
    if (bucket == 0)
        return "0-1";
    if (bucket >= dep_dist_buckets - 1)
        return strfmt("%llu+", 1ull << (dep_dist_buckets - 1));
    return strfmt("%llu-%llu", 1ull << bucket,
                  (1ull << (bucket + 1)) - 1);
}

DepProfile::DepProfile(std::string sim_name, std::string run_label,
                       stats::StatGroup *parent)
    : sim(std::move(sim_name)), run(std::move(run_label))
{
    if (parent)
        group = std::make_unique<stats::StatGroup>("depprof", parent);
}

DepLoadCounters &
DepProfile::loadRec(Addr pc)
{
    auto [it, fresh] = loadMap.try_emplace(pc);
    DepLoadCounters &rec = it->second;
    if (fresh && group) {
        // Map nodes are address-stable, so registering pointers into
        // the freshly inserted record is safe for the group's lifetime.
        std::string base = strfmt("load_0x%llx",
                                  static_cast<unsigned long long>(pc));
        group->addScalar(base + ".execs", &rec.execs);
        group->addScalar(base + ".forwards", &rec.forwards);
        group->addScalar(base + ".replays", &rec.replays);
        group->addScalar(base + ".violations", &rec.violations);
        group->addScalar(base + ".sync_waits", &rec.syncWaits);
        group->addScalar(base + ".sel_holds", &rec.selHolds);
        group->addScalar(base + ".barrier_holds", &rec.barrierHolds);
        group->addScalar(base + ".false_dep_loads",
                         &rec.falseDepLoads);
        group->addScalar(base + ".false_dep_cycles",
                         &rec.falseDepCycles);
        group->addScalar(base + ".true_dep_loads", &rec.trueDepLoads);
        group->addScalar(base + ".commits", &rec.commits);
    }
    return rec;
}

DepStoreCounters &
DepProfile::storeRec(Addr pc)
{
    auto [it, fresh] = storeMap.try_emplace(pc);
    DepStoreCounters &rec = it->second;
    if (fresh && group) {
        std::string base = strfmt("store_0x%llx",
                                  static_cast<unsigned long long>(pc));
        group->addScalar(base + ".commits", &rec.commits);
        group->addScalar(base + ".violations_caused",
                         &rec.violationsCaused);
        group->addScalar(base + ".barriers", &rec.barriers);
        group->addScalar(base + ".sync_produces", &rec.syncProduces);
    }
    return rec;
}

DepEdgeCounters &
DepProfile::edgeRec(Addr store_pc, Addr load_pc)
{
    return edgeMap[DepEdgeKey(store_pc, load_pc)];
}

DepMdptCounters &
DepProfile::mdptRec(Addr pc)
{
    return mdptMap[pc];
}

void
DepProfile::noteLoadExec(Addr pc, bool forwarded)
{
    DepLoadCounters &rec = loadRec(pc);
    ++rec.execs;
    if (forwarded)
        ++rec.forwards;
}

void
DepProfile::noteLoadReplay(Addr pc)
{
    ++loadRec(pc).replays;
}

void
DepProfile::noteSelHold(Addr pc)
{
    ++loadRec(pc).selHolds;
}

void
DepProfile::noteBarrierHold(Addr pc)
{
    ++loadRec(pc).barrierHolds;
}

void
DepProfile::noteLoadCommit(Addr pc)
{
    ++loadRec(pc).commits;
}

void
DepProfile::noteFalseDep(Addr pc, uint64_t stall_cycles)
{
    DepLoadCounters &rec = loadRec(pc);
    ++rec.falseDepLoads;
    rec.falseDepCycles += stall_cycles;
}

void
DepProfile::noteTrueDep(Addr pc)
{
    ++loadRec(pc).trueDepLoads;
}

void
DepProfile::noteStoreCommit(Addr pc)
{
    ++storeRec(pc).commits;
}

void
DepProfile::noteStoreBarrier(Addr pc)
{
    ++storeRec(pc).barriers;
}

void
DepProfile::noteViolation(Addr store_pc, Addr load_pc,
                          uint64_t distance, bool full_overlap)
{
    ++loadRec(load_pc).violations;
    ++storeRec(store_pc).violationsCaused;
    DepEdgeCounters &edge = edgeRec(store_pc, load_pc);
    ++edge.violations;
    if (full_overlap)
        ++edge.fullOverlaps;
    else
        ++edge.partialOverlaps;
    ++edge.dist[depDistBucket(distance)];
}

void
DepProfile::noteSyncWait(Addr load_pc, Addr store_pc,
                         uint64_t distance)
{
    ++loadRec(load_pc).syncWaits;
    ++storeRec(store_pc).syncProduces;
    DepEdgeCounters &edge = edgeRec(store_pc, load_pc);
    ++edge.syncs;
    ++edge.dist[depDistBucket(distance)];
}

void
DepProfile::noteMdptAlloc(Addr pc)
{
    ++mdptRec(pc).allocs;
}

void
DepProfile::noteMdptEvict(Addr victim_pc)
{
    ++mdptRec(victim_pc).evicts;
}

void
DepProfile::noteMdptPair(Addr load_pc, Addr store_pc, bool merged)
{
    DepMdptCounters &load_rec = mdptRec(load_pc);
    ++load_rec.pairs;
    if (merged)
        ++load_rec.merges;
    if (store_pc != load_pc) {
        DepMdptCounters &store_rec = mdptRec(store_pc);
        ++store_rec.pairs;
        if (merged)
            ++store_rec.merges;
    }
}

void
DepProfile::noteMdptMissSpec(Addr pc)
{
    ++mdptRec(pc).missSpecs;
}

void
DepProfile::noteMdptSample(uint64_t cycle, uint64_t occupancy,
                           double mean_confidence)
{
    samples.push_back({cycle, occupancy, mean_confidence});
}

namespace
{

std::string
pcString(Addr pc)
{
    return strfmt("0x%llx", static_cast<unsigned long long>(pc));
}

std::string
distString(const std::array<uint64_t, dep_dist_buckets> &dist)
{
    std::string out;
    for (size_t b = 0; b < dep_dist_buckets; ++b) {
        if (!dist[b])
            continue;
        if (!out.empty())
            out += ';';
        out += strfmt("%zu:%llu", b,
                      static_cast<unsigned long long>(dist[b]));
    }
    return out;
}

} // anonymous namespace

std::string
DepProfile::hotEdges(size_t k) const
{
    std::vector<std::pair<DepEdgeKey, const DepEdgeCounters *>> ranked;
    ranked.reserve(edgeMap.size());
    for (const auto &[key, edge] : edgeMap)
        ranked.emplace_back(key, &edge);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  uint64_t av = a.second->violations.value();
                  uint64_t bv = b.second->violations.value();
                  if (av != bv)
                      return av > bv;
                  uint64_t as = a.second->syncs.value();
                  uint64_t bs = b.second->syncs.value();
                  if (as != bs)
                      return as > bs;
                  return a.first < b.first;
              });
    if (ranked.size() > k)
        ranked.resize(k);

    std::string out;
    for (const auto &[key, edge] : ranked) {
        if (!out.empty())
            out += ';';
        out += strfmt(
            "%s-%s:%llu:%llu", pcString(key.first).c_str(),
            pcString(key.second).c_str(),
            static_cast<unsigned long long>(edge->violations.value()),
            static_cast<unsigned long long>(edge->syncs.value()));
    }
    return out;
}

void
DepProfile::serialize(std::vector<std::string> &out) const
{
    const uint64_t v = dep_profile_version;
    {
        JsonObject obj;
        obj.add("v", v)
            .add("kind", "header")
            .add("run", run)
            .add("sim", sim)
            .add("loads", static_cast<uint64_t>(loadMap.size()))
            .add("stores", static_cast<uint64_t>(storeMap.size()))
            .add("edges", static_cast<uint64_t>(edgeMap.size()))
            .add("mdpt_pcs", static_cast<uint64_t>(mdptMap.size()))
            .add("mdpt_samples", static_cast<uint64_t>(samples.size()));
        out.push_back(obj.str());
    }
    for (const auto &[pc, rec] : loadMap) {
        JsonObject obj;
        obj.add("v", v)
            .add("kind", "load")
            .add("run", run)
            .add("pc", pcString(pc))
            .add("execs", rec.execs.value())
            .add("forwards", rec.forwards.value())
            .add("replays", rec.replays.value())
            .add("violations", rec.violations.value())
            .add("sync_waits", rec.syncWaits.value())
            .add("sel_holds", rec.selHolds.value())
            .add("barrier_holds", rec.barrierHolds.value())
            .add("false_dep_loads", rec.falseDepLoads.value())
            .add("false_dep_cycles", rec.falseDepCycles.value())
            .add("true_dep_loads", rec.trueDepLoads.value())
            .add("commits", rec.commits.value());
        out.push_back(obj.str());
    }
    for (const auto &[pc, rec] : storeMap) {
        JsonObject obj;
        obj.add("v", v)
            .add("kind", "store")
            .add("run", run)
            .add("pc", pcString(pc))
            .add("commits", rec.commits.value())
            .add("violations_caused", rec.violationsCaused.value())
            .add("barriers", rec.barriers.value())
            .add("sync_produces", rec.syncProduces.value());
        out.push_back(obj.str());
    }
    for (const auto &[key, edge] : edgeMap) {
        JsonObject obj;
        obj.add("v", v)
            .add("kind", "edge")
            .add("run", run)
            .add("store_pc", pcString(key.first))
            .add("load_pc", pcString(key.second))
            .add("violations", edge.violations.value())
            .add("syncs", edge.syncs.value())
            .add("full_overlaps", edge.fullOverlaps.value())
            .add("partial_overlaps", edge.partialOverlaps.value())
            .add("dist", distString(edge.dist));
        out.push_back(obj.str());
    }
    for (const auto &[pc, rec] : mdptMap) {
        JsonObject obj;
        obj.add("v", v)
            .add("kind", "mdpt")
            .add("run", run)
            .add("pc", pcString(pc))
            .add("allocs", rec.allocs.value())
            .add("evicts", rec.evicts.value())
            .add("pairs", rec.pairs.value())
            .add("merges", rec.merges.value())
            .add("miss_specs", rec.missSpecs.value());
        out.push_back(obj.str());
    }
    for (const DepMdptSample &s : samples) {
        JsonObject obj;
        obj.add("v", v)
            .add("kind", "mdpt_sample")
            .add("run", run)
            .add("cycle", s.cycle)
            .add("occupancy", s.occupancy)
            .add("mean_confidence", s.meanConfidence);
        out.push_back(obj.str());
    }
}

DepProfManager::DepProfManager()
{
    const char *env = std::getenv("CWSIM_DEPPROF");
    if (!env || !*env || std::string(env) == "0")
        return;
    enable(std::string(env) == "1" ? "" : env);
}

DepProfManager &
DepProfManager::instance()
{
    static DepProfManager mgr;
    return mgr;
}

void
DepProfManager::enable(const std::string &path)
{
    std::lock_guard<std::mutex> lock(writeMutex);
    outPath = path.empty() ? "cwsim.depprof.jsonl" : path;
    detail::depprof_on.store(true);
}

void
DepProfManager::disable()
{
    std::lock_guard<std::mutex> lock(writeMutex);
    detail::depprof_on.store(false);
}

void
DepProfManager::resetForTesting()
{
    std::lock_guard<std::mutex> lock(writeMutex);
    detail::depprof_on.store(false);
    outPath.clear();
}

void
DepProfManager::writeRun(const DepProfile &prof)
{
    std::vector<std::string> lines;
    prof.serialize(lines);

    std::lock_guard<std::mutex> lock(writeMutex);
    if (outPath.empty())
        return;
    std::FILE *out = std::fopen(outPath.c_str(), "a");
    if (!out) {
        warn("depprof: cannot append profile to %s", outPath.c_str());
        return;
    }
    // One block per run, appended as a single write: the mutex covers
    // in-process sweep workers, and a lone O_APPEND write covers
    // isolated (forked) workers sharing the file — either way the
    // validator never sees interleaved lines.
    std::string block;
    for (const std::string &line : lines) {
        block += line;
        block += '\n';
    }
    std::fwrite(block.data(), 1, block.size(), out);
    std::fclose(out);
}

} // namespace obs
} // namespace cwsim
