/**
 * @file
 * The speculation observatory: per-static-PC attribution of every
 * memory-dependence event the simulators produce.
 *
 * Aggregate counters (ProcStats, the CPI stack) answer "how many
 * violations"; this collector answers WHICH static loads and stores
 * caused them. It keeps, per run:
 *
 *  - per-load-PC counters: executions, store-buffer forwarding hits,
 *    replays, violations suffered, SYNC waits, SEL holds, barrier
 *    holds, false-/true-dependence commit classification and the
 *    false-dependence stall cycles paid at the issue gates;
 *  - per-store-PC counters: commits, violations caused, barrier
 *    predictions, SYNC producer signals;
 *  - a violation/sync EDGE TABLE keyed by (store PC, load PC) with
 *    occurrence counts, a log2 window-distance histogram, and the
 *    overlap kind (full vs partial byte coverage, derived from the
 *    same byte provenance that drives loadByteSource);
 *  - MDPT introspection: synonym allocations / merges / evictions and
 *    miss-speculations per PC, plus occupancy and mean prediction
 *    confidence sampled at the predictor's reset boundaries.
 *
 * Gating follows the CWSIM_TRACE design contract exactly: one global
 * predicted-false branch (depProfilingActive) decides everything, the
 * profiling state is process-global and deliberately NOT part of
 * SimConfig — enabling it cannot change run-cache fingerprints — and
 * the enabled path only ever reads simulation state, never feeds back
 * into it, so simulated stats stay bit-identical either way (enforced
 * by test and by the depprof-smoke CI job).
 *
 * The on-disk product is a flat-JSON-lines ".depprof.jsonl" file, one
 * self-describing block per run, written atomically with respect to
 * concurrent sweep workers. mdp::DepProfileFile (mdp/dep_profile.hh)
 * is the loader/validator and the input contract for profile-guided
 * policies. Wire format, all lines carrying "v" (dep_profile_version)
 * and "run" (the run label):
 *
 *   {"v":1,"kind":"header","run":L,"sim":"proc","loads":n,
 *    "stores":n,"edges":n,"mdpt_pcs":n,"mdpt_samples":n}
 *   {"v":1,"kind":"load","run":L,"pc":"0x...","execs":..,
 *    "forwards":..,"replays":..,"violations":..,"sync_waits":..,
 *    "sel_holds":..,"barrier_holds":..,"false_dep_loads":..,
 *    "false_dep_cycles":..,"true_dep_loads":..,"commits":..}
 *   {"v":1,"kind":"store","run":L,"pc":"0x...","commits":..,
 *    "violations_caused":..,"barriers":..,"sync_produces":..}
 *   {"v":1,"kind":"edge","run":L,"store_pc":"0x..","load_pc":"0x..",
 *    "violations":..,"syncs":..,"full_overlaps":..,
 *    "partial_overlaps":..,"dist":"b:count;b:count"}
 *   {"v":1,"kind":"mdpt","run":L,"pc":"0x..","allocs":..,
 *    "evicts":..,"pairs":..,"merges":..,"miss_specs":..}
 *   {"v":1,"kind":"mdpt_sample","run":L,"cycle":..,"occupancy":..,
 *    "mean_confidence":..}
 *
 * The header's counts must match the block's record counts — torn or
 * interleaved blocks are detected by the validator, not silently
 * merged. "dist" encodes the non-empty histogram buckets as
 * "bucket:count" pairs (see depDistBucket) because the wire format is
 * flat JSON with no arrays.
 */

#ifndef CWSIM_OBS_DEPPROF_HH
#define CWSIM_OBS_DEPPROF_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "base/types.hh"
#include "sim/stats.hh"

namespace cwsim
{
namespace obs
{

/** Version of the .depprof.jsonl wire format ("v" on every line). */
constexpr unsigned dep_profile_version = 1;

/**
 * Window-distance histogram geometry: log2 buckets. Bucket b counts
 * distances in [2^b, 2^(b+1)); the last bucket is open-ended.
 */
constexpr size_t dep_dist_buckets = 12;

/** The histogram bucket for a (store, load) window distance. */
size_t depDistBucket(uint64_t distance);

/** Human label for one distance bucket ("4-7", "2048+"). */
std::string depDistBucketLabel(size_t bucket);

/** Per-load-PC dependence counters. */
struct DepLoadCounters
{
    stats::Scalar execs;         ///< Memory executions (incl. replays).
    stats::Scalar forwards;      ///< Served fully by the store buffer.
    stats::Scalar replays;       ///< AS silent re-executions.
    stats::Scalar violations;    ///< Miss-speculations suffered.
    stats::Scalar syncWaits;     ///< Cycles held synchronizing (SYNC).
    stats::Scalar selHolds;      ///< Cycles held by SEL prediction.
    stats::Scalar barrierHolds;  ///< Cycles held behind a STORE barrier.
    stats::Scalar falseDepLoads; ///< Commits classified false-dep.
    stats::Scalar falseDepCycles; ///< Stall cycles paid on those.
    stats::Scalar trueDepLoads;  ///< Commits classified true-dep.
    stats::Scalar commits;
};

/** Per-store-PC dependence counters. */
struct DepStoreCounters
{
    stats::Scalar commits;
    stats::Scalar violationsCaused;
    stats::Scalar barriers;      ///< Dispatched as a predicted barrier.
    stats::Scalar syncProduces;  ///< SYNC producer signals delivered.
};

/** One (store PC, load PC) dependence edge. */
struct DepEdgeCounters
{
    stats::Scalar violations;
    stats::Scalar syncs;         ///< Times SYNC serialized this edge.
    stats::Scalar fullOverlaps;  ///< Store covered every load byte.
    stats::Scalar partialOverlaps;
    std::array<uint64_t, dep_dist_buckets> dist{};
};

/** Per-PC MDPT introspection counters. */
struct DepMdptCounters
{
    stats::Scalar allocs;    ///< Entries allocated for this PC.
    stats::Scalar evicts;    ///< This PC's entry chosen as LRU victim.
    stats::Scalar pairs;     ///< Synonym pairings involving this PC.
    stats::Scalar merges;    ///< Pairings that reused an existing chain.
    stats::Scalar missSpecs; ///< recordMissSpeculation hits.
};

/** One occupancy/confidence snapshot (taken at reset boundaries). */
struct DepMdptSample
{
    uint64_t cycle = 0;
    uint64_t occupancy = 0;      ///< Valid MDPT entries.
    double meanConfidence = 0;   ///< Mean confidence of valid entries.
};

/** (store PC, load PC). */
using DepEdgeKey = std::pair<Addr, Addr>;

/**
 * One run's dependence profile. Created by a simulator when profiling
 * is enabled (never otherwise — the hooks are pointer-gated); with a
 * parent StatGroup the per-PC counters also register as flat-JSON
 * stats under "<parent>.depprof.*" with hex-PC key segments.
 */
class DepProfile
{
  public:
    /**
     * @param sim Which simulator produced the profile ("proc"/"split").
     * @param run The run label ("workload config").
     * @param parent Optional stats parent; when set, counters register
     *        in a child group named "depprof".
     */
    DepProfile(std::string sim, std::string run,
               stats::StatGroup *parent = nullptr);

    // ---- load-side hooks ---------------------------------------------
    void noteLoadExec(Addr pc, bool forwarded);
    void noteLoadReplay(Addr pc);
    void noteSelHold(Addr pc);
    void noteBarrierHold(Addr pc);
    void noteLoadCommit(Addr pc);
    void noteFalseDep(Addr pc, uint64_t stall_cycles);
    void noteTrueDep(Addr pc);

    // ---- store-side hooks --------------------------------------------
    void noteStoreCommit(Addr pc);
    void noteStoreBarrier(Addr pc);

    // ---- edge hooks ---------------------------------------------------
    /** A detected miss-speculation: @p load_pc read stale data that
     *  @p store_pc produced, @p distance window slots apart. */
    void noteViolation(Addr store_pc, Addr load_pc, uint64_t distance,
                       bool full_overlap);
    /** A SYNC hold: @p load_pc waited on the producing @p store_pc. */
    void noteSyncWait(Addr load_pc, Addr store_pc, uint64_t distance);

    // ---- MDPT introspection hooks -------------------------------------
    void noteMdptAlloc(Addr pc);
    void noteMdptEvict(Addr victim_pc);
    void noteMdptPair(Addr load_pc, Addr store_pc, bool merged);
    void noteMdptMissSpec(Addr pc);
    void noteMdptSample(uint64_t cycle, uint64_t occupancy,
                        double mean_confidence);

    // ---- product -------------------------------------------------------
    const std::string &simName() const { return sim; }
    const std::string &runLabel() const { return run; }

    const std::map<Addr, DepLoadCounters> &loads() const
    { return loadMap; }
    const std::map<Addr, DepStoreCounters> &stores() const
    { return storeMap; }
    const std::map<DepEdgeKey, DepEdgeCounters> &edges() const
    { return edgeMap; }
    const std::map<Addr, DepMdptCounters> &mdptPcs() const
    { return mdptMap; }
    const std::vector<DepMdptSample> &mdptSamples() const
    { return samples; }

    uint64_t numLoads() const { return loadMap.size(); }
    uint64_t numStores() const { return storeMap.size(); }
    uint64_t numEdges() const { return edgeMap.size(); }

    /**
     * The top @p k edges by (violations, syncs) descending, PC-order
     * tie-broken, encoded compactly for the sweep record's
     * dep_hot_edges field: "0xS-0xL:viol:syncs;..." (possibly empty).
     */
    std::string hotEdges(size_t k) const;

    /**
     * Serialize the whole profile as one block of flat JSON lines
     * (header first; see the file comment for the format). Maps are
     * walked in key order, so equal profiles yield identical blocks.
     */
    void serialize(std::vector<std::string> &out) const;

  private:
    DepLoadCounters &loadRec(Addr pc);
    DepStoreCounters &storeRec(Addr pc);
    DepEdgeCounters &edgeRec(Addr store_pc, Addr load_pc);
    DepMdptCounters &mdptRec(Addr pc);

    std::string sim;
    std::string run;
    std::map<Addr, DepLoadCounters> loadMap;
    std::map<Addr, DepStoreCounters> storeMap;
    std::map<DepEdgeKey, DepEdgeCounters> edgeMap;
    std::map<Addr, DepMdptCounters> mdptMap;
    std::vector<DepMdptSample> samples;

    /** The "depprof" stats child, or null when stats-less (split). */
    std::unique_ptr<stats::StatGroup> group;
};

namespace detail
{
/** The one global the fast path reads: true iff profiling is on. */
extern std::atomic<bool> depprof_on;
} // namespace detail

/** The hook gate: one predicted-false branch when profiling is off. */
inline bool
depProfilingActive()
{
    return __builtin_expect(
        detail::depprof_on.load(std::memory_order_relaxed), 0);
}

/**
 * Process-wide profiling configuration + the serialized writer, the
 * exact shape of TraceManager: global (never in SimConfig), env-
 * configurable, and parallel-sweep safe — each run's block is written
 * under one mutex so concurrent workers cannot interleave blocks.
 */
class DepProfManager
{
  public:
    /**
     * The process-wide manager. First use applies CWSIM_DEPPROF:
     * unset/""/"0" leaves profiling off, "1" enables the default
     * path (cwsim.depprof.jsonl), anything else enables that path.
     */
    static DepProfManager &instance();

    /** Enable profiling into @p path ("" = the default path). */
    void enable(const std::string &path = "");
    void disable();

    bool active() const { return detail::depprof_on.load(); }
    const std::string &path() const { return outPath; }

    /** Append one run's block to the profile file (mutex-held). */
    void writeRun(const DepProfile &prof);

    /** Tests only: disable and forget the configured path. */
    void resetForTesting();

  private:
    DepProfManager();
    DepProfManager(const DepProfManager &) = delete;
    DepProfManager &operator=(const DepProfManager &) = delete;

    std::mutex writeMutex;
    std::string outPath;
};

} // namespace obs
} // namespace cwsim

#endif // CWSIM_OBS_DEPPROF_HH
