#include "obs/interval.hh"

#include "base/logging.hh"
#include "base/str.hh"

namespace cwsim
{
namespace obs
{

namespace
{

/**
 * Minimal JSON string escape for the label field. Labels are workload
 * and config names today, but defend against anything.
 */
std::string
escapeLabel(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // anonymous namespace

IntervalSampler::IntervalSampler(const std::string &path,
                                 uint64_t period, std::string label)
    : out(std::fopen(path.c_str(), "a")), periodCycles(period),
      nextSampleAt(period), label(std::move(label))
{
    if (!out) {
        warn("interval stats: cannot open %s; sampling disabled",
             path.c_str());
    }
}

IntervalSampler::~IntervalSampler()
{
    if (out)
        std::fclose(out);
}

void
IntervalSampler::sample(Tick cycle, const IntervalCounters &now)
{
    while (nextSampleAt <= cycle)
        nextSampleAt += periodCycles;
    if (!out)
        return;

    uint64_t cycles = cycle - lastCycle;
    uint64_t commits = now.commits - last.commits;
    uint64_t occ_n = now.occupancyCount - last.occupancyCount;
    double occ_mean =
        occ_n ? (now.occupancySum - last.occupancySum) / occ_n : 0.0;

    // One fprintf per line: with line buffering the whole record lands
    // in one write, so concurrent samplers appending to the same file
    // cannot shear a line.
    std::fprintf(
        out,
        "{\"label\":\"%s\",\"cycle\":%llu,\"interval\":%llu,"
        "\"commits\":%llu,\"ipc\":%.6f,\"violations\":%llu,"
        "\"replays\":%llu,\"false_dep_loads\":%llu,"
        "\"window_occupancy\":%.4f}\n",
        escapeLabel(label).c_str(),
        static_cast<unsigned long long>(cycle),
        static_cast<unsigned long long>(cycles),
        static_cast<unsigned long long>(commits),
        cycles ? static_cast<double>(commits) / cycles : 0.0,
        static_cast<unsigned long long>(now.violations -
                                        last.violations),
        static_cast<unsigned long long>(now.replays - last.replays),
        static_cast<unsigned long long>(now.falseDepLoads -
                                        last.falseDepLoads),
        occ_mean);
    std::fflush(out);

    last = now;
    lastCycle = cycle;
    ++samples;
}

void
IntervalSampler::finalize(Tick cycle, const IntervalCounters &now)
{
    if (!out || cycle <= lastCycle)
        return;
    sample(cycle, now);
}

} // namespace obs
} // namespace cwsim
