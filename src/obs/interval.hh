/**
 * @file
 * The interval stats sampler: snapshots the deltas of a few headline
 * counters every N cycles into a flat-JSON-per-line (JSONL) time
 * series, turning end-of-run aggregates into time-resolved curves
 * (IPC over time, miss-speculation bursts, window-occupancy drift).
 *
 * Each line is a flat JSON object parseable by sweep::parseFlatJson:
 *
 *   {"label":"099.go NAS/NAV","cycle":2000,"interval":1000,
 *    "commits":2514,"ipc":2.514,"violations":3,"replays":0,
 *    "false_dep_loads":11,"window_occupancy":97.2}
 *
 * All counter fields are deltas over the interval; window_occupancy is
 * the mean occupancy within the interval. The processor drives the
 * sampler from its tick loop; the sampler computes deltas from the
 * monotonic totals it is handed, so the per-cycle cost in the pipeline
 * is one null check plus one compare.
 */

#ifndef CWSIM_OBS_INTERVAL_HH
#define CWSIM_OBS_INTERVAL_HH

#include <cstdint>
#include <cstdio>
#include <string>

#include "base/types.hh"

namespace cwsim
{
namespace obs
{

/** Monotonic counter snapshot handed to the sampler each interval. */
struct IntervalCounters
{
    uint64_t commits = 0;
    uint64_t violations = 0;
    uint64_t replays = 0;
    uint64_t falseDepLoads = 0;
    /** Running sum/count of per-cycle window-occupancy samples. */
    double occupancySum = 0;
    uint64_t occupancyCount = 0;
};

class IntervalSampler
{
  public:
    /**
     * Append samples for one run to @p path, one line per @p period
     * cycles, tagged with @p label.
     */
    IntervalSampler(const std::string &path, uint64_t period,
                    std::string label);
    ~IntervalSampler();

    bool valid() const { return out != nullptr; }
    uint64_t period() const { return periodCycles; }

    /** The tick-loop gate: true when @p cycle closes an interval. */
    bool due(Tick cycle) const { return cycle >= nextSampleAt; }

    /** Emit the line for the interval ending at @p cycle. */
    void sample(Tick cycle, const IntervalCounters &now);

    /**
     * Flush the trailing partial interval at end of run. When the run
     * length is not a multiple of the period the tail cycles since the
     * last boundary would otherwise be silently dropped from the time
     * series. No-op when the final cycle already closed an interval
     * (so calling it after a boundary sample never duplicates a line).
     */
    void finalize(Tick cycle, const IntervalCounters &now);

    uint64_t samplesWritten() const { return samples; }

  private:
    std::FILE *out;
    uint64_t periodCycles;
    Tick nextSampleAt;
    std::string label;
    IntervalCounters last;
    Tick lastCycle = 0;
    uint64_t samples = 0;
};

} // namespace obs
} // namespace cwsim

#endif // CWSIM_OBS_INTERVAL_HH
