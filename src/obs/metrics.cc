#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/str.hh"

namespace cwsim
{
namespace obs
{

Histogram::Histogram(std::vector<double> upperBounds)
    : upper(std::move(upperBounds)), buckets(upper.size() + 1)
{
    panic_if(upper.empty(), "histogram needs at least one bucket bound");
    panic_if(!std::is_sorted(upper.begin(), upper.end()),
             "histogram bounds must be ascending");
}

void
Histogram::observe(double x)
{
    size_t i =
        std::lower_bound(upper.begin(), upper.end(), x) - upper.begin();
    buckets[i].fetch_add(1, std::memory_order_relaxed);
    double cur = total.load(std::memory_order_relaxed);
    while (!total.compare_exchange_weak(cur, cur + x,
                                        std::memory_order_relaxed)) {
    }
}

uint64_t
Histogram::count() const
{
    uint64_t n = 0;
    for (const auto &b : buckets)
        n += b.load(std::memory_order_relaxed);
    return n;
}

double
Histogram::quantile(double q) const
{
    uint64_t n = count();
    if (n == 0)
        return std::nan("");
    q = std::min(std::max(q, 0.0), 1.0);
    // Rank of the q-quantile sample, 1-based; walk the cumulative
    // distribution until we cover it.
    double rank = q * static_cast<double>(n);
    uint64_t cumul = 0;
    for (size_t i = 0; i < buckets.size(); i++) {
        uint64_t inBucket = buckets[i].load(std::memory_order_relaxed);
        if (inBucket == 0)
            continue;
        if (static_cast<double>(cumul + inBucket) >= rank) {
            if (i >= upper.size()) {
                // Overflow bucket: no upper edge to interpolate
                // toward; clamp to the highest finite bound.
                return upper.back();
            }
            double lo = i == 0 ? 0.0 : upper[i - 1];
            double hi = upper[i];
            double frac =
                (rank - static_cast<double>(cumul)) / inBucket;
            return lo + (hi - lo) * std::min(std::max(frac, 0.0), 1.0);
        }
        cumul += inBucket;
    }
    return upper.back();
}

std::vector<double>
Histogram::latencySeconds()
{
    return {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
            0.5,   1.0,    2.5,   5.0,  10.0,  30.0, 60.0, 120.0};
}

MetricsRegistry::Entry *
MetricsRegistry::find(const std::string &name,
                      const std::string &labelValue)
{
    for (auto &e : entries) {
        if (e->name == name && e->labelValue == labelValue)
            return e.get();
    }
    return nullptr;
}

Counter &
MetricsRegistry::counter(const std::string &name, const std::string &help)
{
    return counter(name, help, "", "");
}

Counter &
MetricsRegistry::counter(const std::string &name, const std::string &help,
                         const std::string &labelKey,
                         const std::string &labelValue)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (Entry *e = find(name, labelValue)) {
        panic_if(e->kind != Kind::CounterKind,
                 "metric %s re-registered with a different type",
                 name.c_str());
        return *e->counter;
    }
    auto e = std::make_unique<Entry>();
    e->name = name;
    e->help = help;
    e->labelKey = labelKey;
    e->labelValue = labelValue;
    e->kind = Kind::CounterKind;
    e->counter = std::make_unique<Counter>();
    entries.push_back(std::move(e));
    return *entries.back()->counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const std::string &help)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (Entry *e = find(name, "")) {
        panic_if(e->kind != Kind::GaugeKind,
                 "metric %s re-registered with a different type",
                 name.c_str());
        return *e->gauge;
    }
    auto e = std::make_unique<Entry>();
    e->name = name;
    e->help = help;
    e->kind = Kind::GaugeKind;
    e->gauge = std::make_unique<Gauge>();
    entries.push_back(std::move(e));
    return *entries.back()->gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name, const std::string &help,
                           std::vector<double> upperBounds)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (Entry *e = find(name, "")) {
        panic_if(e->kind != Kind::HistogramKind,
                 "metric %s re-registered with a different type",
                 name.c_str());
        return *e->histogram;
    }
    auto e = std::make_unique<Entry>();
    e->name = name;
    e->help = help;
    e->kind = Kind::HistogramKind;
    e->histogram = std::make_unique<Histogram>(std::move(upperBounds));
    entries.push_back(std::move(e));
    return *entries.back()->histogram;
}

namespace
{

/**
 * Prometheus sample values: integers render without an exponent or
 * trailing zeros; everything else gets shortest-round-trip %g.
 */
std::string
promNumber(double x)
{
    if (std::isfinite(x) && x == std::floor(x) &&
        std::abs(x) < 1e15) {
        return strfmt("%lld", static_cast<long long>(x));
    }
    return strfmt("%.10g", x);
}

} // anonymous namespace

std::string
MetricsRegistry::prometheusText() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::string out;
    std::string lastHeader; // Emit HELP/TYPE once per metric name.
    for (const auto &e : entries) {
        if (e->name != lastHeader) {
            const char *type = e->kind == Kind::CounterKind ? "counter"
                               : e->kind == Kind::GaugeKind ? "gauge"
                                                            : "histogram";
            out += strfmt("# HELP %s %s\n", e->name.c_str(),
                          e->help.c_str());
            out += strfmt("# TYPE %s %s\n", e->name.c_str(), type);
            lastHeader = e->name;
        }
        switch (e->kind) {
          case Kind::CounterKind:
            if (e->labelKey.empty()) {
                out += strfmt("%s %llu\n", e->name.c_str(),
                              (unsigned long long)e->counter->value());
            } else {
                out += strfmt("%s{%s=\"%s\"} %llu\n", e->name.c_str(),
                              e->labelKey.c_str(), e->labelValue.c_str(),
                              (unsigned long long)e->counter->value());
            }
            break;
          case Kind::GaugeKind:
            out += strfmt("%s %s\n", e->name.c_str(),
                          promNumber(e->gauge->value()).c_str());
            break;
          case Kind::HistogramKind: {
            const Histogram &h = *e->histogram;
            uint64_t cumul = 0;
            for (size_t i = 0; i < h.bounds().size(); i++) {
                cumul += h.bucketValue(i);
                out += strfmt("%s_bucket{le=\"%s\"} %llu\n",
                              e->name.c_str(),
                              promNumber(h.bounds()[i]).c_str(),
                              (unsigned long long)cumul);
            }
            cumul += h.bucketValue(h.bucketCount() - 1);
            out += strfmt("%s_bucket{le=\"+Inf\"} %llu\n",
                          e->name.c_str(), (unsigned long long)cumul);
            out += strfmt("%s_sum %s\n", e->name.c_str(),
                          promNumber(h.sum()).c_str());
            out += strfmt("%s_count %llu\n", e->name.c_str(),
                          (unsigned long long)cumul);
            break;
          }
        }
    }
    return out;
}

namespace
{

/** Flat-JSON values follow the JsonObject convention: non-finite
 * doubles are quoted so the line stays parseable. */
std::string
jsonNumber(double x)
{
    if (!std::isfinite(x))
        return strfmt("\"%s\"", std::isnan(x) ? "nan" : "inf");
    return promNumber(x);
}

} // anonymous namespace

std::string
MetricsRegistry::flatJson() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::string out = "{";
    bool first = true;
    auto emit = [&](const std::string &key, const std::string &value) {
        if (!first)
            out += ",";
        first = false;
        out += strfmt("\"%s\":%s", key.c_str(), value.c_str());
    };
    for (const auto &e : entries) {
        // Labeled series flatten to <name>_<labelValue>; metric names
        // and label values are code-controlled identifiers, so no
        // escaping is needed.
        std::string key = e->labelKey.empty()
                              ? e->name
                              : e->name + "_" + e->labelValue;
        switch (e->kind) {
          case Kind::CounterKind:
            emit(key, strfmt("%llu",
                             (unsigned long long)e->counter->value()));
            break;
          case Kind::GaugeKind:
            emit(key, jsonNumber(e->gauge->value()));
            break;
          case Kind::HistogramKind: {
            const Histogram &h = *e->histogram;
            emit(key + "_count",
                 strfmt("%llu", (unsigned long long)h.count()));
            emit(key + "_sum", jsonNumber(h.sum()));
            emit(key + "_p50", jsonNumber(h.quantile(0.50)));
            emit(key + "_p90", jsonNumber(h.quantile(0.90)));
            emit(key + "_p99", jsonNumber(h.quantile(0.99)));
            break;
          }
        }
    }
    out += "}";
    return out;
}

} // namespace obs
} // namespace cwsim
