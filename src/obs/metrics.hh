/**
 * @file
 * Host-side metrics registry for the serving stack: monotonic
 * counters, gauges, and fixed-bucket latency histograms with quantile
 * estimates, exported as Prometheus-compatible text exposition and as
 * one flat JSON object (the dialect sweep::parseFlatJson reads, so a
 * registry snapshot can ride inside a cwsimd stats event).
 *
 * This measures the SERVICE, not the simulation: where wall-clock time
 * goes across the queue → fork → run → cache pipeline (queue depth and
 * wait, worker-slot utilization, per-fail_kind outcomes, cache hit
 * ratio, end-to-end run latency). Simulated stats stay in
 * sim/stats.hh; nothing here may influence a RunResult.
 *
 * Lock-cheap by construction: registration takes a mutex (cold, at
 * startup), but every hot-path update — Counter::inc, Gauge::set,
 * Histogram::observe — is a handful of relaxed atomic operations on
 * stable storage (entries are never moved once registered), so
 * instrumenting the daemon's event loop or the isolate pool's reap
 * path costs nanoseconds and never blocks.
 *
 * Metric naming follows Prometheus conventions: snake_case, counters
 * end in _total, histograms are exposed as <name>_bucket{le="..."} /
 * <name>_sum / <name>_count. A metric may carry ONE label pair (e.g.
 * fail-kind outcome counters: cwsimd_run_results_total{kind="crash"});
 * in the flat-JSON export a labeled metric flattens to
 * <name>_<labelValue> ("cwsimd_run_results_total_crash"), and a
 * histogram adds derived <name>_p50/_p90/_p99 quantile estimates.
 */

#ifndef CWSIM_OBS_METRICS_HH
#define CWSIM_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cwsim
{
namespace obs
{

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    inc(uint64_t n = 1)
    {
        v.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const { return v.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v{0};
};

/** A value that goes up and down (queue depth, busy slots, uptime). */
class Gauge
{
  public:
    void
    set(double x)
    {
        v.store(x, std::memory_order_relaxed);
    }

    void
    add(double dx)
    {
        // CAS loop instead of fetch_add: atomic<double>::fetch_add is
        // C++20 but not universally lock-free; this always is cheap.
        double cur = v.load(std::memory_order_relaxed);
        while (!v.compare_exchange_weak(cur, cur + dx,
                                        std::memory_order_relaxed)) {
        }
    }

    double value() const { return v.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> v{0};
};

/**
 * Fixed-bucket histogram: cumulative-style export (Prometheus le
 * buckets), linear-interpolation quantile estimates. Bucket bounds are
 * upper edges in ascending order; an implicit +Inf overflow bucket
 * catches everything beyond the last bound.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> upperBounds);

    void observe(double x);

    uint64_t count() const;
    double sum() const { return total.load(std::memory_order_relaxed); }
    size_t bucketCount() const { return buckets.size(); }
    const std::vector<double> &bounds() const { return upper; }
    /** Samples in bucket @p i (the last index is the +Inf bucket). */
    uint64_t
    bucketValue(size_t i) const
    {
        return buckets[i].load(std::memory_order_relaxed);
    }

    /**
     * Estimated @p q quantile (0 < q <= 1) by linear interpolation
     * inside the covering bucket. NaN when empty. Samples landing in
     * the +Inf overflow bucket clamp to the highest finite bound — an
     * estimate can only be as good as the bucket layout.
     */
    double quantile(double q) const;

    /** The default latency layout: 1 ms .. 120 s, roughly log-spaced. */
    static std::vector<double> latencySeconds();

  private:
    std::vector<double> upper; ///< Ascending finite upper bounds.
    /** One per bound plus the +Inf overflow bucket. */
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<double> total{0};
};

/**
 * The registry: named metrics in stable registration order.
 * Registration is idempotent — asking for the same (name, label) again
 * returns the existing metric, so components can re-register handles
 * without coordination. Returned references stay valid for the
 * registry's lifetime (entries are heap-allocated and never moved).
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name, const std::string &help);
    /** A labeled counter series, e.g. ("...", "kind", "crash"). */
    Counter &counter(const std::string &name, const std::string &help,
                     const std::string &labelKey,
                     const std::string &labelValue);
    Gauge &gauge(const std::string &name, const std::string &help);
    Histogram &histogram(const std::string &name,
                         const std::string &help,
                         std::vector<double> upperBounds);

    /**
     * Prometheus text exposition (version 0.0.4): # HELP and # TYPE
     * once per metric name, then one sample line per series; histogram
     * series expand to _bucket{le=...}/_sum/_count. Ends with a
     * newline, as scrapers require.
     */
    std::string prometheusText() const;

    /**
     * One flat JSON object with every metric: counters and gauges as
     * numbers, histograms as _count/_sum plus _p50/_p90/_p99 quantile
     * estimates (quantiles of an empty histogram export as "nan", the
     * JsonObject convention). Parseable by sweep::parseFlatJson.
     */
    std::string flatJson() const;

  private:
    enum class Kind { CounterKind, GaugeKind, HistogramKind };

    struct Entry
    {
        std::string name;
        std::string help;
        std::string labelKey;   ///< Empty = unlabeled.
        std::string labelValue;
        Kind kind = Kind::CounterKind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry *find(const std::string &name, const std::string &labelValue);

    mutable std::mutex mutex; ///< Guards the entry list, not updates.
    std::vector<std::unique_ptr<Entry>> entries;
};

} // namespace obs
} // namespace cwsim

#endif // CWSIM_OBS_METRICS_HH
