#include "obs/pipeview.hh"

#include <cctype>
#include <istream>

#include "base/str.hh"

namespace cwsim
{
namespace obs
{

namespace
{

uint64_t
ticks(Tick cycle)
{
    return cycle * pipeview_ticks_per_cycle;
}

bool
allDigits(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    }
    return true;
}

bool
allHexDigits(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isxdigit(static_cast<unsigned char>(c)))
            return false;
    }
    return true;
}

/** The mid-record stages, in the order a record must emit them. */
const char *const mid_stages[] = {"decode", "rename", "dispatch",
                                  "issue", "complete"};
constexpr size_t num_mid_stages = 5;

} // anonymous namespace

PipeViewWriter::PipeViewWriter(const std::string &path)
    : filePath(path), out(std::fopen(path.c_str(), "w"))
{
}

PipeViewWriter::~PipeViewWriter()
{
    if (out)
        std::fclose(out);
}

void
PipeViewWriter::write(const Record &rec)
{
    if (!out)
        return;
    std::lock_guard<std::mutex> lock(mutex);
    std::fprintf(out,
                 "O3PipeView:fetch:%llu:0x%08llx:0:%llu:%s\n"
                 "O3PipeView:decode:%llu\n"
                 "O3PipeView:rename:%llu\n"
                 "O3PipeView:dispatch:%llu\n"
                 "O3PipeView:issue:%llu\n"
                 "O3PipeView:complete:%llu\n",
                 static_cast<unsigned long long>(ticks(rec.fetch)),
                 static_cast<unsigned long long>(rec.pc),
                 static_cast<unsigned long long>(rec.seq),
                 rec.disasm.c_str(),
                 static_cast<unsigned long long>(ticks(rec.decode)),
                 static_cast<unsigned long long>(ticks(rec.rename)),
                 static_cast<unsigned long long>(ticks(rec.dispatch)),
                 static_cast<unsigned long long>(ticks(rec.issue)),
                 static_cast<unsigned long long>(ticks(rec.complete)));
    if (rec.storeComplete) {
        std::fprintf(out, "O3PipeView:retire:%llu:store:%llu\n",
                     static_cast<unsigned long long>(ticks(rec.retire)),
                     static_cast<unsigned long long>(
                         ticks(rec.storeComplete)));
    } else {
        std::fprintf(out, "O3PipeView:retire:%llu\n",
                     static_cast<unsigned long long>(ticks(rec.retire)));
    }
    ++records;
}

std::string
validatePipeViewLine(const std::string &line)
{
    std::vector<std::string> f = split(line, ':');
    if (f.size() < 2 || f[0] != "O3PipeView")
        return "does not start with 'O3PipeView:<stage>'";
    const std::string &stage = f[1];

    if (stage == "fetch") {
        // O3PipeView:fetch:<tick>:0x<pc>:0:<seq>:<disasm...>
        if (f.size() < 7)
            return "fetch line needs 7 ':'-separated fields";
        if (!allDigits(f[2]))
            return "fetch tick is not a number";
        if (!startsWith(f[3], "0x") || !allHexDigits(f[3].substr(2)))
            return "fetch pc is not 0x<hex>";
        if (!allDigits(f[4]))
            return "fetch upc is not a number";
        if (!allDigits(f[5]))
            return "fetch seq is not a number";
        return "";
    }
    for (const char *mid : mid_stages) {
        if (stage == mid) {
            if (f.size() != 3)
                return strfmt("%s line needs exactly 3 fields", mid);
            if (!allDigits(f[2]))
                return strfmt("%s tick is not a number", mid);
            return "";
        }
    }
    if (stage == "retire") {
        // O3PipeView:retire:<tick>[:store:<tick>]
        if (f.size() != 3 && f.size() != 5)
            return "retire line needs 3 or 5 fields";
        if (!allDigits(f[2]))
            return "retire tick is not a number";
        if (f.size() == 5) {
            if (f[3] != "store")
                return "retire 4th field must be 'store'";
            if (!allDigits(f[4]))
                return "retire store tick is not a number";
        }
        return "";
    }
    return strfmt("unknown stage '%s'", stage.c_str());
}

std::string
validatePipeViewStream(std::istream &in, size_t *records)
{
    size_t count = 0;
    size_t line_no = 0;
    // Index into the expected next stage: 0 = fetch,
    // 1..num_mid_stages = mid stages, then retire.
    size_t expect = 0;

    std::string line;
    while (std::getline(in, line)) {
        ++line_no;
        if (trim(line).empty())
            continue;
        std::string complaint = validatePipeViewLine(line);
        if (!complaint.empty())
            return strfmt("line %zu: %s", line_no, complaint.c_str());

        std::string stage = split(line, ':')[1];
        std::string expected =
            expect == 0 ? "fetch"
                        : (expect <= num_mid_stages
                               ? mid_stages[expect - 1]
                               : "retire");
        if (stage != expected) {
            return strfmt("line %zu: expected %s line, got %s",
                          line_no, expected.c_str(), stage.c_str());
        }
        if (stage == "retire") {
            ++count;
            expect = 0;
        } else {
            ++expect;
        }
    }
    if (expect != 0)
        return strfmt("truncated record at end of stream");
    if (records)
        *records = count;
    return "";
}

} // namespace obs
} // namespace cwsim
