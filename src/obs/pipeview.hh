/**
 * @file
 * A per-instruction pipeline timeline writer in gem5's O3PipeView
 * format, which Konata (and gem5's util/o3-pipeview.py) render as a
 * scrolling pipeline diagram.
 *
 * One committed (or squashed) instruction becomes one record of
 * newline-terminated stage lines:
 *
 *   O3PipeView:fetch:<tick>:0x<pc>:0:<seq>:<disasm>
 *   O3PipeView:decode:<tick>
 *   O3PipeView:rename:<tick>
 *   O3PipeView:dispatch:<tick>
 *   O3PipeView:issue:<tick>
 *   O3PipeView:complete:<tick>
 *   O3PipeView:retire:<tick>:store:<store-tick>
 *
 * Ticks are cycle * tick_per_cycle (gem5 convention; Konata only uses
 * ratios). A tick of 0 marks a stage the instruction never reached —
 * in particular squashed instructions retire at 0, which viewers
 * render as a flushed (grey) row. Memory-dependence history rides in
 * the disasm field as bracketed annotations: [squash: mem-order],
 * [replay x2], [sync-wait], [sel-hold], [false-dep 12c] — making the
 * speculation behavior the paper studies visible per instruction.
 *
 * Records are written whole under one mutex, so a record is never
 * interleaved; but two parallel runs writing the same file still
 * interleave *records*. Pipeline traces are a single-run debugging
 * tool: use --jobs 1 --filter <one workload> (documented in
 * EXPERIMENTS.md).
 */

#ifndef CWSIM_OBS_PIPEVIEW_HH
#define CWSIM_OBS_PIPEVIEW_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "base/types.hh"

namespace cwsim
{
namespace obs
{

/** gem5 writes 500 ticks per cycle at 2GHz; any constant > 0 works. */
constexpr uint64_t pipeview_ticks_per_cycle = 500;

class PipeViewWriter
{
  public:
    /** One instruction's stage timestamps, in cycles (0 = never). */
    struct Record
    {
        InstSeqNum seq = 0;
        Addr pc = 0;
        std::string disasm;
        Tick fetch = 0;
        Tick decode = 0;
        Tick rename = 0;
        Tick dispatch = 0;
        Tick issue = 0;
        Tick complete = 0;
        /** 0 = squashed (never retired). */
        Tick retire = 0;
        /** Stores: when the store left the store buffer (0 = n/a). */
        Tick storeComplete = 0;
    };

    explicit PipeViewWriter(const std::string &path);
    ~PipeViewWriter();

    bool valid() const { return out != nullptr; }
    const std::string &path() const { return filePath; }

    /** Emit one whole record (all stage lines, atomically). */
    void write(const Record &rec);

    uint64_t recordsWritten() const { return records; }

  private:
    std::string filePath;
    std::FILE *out;
    std::mutex mutex;
    uint64_t records = 0;
};

/**
 * Validate one O3PipeView line. @return "" when well-formed, else a
 * complaint. Used by tests and the CI trace-smoke job.
 */
std::string validatePipeViewLine(const std::string &line);

/**
 * Validate a whole pipeline-trace stream: every line well-formed and
 * stage lines grouped into complete fetch..retire records. On success
 * returns the number of records via @p records and "". On the first
 * malformed line returns "line N: <complaint>".
 */
std::string validatePipeViewStream(std::istream &in, size_t *records);

} // namespace obs
} // namespace cwsim

#endif // CWSIM_OBS_PIPEVIEW_HH
