#include "obs/spans.hh"

#include "base/logging.hh"
#include "base/str.hh"

namespace cwsim
{
namespace obs
{

TraceEventWriter::TraceEventWriter(const std::string &path)
    : epoch(Clock::now())
{
    f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot open trace-event file %s for writing",
             path.c_str());
        return;
    }
    std::fputs("[\n", f);
}

TraceEventWriter::~TraceEventWriter()
{
    finish();
}

uint64_t
TraceEventWriter::tsUs(Clock::time_point t) const
{
    if (t <= epoch)
        return 0;
    return std::chrono::duration_cast<std::chrono::microseconds>(
               t - epoch)
        .count();
}

std::string
TraceEventWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += strfmt("\\u%04x", c);
        } else {
            out += c;
        }
    }
    return out;
}

std::string
TraceEventWriter::argsJson(const Args &args)
{
    std::string out = "{";
    bool first = true;
    for (const auto &kv : args) {
        if (!first)
            out += ",";
        first = false;
        out += strfmt("\"%s\":\"%s\"", escape(kv.first).c_str(),
                      escape(kv.second).c_str());
    }
    out += "}";
    return out;
}

void
TraceEventWriter::event(const std::string &body)
{
    if (!f)
        return;
    if (!firstEvent)
        std::fputs(",\n", f);
    firstEvent = false;
    std::fputs(body.c_str(), f);
}

void
TraceEventWriter::complete(const std::string &name, const std::string &cat,
                           uint64_t pid, uint64_t tid, uint64_t tsUs,
                           uint64_t durUs, const Args &args)
{
    event(strfmt("{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                 "\"ts\":%llu,\"dur\":%llu,\"pid\":%llu,\"tid\":%llu,"
                 "\"args\":%s}",
                 escape(name).c_str(), escape(cat).c_str(),
                 (unsigned long long)tsUs, (unsigned long long)durUs,
                 (unsigned long long)pid, (unsigned long long)tid,
                 argsJson(args).c_str()));
}

void
TraceEventWriter::instant(const std::string &name, const std::string &cat,
                          uint64_t pid, uint64_t tid, uint64_t tsUs,
                          const Args &args)
{
    event(strfmt("{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                 "\"s\":\"t\",\"ts\":%llu,\"pid\":%llu,\"tid\":%llu,"
                 "\"args\":%s}",
                 escape(name).c_str(), escape(cat).c_str(),
                 (unsigned long long)tsUs, (unsigned long long)pid,
                 (unsigned long long)tid, argsJson(args).c_str()));
}

void
TraceEventWriter::metaProcessName(uint64_t pid, const std::string &name)
{
    event(strfmt("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%llu,"
                 "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                 (unsigned long long)pid, escape(name).c_str()));
}

void
TraceEventWriter::metaThreadName(uint64_t pid, uint64_t tid,
                                 const std::string &name)
{
    event(strfmt("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%llu,"
                 "\"tid\":%llu,\"args\":{\"name\":\"%s\"}}",
                 (unsigned long long)pid, (unsigned long long)tid,
                 escape(name).c_str()));
}

void
TraceEventWriter::finish()
{
    if (!f)
        return;
    std::fputs("\n]\n", f);
    std::fclose(f);
    f = nullptr;
}

} // namespace obs
} // namespace cwsim
