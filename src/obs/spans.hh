/**
 * @file
 * Run-lifecycle spans as Chrome trace-event JSON.
 *
 * The daemon stamps every run's lifecycle (received → queued →
 * admitted → forked → streaming → cached → replied) from the
 * scheduler's existing steady_clock points; this writer serializes
 * those stamps in the trace-event format that Perfetto and
 * chrome://tracing load natively, so fleet concurrency — which worker
 * slot ran what, when, and how long each client waited — is visible at
 * a glance.
 *
 * Track layout convention (set by the caller via the meta events):
 * one "process" groups client tracks (tid = client id) and another
 * groups worker-slot tracks (tid = slot index); "X" complete events
 * carry microsecond ts/dur relative to the writer's own epoch, so
 * timestamps are monotonic and non-negative by construction.
 *
 * File shape: a JSON array with exactly one event object per line
 * (after the opening "[" line). That is both valid trace-event JSON
 * and trivially checkable line-by-line in tests without a full JSON
 * parser.
 */

#ifndef CWSIM_OBS_SPANS_HH
#define CWSIM_OBS_SPANS_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace cwsim
{
namespace obs
{

/** Writes Chrome trace-event JSON ("X" complete spans, "i" instants,
 * "M" metadata) to a file; finish() closes the JSON array. */
class TraceEventWriter
{
  public:
    using Clock = std::chrono::steady_clock;
    using Args = std::vector<std::pair<std::string, std::string>>;

    /** Opens @p path for writing; ok() reports whether that worked. */
    explicit TraceEventWriter(const std::string &path);
    ~TraceEventWriter();

    TraceEventWriter(const TraceEventWriter &) = delete;
    TraceEventWriter &operator=(const TraceEventWriter &) = delete;

    bool ok() const { return f != nullptr; }

    /** Microseconds from the writer's epoch to @p t, clamped at 0. */
    uint64_t tsUs(Clock::time_point t) const;
    /** Microseconds from the writer's epoch to now. */
    uint64_t nowUs() const { return tsUs(Clock::now()); }

    /** A complete ("X") span covering [tsUs, tsUs + durUs]. */
    void complete(const std::string &name, const std::string &cat,
                  uint64_t pid, uint64_t tid, uint64_t tsUs,
                  uint64_t durUs, const Args &args = {});

    /** A thread-scoped instant ("i") event. */
    void instant(const std::string &name, const std::string &cat,
                 uint64_t pid, uint64_t tid, uint64_t tsUs,
                 const Args &args = {});

    /** Name the process track @p pid (an "M" metadata event). */
    void metaProcessName(uint64_t pid, const std::string &name);
    /** Name thread track @p tid within @p pid. */
    void metaThreadName(uint64_t pid, uint64_t tid,
                        const std::string &name);

    /** Close the JSON array and the file; idempotent. */
    void finish();

  private:
    void event(const std::string &body);
    static std::string escape(const std::string &s);
    static std::string argsJson(const Args &args);

    FILE *f = nullptr;
    bool firstEvent = true;
    Clock::time_point epoch;
};

} // namespace obs
} // namespace cwsim

#endif // CWSIM_OBS_SPANS_HH
