#include "obs/trace.hh"

#include <cstdlib>

#include "base/logging.hh"
#include "obs/pipeview.hh"

namespace cwsim
{
namespace obs
{

namespace detail
{
std::atomic<bool> trace_on{false};
} // namespace detail

namespace
{

const char *const flag_names[num_trace_flags] = {
    "Fetch", "Issue", "Commit", "LSQ", "MDP", "Recovery", "Split",
    "Sweep",
};

thread_local Tick tl_trace_cycle = 0;
thread_local std::string tl_run_label;

std::string
allFlagNames()
{
    std::string all;
    for (size_t i = 0; i < num_trace_flags; ++i) {
        if (i > 0)
            all += ", ";
        all += flag_names[i];
    }
    return all;
}

} // anonymous namespace

const char *
traceFlagName(TraceFlag flag)
{
    return flag_names[static_cast<size_t>(flag)];
}

bool
traceFlagFromName(const std::string &name, TraceFlag &out)
{
    for (size_t i = 0; i < num_trace_flags; ++i) {
        if (name == flag_names[i]) {
            out = static_cast<TraceFlag>(i);
            return true;
        }
    }
    return false;
}

void
setTraceCycle(Tick cycle)
{
    tl_trace_cycle = cycle;
}

Tick
traceCycle()
{
    return tl_trace_cycle;
}

void
setRunLabel(const std::string &label)
{
    tl_run_label = label;
}

const std::string &
runLabel()
{
    return tl_run_label;
}

TraceManager &
TraceManager::instance()
{
    static TraceManager manager;
    return manager;
}

TraceManager::TraceManager() : out(stderr), ownsOut(false)
{
    for (auto &f : flags)
        f.store(false, std::memory_order_relaxed);
    applyEnvironment();
}

TraceManager::~TraceManager()
{
    closeOutput();
}

void
TraceManager::applyEnvironment()
{
    if (const char *spec = std::getenv("CWSIM_TRACE")) {
        std::string err;
        if (*spec && !configure(spec, &err))
            warn("CWSIM_TRACE: %s", err.c_str());
    }
    if (const char *path = std::getenv("CWSIM_TRACE_FILE")) {
        if (*path)
            setOutputPath(path);
    }
    if (const char *path = std::getenv("CWSIM_PIPEVIEW")) {
        if (*path)
            setPipeViewPath(path);
    }
    uint64_t period = envUint64("CWSIM_INTERVAL", 1, 0);
    if (period > 0) {
        const char *path = std::getenv("CWSIM_INTERVAL_FILE");
        setInterval(period,
                    path && *path ? path : "cwsim-intervals.jsonl");
    }
}

bool
TraceManager::configure(const std::string &spec, std::string *err)
{
    // Validate the whole spec before enabling anything, so a bad name
    // cannot leave a half-applied flag set behind.
    std::vector<TraceFlag> parsed;
    bool all = false;
    for (const std::string &piece : split(spec, ',')) {
        std::string name = trim(piece);
        if (name.empty())
            continue;
        if (name == "all") {
            all = true;
            continue;
        }
        TraceFlag flag;
        if (!traceFlagFromName(name, flag)) {
            if (err) {
                *err = strfmt("unknown trace flag '%s' (valid: %s, "
                              "all)", name.c_str(),
                              allFlagNames().c_str());
            }
            return false;
        }
        parsed.push_back(flag);
    }

    if (all) {
        for (size_t i = 0; i < num_trace_flags; ++i)
            enable(static_cast<TraceFlag>(i));
    }
    for (TraceFlag flag : parsed)
        enable(flag);
    return true;
}

void
TraceManager::enable(TraceFlag flag)
{
    flags[static_cast<size_t>(flag)].store(true,
                                           std::memory_order_relaxed);
    detail::trace_on.store(true, std::memory_order_relaxed);
}

void
TraceManager::disableAll()
{
    for (auto &f : flags)
        f.store(false, std::memory_order_relaxed);
    detail::trace_on.store(false, std::memory_order_relaxed);
}

bool
TraceManager::enabled(TraceFlag flag) const
{
    return flags[static_cast<size_t>(flag)].load(
        std::memory_order_relaxed);
}

void
TraceManager::closeOutput()
{
    if (ownsOut && out)
        std::fclose(out);
    out = stderr;
    ownsOut = false;
}

void
TraceManager::setOutputPath(const std::string &path)
{
    std::lock_guard<std::mutex> lock(writeMutex);
    closeOutput();
    if (path.empty() || path == "-")
        return;
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("trace: cannot open %s; tracing to stderr", path.c_str());
        return;
    }
    out = f;
    ownsOut = true;
}

void
TraceManager::write(TraceFlag flag, const std::string &msg)
{
    const std::string &label = runLabel();
    std::lock_guard<std::mutex> lock(writeMutex);
    if (label.empty()) {
        std::fprintf(out, "%7llu: %s: %s\n",
                     static_cast<unsigned long long>(traceCycle()),
                     traceFlagName(flag), msg.c_str());
    } else {
        std::fprintf(out, "%7llu: %s: [%s] %s\n",
                     static_cast<unsigned long long>(traceCycle()),
                     traceFlagName(flag), label.c_str(), msg.c_str());
    }
}

bool
TraceManager::setPipeViewPath(const std::string &path)
{
    auto writer = std::make_unique<PipeViewWriter>(path);
    if (!writer->valid()) {
        warn("trace: cannot open pipeline trace %s", path.c_str());
        return false;
    }
    pipeWriter = std::move(writer);
    return true;
}

void
TraceManager::setInterval(uint64_t cycles, const std::string &path)
{
    intervalCycles = cycles;
    intervalFile = path.empty() ? "cwsim-intervals.jsonl" : path;
}

void
TraceManager::resetForTesting()
{
    disableAll();
    pipeWriter.reset();
    intervalCycles = 0;
    intervalFile.clear();
    std::lock_guard<std::mutex> lock(writeMutex);
    closeOutput();
}

} // namespace obs
} // namespace cwsim
