/**
 * @file
 * The tracing and instrumentation front door: gem5-style named
 * per-component trace flags behind a process-wide TraceManager.
 *
 * Design constraints, in order:
 *
 *  1. ZERO cost when off. Every trace point compiles to a single
 *     predicted-false branch on one global flag (CWSIM_TRACE below);
 *     the message is never formatted and the manager is never touched
 *     unless at least one flag is enabled. Tracing state is global —
 *     deliberately NOT part of SimConfig — so enabling it cannot
 *     change run-cache fingerprints or simulation results.
 *
 *  2. Parallel-sweep safe. Trace output goes to stderr by default
 *     (stdout tables stay byte-identical across --jobs values) and
 *     every line is written under one mutex. The current simulated
 *     cycle and the run label ("workload config") are thread-local, so
 *     concurrent workers tag their own lines correctly.
 *
 *  3. One knob surface. The bench CLI's --trace/--trace-file/
 *     --pipeview/--interval flags and the CWSIM_TRACE*,
 *     CWSIM_PIPEVIEW, CWSIM_INTERVAL* environment variables all land
 *     here; simulators only ever ask the manager.
 *
 * Flag spec syntax: a comma-separated list of flag names
 * ("MDP,Recovery"), or "all". Parsing is case-sensitive and rejects
 * unknown names with the valid set in the error message.
 */

#ifndef CWSIM_OBS_TRACE_HH
#define CWSIM_OBS_TRACE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "base/str.hh" // strfmt, used by the CWSIM_TRACE macro
#include "base/types.hh"

namespace cwsim
{
namespace obs
{

enum class TraceFlag : unsigned
{
    Fetch,    ///< Fetch-engine activity (per fetched instruction).
    Issue,    ///< Issue-phase decisions (loads/stores/ALU ops issuing).
    Commit,   ///< Retirement, one line per committed instruction.
    LSQ,      ///< Store buffer traffic: posts, forwards, stalls.
    MDP,      ///< Dependence-predictor activity: predictions, training.
    Recovery, ///< Violations, replays, slices, squashes.
    Split,    ///< The split-window model (src/split/).
    Sweep,    ///< Sweep-engine host-side events.
    NumFlags
};

constexpr size_t num_trace_flags =
    static_cast<size_t>(TraceFlag::NumFlags);

/** The flag's display/spec name ("MDP", "Recovery", ...). */
const char *traceFlagName(TraceFlag flag);

/** Parse one flag name; false (and @p out untouched) when unknown. */
bool traceFlagFromName(const std::string &name, TraceFlag &out);

class PipeViewWriter;

namespace detail
{
/**
 * The one global the fast path reads: true iff any flag is enabled.
 * Relaxed atomic so trace points stay data-race-free under TSAN while
 * still costing a plain load; configuration happens before the worker
 * pool starts, never mid-sweep.
 */
extern std::atomic<bool> trace_on;
} // namespace detail

/** The macro gate: one predicted-false branch when tracing is off. */
inline bool
tracingActive()
{
    return __builtin_expect(
        detail::trace_on.load(std::memory_order_relaxed), 0);
}

class TraceManager
{
  public:
    /**
     * The process-wide manager. First use applies the CWSIM_TRACE,
     * CWSIM_TRACE_FILE, CWSIM_PIPEVIEW, CWSIM_INTERVAL and
     * CWSIM_INTERVAL_FILE environment variables.
     */
    static TraceManager &instance();

    /**
     * Enable the flags of @p spec ("MDP,Recovery" or "all") on top of
     * whatever is already enabled. On an unknown name returns false,
     * fills @p err with the complaint (valid names included) and
     * changes nothing.
     */
    bool configure(const std::string &spec, std::string *err = nullptr);

    void enable(TraceFlag flag);
    void disableAll();
    bool enabled(TraceFlag flag) const;
    bool anyEnabled() const { return detail::trace_on.load(); }

    /** Redirect trace lines to @p path ("" or "-" = stderr). */
    void setOutputPath(const std::string &path);

    /**
     * Emit one trace line: "<cycle>: <Flag>: [label] <msg>\n",
     * mutex-serialized. Call through the CWSIM_TRACE macro, not
     * directly, so disabled builds pay only the branch.
     */
    void write(TraceFlag flag, const std::string &msg);

    /**
     * Open (truncating) an O3PipeView pipeline-trace file. Returns
     * false and leaves pipeview off when the path is unwritable.
     */
    bool setPipeViewPath(const std::string &path);
    /** The pipeline-trace writer, or nullptr when not recording. */
    PipeViewWriter *pipeView() { return pipeWriter.get(); }

    /** Interval-stats sampling: every @p cycles into @p path. */
    void setInterval(uint64_t cycles, const std::string &path);
    uint64_t intervalPeriod() const { return intervalCycles; }
    const std::string &intervalPath() const { return intervalFile; }

    /**
     * Tests only: drop all flags, close the pipeview/interval outputs
     * and point trace output back at stderr.
     */
    void resetForTesting();

    ~TraceManager();

  private:
    TraceManager();
    TraceManager(const TraceManager &) = delete;
    TraceManager &operator=(const TraceManager &) = delete;

    void applyEnvironment();
    void closeOutput();

    std::array<std::atomic<bool>, num_trace_flags> flags;
    std::mutex writeMutex;
    std::FILE *out;       ///< stderr or an owned file.
    bool ownsOut;
    std::unique_ptr<PipeViewWriter> pipeWriter;
    uint64_t intervalCycles = 0;
    std::string intervalFile;
};

/**
 * The current simulated cycle for this thread's trace lines. The
 * processor refreshes it once per tick — only while tracing is on —
 * so cycle-less components (MdpTable) can still emit timestamped
 * lines.
 */
void setTraceCycle(Tick cycle);
Tick traceCycle();

/**
 * This thread's run label ("workload config"), set by the harness
 * around each timing run so parallel workers' lines are attributable.
 */
void setRunLabel(const std::string &label);
const std::string &runLabel();

} // namespace obs
} // namespace cwsim

/**
 * The trace point: CWSIM_TRACE(MDP, "pair load %llx store %llx", ...).
 * Costs one predicted-false branch when all flags are off; formats and
 * locks only when the named flag is enabled.
 */
#define CWSIM_TRACE(flag, ...)                                          \
    do {                                                                \
        if (::cwsim::obs::tracingActive() &&                            \
            ::cwsim::obs::TraceManager::instance().enabled(             \
                ::cwsim::obs::TraceFlag::flag)) {                       \
            ::cwsim::obs::TraceManager::instance().write(               \
                ::cwsim::obs::TraceFlag::flag,                          \
                ::cwsim::strfmt(__VA_ARGS__));                          \
        }                                                               \
    } while (0)

/** True iff @p flag is enabled — for trace-only work beyond one line. */
#define CWSIM_TRACING(flag)                                             \
    (::cwsim::obs::tracingActive() &&                                   \
     ::cwsim::obs::TraceManager::instance().enabled(                    \
         ::cwsim::obs::TraceFlag::flag))

#endif // CWSIM_OBS_TRACE_HH
