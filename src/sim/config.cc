#include "sim/config.hh"

#include <sstream>

#include "base/logging.hh"
#include "base/str.hh"

namespace cwsim
{

const char *
toString(LsqModel model)
{
    switch (model) {
      case LsqModel::NAS: return "NAS";
      case LsqModel::AS: return "AS";
    }
    panic("bad LsqModel");
}

const char *
toString(SpecPolicy policy)
{
    switch (policy) {
      case SpecPolicy::No: return "NO";
      case SpecPolicy::Naive: return "NAV";
      case SpecPolicy::Selective: return "SEL";
      case SpecPolicy::StoreBarrier: return "STORE";
      case SpecPolicy::SpecSync: return "SYNC";
      case SpecPolicy::Oracle: return "ORACLE";
    }
    panic("bad SpecPolicy");
}

std::string
configName(LsqModel model, SpecPolicy policy)
{
    return std::string(toString(model)) + "/" + toString(policy);
}

SimConfig
makeW128Config()
{
    return SimConfig{};
}

SimConfig
makeW64Config()
{
    SimConfig cfg;
    cfg.core.windowSize = 64;
    cfg.core.lsqSize = 64;
    cfg.core.storeBufferSize = 64;
    cfg.core.issueWidth = 4;
    cfg.core.commitWidth = 4;
    cfg.core.memPorts = 2;
    cfg.core.fuCopies = 2;
    return cfg;
}

SimConfig
makeWindowConfig(unsigned window_size)
{
    fatal_if(window_size == 0, "window size must be positive");
    SimConfig cfg;
    cfg.core.windowSize = window_size;
    cfg.core.lsqSize = window_size;
    cfg.core.storeBufferSize = window_size;
    return cfg;
}

SimConfig
withPolicy(SimConfig cfg, LsqModel model, SpecPolicy policy,
           Cycles as_latency)
{
    cfg.mdp.lsqModel = model;
    cfg.mdp.policy = policy;
    cfg.mdp.asLatency = as_latency;
    fatal_if(model == LsqModel::NAS && as_latency != 0,
             "address-scheduler latency is meaningless without AS");
    return cfg;
}

namespace
{

void
serializeCache(std::ostringstream &os, const char *prefix,
               const CacheConfig &c)
{
    os << prefix << ".sizeBytes=" << c.sizeBytes << '\n'
       << prefix << ".assoc=" << c.assoc << '\n'
       << prefix << ".banks=" << c.banks << '\n'
       << prefix << ".blockSize=" << c.blockSize << '\n'
       << prefix << ".hitLatency=" << c.hitLatency << '\n'
       << prefix << ".primaryMshrsPerBank=" << c.primaryMshrsPerBank
       << '\n'
       << prefix << ".secondaryPerPrimary=" << c.secondaryPerPrimary
       << '\n';
}

/** %.17g survives a double's round trip through text unchanged. */
std::string
f64(double v)
{
    return strfmt("%.17g", v);
}

} // anonymous namespace

std::string
serializeConfig(const SimConfig &cfg)
{
    std::ostringstream os;

    const CoreConfig &core = cfg.core;
    os << "core.fetchWidth=" << core.fetchWidth << '\n'
       << "core.fetchMaxBlocks=" << core.fetchMaxBlocks << '\n'
       << "core.maxFetchRequests=" << core.maxFetchRequests << '\n'
       << "core.fetchToDispatch=" << core.fetchToDispatch << '\n'
       << "core.windowSize=" << core.windowSize << '\n'
       << "core.lsqSize=" << core.lsqSize << '\n'
       << "core.storeBufferSize=" << core.storeBufferSize << '\n'
       << "core.issueWidth=" << core.issueWidth << '\n'
       << "core.commitWidth=" << core.commitWidth << '\n'
       << "core.memPorts=" << core.memPorts << '\n'
       << "core.fuCopies=" << core.fuCopies << '\n'
       << "core.lsqInputPorts=" << core.lsqInputPorts << '\n';

    serializeCache(os, "mem.icache", cfg.mem.icache);
    serializeCache(os, "mem.dcache", cfg.mem.dcache);
    serializeCache(os, "mem.l2", cfg.mem.l2);
    os << "mem.l2AccessLatency=" << cfg.mem.l2AccessLatency << '\n'
       << "mem.memAccessLatency=" << cfg.mem.memAccessLatency << '\n'
       << "mem.memBaseLatency=" << cfg.mem.memBaseLatency << '\n'
       << "mem.memTransferPer4Words=" << cfg.mem.memTransferPer4Words
       << '\n'
       << "mem.l2TransferPer4Words=" << cfg.mem.l2TransferPer4Words
       << '\n';

    const BPredConfig &bp = cfg.bpred;
    os << "bpred.predictorEntries=" << bp.predictorEntries << '\n'
       << "bpred.gselectHistoryBits=" << bp.gselectHistoryBits << '\n'
       << "bpred.btbEntries=" << bp.btbEntries << '\n'
       << "bpred.rasEntries=" << bp.rasEntries << '\n'
       << "bpred.predictionsPerCycle=" << bp.predictionsPerCycle
       << '\n'
       << "bpred.resolutionsPerCycle=" << bp.resolutionsPerCycle
       << '\n';

    const MdpConfig &mdp = cfg.mdp;
    os << "mdp.lsqModel=" << toString(mdp.lsqModel) << '\n'
       << "mdp.policy=" << toString(mdp.policy) << '\n'
       << "mdp.asLatency=" << mdp.asLatency << '\n'
       << "mdp.mdptEntries=" << mdp.mdptEntries << '\n'
       << "mdp.mdptAssoc=" << mdp.mdptAssoc << '\n'
       << "mdp.counterBits=" << mdp.counterBits << '\n'
       << "mdp.predictThreshold=" << mdp.predictThreshold << '\n'
       << "mdp.resetInterval=" << mdp.resetInterval << '\n'
       << "mdp.recovery="
       << (mdp.recovery == RecoveryModel::Squash ? "squash"
                                                 : "selective")
       << '\n';

    const CheckConfig &check = cfg.check;
    os << "check.level=" << check.level << '\n'
       << "check.watchdogInterval=" << check.watchdogInterval << '\n'
       << "check.flightRecorderSize=" << check.flightRecorderSize
       << '\n';

    const FaultConfig &faults = check.faults;
    os << "check.faults.seed=" << faults.seed << '\n'
       << "check.faults.spuriousViolationRate="
       << f64(faults.spuriousViolationRate) << '\n'
       << "check.faults.storeAddrDelayRate="
       << f64(faults.storeAddrDelayRate) << '\n'
       << "check.faults.storeAddrDelay=" << faults.storeAddrDelay
       << '\n'
       << "check.faults.mdptDropRate=" << f64(faults.mdptDropRate)
       << '\n'
       << "check.faults.mdptCorruptRate="
       << f64(faults.mdptCorruptRate) << '\n'
       << "check.faults.hostCrashRate=" << f64(faults.hostCrashRate)
       << '\n'
       << "check.faults.hostHangRate=" << f64(faults.hostHangRate)
       << '\n'
       << "check.faults.hostAllocRate=" << f64(faults.hostAllocRate)
       << '\n';

    os << "maxInsts=" << cfg.maxInsts << '\n'
       << "maxCycles=" << cfg.maxCycles << '\n';

    return os.str();
}

} // namespace cwsim
