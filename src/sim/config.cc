#include "sim/config.hh"

#include "base/logging.hh"

namespace cwsim
{

const char *
toString(LsqModel model)
{
    switch (model) {
      case LsqModel::NAS: return "NAS";
      case LsqModel::AS: return "AS";
    }
    panic("bad LsqModel");
}

const char *
toString(SpecPolicy policy)
{
    switch (policy) {
      case SpecPolicy::No: return "NO";
      case SpecPolicy::Naive: return "NAV";
      case SpecPolicy::Selective: return "SEL";
      case SpecPolicy::StoreBarrier: return "STORE";
      case SpecPolicy::SpecSync: return "SYNC";
      case SpecPolicy::Oracle: return "ORACLE";
    }
    panic("bad SpecPolicy");
}

std::string
configName(LsqModel model, SpecPolicy policy)
{
    return std::string(toString(model)) + "/" + toString(policy);
}

SimConfig
makeW128Config()
{
    return SimConfig{};
}

SimConfig
makeW64Config()
{
    SimConfig cfg;
    cfg.core.windowSize = 64;
    cfg.core.lsqSize = 64;
    cfg.core.storeBufferSize = 64;
    cfg.core.issueWidth = 4;
    cfg.core.commitWidth = 4;
    cfg.core.memPorts = 2;
    cfg.core.fuCopies = 2;
    return cfg;
}

SimConfig
makeWindowConfig(unsigned window_size)
{
    fatal_if(window_size == 0, "window size must be positive");
    SimConfig cfg;
    cfg.core.windowSize = window_size;
    cfg.core.lsqSize = window_size;
    cfg.core.storeBufferSize = window_size;
    return cfg;
}

SimConfig
withPolicy(SimConfig cfg, LsqModel model, SpecPolicy policy,
           Cycles as_latency)
{
    cfg.mdp.lsqModel = model;
    cfg.mdp.policy = policy;
    cfg.mdp.asLatency = as_latency;
    fatal_if(model == LsqModel::NAS && as_latency != 0,
             "address-scheduler latency is meaningless without AS");
    return cfg;
}

} // namespace cwsim
