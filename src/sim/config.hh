/**
 * @file
 * Configuration structs for the whole simulated machine.
 *
 * The defaults encode Table 2 of Moshovos & Sohi (HPCA 2000): the
 * 128-entry-window, 8-wide centralized continuous-window processor. The
 * 64-entry preset follows the paper's Figure 1 text: issue width reduced
 * to 4, load/store ports to 2, and all functional units to 2 copies.
 */

#ifndef CWSIM_SIM_CONFIG_HH
#define CWSIM_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace cwsim
{

/**
 * Whether an address-based load/store scheduler is present.
 *
 * NAS: no address-based scheduler. Store addresses are not visible to
 * loads before the store issues; a violation-detection table records
 * speculative loads so stores can catch true-dependence violations.
 *
 * AS: an address-based scheduler. Stores post their addresses as soon as
 * the base register is available (before data), and loads inspect
 * preceding store addresses before accessing memory.
 */
enum class LsqModel
{
    NAS,
    AS,
};

/**
 * Miss-speculation recovery mechanism (Section 2).
 *
 * Squash invalidation — "the hardware-based miss-speculation recovery
 * method used today" — re-fetches everything from the violated load.
 * Selective invalidation re-executes only the instructions that used
 * erroneous data (the alternative the paper cites from value-locality
 * work); cwsim implements it as an extension, falling back to a squash
 * when control flow consumed the bad value.
 */
enum class RecoveryModel
{
    Squash,
    Selective,
};

/** The five speculation policies of Section 2.1, plus the oracle. */
enum class SpecPolicy
{
    No,           ///< Loads wait for all preceding stores (no speculation).
    Naive,        ///< Loads issue as soon as their address is ready.
    Selective,    ///< Predicted-dependent loads wait for all older stores.
    StoreBarrier, ///< Predicted-dependent stores block all younger loads.
    SpecSync,     ///< MDPT speculation/synchronization via synonyms.
    Oracle,       ///< Perfect a-priori dependence knowledge.
};

const char *toString(LsqModel model);
const char *toString(SpecPolicy policy);

/** Paper-style configuration name, e.g. "NAS/SYNC" or "AS/NAV". */
std::string configName(LsqModel model, SpecPolicy policy);

/** One cache level (values per Table 2). */
struct CacheConfig
{
    std::string name = "cache";
    uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 2;
    unsigned banks = 4;
    unsigned blockSize = 32;
    Cycles hitLatency = 2;
    /** Max primary (distinct-block) misses outstanding per bank. */
    unsigned primaryMshrsPerBank = 8;
    /** Max secondary misses (merged requests) per primary miss. */
    unsigned secondaryPerPrimary = 8;
};

/** The whole memory hierarchy. */
struct MemConfig
{
    CacheConfig icache{"icache", 64 * 1024, 2, 8, 32, 2, 2, 1};
    CacheConfig dcache{"dcache", 32 * 1024, 2, 4, 32, 2, 8, 8};
    CacheConfig l2{"l2", 4 * 1024 * 1024, 2, 4, 128, 8, 4, 3};
    /** L1 miss, L2 hit latency (cycles, plus word-transfer time). */
    Cycles l2AccessLatency = 10;
    /** L1/L2 miss to main memory (cycles). */
    Cycles memAccessLatency = 50;
    /** Main-memory access: 34 cycles + 4-word transfers * 2 cycles. */
    Cycles memBaseLatency = 34;
    Cycles memTransferPer4Words = 2;
    /** L2 transfer adder: 1 cycle per 4-word chunk. */
    Cycles l2TransferPer4Words = 1;
};

/** Branch predictor parameters (Table 2). */
struct BPredConfig
{
    /** Entries in each of the two predictors and the selector. */
    unsigned predictorEntries = 64 * 1024;
    /** Global history bits for the gselect component. */
    unsigned gselectHistoryBits = 5;
    unsigned btbEntries = 2 * 1024;
    unsigned rasEntries = 64;
    unsigned predictionsPerCycle = 4;
    unsigned resolutionsPerCycle = 4;
};

/** Out-of-order core parameters (Table 2). */
struct CoreConfig
{
    unsigned fetchWidth = 8;
    /** Up to this many non-contiguous blocks combined per fetch cycle. */
    unsigned fetchMaxBlocks = 4;
    /** Maximum in-flight fetch requests. */
    unsigned maxFetchRequests = 4;
    /** Front-end depth: cycles from fetch to window insertion. */
    Cycles fetchToDispatch = 4;
    unsigned windowSize = 128;   ///< Reorder buffer / RUU entries.
    unsigned lsqSize = 128;      ///< Combined load/store queue entries.
    unsigned storeBufferSize = 128;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;
    unsigned memPorts = 4;
    /** Copies of each functional-unit class (all fully pipelined). */
    unsigned fuCopies = 8;
    /**
     * LSQ input ports: address/data insertions per cycle (Table 2's
     * "4 input and 4 output ports"; the output side is memPorts).
     */
    unsigned lsqInputPorts = 4;
};

/** Memory dependence speculation machinery (the paper's contribution). */
struct MdpConfig
{
    LsqModel lsqModel = LsqModel::NAS;
    SpecPolicy policy = SpecPolicy::No;
    /** Extra load/store latency through the address-based scheduler. */
    Cycles asLatency = 0;
    /** MDPT geometry for SEL / STORE / SYNC (4K, 2-way in the paper). */
    unsigned mdptEntries = 4 * 1024;
    unsigned mdptAssoc = 2;
    /** Confidence counter width for SEL / STORE. */
    unsigned counterBits = 2;
    /** Miss-speculations on a static load/store before predicting. */
    unsigned predictThreshold = 3;
    /** Periodic predictor reset / MDPT flush interval (cycles). */
    Cycles resetInterval = 1'000'000;
    /** Miss-speculation recovery mechanism (NAS configurations). */
    RecoveryModel recovery = RecoveryModel::Squash;
};

/**
 * Deterministic fault injection (all rates are per-opportunity
 * probabilities drawn from a seeded base/random.hh PRNG). Used to storm
 * the miss-speculation recovery paths and prove they restore correct
 * architectural state; every fault is recorded in the flight recorder.
 */
struct FaultConfig
{
    /** PRNG seed; runs with equal seeds inject identical faults. */
    uint64_t seed = 0x5eed;
    /**
     * Per executed store: chance of forcing a spurious dependence
     * miss-speculation against a younger issued load (exercises the
     * squash / selective recovery machinery with no real violation).
     */
    double spuriousViolationRate = 0;
    /** AS only: chance of delaying a posted store address, and by how
     * many extra cycles. */
    double storeAddrDelayRate = 0;
    Cycles storeAddrDelay = 8;
    /** Per cycle: chance of invalidating a random valid MDPT entry. */
    double mdptDropRate = 0;
    /** Per cycle: chance of scrambling a random MDPT entry's
     * confidence/synonym (the predictor must stay prediction-only). */
    double mdptCorruptRate = 0;

    // Host-level fault modes (per-cycle rates, same seeded PRNG).
    // Unlike the performance-only faults above, these kill or wedge the
    // host process itself: abort(), an infinite spin, or a pathological
    // allocation storm. They exist to prove the --isolate sweep
    // executor contains and classifies them (crash / timeout / oom);
    // firing one outside an isolated child takes the process down, by
    // design.
    /** Per cycle: chance of calling abort() (SIGABRT crash). */
    double hostCrashRate = 0;
    /** Per cycle: chance of spinning forever (wall-clock hang). */
    double hostHangRate = 0;
    /** Per cycle: chance of an unbounded allocation storm (OOM). */
    double hostAllocRate = 0;

    bool
    any() const
    {
        return spuriousViolationRate > 0 || storeAddrDelayRate > 0 ||
               mdptDropRate > 0 || mdptCorruptRate > 0;
    }

    /** Any host-level (process-killing) fault mode armed? */
    bool
    hostAny() const
    {
        return hostCrashRate > 0 || hostHangRate > 0 ||
               hostAllocRate > 0;
    }
};

/** Checked-simulation knobs: watchdog, invariants, flight recorder. */
struct CheckConfig
{
    /**
     * 0 — unchecked: no watchdog, no recording, no invariants.
     * 1 — cheap (default): forward-progress watchdog, flight recorder,
     *     O(1) per-cycle invariants, post-run oracle equivalence in the
     *     harness.
     * 2 — heavy: adds full per-cycle structural scans (window order,
     *     store-buffer FIFO discipline, rename-map consistency, MDPT
     *     sanity).
     */
    unsigned level = 1;
    /** Watchdog trip threshold: cycles without a single commit. */
    uint64_t watchdogInterval = 100'000;
    /** Flight-recorder capacity (events kept; 0 disables recording). */
    unsigned flightRecorderSize = 128;
    FaultConfig faults;
};

/** Everything needed to instantiate one simulated machine. */
struct SimConfig
{
    CoreConfig core;
    MemConfig mem;
    BPredConfig bpred;
    MdpConfig mdp;
    CheckConfig check;

    /** Stop after this many committed instructions (0 = run to halt). */
    uint64_t maxInsts = 0;
    /** Safety net: stop after this many cycles. */
    uint64_t maxCycles = 500'000'000;

    /** Paper-style name of this load/store configuration. */
    std::string
    name() const
    {
        return configName(mdp.lsqModel, mdp.policy);
    }
};

/** The default 128-entry-window machine of Table 2. */
SimConfig makeW128Config();

/** The 64-entry-window machine of Figure 1. */
SimConfig makeW64Config();

/**
 * A machine with an arbitrary window size (ablations): window, LSQ and
 * store buffer scale together; all other parameters stay at the
 * 128-entry machine's Table 2 values.
 */
SimConfig makeWindowConfig(unsigned window_size);

/** Apply a load/store scheduling model + policy to a config. */
SimConfig withPolicy(SimConfig cfg, LsqModel model, SpecPolicy policy,
                     Cycles as_latency = 0);

/**
 * Canonical, exhaustive key=value rendering of @p cfg — every field of
 * every sub-struct (including check.* and check.faults.*) in a fixed
 * order. Two configs serialize identically iff they would simulate
 * identically, which is what the sweep run cache keys on; keep this in
 * sync when adding config fields, or stale cache entries will be
 * served for runs the new field changes.
 */
std::string serializeConfig(const SimConfig &cfg);

} // namespace cwsim

#endif // CWSIM_SIM_CONFIG_HH
