#include "sim/config_parse.hh"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>

#include "base/logging.hh"
#include "base/str.hh"

namespace cwsim
{

namespace
{

using Setter = std::function<void(SimConfig &, const std::string &)>;

uint64_t
parseU64(const std::string &key, const std::string &value)
{
    size_t pos = 0;
    uint64_t v = 0;
    try {
        v = std::stoull(value, &pos, 0);
    } catch (...) {
        pos = 0;
    }
    fatal_if(pos != value.size(), "config: bad number '%s' for %s",
             value.c_str(), key.c_str());
    return v;
}

double
parseF64(const std::string &key, const std::string &value)
{
    size_t pos = 0;
    double v = 0;
    try {
        v = std::stod(value, &pos);
    } catch (const std::logic_error &) {
        pos = 0;
    }
    fatal_if(pos != value.size(), "config: bad number '%s' for %s",
             value.c_str(), key.c_str());
    return v;
}

LsqModel
parseModel(const std::string &value)
{
    if (value == "NAS" || value == "nas")
        return LsqModel::NAS;
    if (value == "AS" || value == "as")
        return LsqModel::AS;
    fatal("config: bad lsqModel '%s' (NAS or AS)", value.c_str());
}

SpecPolicy
parsePolicy(const std::string &value)
{
    if (value == "NO" || value == "no")
        return SpecPolicy::No;
    if (value == "NAV" || value == "nav" || value == "naive")
        return SpecPolicy::Naive;
    if (value == "SEL" || value == "sel" || value == "selective")
        return SpecPolicy::Selective;
    if (value == "STORE" || value == "store")
        return SpecPolicy::StoreBarrier;
    if (value == "SYNC" || value == "sync")
        return SpecPolicy::SpecSync;
    if (value == "ORACLE" || value == "oracle")
        return SpecPolicy::Oracle;
    fatal("config: bad policy '%s' "
          "(NO/NAV/SEL/STORE/SYNC/ORACLE)", value.c_str());
}

RecoveryModel
parseRecovery(const std::string &value)
{
    if (value == "squash")
        return RecoveryModel::Squash;
    if (value == "selective")
        return RecoveryModel::Selective;
    fatal("config: bad recovery '%s' (squash or selective)",
          value.c_str());
}

#define U64_FIELD(key, expr)                                            \
    {                                                                   \
        key, [](SimConfig &c, const std::string &v) {                  \
            expr = parseU64(key, v);                                    \
        }                                                               \
    }

#define F64_FIELD(key, expr)                                            \
    {                                                                   \
        key, [](SimConfig &c, const std::string &v) {                  \
            expr = parseF64(key, v);                                    \
        }                                                               \
    }

const std::map<std::string, Setter> &
setters()
{
    static const std::map<std::string, Setter> table = {
        // Core.
        U64_FIELD("core.windowSize", c.core.windowSize),
        U64_FIELD("core.lsqSize", c.core.lsqSize),
        U64_FIELD("core.storeBufferSize", c.core.storeBufferSize),
        U64_FIELD("core.fetchWidth", c.core.fetchWidth),
        U64_FIELD("core.fetchToDispatch", c.core.fetchToDispatch),
        U64_FIELD("core.issueWidth", c.core.issueWidth),
        U64_FIELD("core.commitWidth", c.core.commitWidth),
        U64_FIELD("core.memPorts", c.core.memPorts),
        U64_FIELD("core.fuCopies", c.core.fuCopies),
        U64_FIELD("core.lsqInputPorts", c.core.lsqInputPorts),
        // Memory hierarchy.
        U64_FIELD("mem.dcache.sizeBytes", c.mem.dcache.sizeBytes),
        U64_FIELD("mem.dcache.assoc", c.mem.dcache.assoc),
        U64_FIELD("mem.dcache.banks", c.mem.dcache.banks),
        U64_FIELD("mem.dcache.hitLatency", c.mem.dcache.hitLatency),
        U64_FIELD("mem.icache.sizeBytes", c.mem.icache.sizeBytes),
        U64_FIELD("mem.icache.hitLatency", c.mem.icache.hitLatency),
        U64_FIELD("mem.l2.sizeBytes", c.mem.l2.sizeBytes),
        U64_FIELD("mem.l2AccessLatency", c.mem.l2AccessLatency),
        U64_FIELD("mem.memBaseLatency", c.mem.memBaseLatency),
        // Branch prediction.
        U64_FIELD("bpred.predictorEntries", c.bpred.predictorEntries),
        U64_FIELD("bpred.gselectHistoryBits",
                  c.bpred.gselectHistoryBits),
        U64_FIELD("bpred.btbEntries", c.bpred.btbEntries),
        U64_FIELD("bpred.rasEntries", c.bpred.rasEntries),
        // Memory dependence speculation.
        U64_FIELD("mdp.asLatency", c.mdp.asLatency),
        U64_FIELD("mdp.mdptEntries", c.mdp.mdptEntries),
        U64_FIELD("mdp.mdptAssoc", c.mdp.mdptAssoc),
        U64_FIELD("mdp.counterBits", c.mdp.counterBits),
        U64_FIELD("mdp.predictThreshold", c.mdp.predictThreshold),
        U64_FIELD("mdp.resetInterval", c.mdp.resetInterval),
        {"mdp.lsqModel",
         [](SimConfig &c, const std::string &v) {
             c.mdp.lsqModel = parseModel(v);
         }},
        {"mdp.policy",
         [](SimConfig &c, const std::string &v) {
             c.mdp.policy = parsePolicy(v);
         }},
        {"mdp.recovery",
         [](SimConfig &c, const std::string &v) {
             c.mdp.recovery = parseRecovery(v);
         }},
        // Checked simulation.
        U64_FIELD("check.level", c.check.level),
        U64_FIELD("check.watchdogInterval", c.check.watchdogInterval),
        U64_FIELD("check.flightRecorderSize",
                  c.check.flightRecorderSize),
        // Fault injection.
        U64_FIELD("check.faults.seed", c.check.faults.seed),
        F64_FIELD("check.faults.spuriousViolationRate",
                  c.check.faults.spuriousViolationRate),
        F64_FIELD("check.faults.storeAddrDelayRate",
                  c.check.faults.storeAddrDelayRate),
        U64_FIELD("check.faults.storeAddrDelay",
                  c.check.faults.storeAddrDelay),
        F64_FIELD("check.faults.mdptDropRate",
                  c.check.faults.mdptDropRate),
        F64_FIELD("check.faults.mdptCorruptRate",
                  c.check.faults.mdptCorruptRate),
        F64_FIELD("check.faults.hostCrashRate",
                  c.check.faults.hostCrashRate),
        F64_FIELD("check.faults.hostHangRate",
                  c.check.faults.hostHangRate),
        F64_FIELD("check.faults.hostAllocRate",
                  c.check.faults.hostAllocRate),
        // Run control.
        U64_FIELD("maxInsts", c.maxInsts),
        U64_FIELD("maxCycles", c.maxCycles),
    };
    return table;
}

#undef U64_FIELD
#undef F64_FIELD

} // anonymous namespace

void
applyConfigOption(SimConfig &cfg, const std::string &option)
{
    size_t eq = option.find('=');
    fatal_if(eq == std::string::npos,
             "config: expected key=value, got '%s'", option.c_str());
    std::string key = trim(option.substr(0, eq));
    std::string value = trim(option.substr(eq + 1));
    fatal_if(key.empty() || value.empty(),
             "config: expected key=value, got '%s'", option.c_str());

    const auto &table = setters();
    auto it = table.find(key);
    fatal_if(it == table.end(), "config: unknown key '%s'",
             key.c_str());
    it->second(cfg, value);
}

SimConfig
parseConfigText(const std::string &text, SimConfig base)
{
    std::istringstream in(text);
    std::string raw;
    int number = 0;
    while (std::getline(in, raw)) {
        ++number;
        size_t hash = raw.find('#');
        if (hash != std::string::npos)
            raw = raw.substr(0, hash);
        raw = trim(raw);
        if (raw.empty())
            continue;
        applyConfigOption(base, raw);
    }
    return base;
}

SimConfig
parseConfigFile(const std::string &path, SimConfig base)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open config file '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseConfigText(buf.str(), std::move(base));
}

std::vector<std::string>
configKeys()
{
    std::vector<std::string> keys;
    for (const auto &[key, setter] : setters())
        keys.push_back(key);
    return keys;
}

} // namespace cwsim
