/**
 * @file
 * Key=value configuration parsing, so machine configurations can live
 * in files and on command lines instead of in code.
 *
 *     # 256-entry window, SYNC, slower L2
 *     core.windowSize   = 256
 *     core.issueWidth   = 8
 *     mdp.lsqModel      = NAS
 *     mdp.policy        = SYNC
 *     mdp.recovery      = selective
 *     mem.l2AccessLatency = 12
 *     maxInsts          = 500000
 *
 * Unknown keys and malformed values are user errors (fatal()), listing
 * the offending line. applyConfigOption() applies a single
 * "key=value" string (e.g. from argv) on top of an existing config.
 */

#ifndef CWSIM_SIM_CONFIG_PARSE_HH
#define CWSIM_SIM_CONFIG_PARSE_HH

#include <string>
#include <vector>

#include "sim/config.hh"

namespace cwsim
{

/** Apply one "key=value" option to @p cfg; fatal() on bad input. */
void applyConfigOption(SimConfig &cfg, const std::string &option);

/** Parse a whole config text (newline-separated options, # comments). */
SimConfig parseConfigText(const std::string &text,
                          SimConfig base = SimConfig{});

/** Parse a config file. */
SimConfig parseConfigFile(const std::string &path,
                          SimConfig base = SimConfig{});

/** The recognized keys, for help output. */
std::vector<std::string> configKeys();

} // namespace cwsim

#endif // CWSIM_SIM_CONFIG_PARSE_HH
