#include "sim/event_queue.hh"

#include <algorithm>

#include "base/logging.hh"

namespace cwsim
{

void
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    panic_if(when < curTick_,
             "event scheduled in the past (when=%llu, now=%llu)",
             static_cast<unsigned long long>(when),
             static_cast<unsigned long long>(curTick_));
    Entry e{when, priority, nextSeq++, std::move(cb)};
    if (when - curTick_ < horizon) {
        ring[bucketOf(when)].push_back(std::move(e));
        ++nearCount;
        if (when < nextNear)
            nextNear = when;
    } else {
        far.push(std::move(e));
    }
    ++numPending;
    ++numScheduled;
}

Tick
EventQueue::nextEventTick()
{
    Tick best = ~Tick(0);
    if (nearCount) {
        // Resume the bucket scan at the lower bound proven by the
        // previous scan; buckets are only ever re-examined after new
        // events land in them, so the scan is O(1) amortized.
        Tick t = std::max(nextNear, curTick_);
        while (ring[bucketOf(t)].empty())
            ++t;
        nextNear = t;
        best = t;
    }
    if (!far.empty() && far.top().when < best)
        best = far.top().when;
    return best;
}

void
EventQueue::fireTick(Tick t)
{
    curTick_ = t;
    std::vector<Entry> &bucket = ring[bucketOf(t)];
    nearCount -= bucket.size();
    for (Entry &e : bucket) {
        firing.push_back(std::move(e));
        std::push_heap(firing.begin(), firing.end(), Later{});
    }
    bucket.clear();
    while (!far.empty() && far.top().when == t) {
        firing.push_back(std::move(const_cast<Entry &>(far.top())));
        far.pop();
        std::push_heap(firing.begin(), firing.end(), Later{});
    }

    while (!firing.empty()) {
        std::pop_heap(firing.begin(), firing.end(), Later{});
        Entry e = std::move(firing.back());
        firing.pop_back();
        --numPending;
        ++numFired;
        e.cb();
        // The callback may have scheduled follow-up events at the
        // current tick; they must interleave with the remaining events
        // in (priority, insertion-order) order, exactly as the old
        // single-heap implementation fired them.
        std::vector<Entry> &refill = ring[bucketOf(t)];
        if (!refill.empty()) {
            nearCount -= refill.size();
            for (Entry &n : refill) {
                firing.push_back(std::move(n));
                std::push_heap(firing.begin(), firing.end(), Later{});
            }
            refill.clear();
        }
    }
}

void
EventQueue::runUntil(Tick now)
{
    while (numPending) {
        Tick t = nextEventTick();
        if (t > now)
            break;
        fireTick(t);
    }
    if (curTick_ < now)
        curTick_ = now;
}

void
EventQueue::drain()
{
    while (numPending)
        fireTick(nextEventTick());
}

void
EventQueue::reset()
{
    for (std::vector<Entry> &bucket : ring)
        bucket.clear();
    far = decltype(far)();
    firing.clear();
    curTick_ = 0;
    nextSeq = 0;
    numPending = 0;
    nearCount = 0;
    nextNear = 0;
    // Counters too: a reused queue must not bleed scheduled/fired
    // counts from a previous run into the next one's statistics.
    numScheduled = 0;
    numFired = 0;
}

} // namespace cwsim
