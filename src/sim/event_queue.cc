#include "sim/event_queue.hh"

#include "base/logging.hh"

namespace cwsim
{

void
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    panic_if(when < curTick_,
             "event scheduled in the past (when=%llu, now=%llu)",
             static_cast<unsigned long long>(when),
             static_cast<unsigned long long>(curTick_));
    heap.push(Entry{when, priority, nextSeq++, std::move(cb)});
    ++numScheduled;
}

void
EventQueue::runUntil(Tick now)
{
    while (!heap.empty() && heap.top().when <= now) {
        // Move out before popping: the callback may schedule new
        // events. pop() only destroys the moved-from top, so the cast
        // is safe.
        Entry e = std::move(const_cast<Entry &>(heap.top()));
        heap.pop();
        curTick_ = e.when;
        ++numFired;
        e.cb();
    }
    if (curTick_ < now)
        curTick_ = now;
}

void
EventQueue::drain()
{
    while (!heap.empty()) {
        Entry e = std::move(const_cast<Entry &>(heap.top()));
        heap.pop();
        curTick_ = e.when;
        ++numFired;
        e.cb();
    }
}

void
EventQueue::reset()
{
    heap = decltype(heap)();
    curTick_ = 0;
    nextSeq = 0;
}

} // namespace cwsim
