#include "sim/event_queue.hh"

#include "base/logging.hh"

namespace cwsim
{

void
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    panic_if(when < curTick_,
             "event scheduled in the past (when=%llu, now=%llu)",
             static_cast<unsigned long long>(when),
             static_cast<unsigned long long>(curTick_));
    heap.push(Entry{when, priority, nextSeq++, std::move(cb)});
    ++numScheduled;
}

void
EventQueue::runUntil(Tick now)
{
    while (!heap.empty() && heap.top().when <= now) {
        // Copy out before popping: the callback may schedule new events.
        Entry e = heap.top();
        heap.pop();
        curTick_ = e.when;
        ++numFired;
        e.cb();
    }
    if (curTick_ < now)
        curTick_ = now;
}

void
EventQueue::drain()
{
    while (!heap.empty()) {
        Entry e = heap.top();
        heap.pop();
        curTick_ = e.when;
        ++numFired;
        e.cb();
    }
}

void
EventQueue::reset()
{
    heap = decltype(heap)();
    curTick_ = 0;
    nextSeq = 0;
}

} // namespace cwsim
