/**
 * @file
 * A deterministic event queue driving the event-driven portions of the
 * simulator (cache-miss completions, memory transfers).
 *
 * The CPU pipeline itself is cycle-stepped; each core cycle first drains
 * all events scheduled at or before the current tick. Events with equal
 * ticks fire in (priority, insertion-order) order so simulations are
 * bit-reproducible.
 */

#ifndef CWSIM_SIM_EVENT_QUEUE_HH
#define CWSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "base/inplace_function.hh"
#include "base/types.hh"

namespace cwsim
{

class EventQueue
{
  public:
    using Callback = InplaceFunction;

    EventQueue() : curTick_(0), nextSeq(0), numScheduled(0), numFired(0) {}

    /**
     * Schedule @p cb to run at absolute tick @p when.
     * Scheduling in the past (when < curTick()) is a simulator bug.
     */
    void schedule(Tick when, Callback cb, int priority = 0);

    /** Convenience: schedule @p delay ticks from now. */
    void
    scheduleIn(Cycles delay, Callback cb, int priority = 0)
    {
        schedule(curTick_ + delay, std::move(cb), priority);
    }

    /**
     * Advance time to @p now, firing every event with when <= now in
     * order. Events may schedule further events, including at the
     * current tick.
     */
    void runUntil(Tick now);

    /** Fire everything remaining, advancing time as needed. */
    void drain();

    Tick curTick() const { return curTick_; }
    bool empty() const { return heap.empty(); }
    size_t size() const { return heap.size(); }

    uint64_t scheduledCount() const { return numScheduled; }
    uint64_t firedCount() const { return numFired; }

    /** Discard all pending events and reset time to zero. */
    void reset();

  private:
    struct Entry
    {
        Tick when;
        int priority;
        uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    Tick curTick_;
    uint64_t nextSeq;
    uint64_t numScheduled;
    uint64_t numFired;
};

} // namespace cwsim

#endif // CWSIM_SIM_EVENT_QUEUE_HH
