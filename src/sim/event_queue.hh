/**
 * @file
 * A deterministic event queue driving the event-driven portions of the
 * simulator (cache-miss completions, memory transfers).
 *
 * The CPU pipeline itself is cycle-stepped; each core cycle first drains
 * all events scheduled at or before the current tick. Events with equal
 * ticks fire in (priority, insertion-order) order so simulations are
 * bit-reproducible.
 *
 * Layout: a two-lane calendar queue. Nearly every event in the
 * simulator is a fixed-latency completion a few tens of ticks out
 * (cache hits, L2/memory fills, store releases), so events within
 * `horizon` ticks land in a ring of per-tick buckets — O(1) schedule,
 * O(1) per-tick drain, no heap sifting of fat callback-carrying
 * entries. The rare far-future event falls back to a conventional
 * binary heap and migrates into the ring only when it fires. A
 * per-tick mini-heap reproduces the historical
 * (tick, priority, insertion-order) firing order bit-for-bit, including
 * events scheduled at the current tick while it is being drained.
 */

#ifndef CWSIM_SIM_EVENT_QUEUE_HH
#define CWSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "base/inplace_function.hh"
#include "base/types.hh"

namespace cwsim
{

class EventQueue
{
  public:
    using Callback = InplaceFunction;

    EventQueue() { ring.resize(horizon); }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     * Scheduling in the past (when < curTick()) is a simulator bug.
     */
    void schedule(Tick when, Callback cb, int priority = 0);

    /** Convenience: schedule @p delay ticks from now. */
    void
    scheduleIn(Cycles delay, Callback cb, int priority = 0)
    {
        schedule(curTick_ + delay, std::move(cb), priority);
    }

    /**
     * Advance time to @p now, firing every event with when <= now in
     * order. Events may schedule further events, including at the
     * current tick.
     */
    void runUntil(Tick now);

    /** Fire everything remaining, advancing time as needed. */
    void drain();

    Tick curTick() const { return curTick_; }
    bool empty() const { return numPending == 0; }
    size_t size() const { return numPending; }

    uint64_t scheduledCount() const { return numScheduled; }
    uint64_t firedCount() const { return numFired; }

    /** Discard all pending events and reset time and counters. */
    void reset();

  private:
    /**
     * Ring span. Must exceed the longest fixed latency in the machine
     * (a full memory fill plus transfer is well under 200 ticks);
     * events beyond it take the far-heap slow path, which is merely
     * slower, never wrong.
     */
    static constexpr size_t horizon = 256;

    struct Entry
    {
        Tick when;
        int priority;
        uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    size_t bucketOf(Tick when) const { return when & (horizon - 1); }

    /** Fire every event at exactly tick @p t, in (priority, seq) order. */
    void fireTick(Tick t);

    /**
     * Smallest pending tick (numPending must be non-zero). Advances
     * the near-lane scan hint, so not const.
     */
    Tick nextEventTick();

    /**
     * Near lane: per-tick buckets for when < curTick_ + horizon. A
     * bucket holds its events in insertion order; fireTick() imposes
     * the (priority, seq) order when the tick is reached.
     */
    std::vector<std::vector<Entry>> ring;
    /** Far lane: events at or beyond the ring horizon. */
    std::priority_queue<Entry, std::vector<Entry>, Later> far;
    /**
     * Scratch mini-heap for the tick being drained; a member so its
     * capacity is reused across ticks.
     */
    std::vector<Entry> firing;

    Tick curTick_ = 0;
    uint64_t nextSeq = 0;
    size_t numPending = 0;
    /** Entries currently sitting in ring buckets. */
    size_t nearCount = 0;
    /**
     * Lower bound on the tick of every near-lane event; lets
     * nextEventTick() resume its bucket scan where the last one
     * stopped instead of rescanning from curTick_.
     */
    Tick nextNear = 0;
    uint64_t numScheduled = 0;
    uint64_t numFired = 0;
};

} // namespace cwsim

#endif // CWSIM_SIM_EVENT_QUEUE_HH
