#include "sim/stats.hh"

#include <algorithm>
#include <limits>

#include "base/str.hh"

namespace cwsim
{
namespace stats
{

void
Distribution::init(double min, double max, size_t num_buckets)
{
    panic_if(max <= min, "Distribution range [%f, %f) is empty", min, max);
    panic_if(num_buckets == 0, "Distribution needs at least one bucket");
    lo = min;
    hi = max;
    bucketWidth = (max - min) / static_cast<double>(num_buckets);
    buckets.assign(num_buckets, 0);
    reset();
}

void
Distribution::sample(double v)
{
    if (samples == 0) {
        sampleMin = v;
        sampleMax = v;
    } else {
        sampleMin = std::min(sampleMin, v);
        sampleMax = std::max(sampleMax, v);
    }
    ++samples;
    total += v;

    if (v < lo) {
        ++underflow;
    } else if (v >= hi) {
        ++overflow;
    } else {
        size_t idx = static_cast<size_t>((v - lo) / bucketWidth);
        if (idx >= buckets.size())
            idx = buckets.size() - 1;
        ++buckets[idx];
    }
}

void
Distribution::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    underflow = 0;
    overflow = 0;
    samples = 0;
    total = 0;
    sampleMin = 0;
    sampleMax = 0;
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : groupName(std::move(name)), parent(parent)
{
    if (parent)
        parent->children.push_back(this);
}

void
StatGroup::addScalar(const std::string &name, const Scalar *stat,
                     const std::string &desc)
{
    scalars.push_back({name, stat, desc});
}

void
StatGroup::addAverage(const std::string &name, const Average *stat,
                      const std::string &desc)
{
    averages.push_back({name, stat, desc});
}

void
StatGroup::addDistribution(const std::string &name,
                           const Distribution *stat,
                           const std::string &desc)
{
    dists.push_back({name, stat, desc});
}

uint64_t
StatGroup::scalarValue(const std::string &name) const
{
    for (const auto &s : scalars) {
        if (s.name == name)
            return s.stat->value();
    }
    panic("no scalar stat named '%s' in group '%s'", name.c_str(),
          groupName.c_str());
}

double
StatGroup::averageMean(const std::string &name) const
{
    for (const auto &a : averages) {
        if (a.name == name)
            return a.stat->mean();
    }
    panic("no average stat named '%s' in group '%s'", name.c_str(),
          groupName.c_str());
}

bool
StatGroup::hasScalar(const std::string &name) const
{
    return std::any_of(scalars.begin(), scalars.end(),
                       [&](const auto &s) { return s.name == name; });
}

std::string
StatGroup::fullName() const
{
    if (!parent)
        return groupName;
    return parent->fullName() + "." + groupName;
}

void
StatGroup::dump(std::ostream &os) const
{
    std::string prefix = fullName();
    for (const auto &s : scalars) {
        os << strfmt("%-50s %20llu", (prefix + "." + s.name).c_str(),
                     static_cast<unsigned long long>(s.stat->value()));
        if (!s.desc.empty())
            os << "  # " << s.desc;
        os << "\n";
    }
    for (const auto &a : averages) {
        os << strfmt("%-50s %20.4f", (prefix + "." + a.name).c_str(),
                     a.stat->mean());
        if (!a.desc.empty())
            os << "  # " << a.desc;
        os << "\n";
    }
    for (const auto &d : dists) {
        os << strfmt("%-50s mean=%.4f n=%llu min=%.1f max=%.1f",
                     (prefix + "." + d.name).c_str(), d.stat->mean(),
                     static_cast<unsigned long long>(d.stat->count()),
                     d.stat->minSample(), d.stat->maxSample());
        if (!d.desc.empty())
            os << "  # " << d.desc;
        os << "\n";
    }
    for (const StatGroup *child : children)
        child->dump(os);
}

} // namespace stats
} // namespace cwsim
