#include "sim/stats.hh"

#include <algorithm>
#include <limits>
#include <sstream>

#include "base/str.hh"

namespace cwsim
{
namespace stats
{

void
Distribution::init(double min, double max, size_t num_buckets)
{
    panic_if(max <= min, "Distribution range [%f, %f) is empty", min, max);
    panic_if(num_buckets == 0, "Distribution needs at least one bucket");
    lo = min;
    hi = max;
    bucketWidth = (max - min) / static_cast<double>(num_buckets);
    buckets.assign(num_buckets, 0);
    reset();
}

void
Distribution::sample(double v)
{
    if (samples == 0) {
        sampleMin = v;
        sampleMax = v;
    } else {
        sampleMin = std::min(sampleMin, v);
        sampleMax = std::max(sampleMax, v);
    }
    ++samples;
    total += v;

    if (v < lo) {
        ++underflow;
    } else if (v >= hi) {
        ++overflow;
    } else {
        size_t idx = static_cast<size_t>((v - lo) / bucketWidth);
        if (idx >= buckets.size())
            idx = buckets.size() - 1;
        ++buckets[idx];
    }
}

void
Distribution::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    underflow = 0;
    overflow = 0;
    samples = 0;
    total = 0;
    sampleMin = 0;
    sampleMax = 0;
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : groupName(std::move(name)), parent(parent)
{
    if (parent)
        parent->children.push_back(this);
}

void
StatGroup::addScalar(const std::string &name, const Scalar *stat,
                     const std::string &desc)
{
    scalars.push_back({name, stat, desc});
}

void
StatGroup::addAverage(const std::string &name, const Average *stat,
                      const std::string &desc)
{
    averages.push_back({name, stat, desc});
}

void
StatGroup::addDistribution(const std::string &name,
                           const Distribution *stat,
                           const std::string &desc)
{
    dists.push_back({name, stat, desc});
}

uint64_t
StatGroup::scalarValue(const std::string &name) const
{
    for (const auto &s : scalars) {
        if (s.name == name)
            return s.stat->value();
    }
    panic("no scalar stat named '%s' in group '%s'", name.c_str(),
          groupName.c_str());
}

double
StatGroup::averageMean(const std::string &name) const
{
    for (const auto &a : averages) {
        if (a.name == name)
            return a.stat->mean();
    }
    panic("no average stat named '%s' in group '%s'", name.c_str(),
          groupName.c_str());
}

bool
StatGroup::hasScalar(const std::string &name) const
{
    return std::any_of(scalars.begin(), scalars.end(),
                       [&](const auto &s) { return s.name == name; });
}

bool
StatGroup::hasAverage(const std::string &name) const
{
    return std::any_of(averages.begin(), averages.end(),
                       [&](const auto &a) { return a.name == name; });
}

bool
StatGroup::hasDistribution(const std::string &name) const
{
    return std::any_of(dists.begin(), dists.end(),
                       [&](const auto &d) { return d.name == name; });
}

namespace
{

/**
 * Strip "<group>." off a fully-qualified name; empty result means the
 * name cannot live under this group.
 */
std::string
stripGroupPrefix(const std::string &fq, const std::string &group)
{
    if (fq.size() <= group.size() + 1 || !startsWith(fq, group) ||
        fq[group.size()] != '.') {
        return "";
    }
    return fq.substr(group.size() + 1);
}

} // anonymous namespace

const Scalar *
StatGroup::findScalar(const std::string &fq) const
{
    std::string rest = stripGroupPrefix(fq, groupName);
    if (rest.empty())
        return nullptr;
    for (const auto &s : scalars) {
        if (s.name == rest)
            return s.stat;
    }
    for (const StatGroup *child : children) {
        if (const Scalar *hit = child->findScalar(rest))
            return hit;
    }
    return nullptr;
}

const Average *
StatGroup::findAverage(const std::string &fq) const
{
    std::string rest = stripGroupPrefix(fq, groupName);
    if (rest.empty())
        return nullptr;
    for (const auto &a : averages) {
        if (a.name == rest)
            return a.stat;
    }
    for (const StatGroup *child : children) {
        if (const Average *hit = child->findAverage(rest))
            return hit;
    }
    return nullptr;
}

const Distribution *
StatGroup::findDistribution(const std::string &fq) const
{
    std::string rest = stripGroupPrefix(fq, groupName);
    if (rest.empty())
        return nullptr;
    for (const auto &d : dists) {
        if (d.name == rest)
            return d.stat;
    }
    for (const StatGroup *child : children) {
        if (const Distribution *hit = child->findDistribution(rest))
            return hit;
    }
    return nullptr;
}

std::string
StatGroup::fullName() const
{
    if (!parent)
        return groupName;
    return parent->fullName() + "." + groupName;
}

void
StatGroup::dump(std::ostream &os) const
{
    std::string prefix = fullName();
    for (const auto &s : scalars) {
        os << strfmt("%-50s %20llu", (prefix + "." + s.name).c_str(),
                     static_cast<unsigned long long>(s.stat->value()));
        if (!s.desc.empty())
            os << "  # " << s.desc;
        os << "\n";
    }
    for (const auto &a : averages) {
        os << strfmt("%-50s %20.4f", (prefix + "." + a.name).c_str(),
                     a.stat->mean());
        if (!a.desc.empty())
            os << "  # " << a.desc;
        os << "\n";
    }
    for (const auto &d : dists) {
        os << strfmt("%-50s mean=%.4f n=%llu min=%.1f max=%.1f",
                     (prefix + "." + d.name).c_str(), d.stat->mean(),
                     static_cast<unsigned long long>(d.stat->count()),
                     d.stat->minSample(), d.stat->maxSample());
        if (!d.desc.empty())
            os << "  # " << d.desc;
        os << "\n";
    }
    for (const StatGroup *child : children)
        child->dump(os);
}

void
StatGroup::collectJson(std::vector<std::string> &fields) const
{
    std::string prefix = fullName();
    // Stat names are C identifiers and group names contain no JSON
    // metacharacters, so keys need no escaping; values are numbers.
    for (const auto &s : scalars) {
        fields.push_back(strfmt(
            "\"%s.%s\":%llu", prefix.c_str(), s.name.c_str(),
            static_cast<unsigned long long>(s.stat->value())));
    }
    for (const auto &a : averages) {
        fields.push_back(strfmt("\"%s.%s.mean\":%.17g", prefix.c_str(),
                                a.name.c_str(), a.stat->mean()));
        fields.push_back(strfmt(
            "\"%s.%s.count\":%llu", prefix.c_str(), a.name.c_str(),
            static_cast<unsigned long long>(a.stat->count())));
    }
    for (const auto &d : dists) {
        const Distribution *stat = d.stat;
        std::string base = prefix + "." + d.name;
        fields.push_back(
            strfmt("\"%s.mean\":%.17g", base.c_str(), stat->mean()));
        fields.push_back(strfmt(
            "\"%s.count\":%llu", base.c_str(),
            static_cast<unsigned long long>(stat->count())));
        fields.push_back(strfmt("\"%s.min\":%.17g", base.c_str(),
                                stat->minSample()));
        fields.push_back(strfmt("\"%s.max\":%.17g", base.c_str(),
                                stat->maxSample()));
        fields.push_back(strfmt(
            "\"%s.underflow\":%llu", base.c_str(),
            static_cast<unsigned long long>(stat->underflows())));
        fields.push_back(strfmt(
            "\"%s.overflow\":%llu", base.c_str(),
            static_cast<unsigned long long>(stat->overflows())));
        for (size_t b = 0; b < stat->numBuckets(); ++b) {
            fields.push_back(strfmt(
                "\"%s.bucket%zu\":%llu", base.c_str(), b,
                static_cast<unsigned long long>(stat->bucketCount(b))));
        }
    }
    for (const StatGroup *child : children)
        child->collectJson(fields);
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    std::vector<std::string> fields;
    collectJson(fields);
    os << "{";
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            os << ",";
        os << fields[i];
    }
    os << "}";
}

std::string
StatGroup::jsonString() const
{
    std::ostringstream os;
    dumpJson(os);
    return os.str();
}

} // namespace stats
} // namespace cwsim
