/**
 * @file
 * A small statistics package: named scalar counters, averages and
 * distributions, organized into groups and dumpable as text.
 *
 * Modules own typed stat objects (fast, branch-free increments) and
 * register them with a StatGroup so harness code and tests can query by
 * name and dump everything uniformly.
 */

#ifndef CWSIM_SIM_STATS_HH
#define CWSIM_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "base/logging.hh"

namespace cwsim
{
namespace stats
{

/** A monotonically increasing event counter. */
class Scalar
{
  public:
    Scalar() : count(0) {}

    Scalar &operator++() { ++count; return *this; }
    Scalar &operator+=(uint64_t n) { count += n; return *this; }

    uint64_t value() const { return count; }
    void reset() { count = 0; }

  private:
    uint64_t count;
};

/** Accumulates samples; reports mean / total / count. */
class Average
{
  public:
    Average() : total(0), samples(0) {}

    void
    sample(double v)
    {
        total += v;
        ++samples;
    }

    double mean() const { return samples ? total / samples : 0.0; }
    double sum() const { return total; }
    uint64_t count() const { return samples; }
    void reset() { total = 0; samples = 0; }

  private:
    double total;
    uint64_t samples;
};

/** A fixed-bucket histogram over [min, max) with overflow buckets. */
class Distribution
{
  public:
    Distribution() : lo(0), hi(1), bucketWidth(1) {}

    /**
     * Configure the histogram range.
     * @param min Inclusive lower bound of the tracked range.
     * @param max Exclusive upper bound.
     * @param num_buckets Number of equal-width buckets.
     */
    void init(double min, double max, size_t num_buckets);

    void sample(double v);

    uint64_t bucketCount(size_t i) const { return buckets.at(i); }
    size_t numBuckets() const { return buckets.size(); }
    uint64_t underflows() const { return underflow; }
    uint64_t overflows() const { return overflow; }
    uint64_t count() const { return samples; }
    double mean() const { return samples ? total / samples : 0.0; }
    double sum() const { return total; }
    double minSample() const { return sampleMin; }
    double maxSample() const { return sampleMax; }

    void reset();

  private:
    double lo;
    double hi;
    double bucketWidth;
    std::vector<uint64_t> buckets;
    uint64_t underflow = 0;
    uint64_t overflow = 0;
    uint64_t samples = 0;
    double total = 0;
    double sampleMin = 0;
    double sampleMax = 0;
};

/**
 * A named collection of stats. Groups may nest; fully qualified names
 * join components with '.'.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);

    void addScalar(const std::string &name, const Scalar *stat,
                   const std::string &desc = "");
    void addAverage(const std::string &name, const Average *stat,
                    const std::string &desc = "");
    void addDistribution(const std::string &name, const Distribution *stat,
                         const std::string &desc = "");

    /** Look up a scalar by name within this group; panics if missing. */
    uint64_t scalarValue(const std::string &name) const;
    /** Look up an average's mean by name; panics if missing. */
    double averageMean(const std::string &name) const;

    bool hasScalar(const std::string &name) const;
    bool hasAverage(const std::string &name) const;
    bool hasDistribution(const std::string &name) const;

    /**
     * Find a stat by fully-qualified name relative to this group —
     * e.g. a root group "proc" resolves "proc.commits" locally and
     * "proc.l1d.hits" through its children. Returns nullptr when no
     * such stat exists (no panic: callers probe).
     */
    const Scalar *findScalar(const std::string &fq) const;
    const Average *findAverage(const std::string &fq) const;
    const Distribution *findDistribution(const std::string &fq) const;

    /** Write "fullName value # desc" lines for all registered stats. */
    void dump(std::ostream &os) const;

    /**
     * Export the whole group tree as ONE flat JSON object keyed by
     * fully-qualified stat names, e.g. {"proc.commits":123,...}.
     * Averages contribute .mean/.count keys; distributions contribute
     * .mean/.count/.min/.max/.underflow/.overflow and one .bucketK per
     * bucket. Flat on purpose: sweep::parseFlatJson round-trips it.
     */
    void dumpJson(std::ostream &os) const;
    std::string jsonString() const;

    const std::string &name() const { return groupName; }
    std::string fullName() const;

  private:
    struct NamedScalar { std::string name; const Scalar *stat;
                         std::string desc; };
    struct NamedAverage { std::string name; const Average *stat;
                          std::string desc; };
    struct NamedDist { std::string name; const Distribution *stat;
                       std::string desc; };

    void collectJson(std::vector<std::string> &fields) const;

    std::string groupName;
    StatGroup *parent;
    std::vector<NamedScalar> scalars;
    std::vector<NamedAverage> averages;
    std::vector<NamedDist> dists;
    std::vector<StatGroup *> children;
};

} // namespace stats
} // namespace cwsim

#endif // CWSIM_SIM_STATS_HH
