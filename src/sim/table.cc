#include "sim/table.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"

namespace cwsim
{

void
TextTable::setHeader(std::vector<std::string> header)
{
    headers = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    panic_if(!headers.empty() && row.size() != headers.size(),
             "table row has %zu cells, expected %zu", row.size(),
             headers.size());
    rows.push_back(Row{std::move(row), false});
}

void
TextTable::addSeparator()
{
    rows.push_back(Row{{}, true});
}

void
TextTable::print(std::ostream &os) const
{
    size_t ncols = headers.size();
    for (const auto &r : rows)
        ncols = std::max(ncols, r.cells.size());
    if (ncols == 0)
        return;

    std::vector<size_t> widths(ncols, 0);
    for (size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &r : rows) {
        for (size_t c = 0; c < r.cells.size(); ++c)
            widths[c] = std::max(widths[c], r.cells[c].size());
    }

    auto print_sep = [&]() {
        for (size_t c = 0; c < ncols; ++c) {
            os << '+' << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };

    auto print_cells = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < ncols; ++c) {
            std::string cell = c < cells.size() ? cells[c] : "";
            os << "| ";
            if (c == 0) {
                os << cell << std::string(widths[c] - cell.size(), ' ');
            } else {
                os << std::string(widths[c] - cell.size(), ' ') << cell;
            }
            os << ' ';
        }
        os << "|\n";
    };

    print_sep();
    if (!headers.empty()) {
        print_cells(headers);
        print_sep();
    }
    for (const auto &r : rows) {
        if (r.separator)
            print_sep();
        else
            print_cells(r.cells);
    }
    print_sep();
}

std::string
TextTable::toString() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

} // namespace cwsim
