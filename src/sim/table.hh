/**
 * @file
 * A plain-text table formatter used by the benchmark harnesses to print
 * paper-style tables and figure series.
 */

#ifndef CWSIM_SIM_TABLE_HH
#define CWSIM_SIM_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace cwsim
{

class TextTable
{
  public:
    /** Set the column headers; fixes the column count. */
    void setHeader(std::vector<std::string> header);

    /** Append a fully formatted row (must match the column count). */
    void addRow(std::vector<std::string> row);

    /** Insert a horizontal separator before the next row. */
    void addSeparator();

    /** Render with per-column alignment (left col 0, right others). */
    void print(std::ostream &os) const;

    std::string toString() const;

    size_t numRows() const { return rows.size(); }

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::vector<std::string> headers;
    std::vector<Row> rows;
};

} // namespace cwsim

#endif // CWSIM_SIM_TABLE_HH
