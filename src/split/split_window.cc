#include "split/split_window.hh"

#include <unordered_map>

#include "base/addr_range.hh"
#include "base/logging.hh"
#include "base/sim_error.hh"
#include "check/watchdog.hh"
#include "obs/trace.hh"

namespace cwsim
{

SplitWindowSim::SplitWindowSim(const SplitConfig &cfg,
                               const std::vector<TraceEntry> &trace)
    : cfg(cfg), nodes(trace.size()), mdpt(MdpConfig{}),
      dynFlags(trace.size(), 0), doneAt(trace.size(), 0),
      addrPostedAt(trace.size(), 0),
      sourceSeen(trace.size(), invalid_trace_index),
      notBefore(trace.size(), 0), fetchedAt(trace.size(), 0),
      issuedAt(trace.size(), 0), timesSquashed(trace.size(), 0),
      headCommit(0), headChunk(0),
      fetchCursor(cfg.numUnits, invalid_trace_index), globalCursor(0),
      curCycle(0), numViolations(0), numCommitted(0), numLoads(0),
      cpi(cfg.commitWidth)
{
    fatal_if(cfg.numUnits == 0 || cfg.chunkSize == 0,
             "split config needs at least one unit and chunk");
    fatal_if(cfg.policy != SpecPolicy::No &&
                 cfg.policy != SpecPolicy::Naive &&
                 cfg.policy != SpecPolicy::SpecSync,
             "the split-window model supports NO, NAV and SYNC");

    pipe = obs::TraceManager::instance().pipeView();
    if (pipe) {
        disasms.reserve(trace.size());
        for (const TraceEntry &te : trace)
            disasms.push_back(te.inst.disassemble());
    }

    if (obs::DepProfManager::instance().active()) {
        dprof = std::make_unique<obs::DepProfile>(
            "split",
            obs::runLabel().empty() ? "split" : obs::runLabel());
        mdpt.setProfile(dprof.get());
    }

    // Precompute register and memory producers from the trace.
    std::unordered_map<unsigned, TraceIndex> reg_writer;
    std::unordered_map<Addr, TraceIndex> byte_writer;

    for (size_t i = 0; i < trace.size(); ++i) {
        const TraceEntry &te = trace[i];
        Node &node = nodes[i];
        node.chunk = static_cast<unsigned>(i / cfg.chunkSize);
        node.latency = te.inst.latency();
        node.isLoad = te.inst.isLoad();
        node.isStore = te.inst.isStore();
        node.pc = te.pc;
        node.addr = te.memAddr;
        node.size = te.memSize;

        auto lookup = [&](RegId reg) -> TraceIndex {
            if (reg == reg_invalid || reg == reg_zero)
                return invalid_trace_index;
            auto it = reg_writer.find(reg);
            return it == reg_writer.end() ? invalid_trace_index
                                          : it->second;
        };
        node.src1Producer = lookup(te.inst.rs1);
        node.src2Producer = lookup(te.inst.rs2);

        if (node.isLoad) {
            ++numLoads;
            TraceIndex newest = invalid_trace_index;
            for (unsigned b = 0; b < node.size; ++b) {
                auto it = byte_writer.find(node.addr + b);
                if (it != byte_writer.end() &&
                    (newest == invalid_trace_index ||
                     it->second > newest)) {
                    newest = it->second;
                }
            }
            node.memProducer = newest;
        } else if (node.isStore) {
            for (unsigned b = 0; b < node.size; ++b)
                byte_writer[node.addr + b] = i;
        }

        if (te.inst.writesReg())
            reg_writer[te.inst.rd] = i;
    }

    for (unsigned u = 0; u < cfg.numUnits; ++u) {
        TraceIndex start = static_cast<TraceIndex>(u) * cfg.chunkSize;
        fetchCursor[u] = start < nodes.size() ? start
                                              : invalid_trace_index;
    }
}

bool
SplitWindowSim::regReady(TraceIndex producer,
                         unsigned consumer_chunk) const
{
    if (producer == invalid_trace_index)
        return true;
    if (has(producer, DynCommitted))
        return true;
    if (!has(producer, DynDone))
        return false;
    Cycles forward = nodes[producer].chunk != consumer_chunk
                         ? cfg.interUnitLatency
                         : 0;
    return doneAt[producer] + forward <= curCycle;
}

bool
SplitWindowSim::loadMayIssue(TraceIndex idx) const
{
    const Node &node = nodes[idx];
    bool speculate = cfg.policy != SpecPolicy::No;

    // SYNC: a load whose PC carries a synonym waits for the closest
    // older store instance producing the same synonym. If no such
    // store is visible yet but older instructions remain unfetched,
    // the load keeps waiting — the synchronizing signal may simply not
    // have arrived from an earlier unit (Multiscalar-style wait).
    if (cfg.policy == SpecPolicy::SpecSync) {
        Synonym syn = mdpt.synonymOf(node.pc);
        if (syn != invalid_synonym) {
            bool found_producer = false;
            bool all_fetched = true;
            for (TraceIndex j = idx; j-- > headCommit;) {
                uint8_t f = dynFlags[j];
                if (f & DynCommitted)
                    break;
                if (!(f & DynFetched)) {
                    all_fetched = false;
                    continue;
                }
                if (!nodes[j].isStore)
                    continue;
                if (mdpt.synonymOf(nodes[j].pc) == syn) {
                    found_producer = true;
                    if (!(f & DynDone) ||
                        doneAt[j] + cfg.interUnitLatency > curCycle) {
                        // Per refused cycle, so the counter reads as
                        // cycles spent synchronizing on this edge.
                        if (__builtin_expect(dprof != nullptr, 0)) {
                            dprof->noteSyncWait(node.pc, nodes[j].pc,
                                                idx - j);
                        }
                        return false;
                    }
                    break; // synchronized with the closest instance
                }
            }
            if (!found_producer && !all_fetched)
                return false; // the producer may not be fetched yet
        }
    }

    // Older instructions not yet fetched are invisible to any
    // scheduler: ambiguous by definition.
    bool all_older_fetched = true;
    bool ambiguous = false;

    for (TraceIndex j = headCommit; j < idx; ++j) {
        uint8_t f = dynFlags[j];
        if (f & DynCommitted)
            continue;
        if (!(f & DynFetched)) {
            all_older_fetched = false;
            continue;
        }
        if (!nodes[j].isStore)
            continue;
        if (cfg.lsqModel == LsqModel::AS) {
            if ((f & DynAddrPosted) && addrPostedAt[j] <= curCycle) {
                const Node &older = nodes[j];
                bool overlap = rangesOverlap(older.addr, older.size,
                                             node.addr, node.size);
                if (overlap && !(f & DynDone))
                    return false; // known true dependence: wait
            } else {
                ambiguous = true;
            }
        } else if (!(f & DynDone)) {
            ambiguous = true; // NAS: unexecuted older store
        }
    }

    if (speculate)
        return true;
    return all_older_fetched && !ambiguous;
}

void
SplitWindowSim::executeStore(TraceIndex idx)
{
    const Node &store = nodes[idx];
    set(idx, DynIssued | DynDone);
    issuedAt[idx] = curCycle;
    doneAt[idx] = curCycle;

    // Detect the oldest younger load that consumed a stale value.
    for (TraceIndex j = idx + 1;
         j < nodes.size() && nodes[j].chunk <=
             headChunk + cfg.numUnits; ++j) {
        const Node &load = nodes[j];
        if (!load.isLoad || !has(j, DynDone))
            continue;
        bool overlap = rangesOverlap(store.addr, store.size,
                                     load.addr, load.size);
        if (!overlap)
            continue;
        if (sourceSeen[j] != invalid_trace_index &&
            sourceSeen[j] >= idx) {
            continue; // already forwarded from this store or younger
        }
        ++numViolations;
        if (__builtin_expect(dprof != nullptr, 0)) {
            dprof->noteViolation(
                store.pc, load.pc, j - idx,
                store.addr <= load.addr &&
                    store.addr + store.size >= load.addr + load.size);
        }
        CWSIM_TRACE(Split, "violation: load idx %llu pc 0x%llx "
                    "vs store idx %llu pc 0x%llx addr 0x%llx",
                    static_cast<unsigned long long>(j),
                    static_cast<unsigned long long>(load.pc),
                    static_cast<unsigned long long>(idx),
                    static_cast<unsigned long long>(store.pc),
                    static_cast<unsigned long long>(store.addr));
        if (cfg.policy == SpecPolicy::SpecSync)
            mdpt.pair(load.pc, store.pc);
        squashFrom(j);
        return;
    }
}

void
SplitWindowSim::squashFrom(TraceIndex idx)
{
    unsigned squashed = 0;
    for (TraceIndex j = idx; j < nodes.size(); ++j) {
        // Only in-flight chunks can have made progress.
        if (nodes[j].chunk > headChunk + cfg.numUnits)
            break;
        if (!(dynFlags[j] &
              (DynFetched | DynDone | DynAddrPosted))) {
            continue;
        }
        clr(j, DynIssued | DynDone | DynAddrPosted);
        sourceSeen[j] = invalid_trace_index;
        notBefore[j] = curCycle + cfg.squashPenalty;
        ++timesSquashed[j];
        ++squashed;
    }
    CWSIM_TRACE(Split, "squash: %u insts from idx %llu, re-dispatch "
                "at cycle %llu",
                squashed, static_cast<unsigned long long>(idx),
                static_cast<unsigned long long>(curCycle +
                                                cfg.squashPenalty));
}

uint64_t
SplitWindowSim::run()
{
    const uint64_t max_cycles = 100'000'000;
    const TraceIndex n = nodes.size();
    if (n == 0)
        return 0;

    check::Watchdog wdog(cfg.watchdogInterval);

    while (headCommit < n && curCycle < max_cycles) {
        if (obs::tracingActive())
            obs::setTraceCycle(curCycle);

        // ---- fetch ----
        if (cfg.continuousFetch) {
            // One in-order stream feeding a sliding window: older
            // instructions are always fetched before younger ones.
            TraceIndex window_end =
                headCommit +
                static_cast<TraceIndex>(cfg.numUnits) * cfg.chunkSize;
            unsigned budget =
                cfg.unitFetchWidth * cfg.numUnits;
            while (budget > 0 && globalCursor < n &&
                   globalCursor < window_end) {
                set(globalCursor, DynFetched);
                fetchedAt[globalCursor] = curCycle;
                ++globalCursor;
                --budget;
            }
        } else {
            // Each in-flight chunk fetches independently: a later
            // unit's loads can be fetched before an earlier unit's
            // stores.
            for (unsigned u = 0; u < cfg.numUnits; ++u) {
                TraceIndex cursor = fetchCursor[u];
                if (cursor == invalid_trace_index)
                    continue;
                unsigned chunk = nodes[cursor].chunk;
                if (chunk >= headChunk + cfg.numUnits)
                    continue; // not yet in flight
                TraceIndex chunk_end = std::min<TraceIndex>(
                    static_cast<TraceIndex>(chunk + 1) * cfg.chunkSize,
                    n);
                unsigned budget = cfg.unitFetchWidth;
                while (budget > 0 && cursor < chunk_end) {
                    set(cursor, DynFetched);
                    fetchedAt[cursor] = curCycle;
                    ++cursor;
                    --budget;
                }
                if (cursor == chunk_end) {
                    // This slot's next assigned chunk.
                    TraceIndex next =
                        static_cast<TraceIndex>(chunk + cfg.numUnits) *
                        cfg.chunkSize;
                    fetchCursor[u] =
                        next < n ? next : invalid_trace_index;
                } else {
                    fetchCursor[u] = cursor;
                }
            }
        }

        // ---- execute: per unit, oldest-first, bounded issue ----
        // Continuous mode issues from one sliding window with a global
        // budget; split mode gives each in-flight chunk its own budget.
        unsigned first_chunk = headChunk;
        unsigned last_chunk = std::min<unsigned>(
            headChunk + cfg.numUnits + (cfg.continuousFetch ? 1 : 0),
            static_cast<unsigned>((n + cfg.chunkSize - 1) /
                                  cfg.chunkSize));
        unsigned budget = cfg.unitIssueWidth * cfg.numUnits;
        for (unsigned chunk = first_chunk; chunk < last_chunk;
             ++chunk) {
            if (!cfg.continuousFetch)
                budget = cfg.unitIssueWidth;
            TraceIndex begin =
                static_cast<TraceIndex>(chunk) * cfg.chunkSize;
            TraceIndex end =
                std::min<TraceIndex>(begin + cfg.chunkSize, n);
            for (TraceIndex i = std::max(begin, headCommit);
                 i < end && budget > 0; ++i) {
                const Node &node = nodes[i];
                uint8_t f = dynFlags[i];
                if (!(f & DynFetched) || (f & DynCommitted) ||
                    notBefore[i] > curCycle) {
                    continue;
                }

                // AS stores post addresses as soon as the base register
                // arrives (no issue slot consumed).
                if (node.isStore && cfg.lsqModel == LsqModel::AS &&
                    !(f & DynAddrPosted) &&
                    regReady(node.src1Producer, node.chunk)) {
                    set(i, DynAddrPosted);
                    addrPostedAt[i] = curCycle + cfg.asLatency;
                }

                if (f & DynDone)
                    continue;

                if (node.isStore) {
                    if (regReady(node.src1Producer, node.chunk) &&
                        regReady(node.src2Producer, node.chunk)) {
                        --budget;
                        executeStore(i);
                    }
                    continue;
                }

                if (node.isLoad) {
                    if (!regReady(node.src1Producer, node.chunk))
                        continue;
                    if (!loadMayIssue(i))
                        continue;
                    --budget;
                    // Record the youngest older executed store the
                    // load forwards from (if any).
                    TraceIndex source = invalid_trace_index;
                    for (TraceIndex j = headCommit; j < i; ++j) {
                        const Node &older = nodes[j];
                        if (older.isStore &&
                            (dynFlags[j] &
                             (DynDone | DynCommitted)) == DynDone &&
                            rangesOverlap(older.addr, older.size,
                                          node.addr, node.size)) {
                            source = j;
                        }
                    }
                    sourceSeen[i] = source;
                    if (__builtin_expect(dprof != nullptr, 0)) {
                        dprof->noteLoadExec(
                            node.pc, source != invalid_trace_index);
                    }
                    set(i, DynIssued | DynDone);
                    issuedAt[i] = curCycle;
                    doneAt[i] = curCycle + cfg.memLatency +
                                (cfg.lsqModel == LsqModel::AS
                                     ? cfg.asLatency
                                     : 0);
                    continue;
                }

                // Plain computational / control work.
                if (regReady(node.src1Producer, node.chunk) &&
                    regReady(node.src2Producer, node.chunk)) {
                    --budget;
                    set(i, DynIssued | DynDone);
                    issuedAt[i] = curCycle;
                    doneAt[i] = curCycle + node.latency;
                }
            }
        }

        // ---- commit: global, in order ----
        unsigned commits = 0;
        while (headCommit < n && commits < cfg.commitWidth) {
            const Node &head = nodes[headCommit];
            if (!has(headCommit, DynDone) ||
                doneAt[headCommit] > curCycle) {
                break;
            }
            set(headCommit, DynCommitted);
            if (__builtin_expect(dprof != nullptr, 0)) {
                if (head.isLoad)
                    dprof->noteLoadCommit(head.pc);
                else if (head.isStore)
                    dprof->noteStoreCommit(head.pc);
            }
            if (pipe) {
                // Record fields are cycles; the writer scales to ticks.
                obs::PipeViewWriter::Record r;
                r.seq = headCommit + 1; // pipeview seqs start at 1
                r.pc = head.pc;
                r.fetch = fetchedAt[headCommit];
                r.decode = r.fetch;
                r.rename = r.fetch;
                r.dispatch = r.fetch;
                r.issue = issuedAt[headCommit];
                r.complete = doneAt[headCommit];
                r.retire = curCycle;
                if (head.isStore)
                    r.storeComplete = r.retire;
                r.disasm = disasms[headCommit];
                if (timesSquashed[headCommit]) {
                    r.disasm +=
                        strfmt(" [squashed x%u]",
                               unsigned{timesSquashed[headCommit]});
                }
                pipe->write(r);
            }
            ++headCommit;
            ++numCommitted;
            ++commits;
        }
        // Commit-slot accounting: blame this cycle's leftover slots on
        // why the next-to-commit instruction is not done yet.
        cpi.account(commits, commits < cfg.commitWidth
                                 ? classifyResidual()
                                 : obs::CpiCause::Committed);

        if (commits > 0)
            wdog.progress(curCycle);
        if (wdog.expired(curCycle)) {
            const Node &head = nodes[headCommit];
            throw SimError(
                SimErrorKind::Watchdog,
                strfmt("split-window: no commit in %llu cycles",
                       static_cast<unsigned long long>(
                           cfg.watchdogInterval)),
                __FILE__, __LINE__,
                strfmt("head %llu/%zu (chunk %u, pc 0x%llx): "
                       "fetched=%d issued=%d done=%d addrPosted=%d "
                       "notBefore=%llu, headChunk %u\n",
                       static_cast<unsigned long long>(headCommit),
                       nodes.size(), head.chunk,
                       static_cast<unsigned long long>(head.pc),
                       has(headCommit, DynFetched),
                       has(headCommit, DynIssued),
                       has(headCommit, DynDone),
                       has(headCommit, DynAddrPosted),
                       static_cast<unsigned long long>(
                           notBefore[headCommit]),
                       headChunk));
        }

        // Advance the chunk window; arm fetch for newly in-flight
        // chunks.
        unsigned new_head_chunk =
            headCommit < n
                ? nodes[headCommit].chunk
                : static_cast<unsigned>((n - 1) / cfg.chunkSize);
        // Slot fetch cursors self-advance to their next assigned
        // chunk; advancing headChunk just widens the in-flight window.
        headChunk = new_head_chunk;

        ++curCycle;
    }

    panic_if(headCommit < n, "split-window simulation did not converge");
    panic_if(cpi.totalSlots() != curCycle * uint64_t{cfg.commitWidth} ||
                 cpi.slot(obs::CpiCause::Committed) != numCommitted,
             "split-window CPI-stack conservation broken: %llu slots / "
             "%llu committed over %llu cycles x width %u",
             static_cast<unsigned long long>(cpi.totalSlots()),
             static_cast<unsigned long long>(
                 cpi.slot(obs::CpiCause::Committed)),
             static_cast<unsigned long long>(curCycle),
             cfg.commitWidth);
    if (dprof) {
        // Final predictor snapshot, then hand the block to the shared
        // writer (SYNC is the only split policy with MDPT state, but
        // the sample is cheap and keeps the block shape uniform).
        dprof->noteMdptSample(curCycle, mdpt.validEntries(),
                              mdpt.meanConfidence());
        obs::DepProfManager::instance().writeRun(*dprof);
    }
    return curCycle;
}

obs::CpiCause
SplitWindowSim::classifyResidual() const
{
    using obs::CpiCause;

    const TraceIndex n = nodes.size();
    // Everything committed: only the trailing cycle's spare slots.
    if (headCommit >= n)
        return CpiCause::FrontEndIdle;

    const Node &head = nodes[headCommit];
    if (!has(headCommit, DynFetched))
        return CpiCause::FrontEndIdle;
    // Squash penalty wait or post-squash re-execution: recovery cost.
    if (timesSquashed[headCommit] > 0)
        return CpiCause::MemDepSquash;

    if (has(headCommit, DynDone)) {
        // In flight (doneAt > curCycle). AS loads spend the first
        // asLatency cycles in the address-scheduler pipeline.
        if (head.isLoad) {
            return (cfg.lsqModel == LsqModel::AS &&
                    curCycle - issuedAt[headCommit] <
                        Tick{cfg.asLatency})
                ? CpiCause::AddrSched
                : CpiCause::CacheMiss;
        }
        return CpiCause::Exec;
    }

    if (head.isLoad && regReady(head.src1Producer, head.chunk) &&
        !loadMayIssue(headCommit)) {
        // Gate-blocked with a ready address: under SYNC a
        // synonym-carrying load is synchronizing; otherwise the hold
        // is a dependence wait — true when the trace's producing
        // store is genuinely outstanding, false otherwise.
        if (cfg.policy == SpecPolicy::SpecSync &&
            mdpt.synonymOf(head.pc) != invalid_synonym) {
            return CpiCause::SyncWait;
        }
        bool true_dep =
            head.memProducer != invalid_trace_index &&
            !(dynFlags[head.memProducer] &
              (DynCommitted | DynDone));
        return true_dep ? CpiCause::TrueDep : CpiCause::FalseDep;
    }

    return CpiCause::Exec;
}

} // namespace cwsim
