/**
 * @file
 * A distributed, split-window processor model (Section 3.7).
 *
 * The instruction window is divided into sub-windows (units), each
 * assigned a contiguous chunk of the dynamic execution trace
 * (Multiscalar-style tasks). Units fetch their chunks INDEPENDENTLY and
 * in parallel, so — unlike the continuous-window core in src/cpu/ — a
 * load in a later unit can compute its address (and speculatively
 * access memory) before an older store in an earlier unit has even been
 * fetched. This is exactly why the paper finds that an address-based
 * scheduler with naive speculation, which eliminates virtually all
 * miss-speculations under a continuous window, fails to do so under a
 * split window (Figure 7).
 *
 * The model is trace-driven over the committed path from the functional
 * pre-pass (equivalently: perfect task/control prediction, a
 * simplification documented in DESIGN.md). Register dependences resolve
 * dataflow-style with an extra inter-unit forwarding latency; loads and
 * stores follow the same AS/NAS x NO/NAV policy definitions as the
 * continuous core. Setting numUnits=1 with a full-size chunk recovers a
 * continuous-window machine, which is how bench/fig7 contrasts the two.
 */

#ifndef CWSIM_SPLIT_SPLIT_WINDOW_HH
#define CWSIM_SPLIT_SPLIT_WINDOW_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "base/types.hh"
#include "mdp/mdp_table.hh"
#include "mdp/oracle.hh"
#include "obs/cpi_stack.hh"
#include "obs/depprof.hh"
#include "obs/pipeview.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace cwsim
{

struct SplitConfig
{
    unsigned numUnits = 4;
    /** Trace instructions per unit assignment (= sub-window size). */
    unsigned chunkSize = 32;
    unsigned unitFetchWidth = 2; ///< Insts fetched per unit per cycle.
    unsigned unitIssueWidth = 2; ///< Insts issued per unit per cycle.
    unsigned commitWidth = 8;    ///< Global in-order commit width.
    Cycles interUnitLatency = 1; ///< Extra cycles crossing units.
    Cycles memLatency = 2;       ///< Load-to-use / cache-hit latency.
    Cycles squashPenalty = 4;    ///< Re-dispatch delay after a squash.

    LsqModel lsqModel = LsqModel::AS;
    /**
     * No, Naive, or SpecSync. SpecSync pairs violating (load, store)
     * PCs in an MDPT and synchronizes later instances — the mechanism
     * the paper's prior work showed split windows NEED, since even a
     * 0-cycle address scheduler cannot save them (Section 3.7).
     */
    SpecPolicy policy = SpecPolicy::Naive;
    Cycles asLatency = 0;

    /**
     * Continuous mode: a single in-order fetch stream feeding one
     * sliding window of numUnits*chunkSize entries — the Figure 7(b)
     * reference machine. Split mode fetches each in-flight chunk
     * independently (Figure 7(c)).
     */
    bool continuousFetch = false;

    /**
     * Forward-progress watchdog: cycles without a commit before the
     * model raises a structured SimError describing the stuck head
     * instruction (0 disables). A healthy trace-driven model commits
     * within squashPenalty + a few latencies of any stall.
     */
    uint64_t watchdogInterval = 100'000;

    /** A continuous-window reference machine with equal resources. */
    static SplitConfig
    continuous(unsigned window = 128)
    {
        SplitConfig cfg;
        cfg.numUnits = 1;
        cfg.chunkSize = window;
        cfg.unitFetchWidth = 8;
        cfg.unitIssueWidth = 8;
        cfg.interUnitLatency = 0;
        cfg.continuousFetch = true;
        return cfg;
    }
};

class SplitWindowSim
{
  public:
    /**
     * @param cfg Model parameters.
     * @param trace Committed-path trace from runPrepass(recordTrace).
     */
    SplitWindowSim(const SplitConfig &cfg,
                   const std::vector<TraceEntry> &trace);

    /** Simulate the whole trace. @return elapsed cycles. */
    uint64_t run();

    uint64_t cycles() const { return curCycle; }
    uint64_t violations() const { return numViolations; }
    uint64_t committed() const { return numCommitted; }
    /** Commit-slot cycle accounting (conserves by construction). */
    const obs::CpiStack &cpiStack() const { return cpi; }
    /** The run's dependence profile, or nullptr when profiling is off. */
    const obs::DepProfile *depProfile() const { return dprof.get(); }

    double
    ipc() const
    {
        return curCycle ? static_cast<double>(numCommitted) / curCycle
                        : 0;
    }

    double
    misspecRate() const
    {
        return numLoads ? static_cast<double>(numViolations) / numLoads
                        : 0;
    }

  private:
    /**
     * Static, precomputed description of one trace entry. The dynamic
     * per-index execution state lives in the parallel arrays below
     * (structure-of-arrays): the per-cycle scans — loadMayIssue's
     * walk over every older in-flight instruction, executeStore's
     * walk over every younger in-flight load — each test a couple of
     * booleans per index, and packing those into a dense flag byte
     * keeps a whole chunk window's scan state in a few cache lines
     * instead of dragging one Node record per index.
     */
    struct Node
    {
        TraceIndex src1Producer = invalid_trace_index;
        TraceIndex src2Producer = invalid_trace_index;
        TraceIndex memProducer = invalid_trace_index; ///< true producer
        unsigned chunk = 0;
        bool isLoad = false;
        bool isStore = false;
        Addr pc = 0;
        Addr addr = invalid_addr;
        unsigned size = 0;
        Cycles latency = 1;
    };

    /** Packed per-index dynamic flags (the hot scan predicates). */
    enum DynFlag : uint8_t
    {
        DynFetched = 1 << 0,
        DynIssued = 1 << 1,
        DynDone = 1 << 2,
        DynAddrPosted = 1 << 3,
        DynCommitted = 1 << 4,
    };

    bool has(TraceIndex i, uint8_t f) const { return dynFlags[i] & f; }
    void set(TraceIndex i, uint8_t f) { dynFlags[i] |= f; }
    void clr(TraceIndex i, uint8_t f)
    {
        dynFlags[i] &= static_cast<uint8_t>(~f);
    }

    bool regReady(TraceIndex producer, unsigned consumer_chunk) const;
    bool loadMayIssue(TraceIndex idx) const;
    void executeStore(TraceIndex idx);
    void squashFrom(TraceIndex idx);
    /** Blame for this cycle's residual commit slots (DESIGN.md §11). */
    obs::CpiCause classifyResidual() const;

    SplitConfig cfg;
    std::vector<Node> nodes; ///< Static trace description (AoS).
    MdpTable mdpt;

    // Dynamic state, indexed by trace position (SoA).
    std::vector<uint8_t> dynFlags;  ///< DynFlag bits.
    std::vector<Tick> doneAt;       ///< Completion time once DynDone.
    std::vector<Tick> addrPostedAt; ///< AS address-post time.
    /** For loads: youngest older store whose value was consumed. */
    std::vector<TraceIndex> sourceSeen;
    /** Earliest re-issue time after a squash. */
    std::vector<Tick> notBefore;

    // Pipeline timeline (O3PipeView traces) and squash counts.
    std::vector<Tick> fetchedAt;
    std::vector<Tick> issuedAt;
    std::vector<uint16_t> timesSquashed;

    /** Pipeline-trace writer (nullptr when not recording). */
    obs::PipeViewWriter *pipe = nullptr;
    /** Per-node disassembly, filled only while @ref pipe is active. */
    std::vector<std::string> disasms;

    TraceIndex headCommit;   ///< Next instruction to commit.
    unsigned headChunk;      ///< Oldest in-flight chunk.
    std::vector<TraceIndex> fetchCursor; ///< Next fetch per unit slot.
    TraceIndex globalCursor; ///< Continuous-mode fetch cursor.

    Tick curCycle;
    uint64_t numViolations;
    uint64_t numCommitted;
    uint64_t numLoads;
    obs::CpiStack cpi;
    /**
     * Per-static-PC dependence attribution (nullptr when profiling is
     * off). Stats-less here: the split model has no StatGroup, so the
     * profile only feeds the .depprof.jsonl writer. Observation only.
     */
    std::unique_ptr<obs::DepProfile> dprof;
};

} // namespace cwsim

#endif // CWSIM_SPLIT_SPLIT_WINDOW_HH
