#include "svc/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "base/str.hh"
#include "svc/protocol.hh"
#include "sweep/jsonl.hh"

namespace cwsim
{
namespace svc
{

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
    inBuf.clear();
}

bool
Client::connectUnix(const std::string &path, std::string *err)
{
    ::signal(SIGPIPE, SIG_IGN);
    struct sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = strfmt("socket path too long: %s", path.c_str());
        return false;
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        if (err)
            *err = strfmt("socket: %s", std::strerror(errno));
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        if (err)
            *err = strfmt("connect %s: %s", path.c_str(),
                          std::strerror(errno));
        close();
        return false;
    }
    return true;
}

bool
Client::connectTcp(const std::string &host, uint16_t port,
                   std::string *err)
{
    ::signal(SIGPIPE, SIG_IGN);
    struct sockaddr_in in{};
    in.sin_family = AF_INET;
    in.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &in.sin_addr) != 1) {
        if (err)
            *err = strfmt("not an IPv4 address: %s", host.c_str());
        return false;
    }
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        if (err)
            *err = strfmt("socket: %s", std::strerror(errno));
        return false;
    }
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&in),
                  sizeof(in)) < 0) {
        if (err)
            *err = strfmt("connect %s:%u: %s", host.c_str(),
                          unsigned(port), std::strerror(errno));
        close();
        return false;
    }
    return true;
}

bool
Client::sendLine(const std::string &line, std::string *err)
{
    std::string data = line;
    data += '\n';
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = strfmt("send: %s", std::strerror(errno));
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

bool
Client::nextEvent(std::map<std::string, std::string> &ev,
                  std::string *err)
{
    if (err)
        err->clear();
    for (;;) {
        if (takeLine(inBuf, last)) {
            if (trim(last).empty())
                continue;
            ev.clear();
            if (!sweep::parseFlatJson(last, ev)) {
                if (err)
                    *err = strfmt("unparseable event: %s",
                                  last.c_str());
                return false;
            }
            return true;
        }
        char buf[65536];
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n > 0) {
            inBuf.append(buf, static_cast<size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && err)
            *err = strfmt("recv: %s", std::strerror(errno));
        return false; // EOF (err empty) or hard error
    }
}

} // namespace svc
} // namespace cwsim
