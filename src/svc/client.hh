/**
 * @file
 * Client session for the cwsimd protocol: connect to a server (Unix
 * socket or loopback TCP), send request lines, and iterate response
 * events. Blocking and single-threaded — the client side of this
 * protocol has no concurrency to manage, it writes a line and reads
 * events until its sweep is done.
 *
 * Shared by tools/cwsim-client.cc, `cwsim-report --connect`, and the
 * protocol tests.
 */

#ifndef CWSIM_SVC_CLIENT_HH
#define CWSIM_SVC_CLIENT_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>

namespace cwsim
{
namespace svc
{

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept { *this = std::move(other); }
    Client &
    operator=(Client &&other) noexcept
    {
        if (this != &other) {
            close();
            fd = other.fd;
            other.fd = -1;
            inBuf = std::move(other.inBuf);
            last = std::move(other.last);
        }
        return *this;
    }

    /** Connect to a Unix-domain socket; false with @p err set. */
    bool connectUnix(const std::string &path, std::string *err);
    /** Connect to a TCP endpoint (dotted-quad host). */
    bool connectTcp(const std::string &host, uint16_t port,
                    std::string *err);
    bool connected() const { return fd >= 0; }
    void close();

    /** Send one request line (newline appended). */
    bool sendLine(const std::string &line, std::string *err);

    /**
     * Block for the next event line and parse it into @p ev. Returns
     * false on EOF or error (EOF leaves @p err empty — a server
     * draining away is an ending, not a fault).
     */
    bool nextEvent(std::map<std::string, std::string> &ev,
                   std::string *err);

    /**
     * The raw line behind the most recent nextEvent() — run events are
     * re-exported to JSONL from this, envelope stripped by the caller.
     */
    const std::string &lastLine() const { return last; }

  private:
    int fd = -1;
    std::string inBuf;
    std::string last;
};

} // namespace svc
} // namespace cwsim

#endif // CWSIM_SVC_CLIENT_HH
