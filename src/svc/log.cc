#include "svc/log.hh"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

#include "base/str.hh"

namespace cwsim
{
namespace svc
{

namespace
{

std::mutex log_mutex;
bool epoch_set = false;
std::chrono::steady_clock::time_point epoch;

std::chrono::steady_clock::time_point
theEpoch()
{
    std::lock_guard<std::mutex> lock(log_mutex);
    if (!epoch_set) {
        epoch = std::chrono::steady_clock::now();
        epoch_set = true;
    }
    return epoch;
}

} // anonymous namespace

void
logInit()
{
    theEpoch();
}

std::string
logPrefix(uint64_t clientId)
{
    auto monoMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - theEpoch())
                      .count();

    std::time_t now = std::time(nullptr);
    struct tm tm_utc;
    gmtime_r(&now, &tm_utc);
    char wall[32];
    std::strftime(wall, sizeof(wall), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);

    if (clientId == 0)
        return strfmt("[%s +%lldms]", wall, (long long)monoMs);
    return strfmt("[%s +%lldms client=%llu]", wall, (long long)monoMs,
                  (unsigned long long)clientId);
}

void
logLine(uint64_t clientId, const std::string &message)
{
    std::string line = logPrefix(clientId) + " " + message + "\n";
    std::lock_guard<std::mutex> lock(log_mutex);
    std::fputs(line.c_str(), stderr);
    std::fflush(stderr);
}

} // namespace svc
} // namespace cwsim
