/**
 * @file
 * Structured daemon logging for cwsimd.
 *
 * Every operational log line shares one prefix —
 *
 *     [2026-08-08T12:34:56Z +1234ms client=7] message
 *
 * — ISO-8601 UTC wall time for the operator reading the log, monotonic
 * milliseconds since process start for correlating with metrics and
 * trace-event spans (both use the same steady clock), and the client
 * id when the line concerns a specific session. This replaces the
 * ad-hoc base/logging warn() calls the daemon used before, which
 * carried no timestamps and no session context.
 *
 * base/logging stays what it is — panic/fatal for programmer errors,
 * warn/inform for library-level diagnostics shared with the CLI tools.
 * This module is only for the daemon's operational narrative: sessions
 * opening and closing, submits accepted and rejected, drains.
 */

#ifndef CWSIM_SVC_LOG_HH
#define CWSIM_SVC_LOG_HH

#include <cstdint>
#include <string>

namespace cwsim
{
namespace svc
{

/**
 * Pin the monotonic epoch that "+NNNms" counts from. Called once at
 * daemon startup; a first logLine() call auto-pins if it was not.
 */
void logInit();

/** The shared prefix; @p clientId 0 means "no session context". */
std::string logPrefix(uint64_t clientId);

/** Write "[prefix] message\n" to stderr. */
void logLine(uint64_t clientId, const std::string &message);

} // namespace svc
} // namespace cwsim

#endif // CWSIM_SVC_LOG_HH
