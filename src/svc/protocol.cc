#include "svc/protocol.hh"

#include "base/logging.hh"
#include "base/str.hh"
#include "sweep/run_cache.hh"

#ifndef CWSIM_BUILD_TYPE
#define CWSIM_BUILD_TYPE "unknown"
#endif

namespace cwsim
{
namespace svc
{

std::string
versionLine(const char *tool)
{
    const char *build = CWSIM_BUILD_TYPE;
    return strfmt("%s (cwsim record-schema v%llu, protocol v%u, %s "
                  "build)",
                  tool,
                  (unsigned long long)sweep::run_record_version,
                  protocol_version,
                  build[0] ? build : "unknown");
}

std::string
mergeJson(const std::string &base, const std::string &extra)
{
    // {"a":1} + {"b":2} -> {"a":1,"b":2}; an empty side passes the
    // other through untouched.
    panic_if(base.size() < 2 || base.front() != '{' ||
                 base.back() != '}',
             "mergeJson: not a flat object: %s", base.c_str());
    panic_if(extra.size() < 2 || extra.front() != '{' ||
                 extra.back() != '}',
             "mergeJson: not a flat object: %s", extra.c_str());
    if (extra.size() == 2)
        return base;
    if (base.size() == 2)
        return extra;
    return base.substr(0, base.size() - 1) + "," + extra.substr(1);
}

bool
takeLine(std::string &buf, std::string &line)
{
    size_t nl = buf.find('\n');
    if (nl == std::string::npos)
        return false;
    line = buf.substr(0, nl);
    if (!line.empty() && line.back() == '\r')
        line.pop_back(); // tolerate CRLF from telnet-style probes
    buf.erase(0, nl + 1);
    return true;
}

} // namespace svc
} // namespace cwsim
