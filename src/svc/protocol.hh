/**
 * @file
 * The cwsimd wire protocol: line-delimited flat JSON over a stream
 * socket (Unix-domain, or TCP for remote clients).
 *
 * Every request and every event is ONE flat JSON object on ONE line —
 * the same no-nesting dialect the run cache and JSONL exporter speak
 * (sweep/jsonl.hh), so a run record can travel inside an event by
 * merging objects instead of nesting them.
 *
 * Requests carry a "cmd" field:
 *
 *   {"cmd":"hello"}                    capability/identity handshake
 *   {"cmd":"ping"}                     liveness probe
 *   {"cmd":"stats"}                    server counters snapshot
 *   {"cmd":"corpus"}                   stream the shared run corpus
 *   {"cmd":"submit","id":"s1", ...}    submit a sweep (svc/spec.hh)
 *   {"cmd":"shutdown"}                 ask the server to drain + exit
 *
 * Responses carry an "ev" field; a sweep's events all echo its "id":
 *
 *   {"ev":"hello",...}                 handshake reply
 *   {"ev":"pong"}
 *   {"ev":"stats",...}                 legacy counters + the full
 *                                      metrics-registry snapshot
 *                                      (cwsimd_ and cwsim_ keys)
 *   {"ev":"accepted","id":...,"runs":N,"cached":N,"deduped":N,
 *    "queued":N}                       submit admitted (all-or-nothing)
 *   {"ev":"rejected","id":...,"reason":...}
 *   {"ev":"run","id":...,"seq":K,"total":N, <full run record>}
 *   {"ev":"interval","id":...,"seq":K, <one interval sample>}
 *   {"ev":"done","id":...,"runs":N,"failed":N,"injected":N}
 *   {"ev":"corpus_record", <full run record>} / {"ev":"corpus_done",...}
 *   {"ev":"error","reason":...}        malformed/oversized request
 *   {"ev":"shutdown"}                  server is draining; last event
 *
 * Framing rules: a request line longer than max_request_line is a
 * protocol violation — the server answers with an error event and
 * closes that session (an unbounded line is indistinguishable from a
 * garbage stream). A merely malformed line costs one error event and
 * the session lives on.
 */

#ifndef CWSIM_SVC_PROTOCOL_HH
#define CWSIM_SVC_PROTOCOL_HH

#include <cstddef>
#include <map>
#include <string>

namespace cwsim
{
namespace svc
{

/** Protocol revision, echoed in the hello event. */
constexpr unsigned protocol_version = 1;

/**
 * Longest request line a server accepts, newline excluded. Generous —
 * a submit naming every workload with a dozen override sets fits in a
 * few KiB — but bounded, so a misbehaving peer cannot balloon the
 * session buffer.
 */
constexpr size_t max_request_line = 64 * 1024;

/**
 * Merge two single-line flat JSON objects: every field of @p extra is
 * appended after the fields of @p base (caller guarantees key sets are
 * disjoint). This is how a run record rides inside a "run" event
 * without nesting: mergeJson(envelope, record).
 */
std::string mergeJson(const std::string &base,
                      const std::string &extra);

/**
 * Split one buffered line off @p buf (consuming through the newline)
 * into @p line. Returns false when @p buf holds no complete line yet.
 */
bool takeLine(std::string &buf, std::string &line);

/**
 * The shared --version line: "<tool> (cwsim record-schema vN,
 * protocol vM, <BuildType> build)". One implementation so a daemon
 * and the clients poking at it report comparable identities.
 */
std::string versionLine(const char *tool);

} // namespace svc
} // namespace cwsim

#endif // CWSIM_SVC_PROTOCOL_HH
