#include "svc/scheduler.hh"

#include <algorithm>

#include "obs/metrics.hh"

namespace cwsim
{
namespace svc
{

void
Scheduler::setMetrics(obs::MetricsRegistry *registry)
{
    if (!registry)
        return;
    queueGauge = &registry->gauge(
        "cwsimd_queue_depth", "Distinct run units awaiting dispatch.");
    runningGauge = &registry->gauge(
        "cwsimd_runs_running", "Run units currently executing.");
    waitHistogram = &registry->histogram(
        "cwsimd_queue_wait_seconds",
        "Admission-to-dispatch wait per run unit, seconds.",
        obs::Histogram::latencySeconds());
    updateGauges();
}

void
Scheduler::updateGauges() const
{
    if (queueGauge)
        queueGauge->set(static_cast<double>(queued()));
    if (runningGauge)
        runningGauge->set(static_cast<double>(running()));
}

bool
Scheduler::canAdmit(uint64_t client, size_t newUnits,
                    size_t attachRefs, std::string &reason) const
{
    if (queued() + newUnits > limits.maxQueued) {
        reason = "queue full";
        return false;
    }
    if (inflight(client) + attachRefs > limits.maxClientInflight) {
        reason = "quota exceeded";
        return false;
    }
    return true;
}

bool
Scheduler::admit(const RunRef &ref, uint64_t fp,
                 const sweep::SweepJob &job, uint64_t scale,
                 uint64_t interval)
{
    // In-flight dedupe: a queued/running unit with the same
    // fingerprint IS this run (the fingerprint covers workload, scale,
    // and the full config), so the new client just subscribes.
    // Interval subscriptions don't merge — the first admission decides
    // — because interval cycles ride in the child, not the record.
    for (auto &[key, unit] : units) {
        if (unit.fp == fp) {
            unit.refs.push_back(ref);
            return false;
        }
    }

    RunUnit unit;
    unit.key = nextKey++;
    unit.fp = fp;
    unit.job = job;
    unit.scale = scale;
    unit.intervalCycles = interval;
    unit.owner = ref.client;
    unit.refs.push_back(ref);
    unit.admittedAt = std::chrono::steady_clock::now();
    ownerQueues[unit.owner].push_back(unit.key);
    units.emplace(unit.key, std::move(unit));
    updateGauges();
    return true;
}

bool
Scheduler::hasPending(uint64_t fp) const
{
    for (const auto &[key, unit] : units) {
        if (unit.fp == fp)
            return true;
    }
    return false;
}

RunUnit *
Scheduler::next()
{
    if (ownerQueues.empty())
        return nullptr;
    // Round-robin: the first owner strictly after the cursor, wrapping.
    auto it = ownerQueues.upper_bound(rrCursor);
    if (it == ownerQueues.end())
        it = ownerQueues.begin();
    rrCursor = it->first;

    uint64_t key = it->second.front();
    it->second.pop_front();
    if (it->second.empty())
        ownerQueues.erase(it);

    RunUnit &unit = units.at(key);
    unit.state = RunUnit::State::Running;
    unit.dispatchedAt = std::chrono::steady_clock::now();
    if (waitHistogram) {
        waitHistogram->observe(
            std::chrono::duration<double>(unit.dispatchedAt -
                                          unit.admittedAt)
                .count());
    }
    updateGauges();
    return &unit;
}

RunUnit *
Scheduler::find(uint64_t key)
{
    auto it = units.find(key);
    return it == units.end() ? nullptr : &it->second;
}

std::vector<RunRef>
Scheduler::complete(uint64_t key)
{
    auto it = units.find(key);
    if (it == units.end())
        return {};
    std::vector<RunRef> refs = std::move(it->second.refs);
    // A completed-while-queued unit (inline executor) must leave its
    // owner queue too.
    auto oq = ownerQueues.find(it->second.owner);
    if (oq != ownerQueues.end()) {
        auto pos = std::find(oq->second.begin(), oq->second.end(), key);
        if (pos != oq->second.end())
            oq->second.erase(pos);
        if (oq->second.empty())
            ownerQueues.erase(oq);
    }
    units.erase(it);
    updateGauges();
    return refs;
}

void
Scheduler::dropClient(uint64_t client)
{
    for (auto &[key, unit] : units) {
        unit.refs.erase(
            std::remove_if(unit.refs.begin(), unit.refs.end(),
                           [&](const RunRef &r) {
                               return r.client == client;
                           }),
            unit.refs.end());
        if (unit.owner == client) {
            // Orphan: keep it admitted under the shared owner 0 so
            // round-robin still reaches it and the result lands in the
            // cache for whoever asks next.
            auto oq = ownerQueues.find(client);
            if (oq != ownerQueues.end()) {
                auto pos = std::find(oq->second.begin(),
                                     oq->second.end(), unit.key);
                if (pos != oq->second.end()) {
                    oq->second.erase(pos);
                    ownerQueues[0].push_back(unit.key);
                }
            }
            unit.owner = 0;
        }
    }
    ownerQueues.erase(client);
}

size_t
Scheduler::queued() const
{
    size_t n = 0;
    for (const auto &[key, unit] : units) {
        if (unit.state == RunUnit::State::Queued)
            ++n;
    }
    return n;
}

size_t
Scheduler::running() const
{
    size_t n = 0;
    for (const auto &[key, unit] : units) {
        if (unit.state == RunUnit::State::Running)
            ++n;
    }
    return n;
}

size_t
Scheduler::inflight(uint64_t client) const
{
    size_t n = 0;
    for (const auto &[key, unit] : units) {
        for (const RunRef &r : unit.refs) {
            if (r.client == client)
                ++n;
        }
    }
    return n;
}

} // namespace svc
} // namespace cwsim
