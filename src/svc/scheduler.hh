/**
 * @file
 * The daemon's multi-tenant run scheduler: pure bookkeeping, no
 * sockets, no processes — which is what makes admission control,
 * dedupe, quotas, fairness, and orphaning unit-testable without a
 * server.
 *
 * The scheduler tracks RunUnits — distinct (fingerprint) runs that
 * still need executing — and RunRefs — (client, sweep, seq)
 * subscriptions to a unit's eventual result. Two clients submitting
 * the same run share ONE unit (in-flight dedupe: the run cache
 * dedupes completed runs, this dedupes running ones), and a client
 * disconnecting merely drops its refs: a unit whose owner leaves is
 * orphaned, not cancelled, so its result still lands in the shared
 * cache and the next client asking for it hits.
 *
 * Multi-tenant rules:
 *   - bounded queue: at most maxQueued distinct units awaiting
 *     execution; a submit that would exceed it is rejected whole
 *   - per-client quota: at most maxClientInflight unfinished refs per
 *     client, so one greedy client cannot monopolize admission
 *   - fair dispatch: next() round-robins across clients with queued
 *     units, so interleaved submits interleave execution
 */

#ifndef CWSIM_SVC_SCHEDULER_HH
#define CWSIM_SVC_SCHEDULER_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "sweep/sweep.hh"

namespace cwsim
{

namespace obs
{
class Gauge;
class Histogram;
class MetricsRegistry;
} // namespace obs

namespace svc
{

/** One subscription to a unit's result. */
struct RunRef
{
    uint64_t client = 0;
    std::string sweepId;
    uint64_t seq = 0;   ///< Position within the client's sweep.
    uint64_t total = 0; ///< The sweep's run count.
};

/** One distinct run awaiting (or undergoing) execution. */
struct RunUnit
{
    enum class State { Queued, Running };

    uint64_t key = 0; ///< Scheduler-assigned id (the pool token).
    uint64_t fp = 0;
    sweep::SweepJob job;
    uint64_t scale = 0;
    uint64_t intervalCycles = 0;
    State state = State::Queued;
    /** Admitting client; 0 once orphaned by a disconnect. */
    uint64_t owner = 0;
    std::vector<RunRef> refs;
    /** When admit() created the unit (queue-wait + latency spans). */
    std::chrono::steady_clock::time_point admittedAt;
    /** When next() dispatched it (valid once Running). */
    std::chrono::steady_clock::time_point dispatchedAt;
};

struct SchedulerLimits
{
    /** Max distinct units queued (not yet running). */
    size_t maxQueued = 1024;
    /** Max unfinished refs (queued + running) per client. */
    size_t maxClientInflight = 512;
};

class Scheduler
{
  public:
    explicit Scheduler(SchedulerLimits limits = {}) : limits(limits) {}

    /**
     * Pre-admission check for an all-or-nothing submit: can @p client
     * add @p newUnits fresh units and @p attachRefs total refs? On
     * failure, @p reason is "queue full" or "quota exceeded".
     */
    bool canAdmit(uint64_t client, size_t newUnits, size_t attachRefs,
                  std::string &reason) const;

    /**
     * Subscribe @p ref's client to the run described by (@p fp,
     * @p job, @p scale, @p interval): attaches to an existing
     * queued/running unit when one matches (in-flight dedupe), else
     * creates a new queued unit owned by the client. Returns true when
     * a new unit was created.
     */
    bool admit(const RunRef &ref, uint64_t fp,
               const sweep::SweepJob &job, uint64_t scale,
               uint64_t interval);

    /** Is a queued/running unit already carrying this fingerprint? */
    bool hasPending(uint64_t fp) const;

    /**
     * Dispatch: the next queued unit, round-robin across owners (the
     * orphan pool counts as one owner), marked Running. nullptr when
     * nothing is queued. The returned pointer stays valid until the
     * unit completes.
     */
    RunUnit *next();

    /**
     * The unit for a pool token, or nullptr. Valid for Running units
     * (completion lookups) and Queued ones (inline executors).
     */
    RunUnit *find(uint64_t key);

    /**
     * Complete a unit: returns its surviving refs (every subscriber to
     * notify) and erases it.
     */
    std::vector<RunRef> complete(uint64_t key);

    /**
     * Client went away: drop its refs everywhere and orphan the units
     * it owns. Queued orphans still execute — their results belong to
     * the shared cache, and killing them would waste the admission.
     */
    void dropClient(uint64_t client);

    size_t queued() const;
    size_t running() const;
    /** Unfinished refs held by @p client. */
    size_t inflight(uint64_t client) const;

    /**
     * Register queue telemetry (depth/running gauges, queue-wait
     * histogram) in @p registry. Optional — a scheduler without a
     * registry records nothing; @p registry must outlive the
     * scheduler.
     */
    void setMetrics(obs::MetricsRegistry *registry);

  private:
    void updateGauges() const;

    SchedulerLimits limits;
    uint64_t nextKey = 1;
    /** All unfinished units, by key. */
    std::map<uint64_t, RunUnit> units;
    /** Queued unit keys per owner, FIFO. */
    std::map<uint64_t, std::deque<uint64_t>> ownerQueues;
    /** Round-robin position: the owner AFTER the last-dispatched one. */
    uint64_t rrCursor = 0;

    // Optional telemetry handles (null without setMetrics).
    obs::Gauge *queueGauge = nullptr;
    obs::Gauge *runningGauge = nullptr;
    obs::Histogram *waitHistogram = nullptr;
};

} // namespace svc
} // namespace cwsim

#endif // CWSIM_SVC_SCHEDULER_HH
