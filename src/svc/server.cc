#include "svc/server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>

#include "base/logging.hh"
#include "base/sim_error.hh"
#include "base/str.hh"
#include "svc/log.hh"
#include "svc/protocol.hh"
#include "sweep/jsonl.hh"

namespace cwsim
{
namespace svc
{

namespace
{

std::string
field(const std::map<std::string, std::string> &fields,
      const char *key)
{
    auto it = fields.find(key);
    return it == fields.end() ? std::string() : it->second;
}

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

double
elapsedMs(std::chrono::steady_clock::time_point from,
          std::chrono::steady_clock::time_point to)
{
    if (to <= from)
        return 0;
    return std::chrono::duration_cast<
               std::chrono::duration<double, std::milli>>(to - from)
        .count();
}

/** Stable label value for a submit-rejection reason. */
const char *
rejectReasonSlug(const std::string &reason)
{
    if (reason == "draining")
        return "draining";
    if (reason == "queue full")
        return "queue_full";
    if (reason == "quota exceeded")
        return "quota";
    if (reason == "sweep id already in flight")
        return "duplicate_id";
    return "bad_spec"; // parse errors carry free-form text
}

constexpr const char *reject_help =
    "Whole-sweep submits rejected, by reason.";
constexpr const char *result_help =
    "Executed run outcomes, by failure kind (none = success).";

// Trace-event track layout: one process row for client tracks, one
// for worker-slot tracks (tid 0 is reserved for metadata).
constexpr uint64_t trace_pid_clients = 1;
constexpr uint64_t trace_pid_slots = 2;

} // anonymous namespace

Server::Server(ServerOptions o) : opts(std::move(o))
{
    if (opts.defaultScale == 0)
        opts.defaultScale = harness::benchScale();
    sched = Scheduler(opts.limits);
}

Server::~Server()
{
    for (auto &[fd, s] : sessions)
        ::close(fd);
    closeFd(unixFd);
    closeFd(tcpFd);
    closeFd(stopRd);
    closeFd(stopWr);
    if (!opts.socketPath.empty())
        ::unlink(opts.socketPath.c_str());
}

bool
Server::start(std::string *err)
{
    // A client that disconnects mid-stream must cost us an EPIPE
    // errno, not a process-killing signal.
    ::signal(SIGPIPE, SIG_IGN);

    logInit();
    startedAt = std::chrono::steady_clock::now();
    registerMetrics();
    sched.setMetrics(&metrics);

    cache = std::make_unique<sweep::RunCache>(opts.cacheDir);

    int pipeFds[2];
    if (::pipe2(pipeFds, O_CLOEXEC | O_NONBLOCK) < 0) {
        if (err)
            *err = strfmt("pipe2: %s", std::strerror(errno));
        return false;
    }
    stopRd = pipeFds[0];
    stopWr = pipeFds[1];

    if (opts.socketPath.empty()) {
        if (err)
            *err = "a Unix socket path is required";
        return false;
    }
    struct sockaddr_un addr{};
    if (opts.socketPath.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = strfmt("socket path too long: %s",
                          opts.socketPath.c_str());
        return false;
    }
    unixFd = ::socket(AF_UNIX,
                      SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (unixFd < 0) {
        if (err)
            *err = strfmt("socket: %s", std::strerror(errno));
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opts.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(opts.socketPath.c_str()); // stale socket from a dead daemon
    if (::bind(unixFd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(unixFd, 64) < 0) {
        if (err)
            *err = strfmt("bind %s: %s", opts.socketPath.c_str(),
                          std::strerror(errno));
        return false;
    }

    if (opts.tcpPort != 0) {
        tcpFd = ::socket(AF_INET,
                         SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
        if (tcpFd < 0) {
            if (err)
                *err = strfmt("socket: %s", std::strerror(errno));
            return false;
        }
        int one = 1;
        ::setsockopt(tcpFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        struct sockaddr_in in{};
        in.sin_family = AF_INET;
        in.sin_port = htons(opts.tcpPort);
        // Loopback only: the protocol has no authentication, so the
        // TCP listener must not be reachable off-host.
        in.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::bind(tcpFd, reinterpret_cast<struct sockaddr *>(&in),
                   sizeof(in)) < 0 ||
            ::listen(tcpFd, 64) < 0) {
            if (err)
                *err = strfmt("bind 127.0.0.1:%u: %s",
                              unsigned(opts.tcpPort),
                              std::strerror(errno));
            return false;
        }
    }

    if (opts.isolate) {
        sweep::IsolateOptions iopts;
        iopts.slots = opts.slots;
        iopts.timeoutSec = opts.timeoutSec;
        iopts.memLimitMb = opts.memLimitMb;
        iopts.retries = opts.retries;
        pool = std::make_unique<sweep::IsolatePool>(iopts);
        pool->setMetrics(&metrics);
    }

    if (!opts.traceEventsPath.empty()) {
        trace = std::make_unique<obs::TraceEventWriter>(
            opts.traceEventsPath);
        if (!trace->ok()) {
            trace.reset();
        } else {
            trace->metaProcessName(trace_pid_clients, "clients");
            trace->metaProcessName(trace_pid_slots, "worker slots");
            unsigned slots = std::max(1u, opts.slots);
            for (unsigned i = 0; i < slots; i++) {
                trace->metaThreadName(trace_pid_slots, i + 1,
                                      strfmt("slot %u", i));
            }
        }
    }

    if (!opts.metricsPath.empty()) {
        nextMetricsDump =
            startedAt + std::chrono::microseconds(static_cast<int64_t>(
                            opts.metricsPeriodSec * 1e6));
    }
    return true;
}

void
Server::registerMetrics()
{
    sm.sessions = &metrics.counter("cwsimd_sessions_total",
                                   "Client sessions accepted.");
    sm.sessionsOpen =
        &metrics.gauge("cwsimd_sessions_open", "Connected clients.");
    sm.submits = &metrics.counter("cwsimd_submits_total",
                                  "Sweep submits received.");
    sm.submitsAccepted = &metrics.counter(
        "cwsimd_submits_accepted_total", "Sweep submits admitted.");
    // Pre-register every rejection reason and failure kind so the
    // exposition (and a CI assertion on a zero crash count) always
    // sees the series, not just the ones that fired.
    for (const char *reason :
         {"draining", "queue_full", "quota", "duplicate_id",
          "bad_spec"}) {
        metrics.counter("cwsimd_submits_rejected_total", reject_help,
                        "reason", reason);
    }
    sm.runsAdmitted = &metrics.counter(
        "cwsimd_runs_admitted_total",
        "Fresh run units admitted to the execution queue.");
    sm.dedupeHits = &metrics.counter(
        "cwsimd_dedupe_hits_total",
        "Runs served by subscribing to an in-flight unit.");
    sm.cacheHits = &metrics.counter(
        "cwsimd_cache_hits_total",
        "Runs served from the shared run cache.");
    sm.executed = &metrics.counter("cwsimd_runs_executed_total",
                                   "Run units executed to completion.");
    for (const char *kind :
         {"none", "sim_error", "crash", "timeout", "oom", "protocol"}) {
        metrics.counter("cwsimd_run_results_total", result_help,
                        "kind", kind);
    }
    sm.runLatency = &metrics.histogram(
        "cwsimd_run_latency_seconds",
        "End-to-end run latency, admission to completion, seconds.",
        obs::Histogram::latencySeconds());
    sm.backlogDrops = &metrics.counter(
        "cwsimd_backlog_drops_total",
        "Sessions dropped for exceeding the output-backlog cap.");
    sm.protocolErrors = &metrics.counter(
        "cwsimd_protocol_errors_total",
        "Malformed, unknown, or oversized client requests.");
    sm.cacheSize = &metrics.gauge("cwsimd_cache_size",
                                  "Records in the shared run cache.");
    sm.uptimeMs =
        &metrics.gauge("cwsimd_uptime_ms", "Daemon uptime, ms.");
    sm.depprofRuns = &metrics.counter(
        "cwsimd_depprof_runs_total",
        "Executed runs that carried a dependence profile.");
    sm.depprofEdges = &metrics.counter(
        "cwsimd_depprof_edges_total",
        "Dependence edges summed over all profiled runs.");
    sm.depprofLastEdges = &metrics.gauge(
        "cwsimd_depprof_last_edges",
        "Dependence edges of the most recent profiled run.");
}

void
Server::refreshSnapshotGauges()
{
    sm.cacheSize->set(static_cast<double>(cache ? cache->size() : 0));
    sm.uptimeMs->set(
        elapsedMs(startedAt, std::chrono::steady_clock::now()));
}

void
Server::dumpMetricsFile()
{
    refreshSnapshotGauges();
    std::string tmp = opts.metricsPath + ".tmp";
    FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f)
        return;
    std::string text = metrics.prometheusText();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    // Atomic publish: a scraper never sees a torn file.
    std::rename(tmp.c_str(), opts.metricsPath.c_str());
}

void
Server::requestStop()
{
    // Async-signal-safe: one write to the self-pipe. A full pipe means
    // a stop is already pending, which is fine.
    if (stopWr >= 0) {
        char b = 1;
        [[maybe_unused]] ssize_t n = ::write(stopWr, &b, 1);
    }
}

harness::Runner &
Server::runnerFor(uint64_t scale)
{
    auto &slot = runners[scale];
    if (!slot)
        slot = std::make_unique<harness::Runner>(scale);
    return *slot;
}

Server::Session *
Server::sessionByClient(uint64_t client)
{
    for (auto &[fd, s] : sessions) {
        if (s.id == client)
            return &s;
    }
    return nullptr;
}

void
Server::send(Session &s, const std::string &line)
{
    if (s.dead)
        return;
    s.outBuf += line;
    s.outBuf += '\n';
    if (s.outBuf.size() > opts.maxOutBuf) {
        logLine(s.id, strfmt("dropped: output backlog exceeded the "
                             "%zu-byte cap",
                             opts.maxOutBuf));
        if (sm.backlogDrops)
            sm.backlogDrops->inc();
        s.dead = true;
        return;
    }
    flushSession(s);
}

void
Server::flushSession(Session &s)
{
    while (!s.dead && !s.outBuf.empty()) {
        ssize_t n = ::write(s.fd, s.outBuf.data(), s.outBuf.size());
        if (n > 0) {
            s.outBuf.erase(0, static_cast<size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return; // poll will retry when writable
        s.dead = true; // EPIPE/ECONNRESET: the client is gone
    }
}

void
Server::acceptPending(int listenFd)
{
    for (;;) {
        int fd = ::accept4(listenFd, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN, or a transient accept error
        }
        Session s;
        s.id = nextClientId++;
        s.fd = fd;
        uint64_t id = s.id;
        sessions.emplace(fd, std::move(s));
        ++totalSessions;
        if (sm.sessions)
            sm.sessions->inc();
        if (sm.sessionsOpen)
            sm.sessionsOpen->set(static_cast<double>(sessions.size()));
        if (trace) {
            trace->metaThreadName(trace_pid_clients, id,
                                  strfmt("client %llu",
                                         (unsigned long long)id));
        }
        logLine(id, "connected");
    }
}

void
Server::deliverRecord(Session &s, const RunRef &ref,
                      const harness::RunResult &r, uint64_t fp,
                      uint64_t scale)
{
    sweep::JsonObject env;
    env.add("ev", "run")
        .add("id", ref.sweepId)
        .add("seq", ref.seq)
        .add("total", ref.total);
    send(s, mergeJson(env.str(), sweep::runRecordLine(r, fp, scale)));

    SweepProgress &prog = s.sweeps[ref.sweepId];
    prog.total = ref.total;
    ++prog.delivered;
    if (!r.ok) {
        if (r.injectedHostFault)
            ++prog.injected;
        else
            ++prog.failed;
    }
    if (prog.delivered >= prog.total) {
        sweep::JsonObject done;
        done.add("ev", "done")
            .add("id", ref.sweepId)
            .add("runs", prog.total)
            .add("failed", prog.failed)
            .add("injected", prog.injected);
        send(s, done.str());
        s.sweeps.erase(ref.sweepId);
    }
}

void
Server::emitRunSpans(const RunUnit &unit, const harness::RunResult &r,
                     const ExecInfo &info,
                     const std::vector<RunRef> &refs)
{
    if (!trace)
        return;
    uint64_t endUs = trace->nowUs();
    uint64_t startUs = trace->tsUs(unit.admittedAt);
    uint64_t dispatchUs = trace->tsUs(unit.dispatchedAt);
    uint64_t execUs = static_cast<uint64_t>(info.execMs * 1000.0);
    std::string name = unit.job.workload + " " + unit.job.config.name();
    obs::TraceEventWriter::Args args = {
        {"workload", unit.job.workload},
        {"config", unit.job.config.name()},
        {"result", harness::toString(r.failKind)},
    };

    // One span per executed run on its worker slot's track, sized by
    // the parent-observed execute time.
    uint64_t execStartUs = endUs > execUs ? endUs - execUs : 0;
    trace->complete(name, "exec", trace_pid_slots, info.slot + 1,
                    execStartUs, execUs, args);

    // Each subscribed client's track gets the full lifecycle span
    // (admitted → replied) with a nested queue-wait span; Perfetto
    // shows the wait as the contained child.
    uint64_t queuedUs = dispatchUs > startUs ? dispatchUs - startUs : 0;
    for (const RunRef &ref : refs) {
        trace->complete(name, "run", trace_pid_clients, ref.client,
                        startUs, endUs > startUs ? endUs - startUs : 0,
                        args);
        trace->complete("queued", "queue", trace_pid_clients,
                        ref.client, startUs, queuedUs);
    }
}

void
Server::finishUnit(uint64_t key, harness::RunResult r,
                   const std::vector<std::string> &intervalLines,
                   const ExecInfo &info)
{
    RunUnit *unit = sched.find(key);
    if (!unit)
        return;
    uint64_t fp = unit->fp;
    uint64_t scale = unit->scale;

    // Queue wait = scheduler queue (admit → dispatch) + executor queue
    // (enqueue → fork); both are host-side and ride in the record as
    // the queue_ms field next to wall_ms.
    r.queueMs =
        elapsedMs(unit->admittedAt, unit->dispatchedAt) + info.queueMs;

    cache->append(fp, scale, r);
    ++executedRuns;
    if (sm.executed)
        sm.executed->inc();
    if (r.depProfiled) {
        if (sm.depprofRuns)
            sm.depprofRuns->inc();
        if (sm.depprofEdges)
            sm.depprofEdges->inc(r.depEdges);
        if (sm.depprofLastEdges)
            sm.depprofLastEdges->set(static_cast<double>(r.depEdges));
    }
    metrics
        .counter("cwsimd_run_results_total", result_help, "kind",
                 harness::toString(r.failKind))
        .inc();
    if (sm.runLatency) {
        sm.runLatency->observe(
            elapsedMs(unit->admittedAt,
                      std::chrono::steady_clock::now()) /
            1000.0);
    }

    // complete() erases the unit, so snapshot what the spans need
    // first (the refs come back from complete itself).
    RunUnit unitCopy = *unit;
    std::vector<RunRef> refs = sched.complete(key);
    emitRunSpans(unitCopy, r, info, refs);
    for (const RunRef &ref : refs) {
        Session *s = sessionByClient(ref.client);
        if (!s || s->dead)
            continue; // orphaned subscription; the cache has it
        for (const std::string &sample : intervalLines) {
            sweep::JsonObject env;
            env.add("ev", "interval")
                .add("id", ref.sweepId)
                .add("seq", ref.seq);
            send(*s, mergeJson(env.str(), sample));
        }
        deliverRecord(*s, ref, r, fp, scale);
    }
}

void
Server::dispatchReady()
{
    if (!pool)
        return;
    while (pool->freeSlots() > 0) {
        RunUnit *unit = sched.next();
        if (!unit)
            break;
        harness::Runner &runner = runnerFor(unit->scale);
        // Pre-warm the functional pre-pass in the parent so every
        // forked child inherits it copy-on-write. Fail-soft: if the
        // workload is broken, the child hits the same error and says
        // so in its record.
        try {
            ScopedErrorTrap trap;
            runner.prepass(unit->job.workload);
        } catch (const SimError &) {
        }
        sweep::IsolatePool::Task task;
        task.token = unit->key;
        task.runner = &runner;
        task.job = unit->job;
        task.fp = unit->fp;
        task.intervalCycles = unit->intervalCycles;
        pool->enqueue(std::move(task));
    }
    pool->pump(); // fork now so the new pipes join this poll round
}

void
Server::runInlineUnit()
{
    RunUnit *unit = sched.next();
    if (!unit)
        return;
    // Runner::run is fail-soft (SimErrors come back in the record);
    // inline mode deliberately skips process isolation, so host-fault
    // workloads belong on the isolated executor.
    auto t0 = std::chrono::steady_clock::now();
    harness::RunResult r =
        runnerFor(unit->scale).run(unit->job.workload,
                                   unit->job.config);
    ExecInfo info;
    info.execMs = elapsedMs(t0, std::chrono::steady_clock::now());
    finishUnit(unit->key, r, {}, info);
}

void
Server::handleSubmit(Session &s,
                     const std::map<std::string, std::string> &req)
{
    std::string id = field(req, "id");
    if (sm.submits)
        sm.submits->inc();
    auto reject = [&](const std::string &reason) {
        metrics
            .counter("cwsimd_submits_rejected_total", reject_help,
                     "reason", rejectReasonSlug(reason))
            .inc();
        logLine(s.id, strfmt("submit '%s' rejected: %s", id.c_str(),
                             reason.c_str()));
        sweep::JsonObject o;
        o.add("ev", "rejected").add("id", id).add("reason", reason);
        send(s, o.str());
    };

    if (draining)
        return reject("draining");
    SweepSpec spec;
    std::string err;
    if (!parseSweepSpec(req, spec, err))
        return reject(err);
    if (s.sweeps.count(spec.id))
        return reject("sweep id already in flight");

    uint64_t scale = spec.scale ? spec.scale : opts.defaultScale;
    std::vector<sweep::SweepJob> jobs = spec.jobs();

    // Admission is all-or-nothing: a dry pass sorts every job into its
    // service tier — cache hit, subscribe to an in-flight unit, or
    // fresh unit — and the whole submit is rejected if the fresh units
    // would overflow the queue or the refs would bust the client's
    // quota. Partial sweeps help nobody.
    enum Tier { Cached, Attach, Fresh };
    std::vector<uint64_t> fps(jobs.size());
    std::vector<Tier> tier(jobs.size(), Cached);
    std::set<uint64_t> freshFps;
    uint64_t cached = 0, attached = 0, fresh = 0;
    for (size_t i = 0; i < jobs.size(); ++i) {
        fps[i] = sweep::fingerprintRun(jobs[i].workload, scale,
                                       jobs[i].config);
        harness::RunResult hit;
        if (cache->lookup(fps[i], hit)) {
            tier[i] = Cached;
            ++cached;
        } else if (sched.hasPending(fps[i]) || freshFps.count(fps[i])) {
            tier[i] = Attach;
            ++attached;
        } else {
            tier[i] = Fresh;
            ++fresh;
            freshFps.insert(fps[i]);
        }
    }
    std::string reason;
    if (!sched.canAdmit(s.id, fresh, attached + fresh, reason))
        return reject(reason);

    if (sm.submitsAccepted)
        sm.submitsAccepted->inc();
    logLine(s.id, strfmt("submit '%s' accepted: %zu runs (%llu "
                         "cached, %llu deduped, %llu queued)",
                         spec.id.c_str(), jobs.size(),
                         (unsigned long long)cached,
                         (unsigned long long)attached,
                         (unsigned long long)fresh));
    sweep::JsonObject acc;
    acc.add("ev", "accepted")
        .add("id", spec.id)
        .add("runs", static_cast<uint64_t>(jobs.size()))
        .add("cached", cached)
        .add("deduped", attached)
        .add("queued", fresh);
    send(s, acc.str());

    s.sweeps[spec.id] = SweepProgress{jobs.size(), 0, 0, 0};
    for (size_t i = 0; i < jobs.size(); ++i) {
        RunRef ref{s.id, spec.id, i, jobs.size()};
        if (tier[i] == Cached) {
            harness::RunResult hit;
            cache->lookup(fps[i], hit);
            hit.cacheHit = true;
            // A hit never queued for THIS delivery; the stored
            // queue_ms belongs to whoever paid for the run.
            hit.queueMs = 0;
            ++cacheHitRuns;
            if (sm.cacheHits)
                sm.cacheHits->inc();
            if (trace) {
                trace->instant(
                    jobs[i].workload + " " + jobs[i].config.name(),
                    "cache_hit", trace_pid_clients, s.id,
                    trace->nowUs());
            }
            deliverRecord(s, ref, hit, fps[i], scale);
        } else {
            if (!sched.admit(ref, fps[i], jobs[i], scale,
                             spec.intervalCycles)) {
                ++dedupedRuns;
                if (sm.dedupeHits)
                    sm.dedupeHits->inc();
            } else if (sm.runsAdmitted) {
                sm.runsAdmitted->inc();
            }
        }
    }
}

void
Server::handleLine(Session &s, const std::string &line)
{
    std::map<std::string, std::string> req;
    if (!sweep::parseFlatJson(line, req)) {
        if (sm.protocolErrors)
            sm.protocolErrors->inc();
        sweep::JsonObject o;
        o.add("ev", "error").add("reason", "malformed request");
        send(s, o.str());
        return;
    }
    std::string cmd = field(req, "cmd");
    if (cmd == "hello") {
        sweep::JsonObject o;
        o.add("ev", "hello")
            .add("proto", static_cast<uint64_t>(protocol_version))
            .add("slots", static_cast<uint64_t>(opts.slots))
            .add("isolate", opts.isolate)
            .add("cache_dir", opts.cacheDir)
            .add("cache_size", static_cast<uint64_t>(cache->size()))
            .add("scale", opts.defaultScale);
        send(s, o.str());
    } else if (cmd == "ping") {
        sweep::JsonObject o;
        o.add("ev", "pong");
        send(s, o.str());
    } else if (cmd == "stats") {
        refreshSnapshotGauges();
        sweep::JsonObject o;
        o.add("ev", "stats")
            .add("clients", static_cast<uint64_t>(sessions.size()))
            .add("total_clients", totalSessions)
            .add("executed", executedRuns)
            .add("cache_hits", cacheHitRuns)
            .add("deduped", dedupedRuns)
            .add("queued", static_cast<uint64_t>(sched.queued()))
            .add("running", static_cast<uint64_t>(sched.running()))
            .add("cache_size", static_cast<uint64_t>(cache->size()))
            .add("slots", static_cast<uint64_t>(opts.slots))
            .add("draining", draining);
        // The full registry snapshot rides along: every metric name
        // is cwsimd_/cwsim_-prefixed, so the legacy keys above stay
        // collision-free.
        send(s, mergeJson(o.str(), metrics.flatJson()));
    } else if (cmd == "corpus") {
        // The whole shared corpus, one record per event — what
        // `cwsim-report --connect` renders from.
        uint64_t count = 0;
        cache->forEach([&](uint64_t fp, uint64_t scale,
                           const harness::RunResult &r) {
            sweep::JsonObject env;
            env.add("ev", "corpus_record");
            send(s, mergeJson(env.str(),
                              sweep::runRecordLine(r, fp, scale)));
            ++count;
        });
        sweep::JsonObject o;
        o.add("ev", "corpus_done").add("count", count);
        send(s, o.str());
    } else if (cmd == "submit") {
        handleSubmit(s, req);
    } else if (cmd == "shutdown") {
        // Same path as SIGTERM: drain, then the final shutdown event.
        requestStop();
    } else {
        if (sm.protocolErrors)
            sm.protocolErrors->inc();
        sweep::JsonObject o;
        o.add("ev", "error")
            .add("reason", strfmt("unknown cmd '%s'", cmd.c_str()));
        send(s, o.str());
    }
}

void
Server::reapDeadSessions()
{
    for (auto it = sessions.begin(); it != sessions.end();) {
        if (!it->second.dead) {
            ++it;
            continue;
        }
        // The client's units become orphans and still execute; only
        // the subscriptions die with the session.
        logLine(it->second.id, "disconnected");
        sched.dropClient(it->second.id);
        ::close(it->second.fd);
        it = sessions.erase(it);
        if (sm.sessionsOpen)
            sm.sessionsOpen->set(static_cast<double>(sessions.size()));
    }
}

int
Server::run()
{
    std::vector<struct pollfd> pfds;
    char buf[65536];
    for (;;) {
        // A drain is complete once every admitted run has finished —
        // orphans included, so a SIGTERM never discards paid-for work.
        if (draining && sched.queued() == 0 && sched.running() == 0 &&
            (!pool || pool->idle())) {
            for (auto &[fd, s] : sessions) {
                sweep::JsonObject o;
                o.add("ev", "shutdown");
                send(s, o.str());
                // Final flush: switch to blocking so the goodbye
                // cannot be lost to one EAGAIN.
                int flags = ::fcntl(fd, F_GETFL, 0);
                ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
                flushSession(s);
                ::close(fd);
            }
            sessions.clear();
            if (sm.sessionsOpen)
                sm.sessionsOpen->set(0);
            // Final telemetry: one last exposition dump and the
            // trace-event array's closing bracket.
            if (!opts.metricsPath.empty())
                dumpMetricsFile();
            if (trace)
                trace->finish();
            // The address dies with the service, not the process: a
            // supervisor polling the path sees the drain finish even
            // though the Server object lingers.
            closeFd(unixFd);
            closeFd(tcpFd);
            ::unlink(opts.socketPath.c_str());
            return 0;
        }

        dispatchReady();

        pfds.clear();
        pfds.push_back({stopRd, POLLIN, 0});
        if (!draining) {
            if (unixFd >= 0)
                pfds.push_back({unixFd, POLLIN, 0});
            if (tcpFd >= 0)
                pfds.push_back({tcpFd, POLLIN, 0});
        }
        size_t sessionsAt = pfds.size();
        for (auto &[fd, s] : sessions) {
            short events = POLLIN;
            if (!s.outBuf.empty())
                events |= POLLOUT;
            pfds.push_back({fd, events, 0});
        }
        size_t poolAt = pfds.size();
        if (pool)
            pool->addPollFds(pfds);

        int timeout = -1;
        if (pool)
            timeout = pool->timeoutMs();
        else if (sched.queued() > 0)
            timeout = 0; // inline executor has work now
        if (!opts.metricsPath.empty()) {
            // Wake in time for the next metrics-file dump too.
            int dumpMs = static_cast<int>(std::max(
                0.0, elapsedMs(std::chrono::steady_clock::now(),
                               nextMetricsDump)));
            timeout = timeout < 0 ? dumpMs + 1
                                  : std::min(timeout, dumpMs + 1);
        }

        int rc = ::poll(pfds.data(), pfds.size(), timeout);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            panic("cwsimd: poll failed (%s)", std::strerror(errno));
        }

        if (pfds[0].revents & POLLIN) {
            while (::read(stopRd, buf, sizeof(buf)) > 0) {
            }
            if (!draining) {
                draining = true;
                closeFd(unixFd);
                closeFd(tcpFd);
                logLine(0, strfmt("drain requested; listeners closed, "
                                  "%zu run(s) still in flight",
                                  sched.queued() + sched.running()));
            }
        }
        if (!draining) {
            for (size_t i = 1; i < sessionsAt; ++i) {
                if (pfds[i].revents & POLLIN)
                    acceptPending(pfds[i].fd);
            }
        }

        // Sessions: read requests, resume stalled writes. Handle by
        // fd lookup — a session may have died earlier this round.
        for (size_t i = sessionsAt; i < poolAt; ++i) {
            auto it = sessions.find(pfds[i].fd);
            if (it == sessions.end())
                continue;
            Session &s = it->second;
            if (pfds[i].revents & POLLOUT)
                flushSession(s);
            if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            for (;;) {
                ssize_t n = ::read(s.fd, buf, sizeof(buf));
                if (n > 0) {
                    s.inBuf.append(buf, static_cast<size_t>(n));
                    continue;
                }
                if (n < 0 && errno == EINTR)
                    continue;
                if (n < 0 &&
                    (errno == EAGAIN || errno == EWOULDBLOCK)) {
                    break;
                }
                s.dead = true; // EOF or hard error
                break;
            }
            std::string line;
            while (!s.dead && takeLine(s.inBuf, line)) {
                if (line.size() > max_request_line) {
                    if (sm.protocolErrors)
                        sm.protocolErrors->inc();
                    sweep::JsonObject o;
                    o.add("ev", "error")
                        .add("reason", "request line too long");
                    send(s, o.str());
                    s.dead = true;
                    break;
                }
                if (!trim(line).empty())
                    handleLine(s, line);
            }
            // An unterminated line beyond the cap is the same
            // violation as an oversized one — don't buffer it forever.
            if (!s.dead && s.inBuf.size() > max_request_line) {
                if (sm.protocolErrors)
                    sm.protocolErrors->inc();
                sweep::JsonObject o;
                o.add("ev", "error")
                    .add("reason", "request line too long");
                send(s, o.str());
                s.dead = true;
            }
        }

        if (pool) {
            for (sweep::IsolatePool::Done &d : pool->service()) {
                ExecInfo info{d.slot, d.queueMs, d.execMs};
                finishUnit(d.token, d.result, d.intervalLines, info);
            }
        } else {
            runInlineUnit();
        }

        if (!opts.metricsPath.empty() &&
            std::chrono::steady_clock::now() >= nextMetricsDump) {
            dumpMetricsFile();
            nextMetricsDump =
                std::chrono::steady_clock::now() +
                std::chrono::microseconds(static_cast<int64_t>(
                    opts.metricsPeriodSec * 1e6));
        }

        reapDeadSessions();
    }
}

} // namespace svc
} // namespace cwsim
