/**
 * @file
 * The cwsimd server: one process, one poll(2) loop, many tenants.
 *
 * Architecture — a single-threaded event loop multiplexing four fd
 * classes:
 *
 *   - a self-pipe, written by requestStop() (the SIGTERM handler in
 *     tools/cwsimd.cc), turning signals into poll wakeups
 *   - the listeners: a Unix-domain socket, plus an optional loopback
 *     TCP port for remote clients
 *   - client sessions: buffered line-delimited JSON (svc/protocol.hh),
 *     non-blocking both ways, with a hard output-backlog cap so one
 *     stalled reader cannot wedge the server
 *   - the IsolatePool's child pipes: every admitted run executes in a
 *     forked worker slot (sweep/isolate.hh), so a crashing, hanging,
 *     or OOMing simulation is classified into the failure taxonomy
 *     and answered like any other result — the daemon itself never
 *     dies of a bad run
 *
 * Shared corpus: all results land in one flock-guarded run cache
 * (sweep/run_cache.hh). A submit is served from three tiers — the
 * cache (completed earlier, by anyone), the scheduler (currently
 * queued/running for another client: the submit subscribes instead of
 * re-running), or a fresh worker slot.
 *
 * Drain semantics: SIGTERM (or a shutdown request) closes the
 * listeners and rejects new submits, but every admitted run finishes
 * and is delivered; then each session gets a final shutdown event and
 * run() returns. Orphaned work (client gone mid-sweep) finishes too —
 * its results belong to the corpus, not the departed client.
 *
 * The executor can also run inline (opts.isolate = false): queued
 * units execute one per loop iteration on the server thread through
 * the ordinary fail-soft Runner. That trades crash containment and
 * parallelism for determinism and speed — it exists for tests and
 * single-user setups; interval streaming requires the isolated
 * executor.
 */

#ifndef CWSIM_SVC_SERVER_HH
#define CWSIM_SVC_SERVER_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "harness/harness.hh"
#include "obs/metrics.hh"
#include "obs/spans.hh"
#include "svc/scheduler.hh"
#include "svc/spec.hh"
#include "sweep/isolate.hh"
#include "sweep/run_cache.hh"

namespace cwsim
{
namespace svc
{

struct ServerOptions
{
    /** Unix-domain socket path (required). */
    std::string socketPath;
    /** Loopback TCP port (0 = Unix socket only). */
    uint16_t tcpPort = 0;
    /** Shared run-cache directory. */
    std::string cacheDir = ".cwsim-cache";
    /** Default dynamic-instruction scale for specs that omit one. */
    uint64_t defaultScale = 0; ///< 0 = harness::benchScale().

    /** Worker slots (isolated child processes). */
    unsigned slots = 1;
    /** Execute runs in forked slots (false = inline, for tests). */
    bool isolate = true;
    double timeoutSec = 0;
    uint64_t memLimitMb = 0;
    unsigned retries = 1;

    SchedulerLimits limits;
    /** Output backlog cap per session before it is dropped. */
    size_t maxOutBuf = 64 * 1024 * 1024;

    /**
     * Periodically dump the metrics registry as Prometheus text
     * exposition to this path (written atomically via rename), for
     * file-based scrapers. Empty = off.
     */
    std::string metricsPath;
    /** Seconds between metrics-file dumps. */
    double metricsPeriodSec = 5;
    /**
     * Emit per-run lifecycle spans as Chrome trace-event JSON to this
     * path (finalized at drain; loadable in Perfetto). Empty = off.
     */
    std::string traceEventsPath;
};

class Server
{
  public:
    explicit Server(ServerOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the listeners, open the cache, arm the self-pipe. False
     * with @p err set when a socket cannot be bound.
     */
    bool start(std::string *err);

    /**
     * Serve until a stop request has drained: accept sessions, admit
     * sweeps, execute runs, stream results. Returns the process exit
     * code (0 on clean drain).
     */
    int run();

    /**
     * Begin a graceful drain. Async-signal-safe (one write(2) to the
     * self-pipe) and thread-safe — THE one method another thread or a
     * signal handler may call while run() is live.
     */
    void requestStop();

  private:
    struct SweepProgress
    {
        uint64_t total = 0;
        uint64_t delivered = 0;
        uint64_t failed = 0;   ///< Unexpected failures (campaign).
        uint64_t injected = 0; ///< Armed host-fault deaths.
    };

    struct Session
    {
        uint64_t id = 0;
        int fd = -1;
        std::string inBuf;
        std::string outBuf;
        bool dead = false;
        std::map<std::string, SweepProgress> sweeps;
    };

    /** How a unit actually executed, for telemetry and the
     * queue/execute wallMs split (pool- or inline-observed). */
    struct ExecInfo
    {
        unsigned slot = 0;  ///< Worker slot (0 for inline).
        double queueMs = 0; ///< Executor-side queue wait.
        double execMs = 0;  ///< Parent-observed execute time.
    };

    harness::Runner &runnerFor(uint64_t scale);
    void acceptPending(int listenFd);
    void handleLine(Session &s, const std::string &line);
    void handleSubmit(Session &s,
                      const std::map<std::string, std::string> &req);
    void deliverRecord(Session &s, const RunRef &ref,
                       const harness::RunResult &r, uint64_t fp,
                       uint64_t scale);
    void finishUnit(uint64_t key, harness::RunResult r,
                    const std::vector<std::string> &intervalLines,
                    const ExecInfo &info);
    void dispatchReady();
    void runInlineUnit();
    void send(Session &s, const std::string &line);
    void flushSession(Session &s);
    void reapDeadSessions();
    Session *sessionByClient(uint64_t client);
    void registerMetrics();
    void refreshSnapshotGauges();
    void dumpMetricsFile();
    void emitRunSpans(const RunUnit &unit, const harness::RunResult &r,
                      const ExecInfo &info,
                      const std::vector<RunRef> &refs);

    ServerOptions opts;
    std::unique_ptr<sweep::RunCache> cache;
    Scheduler sched;
    std::unique_ptr<sweep::IsolatePool> pool;
    std::map<uint64_t, std::unique_ptr<harness::Runner>> runners;
    std::map<int, Session> sessions; ///< By fd.
    int unixFd = -1;
    int tcpFd = -1;
    int stopRd = -1;
    int stopWr = -1;
    bool draining = false;
    uint64_t nextClientId = 1;

    // Counters surfaced by the stats event (the legacy flat fields;
    // the metrics registry below is the richer superset).
    uint64_t executedRuns = 0;
    uint64_t cacheHitRuns = 0;
    uint64_t dedupedRuns = 0;
    uint64_t totalSessions = 0;

    // Telemetry: the registry snapshot rides in every stats event and
    // in --metrics-file dumps; spans go to --trace-events.
    obs::MetricsRegistry metrics;
    std::unique_ptr<obs::TraceEventWriter> trace;
    std::chrono::steady_clock::time_point startedAt;
    std::chrono::steady_clock::time_point nextMetricsDump;

    /** Hot-path metric handles, registered once in start(). */
    struct
    {
        obs::Counter *sessions = nullptr;
        obs::Gauge *sessionsOpen = nullptr;
        obs::Counter *submits = nullptr;
        obs::Counter *submitsAccepted = nullptr;
        obs::Counter *runsAdmitted = nullptr;
        obs::Counter *dedupeHits = nullptr;
        obs::Counter *cacheHits = nullptr;
        obs::Counter *executed = nullptr;
        obs::Counter *backlogDrops = nullptr;
        obs::Counter *protocolErrors = nullptr;
        obs::Histogram *runLatency = nullptr;
        obs::Gauge *cacheSize = nullptr;
        obs::Gauge *uptimeMs = nullptr;
        obs::Counter *depprofRuns = nullptr;
        obs::Counter *depprofEdges = nullptr;
        obs::Gauge *depprofLastEdges = nullptr;
    } sm;
};

} // namespace svc
} // namespace cwsim

#endif // CWSIM_SVC_SERVER_HH
