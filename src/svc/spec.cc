#include "svc/spec.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "base/sim_error.hh"
#include "base/str.hh"
#include "sim/config_parse.hh"
#include "workloads/workload.hh"

namespace cwsim
{
namespace svc
{

namespace
{

std::string
field(const std::map<std::string, std::string> &fields,
      const char *key)
{
    auto it = fields.find(key);
    return it == fields.end() ? std::string() : it->second;
}

bool
parseU64(const std::string &text, uint64_t &out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    return *end == '\0' && errno != ERANGE;
}

/**
 * Resolve a workloads selector ("all"/"int"/"fp"/comma list of
 * full or short names) into full names in suite order.
 */
bool
resolveWorkloads(const std::string &selector, const std::string &filter,
                 std::vector<std::string> &out, std::string &err)
{
    const std::vector<std::string> &all = workloads::allNames();
    std::vector<std::string> picked;
    std::string sel = trim(selector);
    if (sel.empty() || sel == "all") {
        picked = all;
    } else if (sel == "int") {
        picked = workloads::intNames();
    } else if (sel == "fp") {
        picked = workloads::fpNames();
    } else {
        // Comma list of full ("129.compress") or short ("129") names;
        // results keep suite order regardless of list order.
        std::vector<std::string> wanted;
        for (const std::string &raw : split(sel, ',')) {
            std::string tok = trim(raw);
            if (tok.empty())
                continue;
            auto match = std::find_if(
                all.begin(), all.end(), [&](const std::string &name) {
                    return name == tok ||
                           name.substr(0, name.find('.')) == tok;
                });
            if (match == all.end()) {
                err = strfmt("unknown workload '%s'", tok.c_str());
                return false;
            }
            wanted.push_back(*match);
        }
        for (const std::string &name : all) {
            if (std::find(wanted.begin(), wanted.end(), name) !=
                wanted.end()) {
                picked.push_back(name);
            }
        }
    }

    for (const std::string &name : picked) {
        if (filter.empty() ||
            name.find(filter) != std::string::npos) {
            out.push_back(name);
        }
    }
    if (out.empty()) {
        err = filter.empty()
            ? "no workloads selected"
            : strfmt("no workload matches filter '%s'",
                     filter.c_str());
        return false;
    }
    return true;
}

/**
 * Apply one ','-separated override set on top of the default machine.
 * config_parse treats bad keys/values as user errors (fatal()); the
 * error trap converts those into a SimError this catches, so a bogus
 * spec is a rejection, not a dead server.
 */
bool
buildConfig(const std::string &overrides, const std::string &extra,
            SimConfig &out, std::string &err)
{
    try {
        ScopedErrorTrap trap;
        SimConfig cfg;
        for (const std::string &raw : split(overrides, ',')) {
            std::string opt = trim(raw);
            if (!opt.empty())
                applyConfigOption(cfg, opt);
        }
        for (const std::string &raw : split(extra, ',')) {
            std::string opt = trim(raw);
            if (!opt.empty())
                applyConfigOption(cfg, opt);
        }
        out = cfg;
        return true;
    } catch (const SimError &e) {
        err = e.summary();
        return false;
    }
}

} // anonymous namespace

std::vector<sweep::SweepJob>
SweepSpec::jobs() const
{
    std::vector<sweep::SweepJob> list;
    list.reserve(runCount());
    for (const std::string &w : workloads) {
        for (const SimConfig &cfg : configs)
            list.push_back({w, cfg});
    }
    return list;
}

bool
parseSweepSpec(const std::map<std::string, std::string> &fields,
               SweepSpec &out, std::string &err)
{
    SweepSpec spec;
    spec.id = field(fields, "id");
    if (spec.id.empty()) {
        err = "submit requires an id";
        return false;
    }

    std::string selector = field(fields, "workloads");
    std::string configsText = field(fields, "configs");
    std::string preset = field(fields, "preset");
    if (!preset.empty()) {
        if (preset == "fig2") {
            // The paper's Figure 2 matrix: naive speculation (NAV)
            // against the no-speculation and oracle bounds, all under
            // the NAS LSQ model — byte-identical fingerprints to
            // bench/fig2_naive_speculation.
            if (selector.empty())
                selector = "all";
            configsText = "mdp.lsqModel=NAS,mdp.policy=NO;"
                          "mdp.lsqModel=NAS,mdp.policy=ORACLE;"
                          "mdp.lsqModel=NAS,mdp.policy=NAV";
        } else {
            err = strfmt("unknown preset '%s'", preset.c_str());
            return false;
        }
    }

    std::string scaleText = field(fields, "scale");
    if (!scaleText.empty()) {
        if (!parseU64(scaleText, spec.scale) || spec.scale < 1000) {
            err = strfmt("bad scale '%s' (minimum 1000)",
                         scaleText.c_str());
            return false;
        }
    }
    std::string intervalText = field(fields, "interval");
    if (!intervalText.empty() &&
        !parseU64(intervalText, spec.intervalCycles)) {
        err = strfmt("bad interval '%s'", intervalText.c_str());
        return false;
    }

    if (!resolveWorkloads(selector, field(fields, "filter"),
                          spec.workloads, err)) {
        return false;
    }

    std::string extra = field(fields, "set");
    std::vector<std::string> sets = split(configsText, ';');
    if (trim(configsText).empty())
        sets = {""}; // one default-machine config
    for (const std::string &overrides : sets) {
        SimConfig cfg;
        if (!buildConfig(overrides, extra, cfg, err))
            return false;
        spec.configs.push_back(cfg);
    }

    out = std::move(spec);
    return true;
}

} // namespace svc
} // namespace cwsim
