/**
 * @file
 * Sweep specifications: the request-side description of a (workload,
 * config) matrix, as carried by a submit request.
 *
 * A spec is deliberately reconstructive, not serialized state: it
 * names workloads and describes each config as a set of
 * config_parse.hh overrides applied to the default machine, so the
 * server rebuilds exactly the SimConfig a bench CLI would have built —
 * and therefore the same fingerprints, making the shared run cache hit
 * across clients, benches, and daemon restarts.
 *
 * Submit request fields (all optional except id):
 *
 *   id         client-chosen sweep identifier, echoed in every event
 *   preset     named plan: "fig2" = the paper's Figure 2 matrix
 *              (NO / ORACLE / NAV under NAS) over all workloads
 *   workloads  "all" (default), "int", "fp", or comma-separated
 *              full/short names ("129.compress,126" works)
 *   filter     keep only workloads whose name contains this substring
 *   scale      dynamic-instruction target (default: the server's)
 *   configs    ';'-separated override sets, each a ','-separated list
 *              of key=value options ("mdp.policy=NO,core.windowSize=64;
 *              mdp.policy=SYNC"); empty = one default config
 *   set        extra overrides appended to EVERY config (the bench
 *              CLI's --set)
 *   interval   sample interval stats every N cycles and stream them
 *              back (0 = off; isolated executor only)
 *
 * Jobs expand workload-major — for each workload, every config in
 * order — matching how the fig benches enqueue their plans.
 */

#ifndef CWSIM_SVC_SPEC_HH
#define CWSIM_SVC_SPEC_HH

#include <map>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sweep/sweep.hh"

namespace cwsim
{
namespace svc
{

struct SweepSpec
{
    std::string id;
    uint64_t scale = 0; ///< 0 = use the server's default scale.
    uint64_t intervalCycles = 0;
    /** Resolved full workload names, suite order. */
    std::vector<std::string> workloads;
    /** One entry per config: the SimConfig plus its override text. */
    std::vector<SimConfig> configs;

    /** The expanded job list, workload-major. */
    std::vector<sweep::SweepJob> jobs() const;
    size_t runCount() const
    {
        return workloads.size() * configs.size();
    }
};

/**
 * Build a SweepSpec from a parsed submit request. Config overrides are
 * applied fail-soft: a bad key or value makes this return false with a
 * one-line @p err instead of killing the process (the parser's
 * fatal() is trapped), so a hostile or buggy client costs the server
 * one rejected event, nothing more.
 */
bool parseSweepSpec(const std::map<std::string, std::string> &fields,
                    SweepSpec &out, std::string &err);

} // namespace svc
} // namespace cwsim

#endif // CWSIM_SVC_SPEC_HH
