#include "sweep/bench_cli.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "base/logging.hh"
#include "base/str.hh"

namespace cwsim
{
namespace sweep
{

namespace
{

void
printUsage(const char *prog)
{
    std::printf(
        "usage: %s [options]\n"
        "  --jobs N       worker threads (default: CWSIM_JOBS env, "
        "else hardware threads)\n"
        "  --scale N      dynamic-instruction target per workload "
        "(min 1000)\n"
        "  --filter SUB   only workloads whose name contains SUB\n"
        "  --json PATH    append one JSONL record per run to PATH\n"
        "  --no-cache     bypass the on-disk run cache\n"
        "  --cache-dir D  run-cache directory (default .cwsim-cache)\n"
        "  --help         this message\n",
        prog);
}

uint64_t
parseCount(const char *flag, const std::string &value, uint64_t min)
{
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    fatal_if(value.empty() || *end != '\0' || errno == ERANGE,
             "%s: not an unsigned integer: '%s'", flag, value.c_str());
    fatal_if(v < min, "%s: must be >= %llu (got %llu)", flag,
             static_cast<unsigned long long>(min), v);
    return v;
}

} // anonymous namespace

BenchOptions
parseBenchArgs(int argc, char **argv, uint64_t defaultScale)
{
    BenchOptions opts;
    opts.scale = defaultScale ? defaultScale : harness::benchScale();

    auto value = [&](int &i, const char *flag) -> std::string {
        fatal_if(i + 1 >= argc, "%s requires a value", flag);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs" || arg == "-j") {
            opts.jobs = static_cast<unsigned>(
                parseCount("--jobs", value(i, "--jobs"), 1));
        } else if (arg == "--scale") {
            opts.scale =
                parseCount("--scale", value(i, "--scale"), 1000);
        } else if (arg == "--filter") {
            opts.filter = value(i, "--filter");
        } else if (arg == "--json") {
            opts.jsonPath = value(i, "--json");
        } else if (arg == "--no-cache") {
            opts.cache = false;
        } else if (arg == "--cache-dir") {
            opts.cacheDir = value(i, "--cache-dir");
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            std::exit(0);
        } else {
            fatal("unknown option '%s' (see --help)", arg.c_str());
        }
    }
    return opts;
}

std::vector<std::string>
filterNames(const std::vector<std::string> &names,
            const std::string &filter)
{
    if (filter.empty())
        return names;
    std::vector<std::string> out;
    for (const auto &name : names) {
        if (name.find(filter) != std::string::npos)
            out.push_back(name);
    }
    return out;
}

BenchCli::BenchCli(int argc, char **argv, uint64_t defaultScale)
    : opts(parseBenchArgs(argc, argv, defaultScale))
{
    theRunner = std::make_unique<harness::Runner>(opts.scale);
    SweepOptions sopts;
    sopts.jobs = opts.jobs;
    sopts.useCache = opts.cache;
    sopts.cacheDir = opts.cacheDir;
    sopts.jsonPath = opts.jsonPath;
    theEngine = std::make_unique<SweepEngine>(*theRunner, sopts);
}

int
BenchCli::finish()
{
    inform("sweep: %llu run(s) simulated, %llu served from cache, "
           "%u worker(s)",
           static_cast<unsigned long long>(theEngine->timingRuns()),
           static_cast<unsigned long long>(theEngine->cacheHits()),
           theEngine->workers());
    return harness::reportFailures(*theRunner) ? 1 : 0;
}

} // namespace sweep
} // namespace cwsim
