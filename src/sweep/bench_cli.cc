#include "sweep/bench_cli.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "base/logging.hh"
#include "base/str.hh"
#include "obs/cpi_stack.hh"
#include "obs/depprof.hh"
#include "obs/trace.hh"
#include "sim/config_parse.hh"
#include "sim/table.hh"
#include "sweep/report.hh"
#include "sweep/run_cache.hh"

namespace cwsim
{
namespace sweep
{

namespace
{

void
printUsage(const char *prog, std::FILE *out)
{
    // One row per flag: description, then the environment-variable
    // equivalent ("-" when the flag has none). Keep this table in sync
    // with the parser below and the header comment.
    struct FlagHelp
    {
        const char *flag;
        const char *desc;
        const char *env;
    };
    static const FlagHelp flags[] = {
        {"--jobs N", "worker threads (default: all hardware threads)",
         "CWSIM_JOBS"},
        {"--scale N",
         "dynamic-instruction target per workload (min 1000)",
         "CWSIM_SCALE"},
        {"--filter SUB", "only workloads whose name contains SUB",
         "-"},
        {"--json PATH", "append one JSONL record per run to PATH",
         "-"},
        {"--no-cache", "bypass the on-disk run cache", "-"},
        {"--cache-dir D", "run-cache directory (default .cwsim-cache)",
         "CWSIM_CACHE_DIR"},
        {"--trace=FLAGS",
         "enable trace flags (e.g. MDP,Recovery or all)",
         "CWSIM_TRACE"},
        {"--trace-file P", "trace output path (default stderr)",
         "CWSIM_TRACE_FILE"},
        {"--pipeview P",
         "O3PipeView pipeline-trace path (use --jobs 1)",
         "CWSIM_PIPEVIEW"},
        {"--interval N", "sample interval stats every N cycles",
         "CWSIM_INTERVAL"},
        {"--interval-file P", "interval-stats JSONL path",
         "CWSIM_INTERVAL_FILE"},
        {"--depprof",
         "collect per-static-PC dependence profiles (JSONL)",
         "CWSIM_DEPPROF"},
        {"--depprof-file P",
         "dependence-profile path (implies --depprof)",
         "CWSIM_DEPPROF"},
        {"--cpi-stack",
         "print the per-run CPI stack (commit-slot losses)",
         "CWSIM_CPI_STACK"},
        {"--isolate",
         "sandbox each run in a child process (contain crashes)",
         "CWSIM_ISOLATE"},
        {"--timeout S",
         "wall-clock deadline per isolated run, seconds (0 = none)",
         "CWSIM_TIMEOUT"},
        {"--mem-limit MB",
         "address-space cap per isolated run, MiB (0 = none)",
         "CWSIM_MEM_LIMIT"},
        {"--retries N",
         "retries for host-level failures of an isolated run",
         "CWSIM_RETRIES"},
        {"--set K=V",
         "apply a config override to every job (repeatable)", "-"},
        {"--cache-fsck", "scan the run cache, report, and exit", "-"},
        {"--cache-compact",
         "drop superseded run-cache records and exit", "-"},
        {"--help", "this message", "-"},
    };
    std::fprintf(out, "usage: %s [options]\n", prog);
    std::fprintf(out, "  %-18s %-53s %s\n", "flag", "description",
                 "env equivalent");
    for (const FlagHelp &f : flags)
        std::fprintf(out, "  %-18s %-53s %s\n", f.flag, f.desc, f.env);
    std::fprintf(out, "Value-taking flags also accept --flag=value.\n");
}

uint64_t
parseCount(const char *flag, const std::string &value, uint64_t min)
{
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    fatal_if(value.empty() || *end != '\0' || errno == ERANGE,
             "%s: not an unsigned integer: '%s'", flag, value.c_str());
    fatal_if(v < min, "%s: must be >= %llu (got %llu)", flag,
             static_cast<unsigned long long>(min), v);
    return v;
}

double
parseSeconds(const char *flag, const std::string &value)
{
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    fatal_if(value.empty() || *end != '\0' || errno == ERANGE ||
             !(v >= 0),
             "%s: not a non-negative number of seconds: '%s'", flag,
             value.c_str());
    return v;
}

/** CWSIM_TIMEOUT-style fractional-seconds env knob. */
double
envSeconds(const char *name, double fallback)
{
    const char *text = std::getenv(name);
    if (!text || !*text)
        return fallback;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text, &end);
    if (*end != '\0' || errno == ERANGE || !(v >= 0)) {
        warn("%s: not a non-negative number: '%s' (using %g)", name,
             text, fallback);
        return fallback;
    }
    return v;
}

} // anonymous namespace

BenchOptions
parseBenchArgs(int argc, char **argv, uint64_t defaultScale)
{
    BenchOptions opts;
    opts.scale = defaultScale ? defaultScale : harness::benchScale();
    opts.cpiStack = envUint64("CWSIM_CPI_STACK", 0, 0) != 0;
    opts.isolate = envUint64("CWSIM_ISOLATE", 0, 0) != 0;
    opts.timeoutSec = envSeconds("CWSIM_TIMEOUT", 0);
    opts.memLimitMb = envUint64("CWSIM_MEM_LIMIT", 0, 0);
    opts.retries = static_cast<unsigned>(
        envUint64("CWSIM_RETRIES", 0, 1));
    // A shared corpus (ROADMAP item 1): point every bench and the
    // cwsimd daemon at one cache directory without threading a flag
    // through each invocation. --cache-dir still overrides.
    if (const char *dir = std::getenv("CWSIM_CACHE_DIR");
        dir && *dir) {
        opts.cacheDir = dir;
    }

    // Every value-taking flag accepts both "--flag value" and
    // "--flag=value" (the latter is how --trace=MDP,Recovery reads
    // naturally).
    bool has_inline = false;
    std::string inline_value;
    auto value = [&](int &i, const char *flag) -> std::string {
        if (has_inline)
            return inline_value;
        fatal_if(i + 1 >= argc, "%s requires a value", flag);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        size_t eq = arg.find('=');
        has_inline = startsWith(arg, "--") && eq != std::string::npos;
        if (has_inline) {
            inline_value = arg.substr(eq + 1);
            arg.erase(eq);
        }
        if (arg == "--jobs" || arg == "-j") {
            opts.jobs = static_cast<unsigned>(
                parseCount("--jobs", value(i, "--jobs"), 1));
        } else if (arg == "--scale") {
            opts.scale =
                parseCount("--scale", value(i, "--scale"), 1000);
        } else if (arg == "--filter") {
            opts.filter = value(i, "--filter");
        } else if (arg == "--json") {
            opts.jsonPath = value(i, "--json");
        } else if (arg == "--no-cache") {
            opts.cache = false;
        } else if (arg == "--cache-dir") {
            opts.cacheDir = value(i, "--cache-dir");
        } else if (arg == "--trace") {
            opts.traceSpec = value(i, "--trace");
        } else if (arg == "--trace-file") {
            opts.traceFile = value(i, "--trace-file");
        } else if (arg == "--pipeview") {
            opts.pipeviewPath = value(i, "--pipeview");
        } else if (arg == "--interval") {
            opts.intervalCycles =
                parseCount("--interval", value(i, "--interval"), 1);
        } else if (arg == "--interval-file") {
            opts.intervalFile = value(i, "--interval-file");
        } else if (arg == "--depprof") {
            opts.depprof = true;
        } else if (arg == "--depprof-file") {
            opts.depprofFile = value(i, "--depprof-file");
            opts.depprof = true;
        } else if (arg == "--cpi-stack") {
            opts.cpiStack = true;
        } else if (arg == "--isolate") {
            opts.isolate = true;
        } else if (arg == "--timeout") {
            opts.timeoutSec =
                parseSeconds("--timeout", value(i, "--timeout"));
        } else if (arg == "--mem-limit") {
            opts.memLimitMb =
                parseCount("--mem-limit", value(i, "--mem-limit"), 0);
        } else if (arg == "--retries") {
            opts.retries = static_cast<unsigned>(
                parseCount("--retries", value(i, "--retries"), 0));
        } else if (arg == "--set") {
            // Validation happens when the override is applied (it
            // needs a config to apply to); a bad key is still fatal
            // before any simulation runs.
            opts.configOverrides.push_back(value(i, "--set"));
        } else if (arg == "--cache-fsck") {
            opts.cacheFsck = true;
        } else if (arg == "--cache-compact") {
            opts.cacheCompact = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0], stdout);
            std::exit(0);
        } else {
            // Mistyped flags are the most common bench-CLI mistake;
            // show the full usage so the fix is one screen away.
            printUsage(argv[0], stderr);
            fatal("unknown option '%s'", argv[i]);
        }
    }
    return opts;
}

std::vector<std::string>
filterNames(const std::vector<std::string> &names,
            const std::string &filter)
{
    if (filter.empty())
        return names;
    std::vector<std::string> out;
    for (const auto &name : names) {
        if (name.find(filter) != std::string::npos)
            out.push_back(name);
    }
    return out;
}

BenchCli::BenchCli(int argc, char **argv, uint64_t defaultScale)
    : opts(parseBenchArgs(argc, argv, defaultScale))
{
    // Tracing lands on the global TraceManager, never in SimConfig, so
    // the flags below cannot perturb run-cache fingerprints.
    obs::TraceManager &tm = obs::TraceManager::instance();
    if (!opts.traceSpec.empty()) {
        std::string err;
        fatal_if(!tm.configure(opts.traceSpec, &err), "--trace: %s",
                 err.c_str());
    }
    if (!opts.traceFile.empty())
        tm.setOutputPath(opts.traceFile);
    if (!opts.pipeviewPath.empty()) {
        fatal_if(!tm.setPipeViewPath(opts.pipeviewPath),
                 "--pipeview: cannot write %s",
                 opts.pipeviewPath.c_str());
    }
    if (opts.intervalCycles > 0)
        tm.setInterval(opts.intervalCycles, opts.intervalFile);

    // Dependence profiling follows the same contract: the state lives
    // on the global DepProfManager, never in SimConfig, so enabling it
    // cannot change fingerprints — and the collector only reads sim
    // state, so it cannot change results either. CWSIM_DEPPROF is
    // applied by the manager itself on first use; the flags override.
    if (opts.depprof)
        obs::DepProfManager::instance().enable(opts.depprofFile);

    // Cache maintenance short-circuits the bench entirely: report (or
    // rewrite) and exit before any workload is even built.
    if (opts.cacheFsck) {
        CacheFsckReport rep = fsckRunCache(opts.cacheDir);
        std::printf("%s\n", rep.summary().c_str());
        std::exit(rep.clean() ? 0 : 1);
    }
    if (opts.cacheCompact) {
        std::string err;
        CacheFsckReport rep;
        fatal_if(!compactRunCache(opts.cacheDir, &err, &rep),
                 "--cache-compact: %s", err.c_str());
        std::printf("%s\n", rep.summary().c_str());
        std::exit(0);
    }

    theRunner = std::make_unique<harness::Runner>(opts.scale);
    SweepOptions sopts;
    sopts.jobs = opts.jobs;
    sopts.useCache = opts.cache;
    sopts.cacheDir = opts.cacheDir;
    sopts.jsonPath = opts.jsonPath;
    sopts.isolate = opts.isolate;
    sopts.timeoutSec = opts.timeoutSec;
    sopts.memLimitMb = opts.memLimitMb;
    sopts.retries = opts.retries;
    theEngine = std::make_unique<SweepEngine>(*theRunner, sopts);
}

std::vector<harness::RunResult>
BenchCli::run(const SweepPlan &plan)
{
    // --set overrides rewrite every job's config before it runs. The
    // overridden config fingerprints differently, so cached results of
    // the unmodified sweep are untouched.
    const SweepPlan *effective = &plan;
    SweepPlan overridden;
    if (!opts.configOverrides.empty()) {
        for (const SweepJob &job : plan.jobs()) {
            SimConfig cfg = job.config;
            for (const std::string &o : opts.configOverrides)
                applyConfigOption(cfg, o);
            overridden.add(job.workload, std::move(cfg));
        }
        effective = &overridden;
    }

    std::vector<harness::RunResult> results =
        theEngine->run(*effective);
    if (!opts.cpiStack)
        return results;

    // Commit-slot loss breakdown, one row per run, in plan order (the
    // engine returns results in plan order at any --jobs count, so
    // this table is deterministic). Cache hits from a pre-v3 cache
    // have no accounting; render "n/a", never 0%.
    std::printf("\nCPI stack (%% of commit slots = cycles x width):\n");
    TextTable table;
    std::vector<std::string> header = {"workload", "config"};
    for (size_t i = 0; i < obs::num_cpi_causes; ++i)
        header.push_back(obs::toString(obs::CpiCause(i)));
    table.setHeader(header);
    for (const harness::RunResult &r : results) {
        std::vector<std::string> row = {r.workload, r.config};
        for (size_t i = 0; i < obs::num_cpi_causes; ++i) {
            row.push_back(harness::formatPct(
                r.cpiFraction(obs::CpiCause(i))));
        }
        table.addRow(row);
    }
    std::fputs(table.toString().c_str(), stdout);
    return results;
}

int
BenchCli::finish()
{
    inform("sweep: %llu run(s) simulated, %llu served from cache, "
           "%u worker(s)",
           static_cast<unsigned long long>(theEngine->timingRuns()),
           static_cast<unsigned long long>(theEngine->cacheHits()),
           theEngine->workers());
    if (theEngine->timingRuns() > 0 && theEngine->totalWallMs() > 0) {
        double secs = theEngine->totalWallMs() / 1000.0;
        inform("sweep: %.1fs of simulation wall time, %.0f sim "
               "cycles/sec aggregate",
               secs,
               static_cast<double>(theEngine->totalSimCycles()) /
                   secs);
    }
    return reportFailures(*theRunner) ? 1 : 0;
}

} // namespace sweep
} // namespace cwsim
