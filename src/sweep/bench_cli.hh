/**
 * @file
 * The shared command line of every bench binary. All figure/table
 * reproductions accept the same flags:
 *
 *   --jobs N        worker threads (default: CWSIM_JOBS env, else all
 *                   hardware threads)
 *   --scale N       dynamic-instruction target per workload (default:
 *                   the bench's own default, usually CWSIM_SCALE env
 *                   or 80000; minimum 1000)
 *   --filter SUB    only workloads whose full or short name contains
 *                   SUB (e.g. --filter compress, --filter 14)
 *   --json PATH     append one JSONL record per (workload, config)
 *                   run to PATH — machine-readable trajectory output
 *   --no-cache      ignore and don't write the on-disk run cache
 *   --cache-dir D   run-cache directory (default .cwsim-cache)
 *   --help          usage
 *
 * BenchCli bundles flag parsing with the Runner + SweepEngine setup
 * every bench repeats, so a bench main is: parse, build plan, run,
 * render tables, finish().
 */

#ifndef CWSIM_SWEEP_BENCH_CLI_HH
#define CWSIM_SWEEP_BENCH_CLI_HH

#include <memory>
#include <string>
#include <vector>

#include "harness/harness.hh"
#include "sweep/sweep.hh"

namespace cwsim
{
namespace sweep
{

struct BenchOptions
{
    uint64_t scale = 0;
    unsigned jobs = 0;
    std::string filter;
    bool cache = true;
    std::string cacheDir = ".cwsim-cache";
    std::string jsonPath;
};

/**
 * Parse the shared bench flags. @p defaultScale of 0 means
 * harness::benchScale() (the CWSIM_SCALE env or 80000). Unknown flags
 * are fatal; --help prints usage and exits 0.
 */
BenchOptions parseBenchArgs(int argc, char **argv,
                            uint64_t defaultScale = 0);

/** The subset of @p names matching @p filter (substring, "" = all). */
std::vector<std::string> filterNames(
    const std::vector<std::string> &names, const std::string &filter);

class BenchCli
{
  public:
    /**
     * Parse argv and stand up the Runner + SweepEngine. @p defaultScale
     * of 0 means harness::benchScale(); benches that historically ran
     * at benchScale()/2 pass that in and --scale still overrides.
     */
    BenchCli(int argc, char **argv, uint64_t defaultScale = 0);

    harness::Runner &runner() { return *theRunner; }
    SweepEngine &engine() { return *theEngine; }
    uint64_t scale() const { return opts.scale; }

    /** @p names filtered by --filter. */
    std::vector<std::string>
    names(const std::vector<std::string> &all) const
    {
        return filterNames(all, opts.filter);
    }

    /** Shorthand: run @p plan on the engine. */
    std::vector<harness::RunResult>
    run(const SweepPlan &plan)
    {
        return theEngine->run(plan);
    }

    /**
     * Report failures and a sweep summary (stderr, so stdout tables
     * stay byte-identical across --jobs values).
     * @return the bench's exit code: non-zero iff any run failed.
     */
    int finish();

  private:
    BenchOptions opts;
    std::unique_ptr<harness::Runner> theRunner;
    std::unique_ptr<SweepEngine> theEngine;
};

} // namespace sweep
} // namespace cwsim

#endif // CWSIM_SWEEP_BENCH_CLI_HH
