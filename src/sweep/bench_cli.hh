/**
 * @file
 * The shared command line of every bench binary. All figure/table
 * reproductions accept the same flags:
 *
 *   --jobs N        worker threads (default: CWSIM_JOBS env, else all
 *                   hardware threads)
 *   --scale N       dynamic-instruction target per workload (default:
 *                   the bench's own default, usually CWSIM_SCALE env
 *                   or 80000; minimum 1000)
 *   --filter SUB    only workloads whose full or short name contains
 *                   SUB (e.g. --filter compress, --filter 14)
 *   --json PATH     append one JSONL record per (workload, config)
 *                   run to PATH — machine-readable trajectory output
 *   --no-cache      ignore and don't write the on-disk run cache
 *   --cache-dir D   run-cache directory (default: CWSIM_CACHE_DIR
 *                   env, else .cwsim-cache) — point every bench and
 *                   the cwsimd daemon here to share one run corpus
 *   --trace=FLAGS   enable trace flags ("MDP,Recovery" or "all"; see
 *                   src/obs/trace.hh). Simulation results are
 *                   unaffected; output goes to stderr by default
 *   --trace-file P  write trace lines to P instead of stderr
 *   --pipeview P    write an O3PipeView/Konata pipeline trace to P
 *                   (use --jobs 1 for a single coherent timeline)
 *   --interval N    sample interval stats every N cycles (JSONL)
 *   --interval-file P  interval-stats path (default
 *                   cwsim-intervals.jsonl)
 *   --depprof       collect per-static-PC dependence profiles (see
 *                   src/obs/depprof.hh); simulation results are
 *                   unaffected, the profile goes to
 *                   cwsim.depprof.jsonl
 *   --depprof-file P  dependence-profile path (implies --depprof)
 *   --cpi-stack     print a per-(workload, config) CPI-stack table
 *                   (commit-slot loss breakdown) after the sweep
 *   --isolate       run each simulation in a sandboxed child process:
 *                   crashes, hangs, and OOMs are contained, classified
 *                   (FAILED RUNS kind column), and retried instead of
 *                   killing the bench (see src/sweep/isolate.hh)
 *   --timeout S     wall-clock deadline per isolated run, seconds
 *                   (fractional OK; 0 = none)
 *   --mem-limit MB  RLIMIT_AS cap per isolated run, MiB (0 = none)
 *   --retries N     retry budget for host-level failures of an
 *                   isolated run (default 1; sim_errors never retry)
 *   --set K=V       apply one config override (config_parse.hh key) to
 *                   every job of the sweep; repeatable
 *   --cache-fsck    scan the run cache, print a report, exit (0 iff
 *                   nothing but valid records)
 *   --cache-compact rewrite the run cache keeping only the newest
 *                   record per fingerprint, then exit
 *   --help          usage (lists each flag's env-var equivalent)
 *
 * Every value-taking flag also accepts --flag=value. Unknown flags
 * print the usage text and fail.
 *
 * BenchCli bundles flag parsing with the Runner + SweepEngine setup
 * every bench repeats, so a bench main is: parse, build plan, run,
 * render tables, finish().
 */

#ifndef CWSIM_SWEEP_BENCH_CLI_HH
#define CWSIM_SWEEP_BENCH_CLI_HH

#include <memory>
#include <string>
#include <vector>

#include "harness/harness.hh"
#include "sweep/sweep.hh"

namespace cwsim
{
namespace sweep
{

struct BenchOptions
{
    uint64_t scale = 0;
    unsigned jobs = 0;
    std::string filter;
    bool cache = true;
    std::string cacheDir = ".cwsim-cache";
    std::string jsonPath;

    // Tracing & instrumentation (applied to the global TraceManager by
    // BenchCli; deliberately not part of SimConfig, so enabling them
    // cannot change run-cache fingerprints).
    std::string traceSpec;     ///< --trace flag list ("" = off).
    std::string traceFile;     ///< --trace-file ("" = stderr).
    std::string pipeviewPath;  ///< --pipeview ("" = off).
    uint64_t intervalCycles = 0; ///< --interval (0 = off).
    std::string intervalFile;  ///< --interval-file ("" = default).
    bool depprof = false;      ///< --depprof / CWSIM_DEPPROF.
    std::string depprofFile;   ///< --depprof-file ("" = default path).

    /**
     * --cpi-stack (or CWSIM_CPI_STACK=1): print the per-run commit-slot
     * loss breakdown after each sweep. Pure output — accounting always
     * runs, so this cannot change results or fingerprints.
     */
    bool cpiStack = false;

    // Process isolation (see sweep/isolate.hh for semantics).
    bool isolate = false;     ///< --isolate / CWSIM_ISOLATE=1.
    double timeoutSec = 0;    ///< --timeout / CWSIM_TIMEOUT (seconds).
    uint64_t memLimitMb = 0;  ///< --mem-limit / CWSIM_MEM_LIMIT (MiB).
    unsigned retries = 1;     ///< --retries / CWSIM_RETRIES.

    /**
     * --set key=value overrides, applied in order to every job's
     * config before the sweep runs. Unlike tracing these DO change
     * run-cache fingerprints — an overridden run is a different run.
     */
    std::vector<std::string> configOverrides;

    // Run-cache maintenance actions: perform and exit, no sweep.
    bool cacheFsck = false;    ///< --cache-fsck.
    bool cacheCompact = false; ///< --cache-compact.
};

/**
 * Parse the shared bench flags. @p defaultScale of 0 means
 * harness::benchScale() (the CWSIM_SCALE env or 80000). Unknown flags
 * are fatal; --help prints usage and exits 0.
 */
BenchOptions parseBenchArgs(int argc, char **argv,
                            uint64_t defaultScale = 0);

/** The subset of @p names matching @p filter (substring, "" = all). */
std::vector<std::string> filterNames(
    const std::vector<std::string> &names, const std::string &filter);

class BenchCli
{
  public:
    /**
     * Parse argv and stand up the Runner + SweepEngine. @p defaultScale
     * of 0 means harness::benchScale(); benches that historically ran
     * at benchScale()/2 pass that in and --scale still overrides.
     */
    BenchCli(int argc, char **argv, uint64_t defaultScale = 0);

    harness::Runner &runner() { return *theRunner; }
    SweepEngine &engine() { return *theEngine; }
    uint64_t scale() const { return opts.scale; }

    /** @p names filtered by --filter. */
    std::vector<std::string>
    names(const std::vector<std::string> &all) const
    {
        return filterNames(all, opts.filter);
    }

    /** True when --cpi-stack (or CWSIM_CPI_STACK=1) was given. */
    bool cpiStackEnabled() const { return opts.cpiStack; }

    /**
     * Shorthand: run @p plan on the engine, with any --set overrides
     * applied to every job's config first; under --cpi-stack also
     * print the per-run commit-slot loss table for these results.
     */
    std::vector<harness::RunResult> run(const SweepPlan &plan);

    /**
     * Report failures and a sweep summary (stderr, so stdout tables
     * stay byte-identical across --jobs values).
     * @return the bench's exit code: non-zero iff any run failed
     * unexpectedly (injected host faults are contained, not counted).
     */
    int finish();

  private:
    BenchOptions opts;
    std::unique_ptr<harness::Runner> theRunner;
    std::unique_ptr<SweepEngine> theEngine;
};

} // namespace sweep
} // namespace cwsim

#endif // CWSIM_SWEEP_BENCH_CLI_HH
