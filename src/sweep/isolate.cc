#include "sweep/isolate.hh"

#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <new>
#include <thread>

#include "base/logging.hh"
#include "base/sim_error.hh"
#include "base/str.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sweep/jsonl.hh"
#include "sweep/run_cache.hh"

namespace cwsim
{
namespace sweep
{

namespace
{

using Clock = std::chrono::steady_clock;
using harness::FailKind;
using harness::RunResult;

// Reserved child exit codes. Anything else nonzero is a crash.
constexpr int exit_oom = 33;      ///< operator new failed (RLIMIT_AS).
constexpr int exit_uncaught = 34; ///< non-SimError exception escaped.

/**
 * Child-side prefix marking an interval-sample line on the result
 * pipe, so the parent can split samples from the final run record
 * without guessing.
 */
constexpr const char *interval_prefix = "#interval ";

const char *
signalName(int sig)
{
    switch (sig) {
      case SIGSEGV: return "SIGSEGV";
      case SIGABRT: return "SIGABRT";
      case SIGBUS:  return "SIGBUS";
      case SIGILL:  return "SIGILL";
      case SIGFPE:  return "SIGFPE";
      case SIGKILL: return "SIGKILL";
      case SIGTERM: return "SIGTERM";
      case SIGXCPU: return "SIGXCPU";
      default: return nullptr;
    }
}

bool
writePipeFully(int fd, const char *data, size_t len)
{
    while (len > 0) {
        ssize_t n = ::write(fd, data, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

/** Child-side: run the simulation and stream the record back. */
[[noreturn]] void
childMain(const IsolatePool::Task &task, const IsolateOptions &opts,
          int wfd)
{
    // Allocation failure (RLIMIT_AS, alloc storms) exits with the
    // reserved OOM code instead of an unclassifiable abort. The
    // handler must not allocate.
    std::set_new_handler([] { _exit(exit_oom); });

    if (opts.memLimitMb > 0) {
        rlim_t bytes =
            static_cast<rlim_t>(opts.memLimitMb) * 1024 * 1024;
        struct rlimit rl = {bytes, bytes};
        ::setrlimit(RLIMIT_AS, &rl);
    }
    if (opts.timeoutSec > 0) {
        // CPU-time backstop behind the parent's wall-clock deadline:
        // if the parent dies, a spinning child still gets SIGXCPU.
        rlim_t secs = static_cast<rlim_t>(
            std::ceil(opts.timeoutSec)) + 10;
        struct rlimit rl = {secs, secs};
        ::setrlimit(RLIMIT_CPU, &rl);
    }

    // Per-run interval sampling into a child-private temp file; the
    // lines are streamed back (prefixed) once the run's sampler has
    // closed it. Only this forked child sees the global reconfig.
    std::string interval_path;
    if (task.intervalCycles > 0) {
        interval_path = strfmt("%s/cwsim-iv-%d.jsonl", P_tmpdir,
                               static_cast<int>(::getpid()));
        obs::TraceManager::instance().setInterval(task.intervalCycles,
                                                  interval_path);
    }

    RunResult r;
    try {
        // SimErrors are caught inside run() (fail-soft) and travel in
        // the record; only host-level surprises reach the catches.
        r = task.runner->run(task.job.workload, task.job.config);
    } catch (const std::bad_alloc &) {
        _exit(exit_oom);
    } catch (...) {
        _exit(exit_uncaught);
    }

    if (!interval_path.empty()) {
        std::ifstream in(interval_path);
        std::string sample;
        while (in && std::getline(in, sample)) {
            if (sample.empty())
                continue;
            std::string line = interval_prefix + sample + "\n";
            if (!writePipeFully(wfd, line.data(), line.size()))
                _exit(exit_uncaught);
        }
        ::unlink(interval_path.c_str());
    }

    std::string line = runRecordLine(r, task.fp, task.runner->scale());
    line += '\n';
    if (!writePipeFully(wfd, line.data(), line.size()))
        _exit(exit_uncaught);
    _exit(0);
}

struct Classified
{
    FailKind kind = FailKind::None;
    std::string detail;
    RunResult parsed; ///< Valid only when kind is None or SimError.
    std::vector<std::string> intervalLines;
};

/**
 * Split a finished child's pipe bytes into interval-sample lines and
 * the run record (the first complete non-interval line).
 */
void
splitChildOutput(const std::string &buf, std::string &record,
                 std::vector<std::string> &intervals)
{
    size_t pos = 0;
    const std::string prefix = interval_prefix;
    while (pos < buf.size()) {
        size_t nl = buf.find('\n', pos);
        std::string line = buf.substr(
            pos, nl == std::string::npos ? std::string::npos
                                         : nl - pos);
        pos = nl == std::string::npos ? buf.size() : nl + 1;
        if (line.empty())
            continue;
        if (startsWith(line, prefix)) {
            intervals.push_back(line.substr(prefix.size()));
        } else if (record.empty()) {
            record = line;
        }
    }
}

Classified
classifyExit(const std::string &buf, bool killed, int status,
             const IsolateOptions &opts)
{
    Classified out;
    if (WIFEXITED(status)) {
        int code = WEXITSTATUS(status);
        if (code == 0) {
            std::string record;
            splitChildOutput(buf, record, out.intervalLines);
            std::map<std::string, std::string> fields;
            if (parseFlatJson(record, fields) &&
                runRecordParse(fields, out.parsed)) {
                out.kind = out.parsed.ok ? FailKind::None
                                         : FailKind::SimError;
                return out;
            }
            out.kind = FailKind::Protocol;
            out.detail = buf.empty() ? "empty record"
                                     : "unparseable record";
            return out;
        }
        if (code == exit_oom) {
            out.kind = FailKind::Oom;
            out.detail = opts.memLimitMb > 0
                ? strfmt("alloc failed under %llu MiB",
                         static_cast<unsigned long long>(
                             opts.memLimitMb))
                : "alloc failed";
            return out;
        }
        out.kind = FailKind::Crash;
        out.detail = strfmt("exit=%d", code);
        return out;
    }
    if (WIFSIGNALED(status)) {
        int sig = WTERMSIG(status);
        if (killed) {
            out.kind = FailKind::Timeout;
            out.detail = strfmt("wall-clock %.1fs", opts.timeoutSec);
            return out;
        }
        if (sig == SIGXCPU) {
            out.kind = FailKind::Timeout;
            out.detail = "rlimit-cpu";
            return out;
        }
        if (sig == SIGKILL) {
            // Not ours, so the kernel's (the OOM killer is the usual
            // sender of unsolicited SIGKILLs).
            out.kind = FailKind::Oom;
            out.detail = "SIGKILL (host oom killer?)";
            return out;
        }
        out.kind = FailKind::Crash;
        const char *name = signalName(sig);
        out.detail = name ? name : strfmt("signal %d", sig);
        return out;
    }
    out.kind = FailKind::Protocol;
    out.detail = strfmt("wait status 0x%x", status);
    return out;
}

bool
retryable(FailKind kind)
{
    // Host-level failures may be environmental (a loaded machine, a
    // flaky OOM); a SimError is a deterministic property of the run.
    return kind == FailKind::Crash || kind == FailKind::Timeout ||
           kind == FailKind::Oom || kind == FailKind::Protocol;
}

/** The final RunResult for a task, names and taxonomy filled. */
RunResult
finalizeResult(const IsolatePool::Task &task, const Classified &cls,
               unsigned attempts)
{
    if (cls.kind == FailKind::None || cls.kind == FailKind::SimError) {
        RunResult r = cls.parsed;
        // Names travel with the record, but trust the spec's (the
        // same rule cache hits follow).
        r.workload = task.job.workload;
        r.config = task.job.config.name();
        return r;
    }
    RunResult r;
    r.workload = task.job.workload;
    r.config = task.job.config.name();
    r.ok = false;
    r.failKind = cls.kind;
    r.failDetail = cls.detail;
    r.injectedHostFault = task.job.config.check.faults.hostAny();
    r.error = strfmt("isolated run died: %s after %u attempt(s)",
                     r.failLabel().c_str(), attempts);
    return r;
}

/** Milliseconds between two steady-clock points, clamped at 0. */
double
elapsedMs(Clock::time_point from, Clock::time_point to)
{
    if (to <= from)
        return 0;
    return std::chrono::duration_cast<
               std::chrono::duration<double, std::milli>>(to - from)
        .count();
}

} // anonymous namespace

IsolatePool::IsolatePool(IsolateOptions opts)
    : opts(opts), slotBusy(std::max(1u, opts.slots), 0)
{
}

void
IsolatePool::setMetrics(obs::MetricsRegistry *registry)
{
    if (!registry)
        return;
    registry
        ->gauge("cwsim_pool_slots",
                "Configured worker slots (concurrent child processes).")
        .set(std::max(1u, opts.slots));
    busyGauge = &registry->gauge(
        "cwsim_pool_busy", "Worker slots currently running a child.");
    forksCounter = &registry->counter(
        "cwsim_pool_forks_total", "Child processes forked (attempts).");
    retriesCounter = &registry->counter(
        "cwsim_pool_retries_total",
        "Host-level failures requeued for another attempt.");
    execMsCounter = &registry->counter(
        "cwsim_pool_exec_ms_total",
        "Total milliseconds worker slots spent occupied; divide by "
        "uptime times slots for utilization.");
    execHistogram = &registry->histogram(
        "cwsim_pool_exec_seconds",
        "Per-attempt execute time, fork to reap, seconds.",
        obs::Histogram::latencySeconds());
}

unsigned
IsolatePool::claimSlot()
{
    for (size_t i = 0; i < slotBusy.size(); i++) {
        if (!slotBusy[i]) {
            slotBusy[i] = 1;
            return static_cast<unsigned>(i);
        }
    }
    // pump() never forks past opts.slots, so this is unreachable; be
    // lenient rather than panic in release builds.
    return 0;
}

void
IsolatePool::releaseSlot(unsigned slot)
{
    if (slot < slotBusy.size())
        slotBusy[slot] = 0;
}

IsolatePool::~IsolatePool()
{
    // Abandoned work (the owner is going away mid-flight): make sure
    // no orphaned child outlives the pool.
    for (Child &c : live) {
        ::kill(c.pid, SIGKILL);
        ::close(c.fd);
        int status = 0;
        pid_t w;
        do {
            w = ::waitpid(c.pid, &status, 0);
        } while (w < 0 && errno == EINTR);
    }
}

void
IsolatePool::enqueue(Task task)
{
    Clock::time_point now = Clock::now();
    queue.push_back({std::move(task), 0, now, now});
}

bool
IsolatePool::spawn(const Attempt &a, std::vector<Done> &out)
{
    const Task &task = a.task;
    auto runInProcess = [&]() {
        Done d;
        d.token = task.token;
        d.queueMs = elapsedMs(a.enqueuedAt, Clock::now());
        Clock::time_point t0 = Clock::now();
        d.result = task.runner->run(task.job.workload,
                                    task.job.config);
        d.execMs = elapsedMs(t0, Clock::now());
        d.result.queueMs = d.queueMs;
        d.attempts = a.attempt + 1;
        if (execHistogram)
            execHistogram->observe(d.execMs / 1000.0);
        if (execMsCounter)
            execMsCounter->inc(static_cast<uint64_t>(d.execMs));
        out.push_back(std::move(d));
    };
    int fds[2];
    if (::pipe2(fds, O_CLOEXEC) < 0) {
        warn("isolate: pipe2 failed (%s); running %s in-process",
             std::strerror(errno), task.job.workload.c_str());
        runInProcess();
        return false;
    }
    // The child _exit()s, so any bytes sitting in stdio buffers
    // would otherwise be flushed by both processes.
    std::fflush(stdout);
    std::fflush(stderr);
    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        warn("isolate: fork failed (%s); running %s in-process",
             std::strerror(errno), task.job.workload.c_str());
        runInProcess();
        return false;
    }
    if (pid == 0) {
        ::close(fds[0]);
        childMain(task, opts, fds[1]);
    }
    ::close(fds[1]);
    int flags = ::fcntl(fds[0], F_GETFL, 0);
    ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
    Child c;
    c.task = task;
    c.pid = pid;
    c.fd = fds[0];
    c.attempt = a.attempt;
    c.slot = claimSlot();
    c.spawnedAt = Clock::now();
    c.enqueuedAt = a.enqueuedAt;
    if (opts.timeoutSec > 0) {
        c.deadline = Clock::now() +
                     std::chrono::microseconds(static_cast<int64_t>(
                         opts.timeoutSec * 1e6));
        c.hasDeadline = true;
    }
    live.push_back(std::move(c));
    if (forksCounter)
        forksCounter->inc();
    if (busyGauge)
        busyGauge->set(static_cast<double>(live.size()));
    return true;
}

void
IsolatePool::pump()
{
    // This overload exists for callers that want forking decoupled
    // from result collection; service() pumps too.
    unsigned slots = std::max(1u, opts.slots);
    Clock::time_point now = Clock::now();
    std::vector<Done> stray;
    for (auto it = queue.begin();
         it != queue.end() && live.size() < slots;) {
        if (it->notBefore <= now) {
            spawn(*it, stray);
            it = queue.erase(it);
        } else {
            ++it;
        }
    }
    // In-process fallbacks (pipe/fork failure) finished synchronously;
    // hold them so the next service() returns them.
    for (Done &d : stray)
        fallbackDone.push_back(std::move(d));
}

size_t
IsolatePool::addPollFds(std::vector<struct pollfd> &out) const
{
    for (const Child &c : live)
        out.push_back({c.fd, POLLIN, 0});
    return live.size();
}

int
IsolatePool::timeoutMs() const
{
    Clock::time_point now = Clock::now();
    int64_t best = -1;
    auto consider = [&](Clock::time_point t) {
        int64_t ms = std::chrono::duration_cast<
                         std::chrono::milliseconds>(t - now)
                         .count();
        ms = std::max<int64_t>(0, ms) + 1;
        best = best < 0 ? ms : std::min(best, ms);
    };
    for (const Child &c : live) {
        if (c.hasDeadline && !c.killed)
            consider(c.deadline);
    }
    unsigned slots = std::max(1u, opts.slots);
    if (live.size() < slots) {
        for (const Attempt &a : queue)
            consider(a.notBefore);
    }
    return best > std::numeric_limits<int>::max()
        ? std::numeric_limits<int>::max()
        : static_cast<int>(best);
}

void
IsolatePool::drainPipes()
{
    for (Child &c : live) {
        if (c.eof)
            continue;
        char chunk[4096];
        for (;;) {
            ssize_t n = ::read(c.fd, chunk, sizeof(chunk));
            if (n > 0) {
                c.buf.append(chunk, static_cast<size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && errno == EAGAIN)
                break;
            c.eof = true; // 0 (EOF) or a hard error
            break;
        }
    }
}

void
IsolatePool::enforceDeadlines()
{
    Clock::time_point now = Clock::now();
    for (Child &c : live) {
        if (!c.eof && c.hasDeadline && !c.killed && now >= c.deadline) {
            ::kill(c.pid, SIGKILL);
            c.killed = true;
        }
    }
}

void
IsolatePool::reap(std::vector<Done> &out)
{
    for (size_t k = 0; k < live.size();) {
        if (!live[k].eof) {
            ++k;
            continue;
        }
        Child c = std::move(live[k]);
        live.erase(live.begin() + k);
        ::close(c.fd);
        releaseSlot(c.slot);
        int status = 0;
        pid_t w;
        do {
            w = ::waitpid(c.pid, &status, 0);
        } while (w < 0 && errno == EINTR);
        Classified cls = classifyExit(c.buf, c.killed, status, opts);

        double execMs = elapsedMs(c.spawnedAt, Clock::now());
        if (busyGauge)
            busyGauge->set(static_cast<double>(live.size()));
        if (execHistogram)
            execHistogram->observe(execMs / 1000.0);
        if (execMsCounter)
            execMsCounter->inc(static_cast<uint64_t>(execMs));

        if (retryable(cls.kind) && c.attempt < opts.retries) {
            warn("isolate: %s under %s died (%s, attempt %u/%u); "
                 "retrying",
                 c.task.job.workload.c_str(),
                 c.task.job.config.name().c_str(),
                 cls.detail.c_str(), c.attempt + 1,
                 opts.retries + 1);
            if (retriesCounter)
                retriesCounter->inc();
            // Exponential backoff so a thrashing host gets air.
            auto backoff =
                std::chrono::milliseconds(100u << c.attempt);
            queue.push_back({std::move(c.task), c.attempt + 1,
                             Clock::now() + backoff, c.enqueuedAt});
        } else {
            Done d;
            d.token = c.task.token;
            d.result = finalizeResult(c.task, cls, c.attempt + 1);
            d.intervalLines = std::move(cls.intervalLines);
            d.attempts = c.attempt + 1;
            d.slot = c.slot;
            d.queueMs = elapsedMs(c.enqueuedAt, c.spawnedAt);
            d.execMs = execMs;
            d.result.queueMs = d.queueMs;
            out.push_back(std::move(d));
        }
    }
}

std::vector<IsolatePool::Done>
IsolatePool::service()
{
    std::vector<Done> out;
    for (Done &d : fallbackDone)
        out.push_back(std::move(d));
    fallbackDone.clear();
    drainPipes();
    enforceDeadlines();
    reap(out);
    pump();
    // A just-pumped fallback (fork failure) is already final too.
    for (Done &d : fallbackDone)
        out.push_back(std::move(d));
    fallbackDone.clear();
    return out;
}

void
runIsolated(harness::Runner &runner,
            const std::vector<SweepJob> &jobs,
            const std::vector<size_t> &pending,
            const std::vector<uint64_t> &fps,
            const IsolateOptions &opts,
            std::vector<RunResult> &results)
{
    if (pending.empty())
        return;

    // Pre-warm every workload's functional pre-pass in the parent so
    // each forked child inherits it copy-on-write instead of redoing
    // it. Per-call error traps keep a bad workload fail-soft here (the
    // child will then fail the same way and say so in its record).
    {
        std::vector<std::string> names;
        for (size_t i : pending) {
            const std::string &w = jobs[i].workload;
            if (std::find(names.begin(), names.end(), w) == names.end())
                names.push_back(w);
        }
        parallelFor(names.size(), opts.slots, [&](size_t n) {
            try {
                ScopedErrorTrap trap;
                runner.prepass(names[n]);
            } catch (const SimError &) {
            }
        });
    }

    IsolatePool pool(opts);
    for (size_t i : pending) {
        IsolatePool::Task t;
        t.token = i;
        t.runner = &runner;
        t.job = jobs[i];
        t.fp = fps[i];
        pool.enqueue(std::move(t));
    }

    while (!pool.idle()) {
        pool.pump();
        std::vector<struct pollfd> pfds;
        pool.addPollFds(pfds);
        int timeout = pool.timeoutMs();
        if (!pfds.empty()) {
            int rc = ::poll(pfds.data(), pfds.size(), timeout);
            if (rc < 0 && errno != EINTR) {
                panic("isolate: poll failed (%s)",
                      std::strerror(errno));
            }
        } else if (timeout > 0) {
            // Only backoff-delayed retries remain: sleep it off.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(timeout));
        }
        for (IsolatePool::Done &d : pool.service())
            results[d.token] = std::move(d.result);
    }
}

} // namespace sweep
} // namespace cwsim
