#include "sweep/isolate.hh"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <map>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <new>
#include <thread>

#include "base/logging.hh"
#include "base/sim_error.hh"
#include "base/str.hh"
#include "sweep/jsonl.hh"
#include "sweep/run_cache.hh"

namespace cwsim
{
namespace sweep
{

namespace
{

using Clock = std::chrono::steady_clock;
using harness::FailKind;
using harness::RunResult;

// Reserved child exit codes. Anything else nonzero is a crash.
constexpr int exit_oom = 33;      ///< operator new failed (RLIMIT_AS).
constexpr int exit_uncaught = 34; ///< non-SimError exception escaped.

const char *
signalName(int sig)
{
    switch (sig) {
      case SIGSEGV: return "SIGSEGV";
      case SIGABRT: return "SIGABRT";
      case SIGBUS:  return "SIGBUS";
      case SIGILL:  return "SIGILL";
      case SIGFPE:  return "SIGFPE";
      case SIGKILL: return "SIGKILL";
      case SIGTERM: return "SIGTERM";
      case SIGXCPU: return "SIGXCPU";
      default: return nullptr;
    }
}

/** Child-side: run the simulation and stream the record back. */
[[noreturn]] void
childMain(harness::Runner &runner, const SweepJob &job, uint64_t fp,
          const IsolateOptions &opts, int wfd)
{
    // Allocation failure (RLIMIT_AS, alloc storms) exits with the
    // reserved OOM code instead of an unclassifiable abort. The
    // handler must not allocate.
    std::set_new_handler([] { _exit(exit_oom); });

    if (opts.memLimitMb > 0) {
        rlim_t bytes =
            static_cast<rlim_t>(opts.memLimitMb) * 1024 * 1024;
        struct rlimit rl = {bytes, bytes};
        ::setrlimit(RLIMIT_AS, &rl);
    }
    if (opts.timeoutSec > 0) {
        // CPU-time backstop behind the parent's wall-clock deadline:
        // if the parent dies, a spinning child still gets SIGXCPU.
        rlim_t secs = static_cast<rlim_t>(
            std::ceil(opts.timeoutSec)) + 10;
        struct rlimit rl = {secs, secs};
        ::setrlimit(RLIMIT_CPU, &rl);
    }

    RunResult r;
    try {
        // SimErrors are caught inside run() (fail-soft) and travel in
        // the record; only host-level surprises reach the catches.
        r = runner.run(job.workload, job.config);
    } catch (const std::bad_alloc &) {
        _exit(exit_oom);
    } catch (...) {
        _exit(exit_uncaught);
    }

    std::string line = runRecordLine(r, fp, runner.scale());
    line += '\n';
    const char *data = line.data();
    size_t len = line.size();
    while (len > 0) {
        ssize_t n = ::write(wfd, data, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            _exit(exit_uncaught);
        }
        data += n;
        len -= static_cast<size_t>(n);
    }
    _exit(0);
}

/** One live child process slot. */
struct Child
{
    pid_t pid = -1;
    int fd = -1;
    size_t jobIdx = 0;
    unsigned attempt = 0; ///< 0-based attempt number.
    bool killed = false;  ///< We delivered SIGKILL (wall timeout).
    bool eof = false;
    std::string buf;      ///< Record bytes read so far.
    Clock::time_point deadline;
    bool hasDeadline = false;
};

/** A queued (not yet forked) attempt. */
struct PendingAttempt
{
    size_t jobIdx;
    unsigned attempt;
    Clock::time_point notBefore;
};

struct Classified
{
    FailKind kind = FailKind::None;
    std::string detail;
    RunResult parsed; ///< Valid only when kind is None or SimError.
};

Classified
classifyExit(const Child &c, int status, const IsolateOptions &opts)
{
    Classified out;
    if (WIFEXITED(status)) {
        int code = WEXITSTATUS(status);
        if (code == 0) {
            std::map<std::string, std::string> fields;
            std::string line = c.buf;
            size_t nl = line.find('\n');
            if (nl != std::string::npos)
                line.erase(nl);
            if (parseFlatJson(line, fields) &&
                runRecordParse(fields, out.parsed)) {
                out.kind = out.parsed.ok ? FailKind::None
                                         : FailKind::SimError;
                return out;
            }
            out.kind = FailKind::Protocol;
            out.detail = c.buf.empty() ? "empty record"
                                       : "unparseable record";
            return out;
        }
        if (code == exit_oom) {
            out.kind = FailKind::Oom;
            out.detail = opts.memLimitMb > 0
                ? strfmt("alloc failed under %llu MiB",
                         static_cast<unsigned long long>(
                             opts.memLimitMb))
                : "alloc failed";
            return out;
        }
        out.kind = FailKind::Crash;
        out.detail = strfmt("exit=%d", code);
        return out;
    }
    if (WIFSIGNALED(status)) {
        int sig = WTERMSIG(status);
        if (c.killed) {
            out.kind = FailKind::Timeout;
            out.detail = strfmt("wall-clock %.1fs", opts.timeoutSec);
            return out;
        }
        if (sig == SIGXCPU) {
            out.kind = FailKind::Timeout;
            out.detail = "rlimit-cpu";
            return out;
        }
        if (sig == SIGKILL) {
            // Not ours, so the kernel's (the OOM killer is the usual
            // sender of unsolicited SIGKILLs).
            out.kind = FailKind::Oom;
            out.detail = "SIGKILL (host oom killer?)";
            return out;
        }
        out.kind = FailKind::Crash;
        const char *name = signalName(sig);
        out.detail = name ? name : strfmt("signal %d", sig);
        return out;
    }
    out.kind = FailKind::Protocol;
    out.detail = strfmt("wait status 0x%x", status);
    return out;
}

bool
retryable(FailKind kind)
{
    // Host-level failures may be environmental (a loaded machine, a
    // flaky OOM); a SimError is a deterministic property of the run.
    return kind == FailKind::Crash || kind == FailKind::Timeout ||
           kind == FailKind::Oom || kind == FailKind::Protocol;
}

} // anonymous namespace

void
runIsolated(harness::Runner &runner,
            const std::vector<SweepJob> &jobs,
            const std::vector<size_t> &pending,
            const std::vector<uint64_t> &fps,
            const IsolateOptions &opts,
            std::vector<RunResult> &results)
{
    if (pending.empty())
        return;

    // Pre-warm every workload's functional pre-pass in the parent so
    // each forked child inherits it copy-on-write instead of redoing
    // it. Per-call error traps keep a bad workload fail-soft here (the
    // child will then fail the same way and say so in its record).
    {
        std::vector<std::string> names;
        for (size_t i : pending) {
            const std::string &w = jobs[i].workload;
            if (std::find(names.begin(), names.end(), w) == names.end())
                names.push_back(w);
        }
        parallelFor(names.size(), opts.slots, [&](size_t n) {
            try {
                ScopedErrorTrap trap;
                runner.prepass(names[n]);
            } catch (const SimError &) {
            }
        });
    }

    unsigned slots = std::max(1u, opts.slots);
    std::deque<PendingAttempt> queue;
    for (size_t i : pending)
        queue.push_back({i, 0, Clock::now()});
    std::vector<Child> live;

    auto finalize = [&](size_t jobIdx, const Classified &cls,
                        unsigned attempts) {
        const SweepJob &job = jobs[jobIdx];
        if (cls.kind == FailKind::None ||
            cls.kind == FailKind::SimError) {
            RunResult r = cls.parsed;
            // Names travel with the record, but trust the spec's (the
            // same rule cache hits follow).
            r.workload = job.workload;
            r.config = job.config.name();
            results[jobIdx] = r;
            return;
        }
        RunResult r;
        r.workload = job.workload;
        r.config = job.config.name();
        r.ok = false;
        r.failKind = cls.kind;
        r.failDetail = cls.detail;
        r.injectedHostFault = job.config.check.faults.hostAny();
        r.error = strfmt("isolated run died: %s after %u attempt(s)",
                         r.failLabel().c_str(), attempts);
        results[jobIdx] = r;
    };

    auto spawn = [&](const PendingAttempt &p) -> bool {
        const SweepJob &job = jobs[p.jobIdx];
        int fds[2];
        if (::pipe2(fds, O_CLOEXEC) < 0) {
            warn("isolate: pipe2 failed (%s); running %s in-process",
                 std::strerror(errno), job.workload.c_str());
            results[p.jobIdx] =
                runner.run(job.workload, job.config);
            return false;
        }
        // The child _exit()s, so any bytes sitting in stdio buffers
        // would otherwise be flushed by both processes.
        std::fflush(stdout);
        std::fflush(stderr);
        pid_t pid = ::fork();
        if (pid < 0) {
            ::close(fds[0]);
            ::close(fds[1]);
            warn("isolate: fork failed (%s); running %s in-process",
                 std::strerror(errno), job.workload.c_str());
            results[p.jobIdx] =
                runner.run(job.workload, job.config);
            return false;
        }
        if (pid == 0) {
            ::close(fds[0]);
            childMain(runner, job, fps[p.jobIdx], opts, fds[1]);
        }
        ::close(fds[1]);
        int flags = ::fcntl(fds[0], F_GETFL, 0);
        ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
        Child c;
        c.pid = pid;
        c.fd = fds[0];
        c.jobIdx = p.jobIdx;
        c.attempt = p.attempt;
        if (opts.timeoutSec > 0) {
            c.deadline = Clock::now() +
                         std::chrono::microseconds(static_cast<int64_t>(
                             opts.timeoutSec * 1e6));
            c.hasDeadline = true;
        }
        live.push_back(c);
        return true;
    };

    while (!queue.empty() || !live.empty()) {
        // Fill free slots with ready attempts, preserving queue order.
        Clock::time_point now = Clock::now();
        for (auto it = queue.begin();
             it != queue.end() && live.size() < slots;) {
            if (it->notBefore <= now) {
                spawn(*it);
                it = queue.erase(it);
            } else {
                ++it;
            }
        }
        if (live.empty()) {
            // Only backoff-delayed retries remain: sleep to the
            // earliest one.
            Clock::time_point earliest = queue.front().notBefore;
            for (const PendingAttempt &p : queue)
                earliest = std::min(earliest, p.notBefore);
            std::this_thread::sleep_until(earliest);
            continue;
        }

        // Poll every live pipe until data/EOF or the next deadline.
        int poll_ms = -1;
        now = Clock::now();
        for (const Child &c : live) {
            if (!c.hasDeadline)
                continue;
            auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(c.deadline - now).count();
            int ms = static_cast<int>(std::max<int64_t>(0, left)) + 1;
            poll_ms = poll_ms < 0 ? ms : std::min(poll_ms, ms);
        }
        std::vector<struct pollfd> pfds;
        pfds.reserve(live.size());
        for (const Child &c : live)
            pfds.push_back({c.fd, POLLIN, 0});
        int rc = ::poll(pfds.data(), pfds.size(), poll_ms);
        if (rc < 0 && errno != EINTR) {
            panic("isolate: poll failed (%s)", std::strerror(errno));
        }

        // Drain readable pipes; EOF means the child is done (or dead).
        for (size_t k = 0; k < live.size(); ++k) {
            if (!(pfds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            char chunk[4096];
            for (;;) {
                ssize_t n = ::read(live[k].fd, chunk, sizeof(chunk));
                if (n > 0) {
                    live[k].buf.append(chunk,
                                       static_cast<size_t>(n));
                    continue;
                }
                if (n < 0 && errno == EINTR)
                    continue;
                if (n < 0 && errno == EAGAIN)
                    break;
                live[k].eof = true; // 0 (EOF) or a hard error
                break;
            }
        }

        // Enforce wall-clock deadlines on stragglers.
        now = Clock::now();
        for (Child &c : live) {
            if (!c.eof && c.hasDeadline && !c.killed &&
                now >= c.deadline) {
                ::kill(c.pid, SIGKILL);
                c.killed = true;
            }
        }

        // Reap finished children and classify.
        for (size_t k = 0; k < live.size();) {
            if (!live[k].eof) {
                ++k;
                continue;
            }
            Child c = live[k];
            live.erase(live.begin() + k);
            ::close(c.fd);
            int status = 0;
            pid_t w;
            do {
                w = ::waitpid(c.pid, &status, 0);
            } while (w < 0 && errno == EINTR);
            Classified cls = classifyExit(c, status, opts);

            if (retryable(cls.kind) && c.attempt < opts.retries) {
                warn("isolate: %s under %s died (%s, attempt %u/%u); "
                     "retrying",
                     jobs[c.jobIdx].workload.c_str(),
                     jobs[c.jobIdx].config.name().c_str(),
                     cls.detail.c_str(), c.attempt + 1,
                     opts.retries + 1);
                // Exponential backoff so a thrashing host gets air.
                auto backoff =
                    std::chrono::milliseconds(100u << c.attempt);
                queue.push_back({c.jobIdx, c.attempt + 1,
                                 Clock::now() + backoff});
            } else {
                finalize(c.jobIdx, cls, c.attempt + 1);
            }
        }
    }
}

} // namespace sweep
} // namespace cwsim
