/**
 * @file
 * The sandboxed run executor behind the sweep engine's --isolate mode.
 *
 * Each pending run executes in a forked child process: the child runs
 * the timing simulation through the ordinary fail-soft Runner, streams
 * its RunResult back over a pipe as one run-record line (the same wire
 * format the run cache and --json export use), and _exit()s. The
 * parent is a single-threaded event loop managing up to `slots`
 * children at once — workers become process slots — enforcing a
 * wall-clock deadline (SIGKILL on expiry) plus RLIMIT_AS / RLIMIT_CPU
 * caps inside the child, and classifying every child's demise into the
 * harness::FailKind taxonomy:
 *
 *   sim_error  the child caught a SimError in-process and said so in
 *              its record — byte-identical to a non-isolated failure
 *   crash      killed by a signal (SIGSEGV, SIGABRT, …) or exited
 *              nonzero
 *   timeout    the parent's wall-clock deadline fired, or RLIMIT_CPU
 *              delivered SIGXCPU
 *   oom        operator new failed under RLIMIT_AS (the child's
 *              new-handler exits with a reserved code) or the kernel
 *              OOM killer SIGKILLed it unprompted
 *   protocol   the child exited 0 but its record did not parse
 *
 * Host-level failure classes (everything but sim_error) get bounded
 * retries with exponential backoff; a SimError is a deterministic
 * property of the run and is never retried. Results land in spec-order
 * slots, so a sweep is bit-identical at any slot count, and the
 * surviving runs of a fault-storm are bit-identical to a clean serial
 * sweep — one crashed, hung, or OOMing run can no longer take the
 * campaign down.
 */

#ifndef CWSIM_SWEEP_ISOLATE_HH
#define CWSIM_SWEEP_ISOLATE_HH

#include <cstdint>
#include <vector>

#include "harness/harness.hh"
#include "sweep/sweep.hh"

namespace cwsim
{
namespace sweep
{

struct IsolateOptions
{
    /** Concurrent child processes. */
    unsigned slots = 1;
    /** Wall-clock deadline per attempt, seconds (0 = none). */
    double timeoutSec = 0;
    /** RLIMIT_AS cap per child, MiB (0 = none). */
    uint64_t memLimitMb = 0;
    /** Extra attempts for host-level (crash/timeout/oom/protocol)
     * failures; SimErrors are deterministic and never retried. */
    unsigned retries = 1;
};

/**
 * Execute jobs[i] for every i in @p pending, each in its own forked
 * child, writing into results[i] (which must be sized to jobs.size()).
 * @p fps holds the per-job fingerprints used on the record wire
 * format. Failed runs come back ok == false with their FailKind set;
 * they are NOT recorded in @p runner — the caller records them so a
 * cold and a cached failure report identically.
 */
void runIsolated(harness::Runner &runner,
                 const std::vector<SweepJob> &jobs,
                 const std::vector<size_t> &pending,
                 const std::vector<uint64_t> &fps,
                 const IsolateOptions &opts,
                 std::vector<harness::RunResult> &results);

} // namespace sweep
} // namespace cwsim

#endif // CWSIM_SWEEP_ISOLATE_HH
