/**
 * @file
 * The sandboxed run executor behind the sweep engine's --isolate mode
 * and the cwsimd daemon's worker slots.
 *
 * Each pending run executes in a forked child process: the child runs
 * the timing simulation through the ordinary fail-soft Runner, streams
 * its RunResult back over a pipe as one run-record line (the same wire
 * format the run cache and --json export use), and _exit()s. The
 * parent manages up to `slots` children at once — workers become
 * process slots — enforcing a wall-clock deadline (SIGKILL on expiry)
 * plus RLIMIT_AS / RLIMIT_CPU caps inside the child, and classifying
 * every child's demise into the harness::FailKind taxonomy:
 *
 *   sim_error  the child caught a SimError in-process and said so in
 *              its record — byte-identical to a non-isolated failure
 *   crash      killed by a signal (SIGSEGV, SIGABRT, …) or exited
 *              nonzero
 *   timeout    the parent's wall-clock deadline fired, or RLIMIT_CPU
 *              delivered SIGXCPU
 *   oom        operator new failed under RLIMIT_AS (the child's
 *              new-handler exits with a reserved code) or the kernel
 *              OOM killer SIGKILLed it unprompted
 *   protocol   the child exited 0 but its record did not parse
 *
 * Host-level failure classes (everything but sim_error) get bounded
 * retries with exponential backoff; a SimError is a deterministic
 * property of the run and is never retried.
 *
 * Two drivers share the machinery:
 *
 *   - runIsolated(): the batch executor the SweepEngine calls — feed
 *     it a pending set, it blocks until every slot-scheduled run has a
 *     final result. Results land in spec-order slots, so a sweep is
 *     bit-identical at any slot count, and the surviving runs of a
 *     fault-storm are bit-identical to a clean serial sweep.
 *
 *   - IsolatePool: the incremental form the cwsimd daemon drives from
 *     its own poll loop. The caller enqueues tasks, merges the pool's
 *     child-pipe fds into its poll set (addPollFds/timeoutMs), and
 *     collects finished runs from service() as they land — the pool
 *     never blocks, so one event loop can multiplex client sockets
 *     and worker slots.
 */

#ifndef CWSIM_SWEEP_ISOLATE_HH
#define CWSIM_SWEEP_ISOLATE_HH

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "harness/harness.hh"
#include "sweep/sweep.hh"

namespace cwsim
{

namespace obs
{
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
} // namespace obs

namespace sweep
{

struct IsolateOptions
{
    /** Concurrent child processes. */
    unsigned slots = 1;
    /** Wall-clock deadline per attempt, seconds (0 = none). */
    double timeoutSec = 0;
    /** RLIMIT_AS cap per child, MiB (0 = none). */
    uint64_t memLimitMb = 0;
    /** Extra attempts for host-level (crash/timeout/oom/protocol)
     * failures; SimErrors are deterministic and never retried. */
    unsigned retries = 1;
};

/**
 * A non-blocking pool of isolated run slots, designed to be one input
 * of a larger poll(2) loop. Lifecycle of a task: enqueue() → pump()
 * forks it into a free slot → the caller's poll wakes on its pipe →
 * service() drains, reaps, classifies, retries host-level failures,
 * and returns it as a Done with a fully-finalized RunResult (names
 * from the spec, failure taxonomy filled, the same strings
 * runIsolated always produced).
 *
 * Single-threaded by design: every method must be called from the one
 * thread that owns the pool (the daemon's event loop / the sweep
 * engine's parent loop).
 */
class IsolatePool
{
  public:
    /** One run to execute in a sandboxed child. */
    struct Task
    {
        /** Caller's correlation key, echoed back in Done. */
        uint64_t token = 0;
        /** Runner owning the (pre-warmed) workload/prepass caches. */
        harness::Runner *runner = nullptr;
        SweepJob job;
        uint64_t fp = 0;
        /**
         * When non-zero, the child samples interval stats every this
         * many cycles and streams the JSONL lines back ahead of its
         * run record (Done::intervalLines). Zero leaves whatever
         * global interval configuration is in effect untouched.
         */
        uint64_t intervalCycles = 0;
    };

    /** A finished task: the final result after any retries. */
    struct Done
    {
        uint64_t token = 0;
        harness::RunResult result;
        /** Interval-sample JSONL lines (Task::intervalCycles > 0). */
        std::vector<std::string> intervalLines;
        /** Attempts consumed (1 = no retries needed). */
        unsigned attempts = 1;
        /** Worker slot the final attempt ran in (0-based). */
        unsigned slot = 0;
        /** Pool queue wait: enqueue() → final fork, milliseconds.
         * Also stamped into result.queueMs. */
        double queueMs = 0;
        /** Parent-observed execute time of the final attempt: fork →
         * reap, milliseconds (covers crashed children, whose own
         * wallMs never made it back). */
        double execMs = 0;
    };

    explicit IsolatePool(IsolateOptions opts);
    /** Kills and reaps any children still live (abandoned work). */
    ~IsolatePool();

    IsolatePool(const IsolatePool &) = delete;
    IsolatePool &operator=(const IsolatePool &) = delete;

    /** Queue a task; it forks when a slot frees up (see pump()). */
    void enqueue(Task task);

    /** Tasks not yet returned by service(): queued + live children. */
    size_t unfinished() const { return queue.size() + live.size(); }
    bool idle() const { return unfinished() == 0; }
    /** Currently-forked children (≤ slots). */
    unsigned liveChildren() const
    {
        return static_cast<unsigned>(live.size());
    }
    /** Free slots a caller may fill before pump() would sit on work. */
    unsigned
    freeSlots() const
    {
        unsigned s = std::max(1u, opts.slots);
        size_t busy = unfinished();
        return busy >= s ? 0 : s - static_cast<unsigned>(busy);
    }

    /** Fork queued tasks into free slots (respecting retry backoff). */
    void pump();

    /**
     * Append one POLLIN pollfd per live child pipe to @p out; the
     * caller merges them into its poll set so it wakes when a child
     * finishes. Returns the number added.
     */
    size_t addPollFds(std::vector<struct pollfd> &out) const;

    /**
     * Milliseconds until the pool next needs attention regardless of
     * fd readiness (a wall-clock deadline or a retry backoff expiring),
     * or -1 when it can wait forever. Use as an upper bound on the
     * caller's poll timeout.
     */
    int timeoutMs() const;

    /**
     * One non-blocking maintenance pass: drain readable child pipes,
     * SIGKILL deadline overruns, reap + classify exited children,
     * requeue retryable failures, fork queued work into free slots.
     * Returns every task that reached a final result.
     */
    std::vector<Done> service();

    /**
     * Register the pool's metrics (slot occupancy, forks, retries,
     * execute-latency histogram) in @p registry. Optional; a pool
     * without a registry records nothing. Must be called before the
     * first enqueue() and outlive the pool.
     */
    void setMetrics(obs::MetricsRegistry *registry);

  private:
    struct Attempt
    {
        Task task;
        unsigned attempt = 0; ///< 0-based attempt number.
        /** Earliest fork time (retry backoff). */
        std::chrono::steady_clock::time_point notBefore;
        /** First enqueue() time; survives retries so queueMs measures
         * the task's whole wait, not the last backoff's. */
        std::chrono::steady_clock::time_point enqueuedAt;
    };

    struct Child
    {
        Task task;
        pid_t pid = -1;
        int fd = -1;
        unsigned attempt = 0;
        bool killed = false; ///< We delivered SIGKILL (wall timeout).
        bool eof = false;
        std::string buf; ///< Record + interval bytes read so far.
        std::chrono::steady_clock::time_point deadline;
        bool hasDeadline = false;
        unsigned slot = 0; ///< Worker slot this child occupies.
        std::chrono::steady_clock::time_point spawnedAt;
        std::chrono::steady_clock::time_point enqueuedAt;
    };

    bool spawn(const Attempt &a, std::vector<Done> &out);
    void drainPipes();
    void enforceDeadlines();
    void reap(std::vector<Done> &out);
    unsigned claimSlot();
    void releaseSlot(unsigned slot);

    IsolateOptions opts;
    std::deque<Attempt> queue;
    std::vector<Child> live;
    /** Results finished synchronously (in-process fallback when
     * pipe2/fork fails), held for the next service() call. */
    std::vector<Done> fallbackDone;
    /** Which worker slots hold a live child (lowest-free assignment,
     * so trace tracks are stable). */
    std::vector<char> slotBusy;

    // Optional telemetry handles (null without setMetrics).
    obs::Gauge *busyGauge = nullptr;
    obs::Counter *forksCounter = nullptr;
    obs::Counter *retriesCounter = nullptr;
    obs::Counter *execMsCounter = nullptr;
    obs::Histogram *execHistogram = nullptr;
};

/**
 * Execute jobs[i] for every i in @p pending, each in its own forked
 * child, writing into results[i] (which must be sized to jobs.size()).
 * @p fps holds the per-job fingerprints used on the record wire
 * format. Failed runs come back ok == false with their FailKind set;
 * they are NOT recorded in @p runner — the caller records them so a
 * cold and a cached failure report identically. Blocks until every
 * pending run has a final result.
 */
void runIsolated(harness::Runner &runner,
                 const std::vector<SweepJob> &jobs,
                 const std::vector<size_t> &pending,
                 const std::vector<uint64_t> &fps,
                 const IsolateOptions &opts,
                 std::vector<harness::RunResult> &results);

} // namespace sweep
} // namespace cwsim

#endif // CWSIM_SWEEP_ISOLATE_HH
