/**
 * @file
 * Forwarding header: the flat JSON-lines helpers moved to
 * base/jsonl.hh when the dependence profiler needed them below the
 * sweep layer. Existing sweep::-qualified callers keep compiling via
 * the using-declarations; new code should include base/jsonl.hh.
 */

#ifndef CWSIM_SWEEP_JSONL_HH
#define CWSIM_SWEEP_JSONL_HH

#include "base/jsonl.hh"

namespace cwsim
{
namespace sweep
{

using cwsim::jsonEscape;
using cwsim::JsonObject;
using cwsim::parseFlatJson;

} // namespace sweep
} // namespace cwsim

#endif // CWSIM_SWEEP_JSONL_HH
