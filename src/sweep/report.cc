#include "sweep/report.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include "base/str.hh"
#include "obs/cpi_stack.hh"
#include "sim/table.hh"
#include "sweep/jsonl.hh"
#include "sweep/run_cache.hh"
#include "workloads/workload.hh"

namespace cwsim
{
namespace sweep
{

namespace
{

// ---------------------------------------------------------------------
// Format-agnostic section/table model. The report is assembled once
// and rendered as markdown or HTML from the same data, so the two
// formats cannot drift apart.
// ---------------------------------------------------------------------

struct Table
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
    /** Optional note rendered after the table (dropped-row counts). */
    std::string footer;
};

/**
 * Apply the --top row cap: keep the first @p top rows and record what
 * was cut in the footer, so a capped table can never be mistaken for
 * the whole population. @p top == 0 means unlimited.
 */
void
capRows(Table &t, size_t top)
{
    if (top == 0 || t.rows.size() <= top)
        return;
    size_t dropped = t.rows.size() - top;
    t.rows.resize(top);
    t.footer = strfmt("%zu more row(s) dropped; raise --top to see "
                      "them.", dropped);
}

struct Section
{
    std::string title;
    std::vector<std::string> paragraphs;
    std::vector<Table> tables;
};

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          default: out += c;
        }
    }
    return out;
}

void
renderTableMd(std::ostringstream &os, const Table &t)
{
    os << "|";
    for (const auto &h : t.header)
        os << " " << h << " |";
    os << "\n|";
    for (size_t i = 0; i < t.header.size(); ++i)
        os << (i == 0 ? " :--- |" : " ---: |");
    os << "\n";
    for (const auto &row : t.rows) {
        os << "|";
        for (const auto &cell : row)
            os << " " << cell << " |";
        os << "\n";
    }
    if (!t.footer.empty())
        os << "\n_" << t.footer << "_\n";
    os << "\n";
}

void
renderTableHtml(std::ostringstream &os, const Table &t)
{
    os << "<table>\n<tr>";
    for (const auto &h : t.header)
        os << "<th>" << htmlEscape(h) << "</th>";
    os << "</tr>\n";
    for (const auto &row : t.rows) {
        os << "<tr>";
        for (const auto &cell : row)
            os << "<td>" << htmlEscape(cell) << "</td>";
        os << "</tr>\n";
    }
    os << "</table>\n";
    if (!t.footer.empty())
        os << "<p><em>" << htmlEscape(t.footer) << "</em></p>\n";
}

std::string
render(const std::string &title, const std::vector<Section> &sections,
       ReportFormat format)
{
    std::ostringstream os;
    if (format == ReportFormat::Html) {
        os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
           << "<title>" << htmlEscape(title) << "</title>\n"
           << "<style>body{font-family:sans-serif;margin:2em}"
           << "table{border-collapse:collapse;margin:1em 0}"
           << "th,td{border:1px solid #999;padding:2px 8px;"
           << "text-align:right}"
           << "th:first-child,td:first-child{text-align:left}"
           << "</style></head><body>\n"
           << "<h1>" << htmlEscape(title) << "</h1>\n";
        for (const Section &s : sections) {
            os << "<h2>" << htmlEscape(s.title) << "</h2>\n";
            for (const auto &p : s.paragraphs)
                os << "<p>" << htmlEscape(p) << "</p>\n";
            for (const Table &t : s.tables)
                renderTableHtml(os, t);
        }
        os << "</body></html>\n";
    } else {
        os << "# " << title << "\n\n";
        for (const Section &s : sections) {
            os << "## " << s.title << "\n\n";
            for (const auto &p : s.paragraphs)
                os << p << "\n\n";
            for (const Table &t : s.tables)
                renderTableMd(os, t);
        }
    }
    return os.str();
}

// ---------------------------------------------------------------------
// Report assembly helpers.
// ---------------------------------------------------------------------

constexpr double nan_v = std::numeric_limits<double>::quiet_NaN();

/** Quiet geomean over positive finite entries (NaN when none). */
double
quietGeomean(const std::vector<double> &values)
{
    double log_sum = 0;
    size_t used = 0;
    for (double v : values) {
        if (std::isfinite(v) && v > 0) {
            log_sum += std::log(v);
            ++used;
        }
    }
    return used ? std::exp(log_sum / used) : nan_v;
}

std::string
fmtIpc(double ipc)
{
    return std::isnan(ipc) ? "n/a" : strfmt("%.3f", ipc);
}

std::string
fmtRatio(double ratio)
{
    if (std::isnan(ratio))
        return "n/a";
    return strfmt("%+.1f%%", (ratio - 1.0) * 100.0);
}

std::string
fmtPct(double fraction, int decimals = 1)
{
    if (std::isnan(fraction))
        return "n/a";
    return strfmt("%.*f%%", decimals, fraction * 100.0);
}

/** The per-key latest record, preserving first-appearance orders. */
struct RecordIndex
{
    std::vector<std::string> workloads; ///< First-appearance order.
    std::vector<std::string> configs;   ///< First-appearance order.
    /** (workload, config) -> latest record. */
    std::map<std::pair<std::string, std::string>,
             const ReportRecord *> byKey;

    const ReportRecord *
    find(const std::string &w, const std::string &c) const
    {
        auto it = byKey.find({w, c});
        return it == byKey.end() ? nullptr : it->second;
    }

    double
    ipc(const std::string &w, const std::string &c) const
    {
        const ReportRecord *r = find(w, c);
        return r ? r->run.ipc() : nan_v;
    }

    bool
    hasConfig(const std::string &c) const
    {
        return std::find(configs.begin(), configs.end(), c) !=
               configs.end();
    }
};

RecordIndex
indexRecords(const std::vector<ReportRecord> &records)
{
    RecordIndex idx;
    for (const ReportRecord &r : records) {
        auto key = std::make_pair(r.run.workload, r.run.config);
        if (!idx.byKey.count(key)) {
            if (std::find(idx.workloads.begin(), idx.workloads.end(),
                          r.run.workload) == idx.workloads.end()) {
                idx.workloads.push_back(r.run.workload);
            }
            if (!idx.hasConfig(r.run.config))
                idx.configs.push_back(r.run.config);
        }
        idx.byKey[key] = &r; // later records win
    }
    return idx;
}

/** Geomean rows (int / fp / all) for a vector-valued ratio column. */
std::vector<double>
ratios(const RecordIndex &idx, const std::vector<std::string> &names,
       const std::string &num_cfg, const std::string &den_cfg)
{
    std::vector<double> out;
    for (const auto &w : names) {
        double num = idx.ipc(w, num_cfg);
        double den = idx.ipc(w, den_cfg);
        out.push_back(den > 0 ? num / den : nan_v);
    }
    return out;
}

/** Workloads of @p group that appear in the index, index order. */
std::vector<std::string>
presentOf(const RecordIndex &idx, const std::vector<std::string> &group)
{
    std::vector<std::string> out;
    for (const auto &w : idx.workloads) {
        if (std::find(group.begin(), group.end(), w) != group.end())
            out.push_back(w);
    }
    return out;
}

void
addSpeedupSummaryRows(Table &t, const RecordIndex &idx,
                      const std::vector<std::string> &num_cfgs,
                      const std::string &den_cfg, size_t lead_cols)
{
    struct Group { const char *label; std::vector<std::string> names; };
    std::vector<Group> groups = {
        {"geomean (int)", presentOf(idx, workloads::intNames())},
        {"geomean (fp)", presentOf(idx, workloads::fpNames())},
        {"geomean (all)", idx.workloads},
    };
    for (const Group &g : groups) {
        if (g.names.empty())
            continue;
        std::vector<std::string> row = {g.label};
        for (size_t i = 1; i < lead_cols; ++i)
            row.push_back("");
        for (const auto &cfg : num_cfgs) {
            row.push_back(
                fmtRatio(quietGeomean(ratios(idx, g.names, cfg,
                                             den_cfg))));
        }
        t.rows.push_back(std::move(row));
    }
}

// ---------------------------------------------------------------------
// Dependence-profile rendering helpers (schema v5 / .depprof.jsonl).
// ---------------------------------------------------------------------

std::string
fmtU64(uint64_t v)
{
    return strfmt("%llu", static_cast<unsigned long long>(v));
}

std::string
fmtPc(Addr pc)
{
    return strfmt("0x%llx", static_cast<unsigned long long>(pc));
}

/** One decoded dep_hot_edges entry. */
struct HotEdge
{
    Addr storePc = 0;
    Addr loadPc = 0;
    uint64_t violations = 0;
    uint64_t syncs = 0;
};

/**
 * Decode a dep_hot_edges field ("0xS-0xL:viol:syncs;..."). Entries
 * that fail to parse are skipped — a record written by a future
 * encoding degrades to fewer rows, never to a broken report.
 */
std::vector<HotEdge>
parseHotEdges(const std::string &text)
{
    std::vector<HotEdge> out;
    for (const std::string &item : split(text, ';')) {
        if (item.empty())
            continue;
        HotEdge e;
        const char *s = item.c_str();
        char *end = nullptr;
        e.storePc = std::strtoull(s, &end, 16);
        if (end == s || *end != '-')
            continue;
        s = end + 1;
        e.loadPc = std::strtoull(s, &end, 16);
        if (end == s || *end != ':')
            continue;
        s = end + 1;
        e.violations = std::strtoull(s, &end, 10);
        if (end == s || *end != ':')
            continue;
        s = end + 1;
        e.syncs = std::strtoull(s, &end, 10);
        if (end == s || *end != '\0')
            continue;
        out.push_back(e);
    }
    return out;
}

/** Non-empty distance buckets as "label:count, ..." ("-" when none). */
std::string
fmtDistHistogram(const std::array<uint64_t, obs::dep_dist_buckets> &d)
{
    std::string out;
    for (size_t b = 0; b < obs::dep_dist_buckets; ++b) {
        if (d[b] == 0)
            continue;
        out += (out.empty() ? "" : ", ") + obs::depDistBucketLabel(b) +
               ":" + fmtU64(d[b]);
    }
    return out.empty() ? "-" : out;
}

/**
 * The hot-edge and per-PC sections appended to a sweep report when any
 * record carries a schema-v5 dependence-profile summary.
 */
void
addDepSections(std::vector<Section> &sections, const RecordIndex &idx,
               size_t top)
{
    size_t profiled = 0;
    for (const auto &[key, rec] : idx.byKey) {
        if (rec->run.depProfiled)
            ++profiled;
    }
    if (profiled == 0)
        return;

    // ---- Per-config hot edges ---------------------------------------
    {
        Section s;
        s.title = "Hot dependence edges";
        s.paragraphs.push_back(strfmt(
            "%zu run(s) carry a dependence-profile summary (collected "
            "under --depprof / CWSIM_DEPPROF). Each table lists the "
            "config's hottest (store PC, load PC) edges by violation "
            "count; full per-PC detail is in the run's .depprof.jsonl "
            "file.", profiled));
        for (const auto &cfg : idx.configs) {
            struct Row { std::string w; HotEdge e; };
            std::vector<Row> rows;
            for (const auto &w : idx.workloads) {
                const ReportRecord *r = idx.find(w, cfg);
                if (!r || !r->run.depProfiled)
                    continue;
                for (const HotEdge &e :
                     parseHotEdges(r->run.depHotEdges))
                    rows.push_back({w, e});
            }
            if (rows.empty())
                continue;
            std::sort(rows.begin(), rows.end(),
                      [](const Row &a, const Row &b) {
                          return std::tie(b.e.violations, b.e.syncs,
                                          a.w, a.e.storePc,
                                          a.e.loadPc) <
                                 std::tie(a.e.violations, a.e.syncs,
                                          b.w, b.e.storePc,
                                          b.e.loadPc);
                      });
            Table t;
            t.header = {cfg, "store PC", "load PC", "violations",
                        "syncs"};
            for (const Row &r : rows) {
                t.rows.push_back({r.w, fmtPc(r.e.storePc),
                                  fmtPc(r.e.loadPc),
                                  fmtU64(r.e.violations),
                                  fmtU64(r.e.syncs)});
            }
            capRows(t, top);
            s.tables.push_back(std::move(t));
        }
        if (s.tables.empty()) {
            s.paragraphs.push_back(
                "The profiled runs recorded no hot edges (no "
                "violations or synchronizations attributed).");
        }
        sections.push_back(std::move(s));
    }

    // ---- Sweep-level per-PC aggregation -----------------------------
    {
        struct PcAgg
        {
            uint64_t violations = 0;
            uint64_t syncs = 0;
            size_t runs = 0;
        };
        std::map<Addr, PcAgg> storeAgg, loadAgg;
        for (const auto &[key, rec] : idx.byKey) {
            if (!rec->run.depProfiled)
                continue;
            std::map<Addr, PcAgg> sLocal, lLocal;
            for (const HotEdge &e :
                 parseHotEdges(rec->run.depHotEdges)) {
                PcAgg &sa = sLocal[e.storePc];
                sa.violations += e.violations;
                sa.syncs += e.syncs;
                PcAgg &la = lLocal[e.loadPc];
                la.violations += e.violations;
                la.syncs += e.syncs;
            }
            for (const auto &[pc, a] : sLocal) {
                PcAgg &g = storeAgg[pc];
                g.violations += a.violations;
                g.syncs += a.syncs;
                ++g.runs;
            }
            for (const auto &[pc, a] : lLocal) {
                PcAgg &g = loadAgg[pc];
                g.violations += a.violations;
                g.syncs += a.syncs;
                ++g.runs;
            }
        }
        if (storeAgg.empty() && loadAgg.empty())
            return;

        struct PcRow { Addr pc; const char *role; PcAgg a; };
        std::vector<PcRow> rows;
        for (const auto &[pc, a] : loadAgg)
            rows.push_back({pc, "load", a});
        for (const auto &[pc, a] : storeAgg)
            rows.push_back({pc, "store", a});
        std::sort(rows.begin(), rows.end(),
                  [](const PcRow &a, const PcRow &b) {
                      if (a.a.violations != b.a.violations)
                          return a.a.violations > b.a.violations;
                      if (a.a.syncs != b.a.syncs)
                          return a.a.syncs > b.a.syncs;
                      int role = std::strcmp(a.role, b.role);
                      if (role != 0)
                          return role < 0;
                      return a.pc < b.pc;
                  });

        Section s;
        s.title = "Dependence hot spots by static PC";
        s.paragraphs.push_back(
            "Hot-edge violation and synchronization counts summed per "
            "static instruction across every profiled run in the "
            "sweep; \"runs\" is how many profiled runs involve the "
            "PC in that role.");
        Table t;
        t.header = {"static PC", "role", "violations", "syncs",
                    "runs"};
        for (const PcRow &r : rows) {
            t.rows.push_back({fmtPc(r.pc), r.role,
                              fmtU64(r.a.violations),
                              fmtU64(r.a.syncs), fmtU64(r.a.runs)});
        }
        capRows(t, top);
        s.tables.push_back(std::move(t));
        sections.push_back(std::move(s));
    }
}

} // anonymous namespace

bool
loadRunRecords(const std::string &path, std::vector<ReportRecord> &out,
               std::string *err, size_t *rejected)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = strfmt("cannot open %s", path.c_str());
        return false;
    }
    size_t bad = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (trim(line).empty())
            continue;
        std::map<std::string, std::string> fields;
        ReportRecord rec;
        if (!parseFlatJson(line, fields) ||
            !runRecordParse(fields, rec.run)) {
            ++bad;
            continue;
        }
        auto scale_it = fields.find("scale");
        if (scale_it != fields.end()) {
            errno = 0;
            char *end = nullptr;
            rec.scale =
                std::strtoull(scale_it->second.c_str(), &end, 10);
            if (end == scale_it->second.c_str() || *end != '\0' ||
                errno == ERANGE) {
                // A present-but-garbled scale is a malformed record,
                // not a silent scale-0 row that skews the summary.
                ++bad;
                continue;
            }
        }
        auto fp_it = fields.find("fp");
        if (fp_it != fields.end())
            rec.fp = fp_it->second;
        out.push_back(std::move(rec));
    }
    if (rejected)
        *rejected = bad;
    return true;
}

std::string
renderReport(const std::vector<ReportRecord> &records,
             ReportFormat format, size_t top)
{
    RecordIndex idx = indexRecords(records);
    std::vector<Section> sections;

    // ---- Summary -----------------------------------------------------
    {
        Section s;
        s.title = "Summary";
        size_t failed = 0;
        std::vector<uint64_t> scales;
        for (const auto &[key, rec] : idx.byKey) {
            if (!rec->run.ok)
                ++failed;
            if (std::find(scales.begin(), scales.end(), rec->scale) ==
                scales.end()) {
                scales.push_back(rec->scale);
            }
        }
        std::sort(scales.begin(), scales.end());
        std::string scale_txt;
        for (uint64_t sc : scales) {
            scale_txt += (scale_txt.empty() ? "" : ", ") +
                         strfmt("%llu",
                                static_cast<unsigned long long>(sc));
        }
        s.paragraphs.push_back(strfmt(
            "%zu run record(s): %zu workload(s) x %zu config(s), "
            "scale(s) %s, %zu failed run(s).",
            idx.byKey.size(), idx.workloads.size(), idx.configs.size(),
            scale_txt.c_str(), failed));
        sections.push_back(std::move(s));
    }

    // ---- IPC matrix --------------------------------------------------
    {
        Section s;
        s.title = "IPC by configuration";
        Table t;
        t.header.push_back("workload");
        for (const auto &cfg : idx.configs)
            t.header.push_back(cfg);
        for (const auto &w : idx.workloads) {
            std::vector<std::string> row = {w};
            for (const auto &cfg : idx.configs) {
                const ReportRecord *r = idx.find(w, cfg);
                if (!r)
                    row.push_back("-");
                else if (!r->run.ok)
                    row.push_back("FAILED");
                else
                    row.push_back(fmtIpc(r->run.ipc()));
            }
            t.rows.push_back(std::move(row));
        }
        s.tables.push_back(std::move(t));
        sections.push_back(std::move(s));
    }

    // ---- Figure 2: naive speculation vs no speculation vs oracle ----
    if (idx.hasConfig("NAS/NO") && idx.hasConfig("NAS/NAV") &&
        idx.hasConfig("NAS/ORACLE")) {
        Section s;
        s.title = "Figure 2: naive memory-dependence speculation";
        s.paragraphs.push_back(
            "Naive speculation (NAV) and the oracle relative to no "
            "speculation (NO) on the NAS machine; \"gap to ORACLE\" is "
            "how much of the remaining headroom NAV leaves on the "
            "table, and misspec is violations per committed load.");
        Table t;
        t.header = {"program", "NAS/NO", "NAS/NAV", "NAS/ORACLE",
                    "NAV/NO", "ORACLE/NO", "gap to ORACLE",
                    "NAV misspec"};
        for (const auto &w : idx.workloads) {
            double no = idx.ipc(w, "NAS/NO");
            double nav = idx.ipc(w, "NAS/NAV");
            double oracle = idx.ipc(w, "NAS/ORACLE");
            const ReportRecord *nav_r = idx.find(w, "NAS/NAV");
            t.rows.push_back(
                {w, fmtIpc(no), fmtIpc(nav), fmtIpc(oracle),
                 fmtRatio(no > 0 ? nav / no : nan_v),
                 fmtRatio(no > 0 ? oracle / no : nan_v),
                 fmtRatio(nav > 0 ? oracle / nav : nan_v),
                 nav_r ? fmtPct(nav_r->run.misspecRate(), 2) : "n/a"});
        }
        addSpeedupSummaryRows(t, idx, {"NAS/NAV", "NAS/ORACLE"},
                              "NAS/NO", 4);
        // The summary rows only fill the two speedup-over-NO columns;
        // pad the remainder so every row has the same width.
        for (auto &row : t.rows) {
            while (row.size() < t.header.size())
                row.push_back("");
        }
        s.tables.push_back(std::move(t));
        sections.push_back(std::move(s));
    }

    // ---- Figure 5: selective speculation and store barriers ---------
    if (idx.hasConfig("NAS/SEL") && idx.hasConfig("NAS/STORE") &&
        idx.hasConfig("NAS/NAV")) {
        Section s;
        s.title = "Figure 5: intelligent speculation (SEL, STORE)";
        s.paragraphs.push_back(
            "Selective speculation and store barriers relative to "
            "naive speculation. Misspec columns show how much "
            "miss-speculation each policy eliminates.");
        Table t;
        bool have_oracle = idx.hasConfig("NAS/ORACLE");
        t.header = {"program", "SEL/NAV", "STORE/NAV"};
        if (have_oracle)
            t.header.push_back("ORACLE/NAV");
        t.header.push_back("NAV misspec");
        t.header.push_back("SEL misspec");
        t.header.push_back("STORE misspec");
        for (const auto &w : idx.workloads) {
            double nav = idx.ipc(w, "NAS/NAV");
            std::vector<std::string> row = {
                w,
                fmtRatio(nav > 0 ? idx.ipc(w, "NAS/SEL") / nav : nan_v),
                fmtRatio(nav > 0 ? idx.ipc(w, "NAS/STORE") / nav
                                 : nan_v)};
            if (have_oracle) {
                row.push_back(fmtRatio(
                    nav > 0 ? idx.ipc(w, "NAS/ORACLE") / nav : nan_v));
            }
            for (const char *cfg :
                 {"NAS/NAV", "NAS/SEL", "NAS/STORE"}) {
                const ReportRecord *r = idx.find(w, cfg);
                row.push_back(r ? fmtPct(r->run.misspecRate(), 2)
                                : "n/a");
            }
            t.rows.push_back(std::move(row));
        }
        std::vector<std::string> nums = {"NAS/SEL", "NAS/STORE"};
        if (have_oracle)
            nums.push_back("NAS/ORACLE");
        addSpeedupSummaryRows(t, idx, nums, "NAS/NAV", 1);
        for (auto &row : t.rows) {
            while (row.size() < t.header.size())
                row.push_back("");
        }
        s.tables.push_back(std::move(t));
        sections.push_back(std::move(s));
    }

    // ---- Figure 6: speculation + synchronization --------------------
    if (idx.hasConfig("NAS/SYNC") && idx.hasConfig("NAS/NAV")) {
        Section s;
        s.title = "Figure 6: speculation + synchronization (SYNC)";
        s.paragraphs.push_back(
            "SYNC relative to naive speculation, against the oracle "
            "ceiling; \"captured\" is the fraction of the "
            "NAV-to-ORACLE gap that synchronization recovers.");
        Table t;
        bool have_oracle = idx.hasConfig("NAS/ORACLE");
        t.header = {"program", "SYNC/NAV"};
        if (have_oracle) {
            t.header.push_back("ORACLE/NAV");
            t.header.push_back("captured");
        }
        for (const auto &w : idx.workloads) {
            double nav = idx.ipc(w, "NAS/NAV");
            double sync = idx.ipc(w, "NAS/SYNC");
            std::vector<std::string> row = {
                w, fmtRatio(nav > 0 ? sync / nav : nan_v)};
            if (have_oracle) {
                double oracle = idx.ipc(w, "NAS/ORACLE");
                row.push_back(
                    fmtRatio(nav > 0 ? oracle / nav : nan_v));
                double gap = oracle - nav;
                row.push_back(gap > 0 ? fmtPct((sync - nav) / gap)
                                      : "n/a");
            }
            t.rows.push_back(std::move(row));
        }
        std::vector<std::string> nums = {"NAS/SYNC"};
        if (have_oracle)
            nums.push_back("NAS/ORACLE");
        addSpeedupSummaryRows(t, idx, nums, "NAS/NAV", 1);
        for (auto &row : t.rows) {
            while (row.size() < t.header.size())
                row.push_back("");
        }
        s.tables.push_back(std::move(t));
        sections.push_back(std::move(s));
    }

    // ---- CPI stacks --------------------------------------------------
    {
        // One table per config that carries schema-v3 accounting:
        // rows are workloads, columns the causes that are nonzero
        // anywhere under that config (plus "committed", always).
        Section s;
        s.title = "CPI stacks (commit-slot loss breakdown)";
        s.paragraphs.push_back(
            "Each cell is the share of commit slots (cycles x "
            "commitWidth) attributed to a cause; rows sum to 100%. "
            "Records from pre-v3 sweeps have no accounting and are "
            "omitted.");
        for (const auto &cfg : idx.configs) {
            std::vector<obs::CpiCause> causes;
            for (size_t i = 0; i < obs::num_cpi_causes; ++i) {
                auto cause = obs::CpiCause(i);
                bool nonzero = cause == obs::CpiCause::Committed;
                for (const auto &w : idx.workloads) {
                    const ReportRecord *r = idx.find(w, cfg);
                    if (r && r->run.ok && r->run.hasCpiStack() &&
                        r->run.cpiSlots[i] > 0) {
                        nonzero = true;
                        break;
                    }
                }
                if (nonzero)
                    causes.push_back(cause);
            }

            Table t;
            t.header.push_back(cfg);
            for (auto cause : causes)
                t.header.push_back(obs::toString(cause));
            for (const auto &w : idx.workloads) {
                const ReportRecord *r = idx.find(w, cfg);
                if (!r || !r->run.ok || !r->run.hasCpiStack())
                    continue;
                std::vector<std::string> row = {w};
                for (auto cause : causes)
                    row.push_back(fmtPct(r->run.cpiFraction(cause)));
                t.rows.push_back(std::move(row));
            }
            if (!t.rows.empty())
                s.tables.push_back(std::move(t));
        }
        if (s.tables.empty()) {
            s.paragraphs.push_back(
                "No records with CPI-stack data in this file.");
        }
        sections.push_back(std::move(s));
    }

    // ---- Dependence profiles (schema v5) -----------------------------
    addDepSections(sections, idx, top);

    // ---- Failed runs -------------------------------------------------
    {
        Table t;
        t.header = {"workload", "config", "kind", "error"};
        for (const auto &[key, rec] : idx.byKey) {
            if (!rec->run.ok) {
                std::string kind = rec->run.failLabel();
                if (rec->run.injectedHostFault)
                    kind += " [injected]";
                t.rows.push_back(
                    {rec->run.workload, rec->run.config,
                     std::move(kind), rec->run.error});
            }
        }
        if (!t.rows.empty()) {
            capRows(t, top);
            Section s;
            s.title = "Failed runs";
            s.tables.push_back(std::move(t));
            sections.push_back(std::move(s));
        }
    }

    return render("cwsim sweep report", sections, format);
}

std::string
renderDepProfile(const mdp::DepProfileFile &profile,
                 ReportFormat format, size_t top)
{
    std::vector<Section> sections;

    // ---- Profile summary --------------------------------------------
    {
        Section s;
        s.title = "Profile summary";
        s.paragraphs.push_back(strfmt(
            "%zu validated run block(s).", profile.runs().size()));
        Table t;
        t.header = {"run", "sim", "load PCs", "store PCs", "edges",
                    "MDPT PCs", "MDPT samples"};
        for (const mdp::DepProfileRun &r : profile.runs()) {
            t.rows.push_back({r.run, r.sim, fmtU64(r.loads.size()),
                              fmtU64(r.stores.size()),
                              fmtU64(r.edges.size()),
                              fmtU64(r.mdpt.size()),
                              fmtU64(r.mdptSamples.size())});
        }
        capRows(t, top);
        s.tables.push_back(std::move(t));
        sections.push_back(std::move(s));
    }

    for (const mdp::DepProfileRun &run : profile.runs()) {
        Section s;
        s.title = strfmt("Run: %s (%s)", run.run.c_str(),
                         run.sim.c_str());

        // ---- Hot edges with distance histograms ---------------------
        if (!run.edges.empty()) {
            struct Row
            {
                obs::DepEdgeKey key;
                const obs::DepEdgeCounters *e;
            };
            std::vector<Row> rows;
            for (const auto &[key, e] : run.edges)
                rows.push_back({key, &e});
            std::sort(rows.begin(), rows.end(),
                      [](const Row &a, const Row &b) {
                          uint64_t av = a.e->violations.value();
                          uint64_t bv = b.e->violations.value();
                          if (av != bv)
                              return av > bv;
                          uint64_t as = a.e->syncs.value();
                          uint64_t bs = b.e->syncs.value();
                          if (as != bs)
                              return as > bs;
                          return a.key < b.key;
                      });
            Table t;
            t.header = {"store PC", "load PC", "violations", "syncs",
                        "full", "partial", "window distance"};
            for (const Row &r : rows) {
                t.rows.push_back(
                    {fmtPc(r.key.first), fmtPc(r.key.second),
                     fmtU64(r.e->violations.value()),
                     fmtU64(r.e->syncs.value()),
                     fmtU64(r.e->fullOverlaps.value()),
                     fmtU64(r.e->partialOverlaps.value()),
                     fmtDistHistogram(r.e->dist)});
            }
            capRows(t, top);
            s.tables.push_back(std::move(t));
        } else {
            s.paragraphs.push_back("No dependence edges recorded.");
        }

        // ---- Most-involved load PCs ---------------------------------
        if (!run.loads.empty()) {
            struct Row
            {
                Addr pc;
                const obs::DepLoadCounters *c;
            };
            std::vector<Row> rows;
            for (const auto &[pc, c] : run.loads)
                rows.push_back({pc, &c});
            // "Involved" = touched by the dependence machinery at all;
            // rank by violations, then total held cycles, then volume.
            auto held = [](const obs::DepLoadCounters &c) {
                return c.syncWaits.value() + c.selHolds.value() +
                       c.barrierHolds.value();
            };
            std::sort(rows.begin(), rows.end(),
                      [&](const Row &a, const Row &b) {
                          uint64_t av = a.c->violations.value();
                          uint64_t bv = b.c->violations.value();
                          if (av != bv)
                              return av > bv;
                          uint64_t ah = held(*a.c), bh = held(*b.c);
                          if (ah != bh)
                              return ah > bh;
                          uint64_t ae = a.c->execs.value();
                          uint64_t be = b.c->execs.value();
                          if (ae != be)
                              return ae > be;
                          return a.pc < b.pc;
                      });
            Table t;
            t.header = {"load PC", "execs", "forwards", "replays",
                        "violations", "sync waits", "sel holds",
                        "barrier holds", "false dep", "stall cyc",
                        "true dep", "commits"};
            for (const Row &r : rows) {
                t.rows.push_back(
                    {fmtPc(r.pc), fmtU64(r.c->execs.value()),
                     fmtU64(r.c->forwards.value()),
                     fmtU64(r.c->replays.value()),
                     fmtU64(r.c->violations.value()),
                     fmtU64(r.c->syncWaits.value()),
                     fmtU64(r.c->selHolds.value()),
                     fmtU64(r.c->barrierHolds.value()),
                     fmtU64(r.c->falseDepLoads.value()),
                     fmtU64(r.c->falseDepCycles.value()),
                     fmtU64(r.c->trueDepLoads.value()),
                     fmtU64(r.c->commits.value())});
            }
            capRows(t, top);
            s.tables.push_back(std::move(t));
        }

        // ---- Most-involved store PCs --------------------------------
        if (!run.stores.empty()) {
            struct Row
            {
                Addr pc;
                const obs::DepStoreCounters *c;
            };
            std::vector<Row> rows;
            for (const auto &[pc, c] : run.stores)
                rows.push_back({pc, &c});
            std::sort(rows.begin(), rows.end(),
                      [](const Row &a, const Row &b) {
                          uint64_t av = a.c->violationsCaused.value();
                          uint64_t bv = b.c->violationsCaused.value();
                          if (av != bv)
                              return av > bv;
                          uint64_t ac = a.c->commits.value();
                          uint64_t bc = b.c->commits.value();
                          if (ac != bc)
                              return ac > bc;
                          return a.pc < b.pc;
                      });
            Table t;
            t.header = {"store PC", "commits", "violations caused",
                        "barriers", "sync produces"};
            for (const Row &r : rows) {
                t.rows.push_back(
                    {fmtPc(r.pc), fmtU64(r.c->commits.value()),
                     fmtU64(r.c->violationsCaused.value()),
                     fmtU64(r.c->barriers.value()),
                     fmtU64(r.c->syncProduces.value())});
            }
            capRows(t, top);
            s.tables.push_back(std::move(t));
        }

        // ---- MDPT per-PC introspection ------------------------------
        if (!run.mdpt.empty()) {
            struct Row
            {
                Addr pc;
                const obs::DepMdptCounters *c;
            };
            std::vector<Row> rows;
            for (const auto &[pc, c] : run.mdpt)
                rows.push_back({pc, &c});
            std::sort(rows.begin(), rows.end(),
                      [](const Row &a, const Row &b) {
                          uint64_t am = a.c->missSpecs.value();
                          uint64_t bm = b.c->missSpecs.value();
                          if (am != bm)
                              return am > bm;
                          uint64_t aa = a.c->allocs.value();
                          uint64_t ba = b.c->allocs.value();
                          if (aa != ba)
                              return aa > ba;
                          return a.pc < b.pc;
                      });
            Table t;
            t.header = {"MDPT PC", "allocs", "evicts", "pairs",
                        "merges", "miss specs"};
            for (const Row &r : rows) {
                t.rows.push_back(
                    {fmtPc(r.pc), fmtU64(r.c->allocs.value()),
                     fmtU64(r.c->evicts.value()),
                     fmtU64(r.c->pairs.value()),
                     fmtU64(r.c->merges.value()),
                     fmtU64(r.c->missSpecs.value())});
            }
            capRows(t, top);
            s.tables.push_back(std::move(t));
        }

        // ---- MDPT occupancy/confidence trajectory -------------------
        if (!run.mdptSamples.empty()) {
            Table t;
            t.header = {"cycle", "occupancy", "mean confidence"};
            for (const obs::DepMdptSample &ms : run.mdptSamples) {
                t.rows.push_back({fmtU64(ms.cycle),
                                  fmtU64(ms.occupancy),
                                  strfmt("%.3f", ms.meanConfidence)});
            }
            capRows(t, top);
            s.tables.push_back(std::move(t));
        }

        sections.push_back(std::move(s));
    }

    if (profile.runs().empty()) {
        Section s;
        s.title = "Profile summary";
        s.paragraphs.push_back("No validated run blocks.");
        sections.clear();
        sections.push_back(std::move(s));
    }

    return render("cwsim dependence profile", sections, format);
}

// ---------------------------------------------------------------------
// Stats diff.
// ---------------------------------------------------------------------

namespace
{

using RecordMap = std::map<std::string, const ReportRecord *>;

RecordMap
mapByRunKey(const std::vector<ReportRecord> &records)
{
    RecordMap out;
    for (const ReportRecord &r : records) {
        std::string key = strfmt(
            "%s %s (scale %llu)", r.run.workload.c_str(),
            r.run.config.c_str(),
            static_cast<unsigned long long>(r.scale));
        out[key] = &r; // later records win
    }
    return out;
}

void
diffField(DiffResult &d, const std::string &key, const char *field,
          const std::string &base, const std::string &cur)
{
    if (base != cur)
        d.drift.push_back({key, field, base, cur});
}

void
diffU64(DiffResult &d, const std::string &key, const char *field,
        uint64_t base, uint64_t cur)
{
    diffField(d, key, field,
              strfmt("%llu", static_cast<unsigned long long>(base)),
              strfmt("%llu", static_cast<unsigned long long>(cur)));
}

} // anonymous namespace

DiffResult
diffRunRecords(const std::vector<ReportRecord> &baseline,
               const std::vector<ReportRecord> &current)
{
    DiffResult d;
    RecordMap base = mapByRunKey(baseline);
    RecordMap cur = mapByRunKey(current);

    for (const auto &[key, b] : base) {
        auto it = cur.find(key);
        if (it == cur.end()) {
            ++d.baselineOnly;
            d.drift.push_back({key, "presence", "present", "missing"});
            continue;
        }
        const harness::RunResult &rb = b->run;
        const harness::RunResult &rc = it->second->run;
        ++d.compared;

        diffField(d, key, "ok", rb.ok ? "true" : "false",
                  rc.ok ? "true" : "false");
        diffField(d, key, "error", rb.error, rc.error);
        // Compare the failure class but not fail_detail: the detail
        // text can be host-dependent (signal spelling, limits), while
        // the kind must not drift.
        diffField(d, key, "fail_kind", harness::toString(rb.failKind),
                  harness::toString(rc.failKind));
        diffU64(d, key, "cycles", rb.cycles, rc.cycles);
        diffU64(d, key, "commits", rb.commits, rc.commits);
        diffU64(d, key, "committedLoads", rb.committedLoads,
                rc.committedLoads);
        diffU64(d, key, "committedStores", rb.committedStores,
                rc.committedStores);
        diffU64(d, key, "violations", rb.violations, rc.violations);
        diffU64(d, key, "replays", rb.replays, rc.replays);
        diffU64(d, key, "selectiveRecoveries", rb.selectiveRecoveries,
                rc.selectiveRecoveries);
        diffU64(d, key, "selectiveFallbacks", rb.selectiveFallbacks,
                rc.selectiveFallbacks);
        diffU64(d, key, "branchMispredicts", rb.branchMispredicts,
                rc.branchMispredicts);
        diffU64(d, key, "squashedInsts", rb.squashedInsts,
                rc.squashedInsts);
        diffU64(d, key, "falseDepLoads", rb.falseDepLoads,
                rc.falseDepLoads);
        // Compare the %.17g round-trip text: exact for identical
        // doubles, and NaN == NaN (a failed probe must not drift
        // against an identical failed probe).
        diffField(d, key, "falseDepLatency",
                  strfmt("%.17g", rb.falseDepLatency),
                  strfmt("%.17g", rc.falseDepLatency));
        diffU64(d, key, "injectedViolations", rb.injectedViolations,
                rc.injectedViolations);

        // The dep_* fields (schema v5) are deliberately NOT compared:
        // they are populated only when the host ran with --depprof /
        // CWSIM_DEPPROF, so a profiled current against an unprofiled
        // baseline would flag a host-configuration difference as stat
        // drift. The depprof bit-identity tests compare the profile
        // surface directly instead.

        // CPI stacks only compare when both records carry them: a
        // baseline captured before schema v3 cannot constrain them.
        if (rb.hasCpiStack() && rc.hasCpiStack()) {
            diffU64(d, key, "commit_width", rb.commitWidth,
                    rc.commitWidth);
            for (size_t i = 0; i < obs::num_cpi_causes; ++i) {
                std::string field =
                    std::string("cpi_") +
                    obs::statKey(obs::CpiCause(i));
                diffU64(d, key, field.c_str(), rb.cpiSlots[i],
                        rc.cpiSlots[i]);
            }
        } else {
            ++d.cpiSkipped;
        }
    }
    for (const auto &[key, c] : cur) {
        (void)c;
        if (!base.count(key)) {
            ++d.currentOnly;
            d.drift.push_back({key, "presence", "missing", "present"});
        }
    }
    return d;
}

std::string
formatDiff(const DiffResult &d)
{
    std::ostringstream os;
    os << strfmt("stats-diff: %zu run(s) compared, %zu drifting "
                 "field(s), %zu baseline-only, %zu current-only",
                 d.compared, d.drift.size() - d.baselineOnly -
                     d.currentOnly,
                 d.baselineOnly, d.currentOnly);
    if (d.cpiSkipped > 0) {
        os << strfmt(" (%zu run(s) without CPI data on one side)",
                     d.cpiSkipped);
    }
    os << "\n";
    for (const DriftEntry &e : d.drift) {
        os << strfmt("DRIFT %s: %s %s -> %s\n", e.key.c_str(),
                     e.field.c_str(), e.baseline.c_str(),
                     e.current.c_str());
    }
    if (d.clean())
        os << "no drift\n";
    return os.str();
}

size_t
reportFailures(const harness::FailureSummary &summary)
{
    if (summary.empty())
        return 0;
    const auto &fails = summary.failures;

    std::printf("\nFAILED RUNS (%zu):\n", fails.size());
    TextTable table;
    table.setHeader({"workload", "config", "kind", "error"});
    for (const auto &f : fails) {
        std::string kind = f.failLabel();
        if (f.injectedHostFault)
            kind += " [injected]";
        table.addRow({f.workload, f.config, kind, f.error});
    }
    std::fputs(table.toString().c_str(), stdout);
    if (summary.injected > 0) {
        std::printf("(%zu injected host fault(s) contained — not "
                    "counted as campaign failures)\n",
                    summary.injected);
    }

    // Each failure's diagnostic tail (last flight-recorder events),
    // so the report alone localizes the fault.
    for (const auto &f : fails) {
        if (f.diagnostic.empty())
            continue;
        std::printf("\n%s under %s — last events:\n",
                    f.workload.c_str(), f.config.c_str());
        for (const std::string &line : split(f.diagnostic, '\n'))
            std::printf("    %s\n", line.c_str());
    }
    return summary.unexpected();
}

size_t
reportFailures(const harness::Runner &runner)
{
    return reportFailures(harness::collectFailures(runner));
}

} // namespace sweep
} // namespace cwsim
