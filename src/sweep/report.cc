#include "sweep/report.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "base/str.hh"
#include "obs/cpi_stack.hh"
#include "sim/table.hh"
#include "sweep/jsonl.hh"
#include "sweep/run_cache.hh"
#include "workloads/workload.hh"

namespace cwsim
{
namespace sweep
{

namespace
{

// ---------------------------------------------------------------------
// Format-agnostic section/table model. The report is assembled once
// and rendered as markdown or HTML from the same data, so the two
// formats cannot drift apart.
// ---------------------------------------------------------------------

struct Table
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

struct Section
{
    std::string title;
    std::vector<std::string> paragraphs;
    std::vector<Table> tables;
};

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          default: out += c;
        }
    }
    return out;
}

void
renderTableMd(std::ostringstream &os, const Table &t)
{
    os << "|";
    for (const auto &h : t.header)
        os << " " << h << " |";
    os << "\n|";
    for (size_t i = 0; i < t.header.size(); ++i)
        os << (i == 0 ? " :--- |" : " ---: |");
    os << "\n";
    for (const auto &row : t.rows) {
        os << "|";
        for (const auto &cell : row)
            os << " " << cell << " |";
        os << "\n";
    }
    os << "\n";
}

void
renderTableHtml(std::ostringstream &os, const Table &t)
{
    os << "<table>\n<tr>";
    for (const auto &h : t.header)
        os << "<th>" << htmlEscape(h) << "</th>";
    os << "</tr>\n";
    for (const auto &row : t.rows) {
        os << "<tr>";
        for (const auto &cell : row)
            os << "<td>" << htmlEscape(cell) << "</td>";
        os << "</tr>\n";
    }
    os << "</table>\n";
}

std::string
render(const std::string &title, const std::vector<Section> &sections,
       ReportFormat format)
{
    std::ostringstream os;
    if (format == ReportFormat::Html) {
        os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
           << "<title>" << htmlEscape(title) << "</title>\n"
           << "<style>body{font-family:sans-serif;margin:2em}"
           << "table{border-collapse:collapse;margin:1em 0}"
           << "th,td{border:1px solid #999;padding:2px 8px;"
           << "text-align:right}"
           << "th:first-child,td:first-child{text-align:left}"
           << "</style></head><body>\n"
           << "<h1>" << htmlEscape(title) << "</h1>\n";
        for (const Section &s : sections) {
            os << "<h2>" << htmlEscape(s.title) << "</h2>\n";
            for (const auto &p : s.paragraphs)
                os << "<p>" << htmlEscape(p) << "</p>\n";
            for (const Table &t : s.tables)
                renderTableHtml(os, t);
        }
        os << "</body></html>\n";
    } else {
        os << "# " << title << "\n\n";
        for (const Section &s : sections) {
            os << "## " << s.title << "\n\n";
            for (const auto &p : s.paragraphs)
                os << p << "\n\n";
            for (const Table &t : s.tables)
                renderTableMd(os, t);
        }
    }
    return os.str();
}

// ---------------------------------------------------------------------
// Report assembly helpers.
// ---------------------------------------------------------------------

constexpr double nan_v = std::numeric_limits<double>::quiet_NaN();

/** Quiet geomean over positive finite entries (NaN when none). */
double
quietGeomean(const std::vector<double> &values)
{
    double log_sum = 0;
    size_t used = 0;
    for (double v : values) {
        if (std::isfinite(v) && v > 0) {
            log_sum += std::log(v);
            ++used;
        }
    }
    return used ? std::exp(log_sum / used) : nan_v;
}

std::string
fmtIpc(double ipc)
{
    return std::isnan(ipc) ? "n/a" : strfmt("%.3f", ipc);
}

std::string
fmtRatio(double ratio)
{
    if (std::isnan(ratio))
        return "n/a";
    return strfmt("%+.1f%%", (ratio - 1.0) * 100.0);
}

std::string
fmtPct(double fraction, int decimals = 1)
{
    if (std::isnan(fraction))
        return "n/a";
    return strfmt("%.*f%%", decimals, fraction * 100.0);
}

/** The per-key latest record, preserving first-appearance orders. */
struct RecordIndex
{
    std::vector<std::string> workloads; ///< First-appearance order.
    std::vector<std::string> configs;   ///< First-appearance order.
    /** (workload, config) -> latest record. */
    std::map<std::pair<std::string, std::string>,
             const ReportRecord *> byKey;

    const ReportRecord *
    find(const std::string &w, const std::string &c) const
    {
        auto it = byKey.find({w, c});
        return it == byKey.end() ? nullptr : it->second;
    }

    double
    ipc(const std::string &w, const std::string &c) const
    {
        const ReportRecord *r = find(w, c);
        return r ? r->run.ipc() : nan_v;
    }

    bool
    hasConfig(const std::string &c) const
    {
        return std::find(configs.begin(), configs.end(), c) !=
               configs.end();
    }
};

RecordIndex
indexRecords(const std::vector<ReportRecord> &records)
{
    RecordIndex idx;
    for (const ReportRecord &r : records) {
        auto key = std::make_pair(r.run.workload, r.run.config);
        if (!idx.byKey.count(key)) {
            if (std::find(idx.workloads.begin(), idx.workloads.end(),
                          r.run.workload) == idx.workloads.end()) {
                idx.workloads.push_back(r.run.workload);
            }
            if (!idx.hasConfig(r.run.config))
                idx.configs.push_back(r.run.config);
        }
        idx.byKey[key] = &r; // later records win
    }
    return idx;
}

/** Geomean rows (int / fp / all) for a vector-valued ratio column. */
std::vector<double>
ratios(const RecordIndex &idx, const std::vector<std::string> &names,
       const std::string &num_cfg, const std::string &den_cfg)
{
    std::vector<double> out;
    for (const auto &w : names) {
        double num = idx.ipc(w, num_cfg);
        double den = idx.ipc(w, den_cfg);
        out.push_back(den > 0 ? num / den : nan_v);
    }
    return out;
}

/** Workloads of @p group that appear in the index, index order. */
std::vector<std::string>
presentOf(const RecordIndex &idx, const std::vector<std::string> &group)
{
    std::vector<std::string> out;
    for (const auto &w : idx.workloads) {
        if (std::find(group.begin(), group.end(), w) != group.end())
            out.push_back(w);
    }
    return out;
}

void
addSpeedupSummaryRows(Table &t, const RecordIndex &idx,
                      const std::vector<std::string> &num_cfgs,
                      const std::string &den_cfg, size_t lead_cols)
{
    struct Group { const char *label; std::vector<std::string> names; };
    std::vector<Group> groups = {
        {"geomean (int)", presentOf(idx, workloads::intNames())},
        {"geomean (fp)", presentOf(idx, workloads::fpNames())},
        {"geomean (all)", idx.workloads},
    };
    for (const Group &g : groups) {
        if (g.names.empty())
            continue;
        std::vector<std::string> row = {g.label};
        for (size_t i = 1; i < lead_cols; ++i)
            row.push_back("");
        for (const auto &cfg : num_cfgs) {
            row.push_back(
                fmtRatio(quietGeomean(ratios(idx, g.names, cfg,
                                             den_cfg))));
        }
        t.rows.push_back(std::move(row));
    }
}

} // anonymous namespace

bool
loadRunRecords(const std::string &path, std::vector<ReportRecord> &out,
               std::string *err, size_t *rejected)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = strfmt("cannot open %s", path.c_str());
        return false;
    }
    size_t bad = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (trim(line).empty())
            continue;
        std::map<std::string, std::string> fields;
        ReportRecord rec;
        if (!parseFlatJson(line, fields) ||
            !runRecordParse(fields, rec.run)) {
            ++bad;
            continue;
        }
        auto scale_it = fields.find("scale");
        if (scale_it != fields.end()) {
            errno = 0;
            char *end = nullptr;
            rec.scale =
                std::strtoull(scale_it->second.c_str(), &end, 10);
            if (end == scale_it->second.c_str() || *end != '\0' ||
                errno == ERANGE) {
                // A present-but-garbled scale is a malformed record,
                // not a silent scale-0 row that skews the summary.
                ++bad;
                continue;
            }
        }
        auto fp_it = fields.find("fp");
        if (fp_it != fields.end())
            rec.fp = fp_it->second;
        out.push_back(std::move(rec));
    }
    if (rejected)
        *rejected = bad;
    return true;
}

std::string
renderReport(const std::vector<ReportRecord> &records,
             ReportFormat format)
{
    RecordIndex idx = indexRecords(records);
    std::vector<Section> sections;

    // ---- Summary -----------------------------------------------------
    {
        Section s;
        s.title = "Summary";
        size_t failed = 0;
        std::vector<uint64_t> scales;
        for (const auto &[key, rec] : idx.byKey) {
            if (!rec->run.ok)
                ++failed;
            if (std::find(scales.begin(), scales.end(), rec->scale) ==
                scales.end()) {
                scales.push_back(rec->scale);
            }
        }
        std::sort(scales.begin(), scales.end());
        std::string scale_txt;
        for (uint64_t sc : scales) {
            scale_txt += (scale_txt.empty() ? "" : ", ") +
                         strfmt("%llu",
                                static_cast<unsigned long long>(sc));
        }
        s.paragraphs.push_back(strfmt(
            "%zu run record(s): %zu workload(s) x %zu config(s), "
            "scale(s) %s, %zu failed run(s).",
            idx.byKey.size(), idx.workloads.size(), idx.configs.size(),
            scale_txt.c_str(), failed));
        sections.push_back(std::move(s));
    }

    // ---- IPC matrix --------------------------------------------------
    {
        Section s;
        s.title = "IPC by configuration";
        Table t;
        t.header.push_back("workload");
        for (const auto &cfg : idx.configs)
            t.header.push_back(cfg);
        for (const auto &w : idx.workloads) {
            std::vector<std::string> row = {w};
            for (const auto &cfg : idx.configs) {
                const ReportRecord *r = idx.find(w, cfg);
                if (!r)
                    row.push_back("-");
                else if (!r->run.ok)
                    row.push_back("FAILED");
                else
                    row.push_back(fmtIpc(r->run.ipc()));
            }
            t.rows.push_back(std::move(row));
        }
        s.tables.push_back(std::move(t));
        sections.push_back(std::move(s));
    }

    // ---- Figure 2: naive speculation vs no speculation vs oracle ----
    if (idx.hasConfig("NAS/NO") && idx.hasConfig("NAS/NAV") &&
        idx.hasConfig("NAS/ORACLE")) {
        Section s;
        s.title = "Figure 2: naive memory-dependence speculation";
        s.paragraphs.push_back(
            "Naive speculation (NAV) and the oracle relative to no "
            "speculation (NO) on the NAS machine; \"gap to ORACLE\" is "
            "how much of the remaining headroom NAV leaves on the "
            "table, and misspec is violations per committed load.");
        Table t;
        t.header = {"program", "NAS/NO", "NAS/NAV", "NAS/ORACLE",
                    "NAV/NO", "ORACLE/NO", "gap to ORACLE",
                    "NAV misspec"};
        for (const auto &w : idx.workloads) {
            double no = idx.ipc(w, "NAS/NO");
            double nav = idx.ipc(w, "NAS/NAV");
            double oracle = idx.ipc(w, "NAS/ORACLE");
            const ReportRecord *nav_r = idx.find(w, "NAS/NAV");
            t.rows.push_back(
                {w, fmtIpc(no), fmtIpc(nav), fmtIpc(oracle),
                 fmtRatio(no > 0 ? nav / no : nan_v),
                 fmtRatio(no > 0 ? oracle / no : nan_v),
                 fmtRatio(nav > 0 ? oracle / nav : nan_v),
                 nav_r ? fmtPct(nav_r->run.misspecRate(), 2) : "n/a"});
        }
        addSpeedupSummaryRows(t, idx, {"NAS/NAV", "NAS/ORACLE"},
                              "NAS/NO", 4);
        // The summary rows only fill the two speedup-over-NO columns;
        // pad the remainder so every row has the same width.
        for (auto &row : t.rows) {
            while (row.size() < t.header.size())
                row.push_back("");
        }
        s.tables.push_back(std::move(t));
        sections.push_back(std::move(s));
    }

    // ---- Figure 5: selective speculation and store barriers ---------
    if (idx.hasConfig("NAS/SEL") && idx.hasConfig("NAS/STORE") &&
        idx.hasConfig("NAS/NAV")) {
        Section s;
        s.title = "Figure 5: intelligent speculation (SEL, STORE)";
        s.paragraphs.push_back(
            "Selective speculation and store barriers relative to "
            "naive speculation. Misspec columns show how much "
            "miss-speculation each policy eliminates.");
        Table t;
        bool have_oracle = idx.hasConfig("NAS/ORACLE");
        t.header = {"program", "SEL/NAV", "STORE/NAV"};
        if (have_oracle)
            t.header.push_back("ORACLE/NAV");
        t.header.push_back("NAV misspec");
        t.header.push_back("SEL misspec");
        t.header.push_back("STORE misspec");
        for (const auto &w : idx.workloads) {
            double nav = idx.ipc(w, "NAS/NAV");
            std::vector<std::string> row = {
                w,
                fmtRatio(nav > 0 ? idx.ipc(w, "NAS/SEL") / nav : nan_v),
                fmtRatio(nav > 0 ? idx.ipc(w, "NAS/STORE") / nav
                                 : nan_v)};
            if (have_oracle) {
                row.push_back(fmtRatio(
                    nav > 0 ? idx.ipc(w, "NAS/ORACLE") / nav : nan_v));
            }
            for (const char *cfg :
                 {"NAS/NAV", "NAS/SEL", "NAS/STORE"}) {
                const ReportRecord *r = idx.find(w, cfg);
                row.push_back(r ? fmtPct(r->run.misspecRate(), 2)
                                : "n/a");
            }
            t.rows.push_back(std::move(row));
        }
        std::vector<std::string> nums = {"NAS/SEL", "NAS/STORE"};
        if (have_oracle)
            nums.push_back("NAS/ORACLE");
        addSpeedupSummaryRows(t, idx, nums, "NAS/NAV", 1);
        for (auto &row : t.rows) {
            while (row.size() < t.header.size())
                row.push_back("");
        }
        s.tables.push_back(std::move(t));
        sections.push_back(std::move(s));
    }

    // ---- Figure 6: speculation + synchronization --------------------
    if (idx.hasConfig("NAS/SYNC") && idx.hasConfig("NAS/NAV")) {
        Section s;
        s.title = "Figure 6: speculation + synchronization (SYNC)";
        s.paragraphs.push_back(
            "SYNC relative to naive speculation, against the oracle "
            "ceiling; \"captured\" is the fraction of the "
            "NAV-to-ORACLE gap that synchronization recovers.");
        Table t;
        bool have_oracle = idx.hasConfig("NAS/ORACLE");
        t.header = {"program", "SYNC/NAV"};
        if (have_oracle) {
            t.header.push_back("ORACLE/NAV");
            t.header.push_back("captured");
        }
        for (const auto &w : idx.workloads) {
            double nav = idx.ipc(w, "NAS/NAV");
            double sync = idx.ipc(w, "NAS/SYNC");
            std::vector<std::string> row = {
                w, fmtRatio(nav > 0 ? sync / nav : nan_v)};
            if (have_oracle) {
                double oracle = idx.ipc(w, "NAS/ORACLE");
                row.push_back(
                    fmtRatio(nav > 0 ? oracle / nav : nan_v));
                double gap = oracle - nav;
                row.push_back(gap > 0 ? fmtPct((sync - nav) / gap)
                                      : "n/a");
            }
            t.rows.push_back(std::move(row));
        }
        std::vector<std::string> nums = {"NAS/SYNC"};
        if (have_oracle)
            nums.push_back("NAS/ORACLE");
        addSpeedupSummaryRows(t, idx, nums, "NAS/NAV", 1);
        for (auto &row : t.rows) {
            while (row.size() < t.header.size())
                row.push_back("");
        }
        s.tables.push_back(std::move(t));
        sections.push_back(std::move(s));
    }

    // ---- CPI stacks --------------------------------------------------
    {
        // One table per config that carries schema-v3 accounting:
        // rows are workloads, columns the causes that are nonzero
        // anywhere under that config (plus "committed", always).
        Section s;
        s.title = "CPI stacks (commit-slot loss breakdown)";
        s.paragraphs.push_back(
            "Each cell is the share of commit slots (cycles x "
            "commitWidth) attributed to a cause; rows sum to 100%. "
            "Records from pre-v3 sweeps have no accounting and are "
            "omitted.");
        for (const auto &cfg : idx.configs) {
            std::vector<obs::CpiCause> causes;
            for (size_t i = 0; i < obs::num_cpi_causes; ++i) {
                auto cause = obs::CpiCause(i);
                bool nonzero = cause == obs::CpiCause::Committed;
                for (const auto &w : idx.workloads) {
                    const ReportRecord *r = idx.find(w, cfg);
                    if (r && r->run.ok && r->run.hasCpiStack() &&
                        r->run.cpiSlots[i] > 0) {
                        nonzero = true;
                        break;
                    }
                }
                if (nonzero)
                    causes.push_back(cause);
            }

            Table t;
            t.header.push_back(cfg);
            for (auto cause : causes)
                t.header.push_back(obs::toString(cause));
            for (const auto &w : idx.workloads) {
                const ReportRecord *r = idx.find(w, cfg);
                if (!r || !r->run.ok || !r->run.hasCpiStack())
                    continue;
                std::vector<std::string> row = {w};
                for (auto cause : causes)
                    row.push_back(fmtPct(r->run.cpiFraction(cause)));
                t.rows.push_back(std::move(row));
            }
            if (!t.rows.empty())
                s.tables.push_back(std::move(t));
        }
        if (s.tables.empty()) {
            s.paragraphs.push_back(
                "No records with CPI-stack data in this file.");
        }
        sections.push_back(std::move(s));
    }

    // ---- Failed runs -------------------------------------------------
    {
        Table t;
        t.header = {"workload", "config", "kind", "error"};
        for (const auto &[key, rec] : idx.byKey) {
            if (!rec->run.ok) {
                std::string kind = rec->run.failLabel();
                if (rec->run.injectedHostFault)
                    kind += " [injected]";
                t.rows.push_back(
                    {rec->run.workload, rec->run.config,
                     std::move(kind), rec->run.error});
            }
        }
        if (!t.rows.empty()) {
            Section s;
            s.title = "Failed runs";
            s.tables.push_back(std::move(t));
            sections.push_back(std::move(s));
        }
    }

    return render("cwsim sweep report", sections, format);
}

// ---------------------------------------------------------------------
// Stats diff.
// ---------------------------------------------------------------------

namespace
{

using RecordMap = std::map<std::string, const ReportRecord *>;

RecordMap
mapByRunKey(const std::vector<ReportRecord> &records)
{
    RecordMap out;
    for (const ReportRecord &r : records) {
        std::string key = strfmt(
            "%s %s (scale %llu)", r.run.workload.c_str(),
            r.run.config.c_str(),
            static_cast<unsigned long long>(r.scale));
        out[key] = &r; // later records win
    }
    return out;
}

void
diffField(DiffResult &d, const std::string &key, const char *field,
          const std::string &base, const std::string &cur)
{
    if (base != cur)
        d.drift.push_back({key, field, base, cur});
}

void
diffU64(DiffResult &d, const std::string &key, const char *field,
        uint64_t base, uint64_t cur)
{
    diffField(d, key, field,
              strfmt("%llu", static_cast<unsigned long long>(base)),
              strfmt("%llu", static_cast<unsigned long long>(cur)));
}

} // anonymous namespace

DiffResult
diffRunRecords(const std::vector<ReportRecord> &baseline,
               const std::vector<ReportRecord> &current)
{
    DiffResult d;
    RecordMap base = mapByRunKey(baseline);
    RecordMap cur = mapByRunKey(current);

    for (const auto &[key, b] : base) {
        auto it = cur.find(key);
        if (it == cur.end()) {
            ++d.baselineOnly;
            d.drift.push_back({key, "presence", "present", "missing"});
            continue;
        }
        const harness::RunResult &rb = b->run;
        const harness::RunResult &rc = it->second->run;
        ++d.compared;

        diffField(d, key, "ok", rb.ok ? "true" : "false",
                  rc.ok ? "true" : "false");
        diffField(d, key, "error", rb.error, rc.error);
        // Compare the failure class but not fail_detail: the detail
        // text can be host-dependent (signal spelling, limits), while
        // the kind must not drift.
        diffField(d, key, "fail_kind", harness::toString(rb.failKind),
                  harness::toString(rc.failKind));
        diffU64(d, key, "cycles", rb.cycles, rc.cycles);
        diffU64(d, key, "commits", rb.commits, rc.commits);
        diffU64(d, key, "committedLoads", rb.committedLoads,
                rc.committedLoads);
        diffU64(d, key, "committedStores", rb.committedStores,
                rc.committedStores);
        diffU64(d, key, "violations", rb.violations, rc.violations);
        diffU64(d, key, "replays", rb.replays, rc.replays);
        diffU64(d, key, "selectiveRecoveries", rb.selectiveRecoveries,
                rc.selectiveRecoveries);
        diffU64(d, key, "selectiveFallbacks", rb.selectiveFallbacks,
                rc.selectiveFallbacks);
        diffU64(d, key, "branchMispredicts", rb.branchMispredicts,
                rc.branchMispredicts);
        diffU64(d, key, "squashedInsts", rb.squashedInsts,
                rc.squashedInsts);
        diffU64(d, key, "falseDepLoads", rb.falseDepLoads,
                rc.falseDepLoads);
        // Compare the %.17g round-trip text: exact for identical
        // doubles, and NaN == NaN (a failed probe must not drift
        // against an identical failed probe).
        diffField(d, key, "falseDepLatency",
                  strfmt("%.17g", rb.falseDepLatency),
                  strfmt("%.17g", rc.falseDepLatency));
        diffU64(d, key, "injectedViolations", rb.injectedViolations,
                rc.injectedViolations);

        // CPI stacks only compare when both records carry them: a
        // baseline captured before schema v3 cannot constrain them.
        if (rb.hasCpiStack() && rc.hasCpiStack()) {
            diffU64(d, key, "commit_width", rb.commitWidth,
                    rc.commitWidth);
            for (size_t i = 0; i < obs::num_cpi_causes; ++i) {
                std::string field =
                    std::string("cpi_") +
                    obs::statKey(obs::CpiCause(i));
                diffU64(d, key, field.c_str(), rb.cpiSlots[i],
                        rc.cpiSlots[i]);
            }
        } else {
            ++d.cpiSkipped;
        }
    }
    for (const auto &[key, c] : cur) {
        (void)c;
        if (!base.count(key)) {
            ++d.currentOnly;
            d.drift.push_back({key, "presence", "missing", "present"});
        }
    }
    return d;
}

std::string
formatDiff(const DiffResult &d)
{
    std::ostringstream os;
    os << strfmt("stats-diff: %zu run(s) compared, %zu drifting "
                 "field(s), %zu baseline-only, %zu current-only",
                 d.compared, d.drift.size() - d.baselineOnly -
                     d.currentOnly,
                 d.baselineOnly, d.currentOnly);
    if (d.cpiSkipped > 0) {
        os << strfmt(" (%zu run(s) without CPI data on one side)",
                     d.cpiSkipped);
    }
    os << "\n";
    for (const DriftEntry &e : d.drift) {
        os << strfmt("DRIFT %s: %s %s -> %s\n", e.key.c_str(),
                     e.field.c_str(), e.baseline.c_str(),
                     e.current.c_str());
    }
    if (d.clean())
        os << "no drift\n";
    return os.str();
}

size_t
reportFailures(const harness::FailureSummary &summary)
{
    if (summary.empty())
        return 0;
    const auto &fails = summary.failures;

    std::printf("\nFAILED RUNS (%zu):\n", fails.size());
    TextTable table;
    table.setHeader({"workload", "config", "kind", "error"});
    for (const auto &f : fails) {
        std::string kind = f.failLabel();
        if (f.injectedHostFault)
            kind += " [injected]";
        table.addRow({f.workload, f.config, kind, f.error});
    }
    std::fputs(table.toString().c_str(), stdout);
    if (summary.injected > 0) {
        std::printf("(%zu injected host fault(s) contained — not "
                    "counted as campaign failures)\n",
                    summary.injected);
    }

    // Each failure's diagnostic tail (last flight-recorder events),
    // so the report alone localizes the fault.
    for (const auto &f : fails) {
        if (f.diagnostic.empty())
            continue;
        std::printf("\n%s under %s — last events:\n",
                    f.workload.c_str(), f.config.c_str());
        for (const std::string &line : split(f.diagnostic, '\n'))
            std::printf("    %s\n", line.c_str());
    }
    return summary.unexpected();
}

size_t
reportFailures(const harness::Runner &runner)
{
    return reportFailures(harness::collectFailures(runner));
}

} // namespace sweep
} // namespace cwsim
