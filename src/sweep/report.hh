/**
 * @file
 * Host-side sweep-report toolchain: load sweep JSONL files (the run
 * cache / --json export format), render them as human-readable
 * markdown or HTML reports reproducing the paper's fig2/fig5/fig6
 * tables with per-policy CPI-stack loss breakdowns, and diff two
 * JSONL files field-by-field to flag any simulated-stat drift.
 *
 * The diff deliberately ignores host-side profiling fields (wall_ms,
 * sim_cycles_per_sec, cache_hit, diagnostic): two runs of the same
 * simulator build must compare clean on any machine at any --jobs
 * count, which is what the CI stats-diff job asserts against a
 * committed golden file.
 */

#ifndef CWSIM_SWEEP_REPORT_HH
#define CWSIM_SWEEP_REPORT_HH

#include <cstddef>
#include <string>
#include <vector>

#include "harness/harness.hh"
#include "mdp/dep_profile.hh"

namespace cwsim
{
namespace sweep
{

/** One JSONL line, parsed: the run plus its record envelope. */
struct ReportRecord
{
    harness::RunResult run;
    uint64_t scale = 0;
    std::string fp; ///< Fingerprint hex text (may be empty).
};

/**
 * Load every parseable record of a sweep JSONL file, in file order.
 * Unparseable lines are skipped and counted into @p rejected (when
 * non-null). Returns false with @p err set only when the file itself
 * cannot be read.
 */
bool loadRunRecords(const std::string &path,
                    std::vector<ReportRecord> &out, std::string *err,
                    size_t *rejected = nullptr);

enum class ReportFormat { Markdown, Html };

/**
 * Render @p records as a self-contained report: an IPC matrix over
 * every (workload, config) present, the paper's Figure 2 / 5 / 6
 * comparison tables when the relevant configs are present, per-config
 * CPI-stack loss breakdowns (schema-v3 records only), hot dependence
 * edges (schema-v5 records carrying a profile summary), and a
 * failed-run table.
 *
 * @param top Per-table row cap for the unbounded tables (hot edges,
 *        per-PC aggregations); a "rows dropped" footer reports what
 *        the cap cut. 0 means unlimited. The fixed-shape paper tables
 *        (one row per workload) are never capped.
 */
std::string renderReport(const std::vector<ReportRecord> &records,
                         ReportFormat format, size_t top = 20);

/**
 * Render a validated .depprof.jsonl profile (see mdp::DepProfileFile)
 * as a standalone report: per-run summary, the hottest dependence
 * edges with their distance histograms, the most-involved load and
 * store PCs, and the MDPT occupancy/confidence trajectory.
 *
 * @param top Row cap per table, "rows dropped" footer as above.
 */
std::string renderDepProfile(const mdp::DepProfileFile &profile,
                             ReportFormat format, size_t top = 20);

/** One drifting field of one (workload, config, scale) run. */
struct DriftEntry
{
    std::string key; ///< "workload config (scale N)"
    std::string field;
    std::string baseline;
    std::string current;
};

struct DiffResult
{
    size_t compared = 0;     ///< Runs present in both files.
    size_t baselineOnly = 0; ///< Runs missing from the current file.
    size_t currentOnly = 0;  ///< Runs missing from the baseline file.
    /** Runs whose CPI stacks were not compared (one side pre-v3). */
    size_t cpiSkipped = 0;
    std::vector<DriftEntry> drift;

    /** No drifting fields and the same run population on both sides. */
    bool
    clean() const
    {
        return drift.empty() && baselineOnly == 0 && currentOnly == 0;
    }
};

/**
 * Compare two record sets keyed by (workload, config, scale),
 * field-by-field over every simulated stat (counters, ok/error, the
 * CPI stack when both sides carry one). Host-profiling fields are
 * ignored. Within one file, a later record for the same key supersedes
 * an earlier one (the run-cache "later records win" rule).
 */
DiffResult diffRunRecords(const std::vector<ReportRecord> &baseline,
                          const std::vector<ReportRecord> &current);

/** Human-readable drift summary, one line per drifting field. */
std::string formatDiff(const DiffResult &diff);

/**
 * Render @p summary as the FAILED RUNS table (with per-failure
 * diagnostic tails) to stdout; no-op when empty. Rows marked
 * injectedHostFault are tagged "[injected]" and excluded from the
 * return value. This is the rendering half of
 * harness::collectFailures(): the harness stays a pure library and
 * every table lives on the reporting side.
 * @return summary.unexpected(), so bench mains can exit non-zero.
 */
size_t reportFailures(const harness::FailureSummary &summary);

/** Convenience overload: collect from @p runner, then render. */
size_t reportFailures(const harness::Runner &runner);

} // namespace sweep
} // namespace cwsim

#endif // CWSIM_SWEEP_REPORT_HH
