#include "sweep/run_cache.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>

#include "base/logging.hh"
#include "base/str.hh"
#include "sweep/jsonl.hh"

namespace cwsim
{
namespace sweep
{

namespace
{

constexpr uint64_t fnv_offset = 0xcbf29ce484222325ull;
constexpr uint64_t fnv_prime = 0x100000001b3ull;

uint64_t
fnv1a(uint64_t hash, const std::string &data)
{
    for (unsigned char c : data) {
        hash ^= c;
        hash *= fnv_prime;
    }
    return hash;
}

bool
getU64(const std::map<std::string, std::string> &fields,
       const char *key, uint64_t &out)
{
    auto it = fields.find(key);
    if (it == fields.end() || it->second.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(it->second.c_str(), &end, 10);
    return *end == '\0' && errno != ERANGE;
}

bool
getF64(const std::map<std::string, std::string> &fields,
       const char *key, double &out)
{
    auto it = fields.find(key);
    if (it == fields.end() || it->second.empty())
        return false;
    if (it->second == "nan") {
        out = std::numeric_limits<double>::quiet_NaN();
        return true;
    }
    char *end = nullptr;
    out = std::strtod(it->second.c_str(), &end);
    return *end == '\0';
}

bool
getStr(const std::map<std::string, std::string> &fields,
       const char *key, std::string &out)
{
    auto it = fields.find(key);
    if (it == fields.end())
        return false;
    out = it->second;
    return true;
}

} // anonymous namespace

uint64_t
fingerprintRun(const std::string &workload, uint64_t scale,
               const SimConfig &cfg)
{
    uint64_t hash = fnv_offset;
    hash = fnv1a(hash, workload);
    hash = fnv1a(hash, strfmt("\nscale=%llu\n",
                              static_cast<unsigned long long>(scale)));
    hash = fnv1a(hash, serializeConfig(cfg));
    return hash;
}

std::string
runRecordLine(const harness::RunResult &r, uint64_t fp, uint64_t scale)
{
    JsonObject obj;
    obj.add("v", static_cast<uint64_t>(run_record_version))
        .add("fp", strfmt("%016llx",
                          static_cast<unsigned long long>(fp)))
        .add("workload", r.workload)
        .add("config", r.config)
        .add("scale", scale)
        .add("ok", r.ok)
        .add("error", r.error)
        .add("cycles", r.cycles)
        .add("commits", r.commits)
        .add("committedLoads", r.committedLoads)
        .add("committedStores", r.committedStores)
        .add("violations", r.violations)
        .add("replays", r.replays)
        .add("selectiveRecoveries", r.selectiveRecoveries)
        .add("selectiveFallbacks", r.selectiveFallbacks)
        .add("branchMispredicts", r.branchMispredicts)
        .add("squashedInsts", r.squashedInsts)
        .add("falseDepLoads", r.falseDepLoads)
        .add("falseDepLatency", r.falseDepLatency)
        .add("injectedViolations", r.injectedViolations)
        .add("ipc", r.ipc())
        // v2 host-profiling and diagnostic fields. wall_ms and
        // sim_cycles_per_sec vary run to run; determinism comparisons
        // must ignore them.
        .add("wall_ms", r.wallMs)
        // queue_ms rides along as a schema-compatible extra field
        // (readers ignore unknown keys; runRecordParse treats it as
        // optional), so no version bump is needed.
        .add("queue_ms", r.queueMs)
        .add("sim_cycles_per_sec", r.simCyclesPerSec())
        .add("cache_hit", r.cacheHit)
        .add("diagnostic", r.diagnostic);
    // v4 failure taxonomy (--isolate classification).
    obj.add("fail_kind", harness::toString(r.failKind))
        .add("fail_detail", r.failDetail)
        .add("fail_injected", r.injectedHostFault);
    // v3 commit-slot accounting. commit_width == 0 round-trips the
    // "predates the accounting" marker for records rebuilt from older
    // caches.
    obj.add("commit_width", static_cast<uint64_t>(r.commitWidth));
    for (size_t i = 0; i < obs::num_cpi_causes; ++i) {
        obj.add(std::string("cpi_") + obs::statKey(obs::CpiCause(i)),
                r.cpiSlots[i]);
    }
    // v5 dependence-profile summary. Host-adjacent (only filled when
    // profiling was enabled for the run), so diffRunRecords leaves
    // these out of the simulated-field comparison.
    obj.add("dep_profiled", r.depProfiled)
        .add("dep_loads", r.depLoads)
        .add("dep_stores", r.depStores)
        .add("dep_edges", r.depEdges)
        .add("dep_hot_edges", r.depHotEdges);
    return obj.str();
}

bool
runRecordParse(const std::map<std::string, std::string> &fields,
               harness::RunResult &out)
{
    // Older records lack the fields later schemas added; every prior
    // version stays readable with those fields defaulted so a schema
    // bump never invalidates a warm cache. Future (unknown) versions
    // are rejected: their semantics are unknowable here.
    uint64_t version = 0;
    if (!getU64(fields, "v", version) || version < 1 ||
        version > run_record_version) {
        return false;
    }

    harness::RunResult r;
    auto okField = fields.find("ok");
    if (okField == fields.end())
        return false;
    if (okField->second == "true")
        r.ok = true;
    else if (okField->second == "false")
        r.ok = false;
    else
        return false;

    bool valid = getStr(fields, "workload", r.workload) &&
                 getStr(fields, "config", r.config) &&
                 getStr(fields, "error", r.error) &&
                 getU64(fields, "cycles", r.cycles) &&
                 getU64(fields, "commits", r.commits) &&
                 getU64(fields, "committedLoads", r.committedLoads) &&
                 getU64(fields, "committedStores",
                        r.committedStores) &&
                 getU64(fields, "violations", r.violations) &&
                 getU64(fields, "replays", r.replays) &&
                 getU64(fields, "selectiveRecoveries",
                        r.selectiveRecoveries) &&
                 getU64(fields, "selectiveFallbacks",
                        r.selectiveFallbacks) &&
                 getU64(fields, "branchMispredicts",
                        r.branchMispredicts) &&
                 getU64(fields, "squashedInsts", r.squashedInsts) &&
                 getU64(fields, "falseDepLoads", r.falseDepLoads) &&
                 getF64(fields, "falseDepLatency",
                        r.falseDepLatency) &&
                 getU64(fields, "injectedViolations",
                        r.injectedViolations);
    if (!valid)
        return false;

    if (version >= 2) {
        if (!getF64(fields, "wall_ms", r.wallMs) ||
            !getStr(fields, "diagnostic", r.diagnostic)) {
            return false;
        }
        // Optional queue-wait split; records written before it
        // existed simply leave it 0.
        getF64(fields, "queue_ms", r.queueMs);
        auto hit = fields.find("cache_hit");
        if (hit == fields.end())
            return false;
        if (hit->second == "true")
            r.cacheHit = true;
        else if (hit->second == "false")
            r.cacheHit = false;
        else
            return false;
    }

    // Pre-v4 records predate process isolation: the only failure class
    // that existed was the in-process SimError.
    r.failKind = r.ok ? harness::FailKind::None
                      : harness::FailKind::SimError;
    if (version >= 4) {
        std::string kind;
        if (!getStr(fields, "fail_kind", kind) ||
            !harness::failKindFromString(kind, r.failKind) ||
            !getStr(fields, "fail_detail", r.failDetail)) {
            return false;
        }
        auto injected = fields.find("fail_injected");
        if (injected == fields.end())
            return false;
        if (injected->second == "true")
            r.injectedHostFault = true;
        else if (injected->second == "false")
            r.injectedHostFault = false;
        else
            return false;
    }

    if (version >= 3) {
        uint64_t width = 0;
        if (!getU64(fields, "commit_width", width) ||
            width > std::numeric_limits<unsigned>::max()) {
            return false;
        }
        r.commitWidth = static_cast<unsigned>(width);
        for (size_t i = 0; i < obs::num_cpi_causes; ++i) {
            std::string key =
                std::string("cpi_") + obs::statKey(obs::CpiCause(i));
            if (!getU64(fields, key.c_str(), r.cpiSlots[i]))
                return false;
        }
    }

    if (version >= 5) {
        auto profiled = fields.find("dep_profiled");
        if (profiled == fields.end())
            return false;
        if (profiled->second == "true")
            r.depProfiled = true;
        else if (profiled->second == "false")
            r.depProfiled = false;
        else
            return false;
        if (!getU64(fields, "dep_loads", r.depLoads) ||
            !getU64(fields, "dep_stores", r.depStores) ||
            !getU64(fields, "dep_edges", r.depEdges) ||
            !getStr(fields, "dep_hot_edges", r.depHotEdges)) {
            return false;
        }
    }

    out = r;
    return true;
}

namespace
{

/**
 * One scanned line of a cache file. Torn tails (an unterminated,
 * unparseable final line — the signature of a writer killed
 * mid-append) are reported separately from corruption because they are
 * expected after a dirty shutdown and must not alarm anyone.
 */
struct ScanVisitor
{
    /** Called per parsed record, raw line included (for compaction). */
    std::function<void(uint64_t fp, uint64_t scale,
                       const harness::RunResult &,
                       const std::string &line)> onRecord;
    size_t lines = 0;
    size_t rejected = 0;
    bool tornTail = false;
    bool ioError = false;
};

void
scanCacheFile(const std::string &path, ScanVisitor &v)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        v.ioError = true;
        return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    if (in.bad()) {
        v.ioError = true;
        return;
    }

    size_t pos = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        bool terminated = nl != std::string::npos;
        std::string line = text.substr(
            pos, terminated ? nl - pos : std::string::npos);
        pos = terminated ? nl + 1 : text.size();
        if (trim(line).empty())
            continue;
        ++v.lines;

        std::map<std::string, std::string> fields;
        harness::RunResult r;
        uint64_t fp = 0;
        if (!parseFlatJson(line, fields) ||
            !runRecordParse(fields, r) ||
            fields.find("fp") == fields.end() ||
            std::sscanf(fields.at("fp").c_str(), "%llx",
                        reinterpret_cast<unsigned long long *>(&fp)) !=
                1) {
            if (!terminated) {
                // Torn trailing line: skip silently, the next append
                // repairs the file.
                v.tornTail = true;
                --v.lines;
            } else {
                ++v.rejected;
            }
            continue;
        }
        uint64_t scale = 0;
        getU64(fields, "scale", scale);
        if (v.onRecord)
            v.onRecord(fp, scale, r, line);
    }
}

/** write(2) all of @p data to @p fd, retrying partial writes/EINTR. */
bool
writeFully(int fd, const char *data, size_t len)
{
    while (len > 0) {
        ssize_t n = ::write(fd, data, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

} // anonymous namespace

RunCache::RunCache(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("run cache: cannot create %s (%s); caching disabled "
             "for this process", dir.c_str(), ec.message().c_str());
        return;
    }
    filePath = dir + "/runs.jsonl";

    ScanVisitor v;
    v.onRecord = [&](uint64_t fp, uint64_t scale,
                     const harness::RunResult &r,
                     const std::string &) { entries[fp] = {r, scale}; };
    scanCacheFile(filePath, v);
    if (v.rejected > 0) {
        warn("run cache: ignored %zu unparseable record(s) in %s "
             "(stale schema or corruption); they will be recomputed",
             v.rejected, filePath.c_str());
    }

    // O_RDWR, not O_WRONLY: append() pread()s the last byte to detect
    // (and repair) a torn tail, which a write-only descriptor forbids.
    fd = ::open(filePath.c_str(),
                O_RDWR | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
        warn("run cache: cannot open %s for append (%s); new results "
             "will not persist", filePath.c_str(),
             std::strerror(errno));
    }
}

RunCache::~RunCache()
{
    if (fd >= 0)
        ::close(fd);
}

bool
RunCache::lookup(uint64_t fp, harness::RunResult &out) const
{
    auto it = entries.find(fp);
    if (it == entries.end())
        return false;
    out = it->second.run;
    return true;
}

void
RunCache::forEach(
    const std::function<void(uint64_t, uint64_t,
                             const harness::RunResult &)> &fn) const
{
    for (const auto &[fp, entry] : entries)
        fn(fp, entry.scale, entry.run);
}

void
RunCache::append(uint64_t fp, uint64_t scale,
                 const harness::RunResult &r)
{
    {
        std::lock_guard<std::mutex> lock(appendMutex);
        entries[fp] = {r, scale};
    }
    if (fd < 0)
        return; // cache directory was unusable

    std::string line = runRecordLine(r, fp, scale);
    line += '\n';

    std::lock_guard<std::mutex> lock(appendMutex);
    // flock() excludes other processes; the mutex above excludes other
    // threads of this one (they share this fd, so flock alone is a
    // no-op between them).
    while (::flock(fd, LOCK_EX) < 0 && errno == EINTR) {
    }
    // Repair a torn tail left by a writer that died mid-append: if the
    // file does not end in a newline, lead with one so this record
    // cannot be glued onto the truncated line. The newline travels in
    // the same single write so the repair is as atomic as the append.
    struct stat st;
    char last = '\n';
    if (::fstat(fd, &st) == 0 && st.st_size > 0 &&
        ::pread(fd, &last, 1, st.st_size - 1) == 1 && last != '\n') {
        line.insert(line.begin(), '\n');
    }
    // One write(2): O_APPEND makes the offset update atomic, so
    // concurrent appenders cannot interleave bytes within a record.
    if (!writeFully(fd, line.data(), line.size())) {
        warn("run cache: append to %s failed (%s)", filePath.c_str(),
             std::strerror(errno));
    } else if (::fdatasync(fd) < 0 && errno != EINVAL &&
               errno != ENOSYS) {
        warn("run cache: fdatasync of %s failed (%s)",
             filePath.c_str(), std::strerror(errno));
    }
    while (::flock(fd, LOCK_UN) < 0 && errno == EINTR) {
    }
}

std::string
CacheFsckReport::summary() const
{
    if (ioError)
        return "cache-fsck: cannot read cache file";
    std::string s = strfmt(
        "cache-fsck: %zu record line(s): %zu valid (%zu distinct, "
        "%zu superseded), %zu unparseable", lines, valid, distinct(),
        duplicates, unparseable);
    if (tornTail)
        s += ", torn trailing line (will be repaired on next append)";
    return s;
}

CacheFsckReport
fsckRunCache(const std::string &dir)
{
    CacheFsckReport rep;
    std::string path = dir + "/runs.jsonl";
    if (!std::filesystem::exists(path))
        return rep; // a cold cache is trivially clean

    std::map<uint64_t, size_t> seen;
    ScanVisitor v;
    v.onRecord = [&](uint64_t fp, uint64_t, const harness::RunResult &,
                     const std::string &) {
        ++rep.valid;
        if (++seen[fp] > 1)
            ++rep.duplicates;
    };
    scanCacheFile(path, v);
    rep.lines = v.lines;
    rep.unparseable = v.rejected;
    rep.tornTail = v.tornTail;
    rep.ioError = v.ioError;
    return rep;
}

bool
compactRunCache(const std::string &dir, std::string *err,
                CacheFsckReport *report)
{
    std::string path = dir + "/runs.jsonl";
    if (!std::filesystem::exists(path)) {
        if (report)
            *report = CacheFsckReport{};
        return true; // nothing to compact
    }

    // Hold the same advisory lock appenders take, so the snapshot we
    // rewrite cannot have a record added mid-copy — and rewrite the
    // SAME inode (truncate + rewrite) rather than renaming a temp file
    // over it: a live writer's O_APPEND descriptor then keeps landing
    // records in the surviving file. The flock is held across the
    // whole truncate-to-fdatasync window, so no appender can observe
    // (or write into) a half-rewritten file.
    int rw_fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
    if (rw_fd < 0) {
        if (err)
            *err = strfmt("cannot open %s: %s", path.c_str(),
                          std::strerror(errno));
        return false;
    }
    while (::flock(rw_fd, LOCK_EX) < 0 && errno == EINTR) {
    }

    // Newest record per fingerprint, kept in first-appearance order so
    // compaction is deterministic.
    std::vector<uint64_t> order;
    std::map<uint64_t, std::string> newest;
    ScanVisitor v;
    v.onRecord = [&](uint64_t fp, uint64_t, const harness::RunResult &,
                     const std::string &line) {
        if (!newest.count(fp))
            order.push_back(fp);
        newest[fp] = line;
    };
    scanCacheFile(path, v);
    if (report) {
        *report = fsckRunCache(dir);
    }
    if (v.ioError) {
        ::close(rw_fd);
        if (err)
            *err = strfmt("cannot read %s", path.c_str());
        return false;
    }

    // Keep a sidecar backup of the compacted bytes before truncating,
    // so a crash mid-rewrite cannot lose the corpus: the backup is
    // complete (and fsync'd) before the original shrinks.
    std::string compacted;
    for (uint64_t fp : order) {
        compacted += newest[fp];
        compacted += '\n';
    }
    std::string bak = path + ".compact.bak";
    {
        std::ofstream out(bak, std::ios::trunc | std::ios::binary);
        if (!out ||
            !out.write(compacted.data(),
                       static_cast<std::streamsize>(compacted.size()))
                 .flush()) {
            ::close(rw_fd);
            if (err)
                *err = strfmt("cannot write %s", bak.c_str());
            return false;
        }
    }

    bool okWrite = ::ftruncate(rw_fd, 0) == 0;
    size_t off = 0;
    while (okWrite && off < compacted.size()) {
        ssize_t n = ::pwrite(rw_fd, compacted.data() + off,
                             compacted.size() - off,
                             static_cast<off_t>(off));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            okWrite = false;
            break;
        }
        off += static_cast<size_t>(n);
    }
    if (okWrite && ::fdatasync(rw_fd) < 0 && errno != EINVAL &&
        errno != ENOSYS) {
        okWrite = false;
    }
    while (::flock(rw_fd, LOCK_UN) < 0 && errno == EINTR) {
    }
    ::close(rw_fd);
    if (!okWrite) {
        if (err) {
            *err = strfmt("in-place rewrite of %s failed (%s); "
                          "compacted copy preserved at %s",
                          path.c_str(), std::strerror(errno),
                          bak.c_str());
        }
        return false;
    }
    std::error_code ec;
    std::filesystem::remove(bak, ec);
    return true;
}

} // namespace sweep
} // namespace cwsim
