#include "sweep/run_cache.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>

#include "base/logging.hh"
#include "base/str.hh"
#include "sweep/jsonl.hh"

namespace cwsim
{
namespace sweep
{

namespace
{

constexpr uint64_t fnv_offset = 0xcbf29ce484222325ull;
constexpr uint64_t fnv_prime = 0x100000001b3ull;

uint64_t
fnv1a(uint64_t hash, const std::string &data)
{
    for (unsigned char c : data) {
        hash ^= c;
        hash *= fnv_prime;
    }
    return hash;
}

bool
getU64(const std::map<std::string, std::string> &fields,
       const char *key, uint64_t &out)
{
    auto it = fields.find(key);
    if (it == fields.end() || it->second.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(it->second.c_str(), &end, 10);
    return *end == '\0' && errno != ERANGE;
}

bool
getF64(const std::map<std::string, std::string> &fields,
       const char *key, double &out)
{
    auto it = fields.find(key);
    if (it == fields.end() || it->second.empty())
        return false;
    if (it->second == "nan") {
        out = std::numeric_limits<double>::quiet_NaN();
        return true;
    }
    char *end = nullptr;
    out = std::strtod(it->second.c_str(), &end);
    return *end == '\0';
}

bool
getStr(const std::map<std::string, std::string> &fields,
       const char *key, std::string &out)
{
    auto it = fields.find(key);
    if (it == fields.end())
        return false;
    out = it->second;
    return true;
}

} // anonymous namespace

uint64_t
fingerprintRun(const std::string &workload, uint64_t scale,
               const SimConfig &cfg)
{
    uint64_t hash = fnv_offset;
    hash = fnv1a(hash, workload);
    hash = fnv1a(hash, strfmt("\nscale=%llu\n",
                              static_cast<unsigned long long>(scale)));
    hash = fnv1a(hash, serializeConfig(cfg));
    return hash;
}

std::string
runRecordLine(const harness::RunResult &r, uint64_t fp, uint64_t scale)
{
    JsonObject obj;
    obj.add("v", static_cast<uint64_t>(run_record_version))
        .add("fp", strfmt("%016llx",
                          static_cast<unsigned long long>(fp)))
        .add("workload", r.workload)
        .add("config", r.config)
        .add("scale", scale)
        .add("ok", r.ok)
        .add("error", r.error)
        .add("cycles", r.cycles)
        .add("commits", r.commits)
        .add("committedLoads", r.committedLoads)
        .add("committedStores", r.committedStores)
        .add("violations", r.violations)
        .add("replays", r.replays)
        .add("selectiveRecoveries", r.selectiveRecoveries)
        .add("selectiveFallbacks", r.selectiveFallbacks)
        .add("branchMispredicts", r.branchMispredicts)
        .add("squashedInsts", r.squashedInsts)
        .add("falseDepLoads", r.falseDepLoads)
        .add("falseDepLatency", r.falseDepLatency)
        .add("injectedViolations", r.injectedViolations)
        .add("ipc", r.ipc())
        // v2 host-profiling and diagnostic fields. wall_ms and
        // sim_cycles_per_sec vary run to run; determinism comparisons
        // must ignore them.
        .add("wall_ms", r.wallMs)
        .add("sim_cycles_per_sec", r.simCyclesPerSec())
        .add("cache_hit", r.cacheHit)
        .add("diagnostic", r.diagnostic);
    // v3 commit-slot accounting. commit_width == 0 round-trips the
    // "predates the accounting" marker for records rebuilt from older
    // caches.
    obj.add("commit_width", static_cast<uint64_t>(r.commitWidth));
    for (size_t i = 0; i < obs::num_cpi_causes; ++i) {
        obj.add(std::string("cpi_") + obs::statKey(obs::CpiCause(i)),
                r.cpiSlots[i]);
    }
    return obj.str();
}

bool
runRecordParse(const std::map<std::string, std::string> &fields,
               harness::RunResult &out)
{
    // Older records lack the fields later schemas added; every prior
    // version stays readable with those fields defaulted so a schema
    // bump never invalidates a warm cache. Future (unknown) versions
    // are rejected: their semantics are unknowable here.
    uint64_t version = 0;
    if (!getU64(fields, "v", version) || version < 1 ||
        version > run_record_version) {
        return false;
    }

    harness::RunResult r;
    auto okField = fields.find("ok");
    if (okField == fields.end())
        return false;
    if (okField->second == "true")
        r.ok = true;
    else if (okField->second == "false")
        r.ok = false;
    else
        return false;

    bool valid = getStr(fields, "workload", r.workload) &&
                 getStr(fields, "config", r.config) &&
                 getStr(fields, "error", r.error) &&
                 getU64(fields, "cycles", r.cycles) &&
                 getU64(fields, "commits", r.commits) &&
                 getU64(fields, "committedLoads", r.committedLoads) &&
                 getU64(fields, "committedStores",
                        r.committedStores) &&
                 getU64(fields, "violations", r.violations) &&
                 getU64(fields, "replays", r.replays) &&
                 getU64(fields, "selectiveRecoveries",
                        r.selectiveRecoveries) &&
                 getU64(fields, "selectiveFallbacks",
                        r.selectiveFallbacks) &&
                 getU64(fields, "branchMispredicts",
                        r.branchMispredicts) &&
                 getU64(fields, "squashedInsts", r.squashedInsts) &&
                 getU64(fields, "falseDepLoads", r.falseDepLoads) &&
                 getF64(fields, "falseDepLatency",
                        r.falseDepLatency) &&
                 getU64(fields, "injectedViolations",
                        r.injectedViolations);
    if (!valid)
        return false;

    if (version >= 2) {
        if (!getF64(fields, "wall_ms", r.wallMs) ||
            !getStr(fields, "diagnostic", r.diagnostic)) {
            return false;
        }
        auto hit = fields.find("cache_hit");
        if (hit == fields.end())
            return false;
        if (hit->second == "true")
            r.cacheHit = true;
        else if (hit->second == "false")
            r.cacheHit = false;
        else
            return false;
    }

    if (version >= 3) {
        uint64_t width = 0;
        if (!getU64(fields, "commit_width", width) ||
            width > std::numeric_limits<unsigned>::max()) {
            return false;
        }
        r.commitWidth = static_cast<unsigned>(width);
        for (size_t i = 0; i < obs::num_cpi_causes; ++i) {
            std::string key =
                std::string("cpi_") + obs::statKey(obs::CpiCause(i));
            if (!getU64(fields, key.c_str(), r.cpiSlots[i]))
                return false;
        }
    }

    out = r;
    return true;
}

RunCache::RunCache(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("run cache: cannot create %s (%s); caching disabled "
             "for this process", dir.c_str(), ec.message().c_str());
        return;
    }
    filePath = dir + "/runs.jsonl";

    std::ifstream in(filePath);
    if (!in)
        return; // cold cache
    std::string line;
    size_t rejected = 0;
    while (std::getline(in, line)) {
        if (trim(line).empty())
            continue;
        std::map<std::string, std::string> fields;
        harness::RunResult r;
        uint64_t fp = 0;
        if (!parseFlatJson(line, fields) ||
            !runRecordParse(fields, r) ||
            fields.find("fp") == fields.end() ||
            std::sscanf(fields.at("fp").c_str(), "%llx",
                        reinterpret_cast<unsigned long long *>(&fp)) !=
                1) {
            ++rejected;
            continue;
        }
        entries[fp] = r;
    }
    if (rejected > 0) {
        warn("run cache: ignored %zu unparseable record(s) in %s "
             "(stale schema or corruption); they will be recomputed",
             rejected, filePath.c_str());
    }
}

bool
RunCache::lookup(uint64_t fp, harness::RunResult &out) const
{
    auto it = entries.find(fp);
    if (it == entries.end())
        return false;
    out = it->second;
    return true;
}

void
RunCache::append(uint64_t fp, uint64_t scale,
                 const harness::RunResult &r)
{
    entries[fp] = r;
    if (filePath.empty())
        return; // cache directory was unusable
    std::ofstream out(filePath, std::ios::app);
    if (!out) {
        warn("run cache: cannot append to %s", filePath.c_str());
        return;
    }
    out << runRecordLine(r, fp, scale) << '\n';
}

} // namespace sweep
} // namespace cwsim
