/**
 * @file
 * The on-disk run cache behind the sweep engine.
 *
 * Every (workload, scale, SimConfig) triple is fingerprinted — a
 * 64-bit FNV-1a hash over the workload name, the dynamic-instruction
 * scale, and the exhaustive serializeConfig() text, so ANY config
 * field (including check.* and fault-injection knobs) that changes the
 * simulation changes the key. Completed RunResults are appended to
 * <dir>/runs.jsonl, one flat JSON object per line; re-running a bench
 * or resuming an interrupted sweep then skips every run whose
 * fingerprint is already present. Entries with unknown schema
 * versions, malformed JSON, or stale fingerprints are silently
 * ignored (and recomputed) — a poisoned cache can cost time, never
 * correctness.
 */

#ifndef CWSIM_SWEEP_RUN_CACHE_HH
#define CWSIM_SWEEP_RUN_CACHE_HH

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "harness/harness.hh"
#include "sim/config.hh"

namespace cwsim
{
namespace sweep
{

/**
 * Cache-entry schema; bump when RunResult's serialized shape changes.
 * v5 added the dependence-profile summary (dep_profiled, dep_loads,
 * dep_stores, dep_edges, dep_hot_edges — filled only when CWSIM_DEPPROF
 * / --depprof was on for the run); v4 added the failure taxonomy
 * (fail_kind, fail_detail, fail_injected) introduced with the
 * --isolate executor; v3 added the commit-slot CPI stack (commit_width
 * + one cpi_* field per obs::CpiCause); v2 added host-profiling
 * (wall_ms, sim_cycles_per_sec, cache_hit) and the failure diagnostic.
 * Older records are still accepted on read with the newer fields
 * defaulted — a v1/v2 record parses with commit_width == 0 ("CPI stack
 * unknown", never zero loss), a pre-v4 record's fail_kind is derived
 * from its ok flag (none when ok, sim_error otherwise — the only
 * failure class that existed before process isolation), and a pre-v5
 * record simply carries no dependence profile (dep_profiled == false).
 */
constexpr unsigned run_record_version = 5;

/** Fingerprint of one run: workload name + scale + full config. */
uint64_t fingerprintRun(const std::string &workload, uint64_t scale,
                        const SimConfig &cfg);

/** One JSONL record for @p r (also the exported-results format). */
std::string runRecordLine(const harness::RunResult &r, uint64_t fp,
                          uint64_t scale);

/**
 * Rebuild a RunResult from a parsed record. Returns false when the
 * record is from another schema version or any field is missing or
 * malformed.
 */
bool runRecordParse(const std::map<std::string, std::string> &fields,
                    harness::RunResult &out);

/**
 * Crash-safe against dirty shutdowns and concurrent writers: appends
 * are a single write(2) to an O_APPEND descriptor under an advisory
 * flock, followed by an explicit fdatasync, so two processes sweeping
 * into the same cache directory can never interleave record bytes and
 * a record is durable before append() returns. A process killed
 * mid-append leaves at most one torn trailing line, which reload
 * silently skips (it is expected damage, not corruption) and the next
 * append repairs by prefixing a newline.
 */
class RunCache
{
  public:
    /**
     * Open (creating if needed) the cache under @p dir and index every
     * parseable record of <dir>/runs.jsonl. Later records win, so a
     * re-run after a schema bump supersedes old lines in place.
     */
    explicit RunCache(const std::string &dir);
    ~RunCache();

    RunCache(const RunCache &) = delete;
    RunCache &operator=(const RunCache &) = delete;

    /** Look up a completed run; true and fills @p out on a hit. */
    bool lookup(uint64_t fp, harness::RunResult &out) const;

    /**
     * Append @p r under @p fp: one atomic O_APPEND write under flock,
     * fdatasync'd before return. Thread-safe.
     */
    void append(uint64_t fp, uint64_t scale,
                const harness::RunResult &r);

    /**
     * Visit every indexed entry in fingerprint order (the corpus a
     * daemon serves to `cwsim-report --connect`). Reflects this
     * process's view: records loaded at open plus its own appends.
     */
    void forEach(const std::function<void(uint64_t fp, uint64_t scale,
                                          const harness::RunResult &)>
                     &fn) const;

    size_t size() const { return entries.size(); }
    const std::string &path() const { return filePath; }

  private:
    struct Entry
    {
        harness::RunResult run;
        uint64_t scale = 0;
    };

    std::string filePath;
    int fd = -1; ///< O_RDWR|O_APPEND|O_CLOEXEC; -1 when unusable.
    std::mutex appendMutex; ///< flock() excludes processes, not threads.
    std::map<uint64_t, Entry> entries;
};

/** What fsckRunCache() found in a cache file. */
struct CacheFsckReport
{
    size_t lines = 0;       ///< Non-blank lines examined.
    size_t valid = 0;       ///< Parseable, current-or-older schema.
    size_t unparseable = 0; ///< Garbage / unknown schema (torn tail excluded).
    size_t duplicates = 0;  ///< Valid records superseded by a later one.
    bool tornTail = false;  ///< Final line truncated (no newline, unparseable).
    bool ioError = false;   ///< The file could not be read.

    size_t distinct() const { return valid - duplicates; }
    /** Nothing but valid records (a torn tail is expected damage). */
    bool clean() const { return unparseable == 0 && !ioError; }
    std::string summary() const;
};

/** Scan <dir>/runs.jsonl without modifying it. */
CacheFsckReport fsckRunCache(const std::string &dir);

/**
 * Rewrite <dir>/runs.jsonl keeping only the newest valid record per
 * fingerprint (first-appearance order). The rewrite happens in place —
 * truncate + rewrite of the SAME inode under the advisory flock every
 * appender takes — so it is safe while a live writer (a daemon, a
 * concurrent bench) holds the cache open: its O_APPEND descriptor
 * keeps landing records in the surviving file instead of a renamed-
 * away orphan. Returns false with @p err set on I/O failure.
 */
bool compactRunCache(const std::string &dir, std::string *err = nullptr,
                     CacheFsckReport *report = nullptr);

} // namespace sweep
} // namespace cwsim

#endif // CWSIM_SWEEP_RUN_CACHE_HH
