/**
 * @file
 * The on-disk run cache behind the sweep engine.
 *
 * Every (workload, scale, SimConfig) triple is fingerprinted — a
 * 64-bit FNV-1a hash over the workload name, the dynamic-instruction
 * scale, and the exhaustive serializeConfig() text, so ANY config
 * field (including check.* and fault-injection knobs) that changes the
 * simulation changes the key. Completed RunResults are appended to
 * <dir>/runs.jsonl, one flat JSON object per line; re-running a bench
 * or resuming an interrupted sweep then skips every run whose
 * fingerprint is already present. Entries with unknown schema
 * versions, malformed JSON, or stale fingerprints are silently
 * ignored (and recomputed) — a poisoned cache can cost time, never
 * correctness.
 */

#ifndef CWSIM_SWEEP_RUN_CACHE_HH
#define CWSIM_SWEEP_RUN_CACHE_HH

#include <map>
#include <string>
#include <vector>

#include "harness/harness.hh"
#include "sim/config.hh"

namespace cwsim
{
namespace sweep
{

/**
 * Cache-entry schema; bump when RunResult's serialized shape changes.
 * v3 added the commit-slot CPI stack (commit_width + one cpi_* field
 * per obs::CpiCause); v2 added host-profiling (wall_ms,
 * sim_cycles_per_sec, cache_hit) and the failure diagnostic. v1/v2
 * records are still accepted on read with the newer fields defaulted —
 * a v1/v2 record parses with commit_width == 0, which RunResult treats
 * as "CPI stack unknown", never as zero loss.
 */
constexpr unsigned run_record_version = 3;

/** Fingerprint of one run: workload name + scale + full config. */
uint64_t fingerprintRun(const std::string &workload, uint64_t scale,
                        const SimConfig &cfg);

/** One JSONL record for @p r (also the exported-results format). */
std::string runRecordLine(const harness::RunResult &r, uint64_t fp,
                          uint64_t scale);

/**
 * Rebuild a RunResult from a parsed record. Returns false when the
 * record is from another schema version or any field is missing or
 * malformed.
 */
bool runRecordParse(const std::map<std::string, std::string> &fields,
                    harness::RunResult &out);

class RunCache
{
  public:
    /**
     * Open (creating if needed) the cache under @p dir and index every
     * parseable record of <dir>/runs.jsonl. Later records win, so a
     * re-run after a schema bump supersedes old lines in place.
     */
    explicit RunCache(const std::string &dir);

    /** Look up a completed run; true and fills @p out on a hit. */
    bool lookup(uint64_t fp, harness::RunResult &out) const;

    /** Append @p r under @p fp (durable once the stream flushes). */
    void append(uint64_t fp, uint64_t scale,
                const harness::RunResult &r);

    size_t size() const { return entries.size(); }
    const std::string &path() const { return filePath; }

  private:
    std::string filePath;
    std::map<uint64_t, harness::RunResult> entries;
};

} // namespace sweep
} // namespace cwsim

#endif // CWSIM_SWEEP_RUN_CACHE_HH
