#include "sweep/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>

#include "base/logging.hh"
#include "base/str.hh"
#include "sweep/isolate.hh"
#include "sweep/run_cache.hh"

namespace cwsim
{
namespace sweep
{

unsigned
resolveJobs(unsigned requested)
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    // Clamp to the hardware: the workers are CPU-bound, so extra
    // threads beyond the core count only time-slice — each run's
    // wall time (and the summed-wall aggregate rate) inflates by
    // the oversubscription factor while true throughput gains
    // nothing. Results are worker-count independent either way.
    if (requested > 0)
        return std::min(requested, hw);
    return std::min(
        static_cast<unsigned>(envUint64("CWSIM_JOBS", 1, hw)), hw);
}

void
parallelFor(size_t n, unsigned jobs,
            const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    unsigned workers = std::min<size_t>(resolveJobs(jobs), n);
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::atomic<bool> canceled{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto body = [&] {
        while (!canceled.load(std::memory_order_relaxed)) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                // Fatal (non-run) error: stop claiming indices so the
                // pool drains promptly instead of finishing a queue
                // whose results will be discarded by the rethrow.
                canceled.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(body);
    for (auto &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

SweepEngine::SweepEngine(harness::Runner &runner, SweepOptions opts)
    : runner(runner), opts(std::move(opts)),
      workerCount(resolveJobs(this->opts.jobs))
{
}

std::vector<harness::RunResult>
SweepEngine::run(const SweepPlan &plan)
{
    const std::vector<SweepJob> &jobs = plan.jobs();
    std::vector<harness::RunResult> results(jobs.size());

    std::vector<uint64_t> fps(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        fps[i] = fingerprintRun(jobs[i].workload, runner.scale(),
                                jobs[i].config);
    }

    // Phase 1: serve what the on-disk cache already has. A cached
    // failure is re-recorded with the runner so the FAILED RUNS table
    // (and the bench's exit code) is identical to a cold sweep.
    std::vector<size_t> pending;
    std::unique_ptr<RunCache> cache;
    if (opts.useCache)
        cache = std::make_unique<RunCache>(opts.cacheDir);
    for (size_t i = 0; i < jobs.size(); ++i) {
        harness::RunResult cached;
        if (cache && cache->lookup(fps[i], cached)) {
            // The cache stores results under exact fingerprints, but
            // names travel with the record; trust the spec's names so
            // tables render identically however the result arrived.
            cached.workload = jobs[i].workload;
            cached.config = jobs[i].config.name();
            cached.cacheHit = true;
            results[i] = cached;
            ++hits;
            if (!cached.ok)
                runner.recordFailure(cached);
            continue;
        }
        pending.push_back(i);
    }

    // Phase 2: simulate the rest. With isolation on, each run forks a
    // sandboxed child (workers become process slots) and failures come
    // back classified instead of crashing the bench; the executor does
    // not touch the runner's failure list itself, so record them here —
    // a contained crash then reports exactly like a cached or in-
    // process failure. Otherwise, run on the thread pool: Runner::run
    // is thread-safe and fail-soft, so a worker never throws; each job
    // writes only its own result slot. A progress heartbeat (every
    // CWSIM_PROGRESS seconds, default 10; 0 disables) keeps long
    // sweeps from looking hung; the CAS on lastBeatMs elects exactly
    // one reporting worker per interval.
    if (opts.isolate) {
        IsolateOptions iso;
        iso.slots = workerCount;
        iso.timeoutSec = opts.timeoutSec;
        iso.memLimitMb = opts.memLimitMb;
        iso.retries = opts.retries;
        runIsolated(runner, jobs, pending, fps, iso, results);
        for (size_t i : pending) {
            if (!results[i].ok)
                runner.recordFailure(results[i]);
        }
    } else {
        const uint64_t beat_s = envUint64("CWSIM_PROGRESS", 0, 10);
        auto sweep_start = std::chrono::steady_clock::now();
        std::atomic<size_t> done{0};
        std::atomic<uint64_t> lastBeatMs{0};
        parallelFor(pending.size(), workerCount, [&](size_t p) {
            size_t i = pending[p];
            results[i] = runner.run(jobs[i].workload, jobs[i].config);
            size_t finished = done.fetch_add(1) + 1;
            if (beat_s == 0 || finished == pending.size())
                return;
            uint64_t now_ms = static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - sweep_start)
                    .count());
            uint64_t last = lastBeatMs.load();
            if (now_ms - last >= beat_s * 1000 &&
                lastBeatMs.compare_exchange_strong(last, now_ms)) {
                inform("sweep: %zu/%zu runs done (%.1fs elapsed)",
                       finished, pending.size(),
                       static_cast<double>(now_ms) / 1000.0);
            }
        });
    }
    executed += pending.size();
    for (size_t i : pending) {
        wallMsSum += results[i].wallMs;
        simCycleSum += results[i].cycles;
    }

    // Phase 3: persist the new results — in spec order, post-join, so
    // the cache file's growth is deterministic too.
    if (cache) {
        for (size_t i : pending)
            cache->append(fps[i], runner.scale(), results[i]);
    }

    // Phase 4: export the whole sweep (cache hits included) as JSONL.
    if (!opts.jsonPath.empty()) {
        std::ofstream out(opts.jsonPath, std::ios::app);
        if (!out) {
            warn("sweep: cannot append results to %s",
                 opts.jsonPath.c_str());
        } else {
            for (size_t i = 0; i < jobs.size(); ++i) {
                out << runRecordLine(results[i], fps[i],
                                     runner.scale())
                    << '\n';
            }
        }
    }

    return results;
}

} // namespace sweep
} // namespace cwsim
