/**
 * @file
 * The parallel sweep engine: every paper figure/table walks a
 * (workload, config) matrix of independent timing simulations, and
 * this subsystem executes that matrix on a worker thread pool instead
 * of one run at a time.
 *
 * Determinism contract: results come back in SPEC ORDER — the order
 * jobs were added to the SweepPlan — regardless of which worker
 * finished which job when. Each simulation is a self-contained
 * Processor instance fed by a shared (once-latched, read-only after
 * construction) functional pre-pass, so a run's RunResult is a pure
 * function of its (workload, scale, config) triple and serial and
 * parallel sweeps produce bit-identical tables. The host-profiling
 * fields (RunResult::wallMs and friends, the wall_ms /
 * sim_cycles_per_sec / cache_hit JSONL fields) are the one deliberate
 * exception: they describe the host, not the simulation, and must be
 * excluded from any determinism comparison.
 *
 * Caching: completed runs are fingerprinted and persisted under
 * .cwsim-cache/ (see run_cache.hh), so re-running a bench — or
 * resuming an interrupted sweep — skips every run already on disk.
 *
 * Export: with a JSONL path set, every RunResult of the sweep
 * (including failed runs, with their SimError summary) is appended to
 * that file in spec order, giving benches machine-readable trajectory
 * output alongside their human-readable tables.
 */

#ifndef CWSIM_SWEEP_SWEEP_HH
#define CWSIM_SWEEP_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/harness.hh"
#include "sim/config.hh"

namespace cwsim
{
namespace sweep
{

/** One cell of a sweep matrix. */
struct SweepJob
{
    std::string workload;
    SimConfig config;
};

/**
 * An ordered list of sweep jobs. add() returns the job's index, which
 * is also the index of its result in SweepEngine::run()'s return —
 * benches enqueue their matrix in one pass, then read results back
 * with the same loop structure.
 */
class SweepPlan
{
  public:
    size_t
    add(std::string workload, SimConfig config)
    {
        jobList.push_back({std::move(workload), std::move(config)});
        return jobList.size() - 1;
    }

    const std::vector<SweepJob> &jobs() const { return jobList; }
    size_t size() const { return jobList.size(); }
    bool empty() const { return jobList.empty(); }

  private:
    std::vector<SweepJob> jobList;
};

struct SweepOptions
{
    /** Worker threads; 0 = CWSIM_JOBS env, else hardware_concurrency. */
    unsigned jobs = 0;
    /** Consult/fill the on-disk run cache. */
    bool useCache = true;
    std::string cacheDir = ".cwsim-cache";
    /** Append every RunResult as JSONL here ("" = no export). */
    std::string jsonPath;

    // Process isolation (see isolate.hh). With isolate set, workers
    // become forked child processes: a crashing, hanging, or OOMing
    // run is contained, classified (FailKind), and retried instead of
    // taking the whole bench down.
    bool isolate = false;
    /** Wall-clock deadline per isolated attempt, seconds (0 = none). */
    double timeoutSec = 0;
    /** RLIMIT_AS cap per isolated child, MiB (0 = none). */
    uint64_t memLimitMb = 0;
    /** Retry budget for host-level failures of an isolated run. */
    unsigned retries = 1;
};

/**
 * Resolve a --jobs request: @p requested, CWSIM_JOBS, or core count —
 * always clamped to the hardware thread count, since oversubscribing
 * CPU-bound workers only inflates per-run wall time.
 */
unsigned resolveJobs(unsigned requested);

class SweepEngine
{
  public:
    explicit SweepEngine(harness::Runner &runner,
                         SweepOptions opts = {});

    /**
     * Execute every job of @p plan (thread pool + cache) and return
     * results in spec order. Cached failures are re-recorded in the
     * runner so reportFailures() sees them exactly as cold runs.
     */
    std::vector<harness::RunResult> run(const SweepPlan &plan);

    /** Timing simulations actually executed (cumulative). */
    uint64_t timingRuns() const { return executed; }
    /** Runs served from the on-disk cache (cumulative). */
    uint64_t cacheHits() const { return hits; }
    /** The resolved worker count. */
    unsigned workers() const { return workerCount; }

    // Host-side profiling (cumulative over run() calls; simulated
    // runs only — cache hits contribute nothing).
    /** Total wall-clock ms spent inside timing simulations. */
    double totalWallMs() const { return wallMsSum; }
    /** Total simulated cycles across executed timing runs. */
    uint64_t totalSimCycles() const { return simCycleSum; }

  private:
    harness::Runner &runner;
    SweepOptions opts;
    unsigned workerCount;
    uint64_t executed = 0;
    uint64_t hits = 0;
    double wallMsSum = 0;
    uint64_t simCycleSum = 0;
};

/**
 * Deterministic-order parallel map: invoke fn(0..n-1) on up to
 * @p jobs worker threads. fn must not touch shared mutable state
 * except through its index (each index owns its output slot). Used by
 * benches whose per-workload work is not a Runner timing run (e.g.
 * the split-window model). The first exception thrown by any fn
 * cancels the remaining queue — workers stop claiming new indices and
 * drain promptly — and is rethrown on the caller after all workers
 * join, so a fatal (non-run) error cannot burn minutes finishing work
 * whose results will be discarded.
 */
void parallelFor(size_t n, unsigned jobs,
                 const std::function<void(size_t)> &fn);

} // namespace sweep
} // namespace cwsim

#endif // CWSIM_SWEEP_SWEEP_HH
